//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in a container with no crates.io access, so this shim
//! reimplements the small slice of the rand 0.8 API the workload models use:
//! [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! `StdRng` here is a SplitMix64 generator — deterministic, seedable, fast,
//! and statistically solid for simulation workloads. It intentionally does
//! not match the byte streams of the real `rand::rngs::StdRng`; all canonical
//! seeds in this repository are defined against *this* generator.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (`a..b` or `a..=b`, integer or float).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that knows how to sample a uniform value of `T` from an RNG.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (unit_f64(rng.next_u64()) as $t) * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// An RNG constructible from a fixed seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, spreading it over the raw seed bytes.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        let mut x = state;
        for chunk in bytes.chunks_mut(8) {
            // SplitMix64 step so every chunk differs even for small seeds.
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = 0u64;
            for chunk in seed.chunks(8) {
                let mut word = [0u8; 8];
                word[..chunk.len()].copy_from_slice(chunk);
                state ^= u64::from_le_bytes(word).rotate_left(17);
            }
            StdRng { state }
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(3i64..17);
            assert!((3..17).contains(&i));
            let u = rng.gen_range(1u32..=8);
            assert!((1..=8).contains(&u));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn works_through_mut_references() {
        fn take<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let via_ref = take(&mut rng);
        let mut rng2 = StdRng::seed_from_u64(3);
        assert_eq!(via_ref, rng2.next_u64());
    }
}
