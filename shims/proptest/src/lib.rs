//! Offline mini property-testing harness standing in for `proptest`.
//!
//! The container has no crates.io access, so this shim reimplements the slice
//! of the proptest API the workspace's property tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map`, range and `Just` strategies,
//! [`collection::vec`], and the `proptest!`, `prop_compose!`, `prop_oneof!`,
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from the real crate: no shrinking (a failing case panics with
//! the case number; rerun with the same binary to reproduce — generation is
//! deterministic per test name), and no weighted `prop_oneof!` arms.

pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Number of elements a collection strategy may produce.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing a `Vec` of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a property-test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Run each property over this many generated cases.
pub const CASES: usize = 128;

/// Define property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over [`CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let run = || -> () { $body };
                    if let Err(panic) =
                        ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run))
                    {
                        eprintln!(
                            "property {} failed at case {}/{} (deterministic; rerun reproduces)",
                            stringify!($name), __case, $crate::CASES,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Define a function returning a composite strategy, mirroring
/// `proptest::prop_compose!`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($p:ident: $pty:ty),* $(,)?)
        ($($arg:ident in $strat:expr),* $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($p: $pty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(move |__rng: &mut $crate::test_runner::TestRng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                $body
            })
        }
    };
}

/// Choose uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::union_branch($s)),+])
    };
}

/// Assert inside a property body (plain `assert!` under this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property body (plain `assert_eq!` under this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property body (plain `assert_ne!` under this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}
