//! The deterministic RNG driving property generation.

use rand::{RngCore, SeedableRng, StdRng};
use std::hash::{Hash, Hasher};

/// The RNG handed to strategies. Seeded from the test's full module path, so
/// every property test has its own reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG for the named test.
    pub fn deterministic(test_name: &str) -> Self {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        // DefaultHasher::new() is specified to be stable across invocations of
        // the same binary and, in practice, across current std releases.
        test_name.hash(&mut hasher);
        TestRng(StdRng::seed_from_u64(hasher.finish()))
    }

    /// RNG from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
