//! The [`Strategy`] trait and the combinators the workspace's tests use.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the test RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a second strategy from every generated value and draw from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy backed by a plain generation closure (used by `prop_compose!`).
pub struct FnStrategy<F>(F);

impl<F> FnStrategy<F> {
    /// Wrap a generation closure.
    pub fn new(f: F) -> Self {
        FnStrategy(f)
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A boxed generation closure: one erased `prop_oneof!` arm.
pub type GenFn<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice among strategies with a common value type (`prop_oneof!`).
pub struct Union<T> {
    branches: Vec<GenFn<T>>,
}

impl<T> Union<T> {
    /// Build from pre-erased branches (see [`union_branch`]).
    pub fn new(branches: Vec<GenFn<T>>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one arm");
        Union { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.branches.len());
        (self.branches[idx])(rng)
    }
}

/// Erase one `prop_oneof!` arm into a boxed generation closure.
pub fn union_branch<S: Strategy + 'static>(s: S) -> GenFn<S::Value> {
    Box::new(move |rng| s.generate(rng))
}

/// Every generated `Vec` element comes from the corresponding strategy. This
/// mirrors proptest's `Strategy for Vec<S>`, used to turn a vector of
/// per-element strategies into a strategy for vectors.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
