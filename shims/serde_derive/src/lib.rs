//! No-op derive macros standing in for `serde_derive` in offline builds.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data types so
//! that a real serde can be dropped in later; until then the traits in the
//! sibling `serde` shim are blanket-implemented and these derives expand to
//! nothing.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented in the shim.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented in the shim.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
