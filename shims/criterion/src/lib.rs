//! Offline micro-benchmark harness standing in for `criterion`.
//!
//! The container has no crates.io access, so this shim provides the small
//! slice of the criterion API the workspace's benches use. Like the real
//! crate, it distinguishes `cargo bench` (cargo passes `--bench`; closures run
//! in a timed loop and a mean time per iteration is printed) from `cargo test`
//! (each benchmark body runs exactly once as a smoke test). There are no
//! statistics, plots, or baselines.

use std::fmt::Display;
use std::time::Instant;

/// Top-level benchmark driver, handed to each `criterion_group!` target.
pub struct Criterion {
    bench_mode: bool,
    default_sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            bench_mode: std::env::args().any(|a| a == "--bench"),
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let iters = if self.bench_mode {
            self.default_sample_size
        } else {
            1
        };
        run_one(&id.to_string(), self.bench_mode, iters, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1) as u64);
        self
    }

    /// Record throughput metadata (accepted and ignored by this shim).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a closure under `group-name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let iters = self.iters();
        run_one(&label, self.criterion.bench_mode, iters, f);
        self
    }

    /// Benchmark a closure that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        let iters = self.iters();
        run_one(&label, self.criterion.bench_mode, iters, |b| f(b, input));
        self
    }

    /// Finish the group (no-op; provided for API parity).
    pub fn finish(self) {}

    fn iters(&self) -> u64 {
        if self.criterion.bench_mode {
            self.sample_size
                .unwrap_or(self.criterion.default_sample_size)
        } else {
            1
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, bench_mode: bool, iters: u64, mut f: F) {
    let mut bencher = Bencher {
        iters,
        elapsed_ns: 0,
        timed_iters: 0,
    };
    f(&mut bencher);
    if bench_mode && bencher.timed_iters > 0 {
        let per_iter = bencher.elapsed_ns / bencher.timed_iters as u128;
        println!(
            "bench: {label:<50} {:>12} ns/iter ({} iters)",
            per_iter, bencher.timed_iters
        );
    } else {
        println!("bench: {label:<50} ok (smoke)");
    }
}

/// Times a closure over the configured number of iterations.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
    timed_iters: u64,
}

impl Bencher {
    /// Run `f` repeatedly, timing the loop (once in smoke mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        if self.iters <= 1 {
            self.timed_iters = 0;
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
        self.timed_iters = self.iters;
    }
}

/// Identifies a benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Throughput metadata (accepted for API parity; not reported by this shim).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Run every benchmark in this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
