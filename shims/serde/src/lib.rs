//! Offline stand-in for the `serde` crate.
//!
//! The container this workspace builds in has no crates.io access, so the real
//! serde cannot be vendored. The workspace only *derives* `Serialize` /
//! `Deserialize` (no code serializes anything yet), so this shim keeps the
//! derive surface compiling: the traits are empty markers with blanket
//! implementations and the derive macros expand to nothing. Swapping the real
//! serde back in is a one-line change in each manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
