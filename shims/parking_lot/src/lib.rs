//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the poison-free `lock()` API the workspace relies on. Lock
//! poisoning is translated into "take the data anyway", which matches
//! parking_lot's behaviour of not poisoning at all.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error, like `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
