//! Integration tests spanning the whole workspace: model → SWF → simulator →
//! metrics → experiment harness, exercised through the public facade crate.

use psbench::core::{run_experiment, Scale, Scenario, WorkloadDef, WorkloadKind};
use psbench::metrics::{outcomes_from_log, AggregateMetrics};
use psbench::sched::{by_name, standard_schedulers};
use psbench::sim::{SimConfig, SimJob, Simulation};
use psbench::swf::{parse, validate, write_string};
use psbench::workload::{
    infer_dependencies, standard_models, InferenceParams, OutageGenerator, WorkloadModel,
};

fn tiny_scale() -> Scale {
    Scale {
        jobs: 100,
        sweep_points: 2,
        requests: 6,
    }
}

#[test]
fn full_pipeline_model_to_metrics() {
    // Generate → serialize → parse → simulate → analyze, for every standard model.
    for model in standard_models(64) {
        let log = model.generate(250, 4242);
        assert!(validate(&log).is_clean(), "model {}", model.name());
        let text = write_string(&log);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.jobs, log.jobs);

        let jobs = SimJob::from_log(&parsed);
        assert_eq!(jobs.len(), 250);
        let mut sched = by_name("easy", 64).unwrap();
        let result = Simulation::new(SimConfig::new(64), jobs).run(sched.as_mut());
        assert_eq!(result.finished.len(), 250, "model {}", model.name());

        let agg = result.aggregate();
        assert_eq!(agg.jobs, 250);
        assert!(agg.response_time.mean > 0.0);
        let sys = result.system();
        assert!(sys.utilization > 0.0 && sys.utilization <= 1.0);
    }
}

#[test]
fn simulated_schedule_exports_back_to_valid_swf() {
    let def = WorkloadDef::new(WorkloadKind::Jann97, 64, 200, 99);
    let result = Scenario::new("export", def, "conservative").run();
    let exported = result.to_swf();
    assert_eq!(exported.len(), 200);
    assert!(validate(&exported).is_clean());
    // The exported trace can itself feed the metrics pipeline.
    let outcomes = outcomes_from_log(&exported);
    let agg = AggregateMetrics::from_outcomes(&outcomes);
    assert_eq!(agg.jobs, 200);
}

#[test]
fn every_standard_scheduler_conserves_jobs_on_every_model() {
    for model in standard_models(64) {
        let log = model.generate(150, 7);
        let jobs = SimJob::from_log(&log);
        for sched in standard_schedulers(64).iter_mut() {
            let result = Simulation::new(SimConfig::new(64), jobs.clone()).run(sched.as_mut());
            assert_eq!(
                result.finished.len() + result.unfinished + result.discarded,
                jobs.len(),
                "model {} scheduler {}",
                model.name(),
                sched.name()
            );
            assert_eq!(
                result.unfinished,
                0,
                "model {} scheduler {}",
                model.name(),
                sched.name()
            );
        }
    }
}

#[test]
fn closed_loop_feedback_run_end_to_end() {
    let def = WorkloadDef::new(WorkloadKind::Sessions, 128, 300, 5);
    let mut closed = Scenario::new("closed", def, "easy");
    closed.closed_loop = true;
    let open = Scenario::new("open", def, "easy");
    let closed_result = closed.run();
    let open_result = open.run();
    assert_eq!(closed_result.finished.len(), 300);
    assert_eq!(open_result.finished.len(), 300);
    // The closed loop defers dependent submissions, so its trace ends no earlier.
    assert!(closed_result.end_time >= open_result.end_time * 0.5);
}

#[test]
fn dependency_inference_then_closed_loop_replay() {
    let model = psbench::workload::Lublin99::with_machine_size(64);
    let mut log = model.generate(300, 11);
    let report = infer_dependencies(&mut log, &InferenceParams::default());
    assert!(report.dependent_jobs > 0);
    assert!(validate(&log).is_clean());
    let jobs = SimJob::from_log(&log);
    let mut sched = by_name("easy", 64).unwrap();
    let result = Simulation::new(SimConfig::new(64).closed_loop(), jobs).run(sched.as_mut());
    assert_eq!(result.finished.len(), 300);
}

#[test]
fn outage_run_conserves_jobs_and_counts_lost_capacity() {
    let def = WorkloadDef::new(WorkloadKind::Lublin99, 128, 300, 13);
    let log = def.generate();
    let outages = OutageGenerator::for_machine(128).generate(log.duration() + 86_400, 13);
    let jobs = SimJob::from_log(&log);
    let mut sched = by_name("draining-easy", 128).unwrap();
    let config = SimConfig::new(128).with_outages(outages);
    let result = Simulation::new(config, jobs).run(sched.as_mut());
    assert_eq!(result.finished.len() + result.unfinished, 300);
    assert!(result.lost_node_seconds > 0.0);
}

#[test]
fn experiment_catalogue_smoke() {
    // Every experiment except the full cross-product (E8) runs at tiny scale and
    // produces a non-empty table.
    for id in psbench::core::experiment_ids() {
        if *id == "E8" {
            continue;
        }
        let table = run_experiment(id, tiny_scale()).unwrap();
        assert!(!table.rows.is_empty(), "experiment {id}");
        assert!(!table.headers.is_empty(), "experiment {id}");
        assert!(table.to_markdown().contains(&table.title));
    }
}

#[test]
fn e8_cross_product_at_reduced_scale() {
    let table = run_experiment("E8", tiny_scale()).unwrap();
    // 5 canonical workloads x 6 canonical schedulers.
    assert_eq!(table.rows.len(), 5);
    assert_eq!(table.headers.len(), 7);
    for row in &table.rows {
        assert_eq!(row.len(), 7);
    }
}

#[test]
fn fixed_seed_runs_are_byte_identical_for_every_standard_scheduler() {
    // Same seed + same workload model → byte-identical SimulationResult, run twice.
    // SimulationResult derives PartialEq over every field, so this compares the
    // full result (per-job outcomes, integrals, counters), not a summary.
    let def = WorkloadDef::new(WorkloadKind::Lublin99, 64, 150, 777);
    for sched in standard_schedulers(64) {
        let name = sched.name();
        let run = || {
            let jobs = SimJob::from_log(&def.generate());
            let mut s = by_name(name, 64).unwrap();
            Simulation::new(SimConfig::new(64), jobs).run(s.as_mut())
        };
        assert_eq!(run(), run(), "scheduler {name} is not deterministic");
    }
}

#[test]
fn sequential_and_parallel_harness_paths_agree() {
    // The work-stealing pool must return bit-identical results in input order,
    // whatever the thread count. One scenario per standard scheduler, twice over
    // (so there are more tasks than threads and stealing actually happens).
    use psbench::core::{run_all, run_all_parallel};
    let mut scenarios = Vec::new();
    for round in 0..2u64 {
        for sched in standard_schedulers(64) {
            let def = WorkloadDef::new(WorkloadKind::Jann97, 64, 120, 31 + round);
            scenarios.push(Scenario::new(
                format!("{}-{round}", sched.name()),
                def,
                sched.name(),
            ));
        }
    }
    let seq = run_all(&scenarios);
    for threads in [1, 3, 8] {
        let par = run_all_parallel(&scenarios, threads);
        assert_eq!(seq.len(), par.len());
        for ((s_a, r_a), (s_b, r_b)) in seq.iter().zip(par.iter()) {
            assert_eq!(s_a.name, s_b.name, "order changed at {threads} threads");
            assert_eq!(
                r_a, r_b,
                "scenario {} differs at {threads} threads",
                s_a.name
            );
        }
    }
}

#[test]
fn backfilling_beats_fcfs_on_the_canonical_workload() {
    // The qualitative result that motivates the whole benchmark exercise.
    let def = WorkloadDef {
        interarrival_scale: 0.5,
        ..WorkloadDef::new(WorkloadKind::Lublin99, 128, 500, 1999)
    };
    let fcfs = Scenario::new("fcfs", def, "fcfs").run();
    let easy = Scenario::new("easy", def, "easy").run();
    assert!(easy.mean_response_time() <= fcfs.mean_response_time());
    assert!(easy.system().loss_of_capacity <= fcfs.system().loss_of_capacity + 1e-9);
}
