//! End-to-end tests of the `psbench` binary: every subcommand, plus the
//! acceptance property that reports are byte-identical between sequential
//! (`--threads 1`) and parallel analysis runs.

use std::path::PathBuf;
use std::process::{Command, Output};

fn psbench(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_psbench"))
        .args(args)
        .output()
        .expect("psbench binary runs")
}

fn stdout_of(args: &[&str]) -> String {
    let out = psbench(args);
    assert!(
        out.status.success(),
        "psbench {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

/// A scratch file path unique to this test process.
fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("psbench-cli-{}-{name}", std::process::id()));
    p
}

/// Write a reference trace to disk through the library, for file-input tests.
fn write_reference_trace(name: &str, jobs: usize, seed: u64) -> PathBuf {
    use psbench::workload::{Lublin99, WorkloadModel};
    let log = Lublin99::default().generate(jobs, seed);
    let path = scratch(name);
    std::fs::write(&path, psbench::swf::write_string(&log)).unwrap();
    path
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = psbench(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for sub in [
        "stats", "compare", "validate", "convert", "simulate", "sweep",
    ] {
        assert!(text.contains(sub), "usage should mention {sub}");
    }
}

#[test]
fn no_args_is_a_usage_error() {
    let out = psbench(&[]);
    assert_eq!(out.status.code(), Some(2));
    let out = psbench(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn zero_machine_size_is_a_usage_error_not_a_panic() {
    let out = psbench(&["stats", "model:lublin99", "--machine", "0", "--jobs", "50"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--machine"));
}

#[test]
fn stats_is_deterministic_across_runs_and_thread_counts() {
    let base = ["stats", "model:lublin99", "--jobs", "800", "--seed", "7"];
    let a = stdout_of(&base);
    let b = stdout_of(&base);
    assert_eq!(a, b, "two identical runs must match byte for byte");
    let seq = stdout_of(&[&base[..], &["--threads", "1"]].concat());
    let par = stdout_of(&[&base[..], &["--threads", "8"]].concat());
    assert_eq!(seq, par, "sequential and parallel analysis must match");
    assert!(a.contains("Workload profile — model:lublin99"));
    assert!(a.contains("| interarrival |"));
}

#[test]
fn stats_reads_swf_files_and_all_formats_render() {
    let path = write_reference_trace("stats.swf", 300, 42);
    let p = path.to_str().unwrap();
    let md = stdout_of(&["stats", p]);
    assert!(md.contains("| runtime | s | 300 |"));
    let csv = stdout_of(&["stats", p, "--format", "csv"]);
    assert!(csv.contains("marginal,unit,count"));
    let json = stdout_of(&["stats", p, "--format", "json"]);
    assert!(json.contains("\"jobs\":300"));
    std::fs::remove_file(path).ok();
}

#[test]
fn compare_scores_lublin99_against_a_reference_trace() {
    // The acceptance scenario: a Lublin99-generated workload scored against a
    // reference trace, KS/EMD per marginal, byte-identical seq vs par.
    let path = write_reference_trace("ref.swf", 600, 424_242);
    let p = path.to_str().unwrap();
    let base = [
        "compare",
        p,
        "model:lublin99",
        "--jobs",
        "600",
        "--seed",
        "58",
    ];
    let seq = stdout_of(&[&base[..], &["--threads", "1"]].concat());
    let par = stdout_of(&[&base[..], &["--threads", "8"]].concat());
    assert_eq!(
        seq, par,
        "fidelity report must be byte-identical between sequential and parallel runs"
    );
    for marginal in ["interarrival", "runtime", "size", "accuracy", "diurnal"] {
        assert!(
            seq.contains(&format!("| {marginal} |")),
            "missing {marginal}"
        );
    }
    // Same model, different seed: the fidelity score should be small.
    let json = stdout_of(&[&base[..], &["--format", "json"]].concat());
    let mean_ks: f64 = json
        .split("\"mean_ks\":")
        .nth(1)
        .and_then(|s| s.split(&[',', '}'][..]).next())
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        (0.0..0.25).contains(&mean_ks),
        "same-model mean KS should be small, got {mean_ks}"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn stats_streaming_and_materialized_paths_are_byte_identical() {
    // The acceptance property of the JobSource redesign: the bounded-memory
    // streaming pipeline and the explicitly materialized one can never
    // disagree, for file and model inputs, in every format, at any thread
    // count.
    let path = write_reference_trace("stream-vs-mat.swf", 700, 99);
    let p = path.to_str().unwrap();
    for input in [p, "model:lublin99"] {
        for format in ["md", "csv", "json"] {
            for threads in ["1", "6"] {
                let base = [
                    "stats",
                    input,
                    "--jobs",
                    "700",
                    "--seed",
                    "99",
                    "--format",
                    format,
                    "--threads",
                    threads,
                ];
                let streaming = stdout_of(&base);
                let materialized = stdout_of(&[&base[..], &["--materialize"]].concat());
                assert_eq!(
                    streaming, materialized,
                    "paths diverge for {input} / {format} / {threads} threads"
                );
            }
        }
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn unknown_scheduler_error_lists_valid_names() {
    let out = psbench(&[
        "simulate",
        "model:lublin99",
        "--jobs",
        "20",
        "--scheduler",
        "bogus",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown scheduler \"bogus\""), "{stderr}");
    for name in ["fcfs", "easy", "conservative", "gang", "draining-easy"] {
        assert!(stderr.contains(name), "error should list {name}: {stderr}");
    }
    // --help surfaces the same registry.
    let help = stdout_of(&["--help"]);
    assert!(help.contains("draining-easy"));
}

#[test]
fn compare_reports_chi2_and_ad_columns() {
    let md = stdout_of(&["compare", "model:lublin99", "model:jann97", "--jobs", "400"]);
    assert!(
        md.contains("| marginal | unit | KS | EMD | chi2 | AD |"),
        "{md}"
    );
    let json = stdout_of(&[
        "compare",
        "model:lublin99",
        "model:jann97",
        "--jobs",
        "400",
        "--format",
        "json",
    ]);
    assert!(json.contains("\"chi2\":"));
    assert!(json.contains("\"mean_ad\":"));
}

#[test]
fn validate_passes_clean_logs_and_fails_broken_ones() {
    let ok = psbench(&["validate", "model:jann97", "--jobs", "120"]);
    assert!(ok.status.success());

    // A log violating the standard: first submit nonzero, ids not 1..n.
    let path = scratch("broken.swf");
    std::fs::write(
        &path,
        ";MaxNodes: 64\n7 100 0 50 4 -1 -1 4 60 -1 1 1 1 1 1 1 -1 -1\n",
    )
    .unwrap();
    let bad = psbench(&["validate", path.to_str().unwrap()]);
    assert_eq!(bad.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&bad.stdout).contains("violation:"));
    std::fs::remove_file(path).ok();
}

#[test]
fn convert_emits_swf_that_validates() {
    let raw = scratch("raw.log");
    std::fs::write(
        &raw,
        "1 alice cfd 32 1000 1010 600 ok\n2 bob qcd 64 1100 1200 1200 ok\n",
    )
    .unwrap();
    let swf_out = scratch("converted.swf");
    let out = psbench(&[
        "convert",
        "--dialect",
        "nasa-ipsc860",
        raw.to_str().unwrap(),
        "--machine",
        "128",
        "--out",
        swf_out.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let ok = psbench(&["validate", swf_out.to_str().unwrap()]);
    assert!(ok.status.success(), "converted output should be clean SWF");
    let unknown = psbench(&["convert", "--dialect", "vax", raw.to_str().unwrap()]);
    assert_eq!(unknown.status.code(), Some(2));
    std::fs::remove_file(raw).ok();
    std::fs::remove_file(swf_out).ok();
}

#[test]
fn simulate_reports_scheduler_metrics() {
    let md = stdout_of(&[
        "simulate",
        "model:lublin99",
        "--jobs",
        "150",
        "--scheduler",
        "easy",
    ]);
    assert!(md.contains("Simulation — model:lublin99 under easy"));
    assert!(md.contains("| 150 |"));
    let bad = psbench(&["simulate", "model:lublin99", "--scheduler", "no-such"]);
    assert_eq!(bad.status.code(), Some(2));
}

#[test]
fn sweep_runs_the_fidelity_experiment() {
    // Uses quick scale; E10 alone keeps the test fast.
    let md = stdout_of(&["sweep", "E10"]);
    assert!(md.contains("E10 — model fidelity"));
    for model in ["feitelson96", "jann97", "downey97", "lublin99"] {
        assert!(md.contains(model), "sweep output should mention {model}");
    }
    let bad = psbench(&["sweep", "E99"]);
    assert_eq!(bad.status.code(), Some(2));
}

#[test]
fn sweep_json_is_one_document() {
    // Multiple experiments in JSON format must form a single parseable array,
    // not concatenated objects.
    let json = stdout_of(&["sweep", "E3", "E10", "--format", "json"]);
    assert!(json.starts_with('[') && json.ends_with(']'), "not an array");
    assert_eq!(json.matches("\"title\":").count(), 2);
    assert!(json.contains("},{"), "objects must be comma-separated");
    assert_eq!(json.matches('"').count() % 2, 0);
}

/// Spawn `psbench serve` on an ephemeral port and return (child, addr).
/// The child is killed by the caller.
fn spawn_serve(extra: &[&str]) -> (std::process::Child, String) {
    use std::io::{BufRead, BufReader};
    let mut child = Command::new(env!("CARGO_BIN_EXE_psbench"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn psbench serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
        .to_string();
    (child, addr)
}

#[test]
fn serve_session_drain_matches_offline_simulate_byte_for_byte() {
    let store = scratch("serve-store");
    std::fs::create_dir_all(&store).unwrap();
    let (mut child, addr) = spawn_serve(&[
        "--scheduler",
        "easy",
        "--machine",
        "64",
        "--store",
        store.to_str().unwrap(),
    ]);

    // A scripted session, including interleaved what-if queries.
    let script_path = scratch("serve-script.txt");
    let mut script = String::from("hello psbench-serve/1\n");
    let mut t = 0;
    for id in 1..=40 {
        t += (id * 7) % 23;
        let runtime = 30 + (id * 13) % 400;
        let procs = 1 + (id * 5) % 64;
        script.push_str(&format!(
            "submit id={id} submit={t} runtime={runtime} procs={procs}\n"
        ));
        if id % 11 == 4 {
            script.push_str(&format!("whatif {id} under conservative\n"));
        }
    }
    script.push_str("trace\ndrain\nbye\n");
    std::fs::write(&script_path, script).unwrap();

    let trace_path = scratch("serve-trace.swf");
    let report_path = scratch("serve-report.txt");
    let out = psbench(&[
        "client",
        &addr,
        script_path.to_str().unwrap(),
        "--trace-out",
        trace_path.to_str().unwrap(),
        "--report-out",
        report_path.to_str().unwrap(),
    ]);
    child.kill().ok();
    child.wait().ok();
    assert!(
        out.status.success(),
        "client failed: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let replies = String::from_utf8_lossy(&out.stdout);
    assert!(replies.contains("ok whatif"), "{replies}");

    // Offline leg: simulate the exported trace and compare encoded results
    // byte for byte.
    let offline_path = scratch("serve-offline.txt");
    stdout_of(&[
        "simulate",
        trace_path.to_str().unwrap(),
        "--scheduler",
        "easy",
        "--result-out",
        offline_path.to_str().unwrap(),
    ]);
    let online = std::fs::read(&report_path).unwrap();
    let offline = std::fs::read(&offline_path).unwrap();
    assert!(!online.is_empty());
    assert_eq!(online, offline, "online drain != offline simulate");

    // The drained session was published under the offline cell key, so a
    // store-backed simulate of the exported trace is a cache hit...
    let warm = psbench(&[
        "simulate",
        trace_path.to_str().unwrap(),
        "--scheduler",
        "easy",
        "--store",
        store.to_str().unwrap(),
    ]);
    assert!(warm.status.success());
    assert!(
        String::from_utf8_lossy(&warm.stderr).contains("result cache hit"),
        "expected a cache hit from the published session"
    );
    // ...and the store passes verification.
    let verify = stdout_of(&["store", "verify", "--store", store.to_str().unwrap()]);
    assert!(verify.contains("0 problems"), "{verify}");

    std::fs::remove_dir_all(&store).ok();
    for p in [&script_path, &trace_path, &report_path, &offline_path] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn client_surfaces_protocol_errors_in_exit_code() {
    let (mut child, addr) = spawn_serve(&["--scheduler", "fcfs", "--machine", "8"]);
    let script_path = scratch("serve-bad-script.txt");
    std::fs::write(
        &script_path,
        "hello psbench-serve/1\nsubmit id=1 runtime=oops procs=2\nbye\n",
    )
    .unwrap();
    let out = psbench(&["client", &addr, script_path.to_str().unwrap()]);
    child.kill().ok();
    child.wait().ok();
    assert_eq!(
        out.status.code(),
        Some(1),
        "err replies should fail the client"
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("err "));
    std::fs::remove_file(&script_path).ok();
}
