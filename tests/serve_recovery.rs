//! End-to-end crash recovery of the live service: a `psbench serve` process
//! with `--state-dir` is SIGKILLed mid-session, restarted, and must resume
//! the session by journal replay — the final drained result byte-identical
//! to an offline `psbench simulate` of the trace the session exported. Plus:
//! SIGTERM drains to a checkpoint and exits cleanly, and a sweep under a
//! `PSBENCH_FAULTS` plan either completes correctly or fails loudly while
//! `store verify` stays clean.

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};

use psbench::serve::run_script;

fn scratch_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("psbench-serve-rec-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// Spawn `psbench serve` on an ephemeral port and parse the bound address
/// from its `listening on …` line.
fn spawn_serve(state_dir: &Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_psbench"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--scheduler",
            "easy",
            "--machine",
            "64",
            "--state-dir",
            state_dir.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn psbench serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("serve prints its address")
        .expect("readable stdout");
    let addr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .parse()
        .expect("parseable listen address");
    // Keep draining stdout in the background so the child never blocks on a
    // full pipe (it also prints the sigterm checkpoint line on shutdown).
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

#[test]
fn sigkilled_server_resumes_and_drain_matches_offline_simulate() {
    let dir = scratch_dir("sigkill");
    let (mut child, addr) = spawn_serve(&dir);

    // First leg: a named session takes real work, then the process dies hard
    // mid-session — no drain, no shutdown hook, exactly like a crash.
    let first_leg = [
        "hello psbench-serve/1 session=prod",
        "submit id=1 submit=0 runtime=900 procs=64 seq=1",
        "submit id=2 submit=30 runtime=300 procs=16 estimate=450 seq=2",
        "submit id=3 submit=60 runtime=120 procs=8 user=3 seq=3",
        "advance to=200 seq=4",
        "cancel id=99 seq=5", // unknown job: deterministic err, journaled
    ];
    let transcript = run_script(addr, &first_leg).expect("first leg runs");
    assert!(
        transcript.replies[0].contains("session=prod seq=0 resumed=false"),
        "{}",
        transcript.replies[0]
    );
    assert!(transcript.replies[5].starts_with("err cancel:"));
    child.kill().expect("SIGKILL the server");
    child.wait().expect("reap the killed server");

    // Second leg: a fresh process on the same state dir replays the journal
    // and the session carries on where seq 5 left it.
    let (child, addr) = spawn_serve(&dir);
    let second_leg = [
        "hello psbench-serve/1 session=prod",
        "submit id=4 submit=400 runtime=60 procs=32 seq=6",
        "advance to=2000 seq=7",
        "trace",
        "drain seq=8",
        "bye",
    ];
    let transcript = run_script(addr, &second_leg).expect("second leg runs");
    assert!(
        transcript.replies[0].contains("session=prod seq=5 resumed=true"),
        "restart must resume the journaled session: {}",
        transcript.replies[0]
    );
    let trace = transcript.payload("trace").expect("trace payload").clone();
    let drain = transcript.payload("drain").expect("drain payload").clone();
    kill_term(&child);
    wait_clean(child);

    // Offline leg: `psbench simulate` of the exported trace must produce the
    // exact bytes the recovered session drained.
    let trace_path = dir.join("prod.swf");
    std::fs::write(&trace_path, &trace.body).unwrap();
    let result_path = dir.join("prod.result");
    let out = psbench(&[
        "simulate",
        trace_path.to_str().unwrap(),
        "--scheduler",
        "easy",
        "--result-out",
        result_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "offline simulate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&result_path).unwrap(),
        drain.body,
        "recovered online drain != offline simulate of the exported trace"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn psbench(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_psbench"))
        .args(args)
        .output()
        .expect("psbench binary runs")
}

fn kill_term(child: &Child) {
    let ok = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs")
        .success();
    assert!(ok, "kill -TERM failed");
}

fn wait_clean(mut child: Child) {
    let status = child.wait().expect("server exits");
    assert!(status.success(), "server exit status {status:?}");
}

#[test]
fn sigterm_checkpoints_journals_and_exits_cleanly() {
    let dir = scratch_dir("sigterm");
    let (mut child, addr) = spawn_serve(&dir);
    let transcript = run_script(
        addr,
        &[
            "hello psbench-serve/1 session=night",
            "submit id=1 submit=0 runtime=100 procs=4 seq=1",
        ],
    )
    .expect("session runs");
    assert!(!transcript.has_errors(), "{:?}", transcript.replies);

    kill_term(&child);
    let status = child.wait().expect("server exits on SIGTERM");
    assert!(status.success(), "SIGTERM exit status {status:?}");
    assert!(
        dir.join("sessions").join("night.journal").exists(),
        "checkpoint must leave the session journal on disk"
    );

    // And the checkpointed session resumes on the next start.
    let (child, addr) = spawn_serve(&dir);
    let transcript = run_script(
        addr,
        &["hello psbench-serve/1 session=night", "drain seq=2", "bye"],
    )
    .expect("resumed session runs");
    assert!(
        transcript.replies[0].contains("session=night seq=1 resumed=true"),
        "{}",
        transcript.replies[0]
    );
    kill_term(&child);
    wait_clean(child);
    let _ = std::fs::remove_dir_all(&dir);
}

/// One `sweep grid` invocation under a seeded fault plan. Whatever the plan
/// does, two things must hold afterwards: the store verifies clean, and a
/// clean rerun converges on a correct, complete sweep.
#[test]
fn faulted_sweeps_fail_loudly_and_the_store_stays_verifiable() {
    let dir = scratch_dir("faults");
    let store = dir.join("store");
    let grid = |extra_env: Option<&str>| -> Output {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_psbench"));
        cmd.args([
            "sweep",
            "grid",
            "--store",
            store.to_str().unwrap(),
            "--models",
            "lublin99",
            "--schedulers",
            "fcfs,easy",
            "--loads",
            "1.0,0.6",
            "--seeds",
            "1",
            "--jobs",
            "40",
            "--machine",
            "64",
            "--threads",
            "2",
            "--format",
            "csv",
        ]);
        match extra_env {
            Some(plan) => cmd.env("PSBENCH_FAULTS", plan),
            None => cmd.env_remove("PSBENCH_FAULTS"),
        };
        cmd.output().expect("psbench sweep grid runs")
    };

    // A fault matrix: several seeds, mixed transient and torn writes. Each
    // run either completes or fails loudly — and must never corrupt the
    // store either way.
    let mut failures = 0usize;
    for seed in 1..=4u64 {
        let out = grid(Some(&format!("seed={seed},err=120,short=80")));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("fault injection active"),
            "fault plan warning missing: {stderr}"
        );
        if !out.status.success() {
            failures += 1;
            assert!(
                stderr.contains("injected fault:"),
                "failure must name the injected fault: {stderr}"
            );
        }
        let verify = psbench(&["store", "verify", "--store", store.to_str().unwrap()]);
        assert!(
            verify.status.success(),
            "store verify found problems after faulted run (seed {seed}): {}",
            String::from_utf8_lossy(&verify.stdout)
        );
    }

    // A clean resume completes the grid; its report equals a from-scratch
    // clean sweep in a fresh store, so fault debris changed nothing.
    let resumed = grid(None);
    assert!(
        resumed.status.success(),
        "clean resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let fresh_store = dir.join("fresh");
    let fresh = {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_psbench"));
        cmd.args([
            "sweep",
            "grid",
            "--store",
            fresh_store.to_str().unwrap(),
            "--models",
            "lublin99",
            "--schedulers",
            "fcfs,easy",
            "--loads",
            "1.0,0.6",
            "--seeds",
            "1",
            "--jobs",
            "40",
            "--machine",
            "64",
            "--threads",
            "2",
            "--format",
            "csv",
        ]);
        cmd.env_remove("PSBENCH_FAULTS");
        cmd.output().expect("fresh sweep runs")
    };
    assert!(fresh.status.success());
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(&fresh.stdout),
        "resumed-after-faults report drifted from a clean sweep"
    );
    // Nothing about the fault matrix is asserted beyond the invariants —
    // but with these seeds at least one run should actually have failed,
    // or the matrix is not exercising the error path at all.
    assert!(failures > 0, "no faulted run failed; raise the rates");
    let _ = std::fs::remove_dir_all(&dir);
}
