//! End-to-end interrupt/resume tests of the artifact store: a `sweep grid`
//! stopped mid-run — deterministically via `--max-cells`, and for real via
//! SIGKILL — must resume from its journal with zero recomputation of
//! completed cells and render a report byte-identical to an uninterrupted
//! sweep of the same grid.

use std::path::PathBuf;
use std::process::{Command, Output};

fn psbench(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_psbench"))
        .args(args)
        .output()
        .expect("psbench binary runs")
}

/// Run and require success; returns (stdout, stderr).
fn run_ok(args: &[&str]) -> (String, String) {
    let out = psbench(args);
    assert!(
        out.status.success(),
        "psbench {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        String::from_utf8(out.stderr).expect("utf-8 stderr"),
    )
}

/// A scratch directory unique to this test process, recreated empty.
fn scratch_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("psbench-store-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// The shared 8-cell grid: 2 models × 2 schedulers × 2 loads × 1 seed.
fn grid_args(store: &str) -> Vec<String> {
    [
        "sweep",
        "grid",
        "--store",
        store,
        "--models",
        "lublin99,feitelson96",
        "--schedulers",
        "fcfs,easy",
        "--loads",
        "1.0,0.6",
        "--seeds",
        "1",
        "--jobs",
        "50",
        "--machine",
        "64",
        "--threads",
        "2",
        "--format",
        "csv",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn run_grid(base: &[String], extra: &[&str]) -> (String, String) {
    let mut args: Vec<&str> = base.iter().map(String::as_str).collect();
    args.extend_from_slice(extra);
    run_ok(&args)
}

#[test]
fn interrupted_sweep_resumes_with_zero_recomputation_and_identical_report() {
    // Reference: the same grid run to completion against its own fresh store.
    let ref_store = scratch_dir("ref");
    let (reference, ref_err) = run_grid(&grid_args(ref_store.to_str().unwrap()), &[]);
    assert!(
        ref_err.contains("8 cells, 0 cached, 8 computed, 0 pending"),
        "{ref_err}"
    );

    // Interrupted run: compute 3 of the 8 cells, then "die". --max-cells is
    // the deterministic twin of SIGKILL — store and journal are left exactly
    // as an interrupted run would leave them after those cells.
    let store = scratch_dir("resume");
    let base = grid_args(store.to_str().unwrap());
    let (_, err) = run_grid(&base, &["--max-cells", "3"]);
    assert!(
        err.contains("8 cells, 0 cached, 3 computed, 5 pending"),
        "{err}"
    );

    // Resume: the 3 completed cells come from the store, never recomputed.
    let (resumed, err) = run_grid(&base, &[]);
    assert!(
        err.contains("8 cells, 3 cached, 5 computed, 0 pending"),
        "{err}"
    );
    assert_eq!(
        resumed, reference,
        "resumed report must be byte-identical to an uninterrupted sweep"
    );

    // Fully warm: zero computation, still byte-identical — and at a different
    // thread count, which must not matter.
    let (warm, err) = run_grid(&base, &["--threads", "7"]);
    assert!(
        err.contains("8 cells, 8 cached, 0 computed, 0 pending"),
        "{err}"
    );
    assert_eq!(warm, reference);

    // The store passes its own integrity check afterwards.
    let (verify, _) = run_ok(&["store", "verify", "--store", store.to_str().unwrap()]);
    assert!(verify.contains("0 problems"), "{verify}");

    std::fs::remove_dir_all(&ref_store).ok();
    std::fs::remove_dir_all(&store).ok();
}

#[test]
fn sigkilled_sweep_resumes_from_its_journal() {
    let ref_store = scratch_dir("kill-ref");
    let base_ref = grid_args(ref_store.to_str().unwrap());
    let (reference, _) = run_grid(&base_ref, &["--jobs", "400"]);

    // Start the same sweep against a fresh store and SIGKILL it mid-run. The
    // journal is flushed per completed cell, so whatever finished before the
    // kill is durable; how much that is depends on timing and does not matter.
    let store = scratch_dir("kill");
    let base = grid_args(store.to_str().unwrap());
    let mut args: Vec<&str> = base.iter().map(String::as_str).collect();
    args.extend_from_slice(&["--jobs", "400"]);
    let mut child = Command::new(env!("CARGO_BIN_EXE_psbench"))
        .args(&args)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("psbench spawns");
    std::thread::sleep(std::time::Duration::from_millis(250));
    child.kill().ok(); // SIGKILL: no destructors, no flush beyond the journal's own
    child.wait().ok();

    // Resume to completion: byte-identical to the uninterrupted reference.
    let (resumed, _) = run_grid(&base, &["--jobs", "400"]);
    assert_eq!(
        resumed, reference,
        "report after a SIGKILL + resume must match an uninterrupted sweep"
    );

    // And the store is now fully warm: a re-run computes nothing.
    let (warm, err) = run_grid(&base, &["--jobs", "400"]);
    assert!(err.contains("8 cached, 0 computed, 0 pending"), "{err}");
    assert_eq!(warm, reference);

    std::fs::remove_dir_all(&ref_store).ok();
    std::fs::remove_dir_all(&store).ok();
}
