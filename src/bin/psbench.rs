//! `psbench` — the command-line front-end of the workspace.
//!
//! Wires the full swf → workload → sim → sched → metrics → analyze pipeline
//! end to end:
//!
//! ```text
//! psbench stats    <INPUT>                  characterize a workload trace
//! psbench compare  <REFERENCE> <CANDIDATE>  score a workload against a reference (KS/EMD)
//! psbench validate <INPUT>                  check SWF conformance
//! psbench convert  --dialect <D> <RAWFILE>  convert a raw accounting log to SWF
//! psbench simulate <INPUT> [--scheduler S]  run a trace through a scheduler
//! psbench sweep    [ID...|all]              run experiments E1..E10
//! ```
//!
//! An `<INPUT>` is either a path to an SWF file or a model spec
//! `model:<name>` (`feitelson96`, `jann97`, `downey97`, `lublin99`,
//! `sessions`), generated with `--jobs`, `--seed` and `--machine`. Every
//! input is consumed through the streaming `JobSource` API: files parse
//! incrementally and `stats`/`compare` profile them in bounded memory, so a
//! multi-million-job archive log needs O(chunk) rather than O(log) space.
//! Reports are rendered deterministically: the same inputs produce
//! byte-identical output for any `--threads` value and for the streaming and
//! `--materialize`d paths alike.

use psbench::analyze::{json_escape, render_fidelity, render_profile, FidelityReport, Format};
use psbench::core::{
    default_threads, fmt, profile_parallel, profile_source_parallel, run_experiment, Scale, Table,
    WorkloadKind,
};
use psbench::sched::{by_name, scheduler_names};
use psbench::sim::{SimConfig, SimJob, Simulation};
use psbench::swf::{
    convert, validate, validate_source, write_to, ConvertOptions, Dialect, JobSource, ParseError,
    ParseOptions, RecordIter, SourceMeta, SwfRecord,
};
use psbench::workload::GeneratedStream;
use std::io::BufReader;
use std::process::ExitCode;

/// The usage text, with the live scheduler registry folded in.
fn usage() -> String {
    format!(
        "\
psbench — benchmarks and standards for the evaluation of parallel job schedulers

USAGE:
    psbench <SUBCOMMAND> [ARGS] [OPTIONS]

SUBCOMMANDS:
    stats    <INPUT>                   characterize a workload (marginals, cycles, users);
                                       file inputs stream in bounded memory
    compare  <REFERENCE> <CANDIDATE>   KS/EMD/chi2/AD fidelity of a workload vs a reference trace
    validate <INPUT>                   check conformance to the SWF standard,
                                       streaming in bounded memory
    convert  --dialect <D> <RAWFILE>   convert a raw accounting log to SWF
                                       (dialects: nasa-ipsc860, sdsc-paragon, ctc-sp2, lanl-cm5)
    simulate <INPUT>                   run a trace through a scheduler, report metrics
    sweep    [ID ... | all]            run experiments E1..E10 (default: all)

INPUTS:
    Either a path to an SWF file, or `model:<name>` with <name> one of
    feitelson96, jann97, downey97, lublin99, sessions — generated on the fly
    from --jobs / --seed / --machine. Both are consumed through the streaming
    JobSource API; archive files are never materialized whole.

OPTIONS:
    --jobs <N>        jobs to generate for model inputs        [default: 1000]
    --seed <N>        RNG seed for model inputs                [default: 1]
    --machine <N>     machine size in processors               [default: 128]
    --format <F>      output format: md, csv, json             [default: md]
    --threads <N>     analysis worker threads                  [default: all hardware threads]
    --scheduler <S>   scheduler for `simulate`                 [default: easy]
                      one of: {schedulers}
    --dialect <D>     raw-log dialect for `convert`
    --scale <S>       experiment scale for `sweep`: quick|full [default: quick]
    --out <FILE>      write the report to FILE instead of stdout
    --strict          strict parsing / conversion
    --materialize     collect the input into memory before analysis (debugging
                      aid; output is byte-identical to the streaming path)
    -h, --help        print this help
",
        schedulers = scheduler_names().join(", ")
    )
}

/// Parsed command-line options shared by all subcommands.
struct Opts {
    positional: Vec<String>,
    jobs: usize,
    seed: u64,
    machine: u32,
    format: Format,
    threads: usize,
    scheduler: String,
    dialect: Option<String>,
    scale: String,
    out: Option<String>,
    strict: bool,
    materialize: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        positional: Vec::new(),
        jobs: 1000,
        seed: 1,
        machine: 128,
        format: Format::Markdown,
        threads: default_threads(),
        scheduler: "easy".to_string(),
        dialect: None,
        scale: "quick".to_string(),
        out: None,
        strict: false,
        materialize: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match arg.as_str() {
            "--jobs" => opts.jobs = num(&value("--jobs")?)?,
            "--seed" => opts.seed = num(&value("--seed")?)?,
            "--machine" => opts.machine = num(&value("--machine")?)?,
            "--threads" => opts.threads = num::<usize>(&value("--threads")?)?.max(1),
            "--format" => {
                let v = value("--format")?;
                opts.format = Format::parse(&v).ok_or_else(|| format!("unknown format {v:?}"))?;
            }
            "--scheduler" => opts.scheduler = value("--scheduler")?,
            "--dialect" => opts.dialect = Some(value("--dialect")?),
            "--scale" => opts.scale = value("--scale")?,
            "--out" => opts.out = Some(value("--out")?),
            "--strict" => opts.strict = true,
            "--materialize" => opts.materialize = true,
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            other => opts.positional.push(other.to_string()),
        }
    }
    if opts.machine == 0 {
        return Err("--machine must be at least 1 processor".to_string());
    }
    Ok(opts)
}

fn num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid number {s:?}"))
}

/// Resolve an input spec — `model:<name>` or a file path — into a streaming
/// [`JobSource`]: the one ingestion path every subcommand shares. Model specs
/// become lazy [`GeneratedStream`]s; files are parsed incrementally by
/// [`RecordIter`], so archive logs are never read or materialized whole.
fn open_source(spec: &str, opts: &Opts) -> Result<Box<dyn JobSource>, String> {
    if let Some(name) = spec.strip_prefix("model:") {
        let kind = WorkloadKind::all()
            .iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| {
                format!(
                    "unknown model {name:?}; expected one of {}",
                    WorkloadKind::all()
                        .iter()
                        .map(|k| k.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })?;
        let stream =
            GeneratedStream::new(kind.model(opts.machine), opts.jobs, opts.seed).with_name(spec);
        return Ok(Box::new(stream));
    }
    let file = std::fs::File::open(spec).map_err(|e| format!("cannot read {spec:?}: {e}"))?;
    let parse_opts = if opts.strict {
        ParseOptions::strict()
    } else {
        ParseOptions::default()
    };
    let name = std::path::Path::new(spec)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(spec)
        .to_string();
    Ok(Box::new(
        RecordIter::new(BufReader::new(file), parse_opts).with_name(name),
    ))
}

/// Render a mid-stream parse failure of input `spec` as a CLI error.
fn stream_err(spec: &str) -> impl Fn(ParseError) -> String + '_ {
    move |e| format!("cannot parse {spec:?}: {e}")
}

/// A pass-through [`JobSource`] adapter that records the largest processor
/// count seen, so `simulate` can size the machine from a drained stream the
/// way `SwfLog::machine_size` does from a materialized log.
struct MaxProcsTap<S> {
    inner: S,
    max_procs: u32,
}

impl<S: JobSource> JobSource for MaxProcsTap<S> {
    fn meta(&self) -> &SourceMeta {
        self.inner.meta()
    }

    fn next_record(&mut self) -> Option<Result<SwfRecord, ParseError>> {
        let rec = self.inner.next_record();
        if let Some(Ok(r)) = &rec {
            if let Some(p) = r.procs() {
                self.max_procs = self.max_procs.max(p);
            }
        }
        rec
    }
}

/// Render a harness table in the CLI's output format.
fn render_table(table: &Table, format: Format) -> String {
    match format {
        Format::Markdown => table.to_markdown(),
        Format::Csv => table.to_csv(),
        Format::Json => {
            let mut out = String::new();
            out.push_str("{\"title\":\"");
            out.push_str(&json_escape(&table.title));
            out.push_str("\",\"headers\":[");
            for (i, h) in table.headers.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&json_escape(h));
                out.push('"');
            }
            out.push_str("],\"rows\":[");
            for (i, row) in table.rows.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                for (j, cell) in row.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&json_escape(cell));
                    out.push('"');
                }
                out.push(']');
            }
            out.push_str("]}");
            out
        }
    }
}

fn emit(opts: &Opts, content: &str) -> Result<(), String> {
    match &opts.out {
        Some(path) => {
            std::fs::write(path, content).map_err(|e| format!("cannot write {path:?}: {e}"))
        }
        None => {
            print!("{content}");
            Ok(())
        }
    }
}

/// Profile one input through the streaming path (bounded memory), or through
/// an explicitly materialized log when `--materialize` is given. Both paths
/// produce byte-identical reports; CI asserts it.
fn profile_input(spec: &str, opts: &Opts) -> Result<psbench::analyze::WorkloadProfile, String> {
    let source = open_source(spec, opts)?;
    if opts.materialize {
        let name = source.meta().name.clone();
        let log = source.collect_log().map_err(stream_err(spec))?;
        Ok(profile_parallel(&name, &log, opts.threads))
    } else {
        profile_source_parallel(source, opts.threads).map_err(stream_err(spec))
    }
}

fn cmd_stats(opts: &Opts) -> Result<ExitCode, String> {
    let spec = opts
        .positional
        .first()
        .ok_or("stats expects an <INPUT> (file path or model:<name>)")?;
    let profile = profile_input(spec, opts)?;
    emit(opts, &render_profile(&profile, opts.format))?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_compare(opts: &Opts) -> Result<ExitCode, String> {
    let [reference, candidate] = opts.positional.as_slice() else {
        return Err("compare expects exactly <REFERENCE> and <CANDIDATE> inputs".to_string());
    };
    let ref_profile = profile_input(reference, opts)?;
    let cand_profile = profile_input(candidate, opts)?;
    let report = FidelityReport::compare(&ref_profile, &cand_profile);
    emit(opts, &render_fidelity(&report, opts.format))?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_validate(opts: &Opts) -> Result<ExitCode, String> {
    let spec = opts
        .positional
        .first()
        .ok_or("validate expects an <INPUT> (file path or model:<name>)")?;
    let source = open_source(spec, opts)?;
    let name = source.meta().name.clone();
    // The per-record rules run incrementally over the stream; only the
    // minimal cross-record state (summary ids and runtimes, partial sums,
    // unresolved dependency references) is retained, so archive-scale logs
    // validate in bounded memory. `--materialize` keeps the collect-then-
    // validate route as an A/B debugging aid; both produce the same report.
    let report = if opts.materialize {
        let log = source.collect_log().map_err(stream_err(spec))?;
        validate(&log)
    } else {
        validate_source(source).map_err(stream_err(spec))?
    };
    let mut table = Table::new(
        format!("SWF conformance — {name}"),
        &["records", "violations", "clean?"],
    );
    table.push_row(vec![
        report.records.to_string(),
        report.violations.len().to_string(),
        report.is_clean().to_string(),
    ]);
    let mut out = render_table(&table, opts.format);
    if !report.is_clean() && opts.format != Format::Json {
        out.push('\n');
        for v in report.violations.iter().take(20) {
            out.push_str(&format!("violation: {v:?}\n"));
        }
        if report.violations.len() > 20 {
            out.push_str(&format!("... and {} more\n", report.violations.len() - 20));
        }
    }
    emit(opts, &out)?;
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_convert(opts: &Opts) -> Result<ExitCode, String> {
    let spec = opts
        .positional
        .first()
        .ok_or("convert expects a <RAWFILE> path")?;
    let dialect_name = opts
        .dialect
        .as_deref()
        .ok_or("convert requires --dialect <D>")?;
    let dialect = Dialect::all()
        .iter()
        .find(|d| d.name() == dialect_name)
        .copied()
        .ok_or_else(|| {
            format!(
                "unknown dialect {dialect_name:?}; expected one of {}",
                Dialect::all()
                    .iter()
                    .map(|d| d.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?;
    let raw = std::fs::read_to_string(spec).map_err(|e| format!("cannot read {spec:?}: {e}"))?;
    let conversion = convert(
        &raw,
        dialect,
        Some(opts.machine),
        &ConvertOptions {
            strict: opts.strict,
        },
    )
    .map_err(|e| format!("conversion failed: {e}"))?;
    if conversion.skipped > 0 {
        eprintln!("warning: skipped {} unparseable lines", conversion.skipped);
    }
    // Stream the converted log to its sink line by line instead of building
    // the whole serialization in memory first.
    match &opts.out {
        Some(path) => {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot write {path:?}: {e}"))?;
            write_to(&conversion.log, std::io::BufWriter::new(file))
                .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        }
        None => {
            let stdout = std::io::stdout();
            write_to(&conversion.log, stdout.lock())
                .map_err(|e| format!("cannot write to stdout: {e}"))?;
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_simulate(opts: &Opts) -> Result<ExitCode, String> {
    let spec = opts
        .positional
        .first()
        .ok_or("simulate expects an <INPUT> (file path or model:<name>)")?;
    // Stream the input straight into simulator jobs — the SWF record vector
    // is never materialized. The tap records the largest processor count so
    // file inputs without a MaxNodes header still get a machine size.
    let mut tap = MaxProcsTap {
        inner: open_source(spec, opts)?,
        max_procs: 0,
    };
    // Duplicate job ids in dirty archive logs are handled by
    // SimJob::from_source itself (first record kept), matching from_log.
    let jobs = SimJob::from_source(&mut tap).map_err(stream_err(spec))?;
    let name = tap.meta().name.clone();
    let machine = if spec.starts_with("model:") {
        opts.machine
    } else {
        tap.meta().header.max_nodes.unwrap_or(tap.max_procs).max(1)
    };
    let mut scheduler = by_name(&opts.scheduler, machine).map_err(|e| e.to_string())?;
    let result = Simulation::new(SimConfig::new(machine), jobs).run(scheduler.as_mut());
    let agg = result.aggregate();
    let sys = result.system();
    let mut table = Table::new(
        format!(
            "Simulation — {name} under {} on {machine} procs",
            opts.scheduler
        ),
        &[
            "jobs",
            "mean wait [s]",
            "mean response [s]",
            "mean bounded slowdown",
            "utilization",
            "loss of capacity",
        ],
    );
    table.push_row(vec![
        agg.jobs.to_string(),
        fmt(agg.wait_time.mean),
        fmt(agg.response_time.mean),
        fmt(agg.bounded_slowdown.mean),
        fmt(sys.utilization),
        fmt(sys.loss_of_capacity),
    ]);
    emit(opts, &render_table(&table, opts.format))?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_sweep(opts: &Opts) -> Result<ExitCode, String> {
    let scale = match opts.scale.as_str() {
        "quick" => Scale::quick(),
        "full" => Scale::full(),
        other => return Err(format!("unknown scale {other:?}; expected quick or full")),
    };
    let ids: Vec<String> =
        if opts.positional.is_empty() || opts.positional.iter().any(|p| p == "all") {
            psbench::core::experiment_ids()
                .iter()
                .map(|s| s.to_string())
                .collect()
        } else {
            opts.positional.clone()
        };
    // JSON output is one document: an array with one object per experiment.
    let mut out = String::new();
    if opts.format == Format::Json {
        out.push('[');
    }
    for (i, id) in ids.iter().enumerate() {
        let table =
            run_experiment(id, scale).ok_or_else(|| format!("unknown experiment {id:?}"))?;
        if i > 0 {
            out.push(if opts.format == Format::Json {
                ','
            } else {
                '\n'
            });
        }
        out.push_str(&render_table(&table, opts.format));
        if opts.format != Format::Json {
            out.push('\n');
        }
    }
    if opts.format == Format::Json {
        out.push(']');
    }
    emit(opts, &out)?;
    Ok(ExitCode::SUCCESS)
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(sub) = args.first() else {
        return Err(String::new());
    };
    if args.iter().any(|a| a == "-h" || a == "--help") || sub == "help" {
        print!("{}", usage());
        return Ok(ExitCode::SUCCESS);
    }
    let opts = parse_opts(&args[1..])?;
    match sub.as_str() {
        "stats" => cmd_stats(&opts),
        "compare" => cmd_compare(&opts),
        "validate" => cmd_validate(&opts),
        "convert" => cmd_convert(&opts),
        "simulate" => cmd_simulate(&opts),
        "sweep" => cmd_sweep(&opts),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            if msg.is_empty() {
                eprint!("{}", usage());
            } else {
                eprintln!("error: {msg}");
                eprintln!("run `psbench --help` for usage");
            }
            ExitCode::from(2)
        }
    }
}
