//! `psbench` — the command-line front-end of the workspace.
//!
//! Wires the full swf → workload → sim → sched → metrics → analyze pipeline
//! end to end:
//!
//! ```text
//! psbench stats    <INPUT>                  characterize a workload trace
//! psbench compare  <REFERENCE> <CANDIDATE>  score a workload against a reference (KS/EMD)
//! psbench validate <INPUT>                  check SWF conformance
//! psbench convert  --dialect <D> <RAWFILE>  convert a raw accounting log to SWF
//! psbench simulate <INPUT> [--scheduler S]  run a trace through a scheduler
//! psbench metasim  [INPUT]                  sharded multi-site metasystem simulation
//! psbench sweep    [ID...|all]              run experiments E1..E10
//! psbench sweep    grid --store <DIR>       resumable, memoized grid sweep
//! psbench store    <ls|gc|verify>           inspect / maintain an artifact store
//! psbench serve    [--addr A]               online scheduling service over TCP
//! psbench client   <ADDR> [SCRIPT]          replay a protocol script against a server
//! ```
//!
//! An `<INPUT>` is either a path to an SWF file or a model spec
//! `model:<name>` (`feitelson96`, `jann97`, `downey97`, `lublin99`,
//! `sessions`), generated with `--jobs`, `--seed` and `--machine`. Every
//! input is consumed through the streaming `JobSource` API: files parse
//! incrementally and `stats`/`compare` profile them in bounded memory, so a
//! multi-million-job archive log needs O(chunk) rather than O(log) space.
//! Reports are rendered deterministically: the same inputs produce
//! byte-identical output for any `--threads` value and for the streaming and
//! `--materialize`d paths alike.
//!
//! With `--store <DIR>`, expensive artifacts are content-addressed on disk:
//! `stats` caches workload profiles by trace fingerprint, `simulate` and
//! `sweep grid` memoize simulation results by canonical input fingerprint,
//! and `convert` ingests the converted trace. Cached artifacts decode to
//! values `==` the originals, so warm reruns render byte-identical reports.

use psbench::analyze::{json_escape, render_fidelity, render_profile, FidelityReport, Format};
use psbench::core::{
    canonical_schedulers, cell_key, default_threads, fmt, profile_parallel,
    profile_source_parallel, results_table, run_experiment, run_sweep_resumable, trace_cell_key,
    GridSpec, Scale, Scenario, Table, WorkloadDef, WorkloadKind,
};
use psbench::metasim::{
    run_metasystem, standard_shard_fleet, DispatchPolicy, MetaConfig, MetaResult, SiteOutage,
};
use psbench::sched::{by_name, scheduler_names};
use psbench::serve::{run_script_with, serve, ClockMode, ServeConfig};
use psbench::sim::{SimConfig, SimJob, Simulation, SimulationResult};
use psbench::store::{fingerprint_source, key_hex, profile_key, ArtifactKind, ArtifactStore};
use psbench::swf::{
    convert, record_line, validate, validate_source, write_to, ConvertOptions, Dialect, JobSource,
    LogSource, ParseError, ParseOptions, RawStream, RecordIter, SourceMeta, SwfRecord,
};
use psbench::workload::GeneratedStream;
use std::cmp::Ordering;
use std::io::{BufReader, Write as _};
use std::process::ExitCode;

/// The usage text, with the live scheduler registry folded in.
fn usage() -> String {
    format!(
        "\
psbench — benchmarks and standards for the evaluation of parallel job schedulers

USAGE:
    psbench <SUBCOMMAND> [ARGS] [OPTIONS]

SUBCOMMANDS:
    stats    <INPUT>                   characterize a workload (marginals, cycles, users);
                                       file inputs stream in bounded memory
    compare  <REFERENCE> <CANDIDATE>   KS/EMD/chi2/AD fidelity of a workload vs a reference trace
    validate <INPUT>                   check conformance to the SWF standard,
                                       streaming in bounded memory
    convert  --dialect <D> <RAWFILE>   convert a raw accounting log to SWF, streaming
                                       (dialects: nasa-ipsc860, sdsc-paragon, ctc-sp2, lanl-cm5)
    simulate <INPUT>                   run a trace through a scheduler, report metrics
    metasim  [INPUT]                   sharded metacomputing: route one global arrival
                                       stream across --sites real engine shards under a
                                       --dispatch policy; parallel epoch advance, reports
                                       byte-identical for any --threads
    sweep    [ID ... | all]            run experiments E1..E10 (default: all)
    sweep    grid                      resumable model x scheduler x load x size x seed
                                       sweep, memoized cell by cell (requires --store)
    store    <ls | gc | verify>        list, garbage-collect, or check an artifact
                                       store (requires --store)
    serve                              run the online scheduling service: clients
                                       submit jobs, query the queue, and ask what-if
                                       questions over a newline-framed TCP protocol
    client   <ADDR> [SCRIPT]           replay a protocol script (file, or stdin when
                                       omitted) against a running server, in lockstep

INPUTS:
    Either a path to an SWF file, or `model:<name>` with <name> one of
    feitelson96, jann97, downey97, lublin99, sessions — generated on the fly
    from --jobs / --seed / --machine. Both are consumed through the streaming
    JobSource API; archive files are never materialized whole.

OPTIONS:
    --jobs <N>        jobs to generate for model inputs        [default: 1000]
    --seed <N>        RNG seed for model inputs                [default: 1]
    --machine <N>     machine size in processors               [default: 128]
    --format <F>      output format: md, csv, json             [default: md]
    --threads <N>     analysis worker threads                  [default: all hardware threads]
    --scheduler <S>   scheduler for `simulate`                 [default: easy]
                      one of: {schedulers}
    --dialect <D>     raw-log dialect for `convert`
    --scale <S>       experiment scale for `sweep`: quick|full [default: quick]
    --store <DIR>     content-addressed artifact store: caches profiles (stats),
                      memoizes results (simulate, sweep grid, metasim), ingests
                      traces (convert)
    --sites <N>       metasim: number of sites in the fleet    [default: 16]
    --dispatch <P>    metasim: cross-site dispatch policy      [default: least-pressure]
                      one of: round-robin, least-pressure, affinity, reserve
    --epoch-len <S>   metasim: epoch length in seconds         [default: 3600]
    --outages <LIST>  metasim: scheduled site outages, comma-separated
                      site:start:end triples (seconds)
    --models <LIST>   models for `sweep grid`, comma-separated [default: lublin99]
    --schedulers <L>  schedulers for `sweep grid`              [default: the canonical line-up]
    --loads <LIST>    interarrival scales for `sweep grid`     [default: 1.0]
    --sizes <LIST>    machine sizes for `sweep grid`           [default: --machine]
    --seeds <LIST>    workload seeds for `sweep grid`          [default: 1]
    --max-cells <N>   compute at most N uncached cells this run, journal them,
                      and leave the rest pending for a resume
    --out <FILE>      write the report to FILE instead of stdout
    --result-out <F>  simulate: also write the canonical encoded SimulationResult
                      to F (byte-comparable with a served session's drain payload)
    --addr <A>        serve: listen address                     [default: 127.0.0.1:7077]
    --mode <M>        serve: session clock mode afap|real|scale:<f> [default: afap]
    --max-sessions <N> serve: concurrent session cap            [default: 256]
    --state-dir <DIR> serve: write-ahead journal every session under DIR so a
                      killed server recovers them by replay on restart
    --fsync <P>       serve: journal fsync policy always|off    [default: always]
    --idle-timeout <S> serve: seconds an idle connection (or detached session)
                      is kept before timing out; 0 disables     [default: 300]
    --retries <N>     client: retry connect failures and busy servers N times
                      with exponential backoff                  [default: 0]
    --trace-out <F>   client: write the last `trace` payload to F
    --report-out <F>  client: write the last `drain` payload to F
    --strict          strict parsing / conversion
    --materialize     collect the input into memory before analysis (debugging
                      aid; output is byte-identical to the streaming path)
    -h, --help        print this help
",
        schedulers = scheduler_names().join(", ")
    )
}

/// Parsed command-line options shared by all subcommands.
struct Opts {
    positional: Vec<String>,
    jobs: usize,
    seed: u64,
    machine: u32,
    format: Format,
    threads: usize,
    scheduler: String,
    dialect: Option<String>,
    scale: String,
    store: Option<String>,
    models: Option<String>,
    grid_schedulers: Option<String>,
    loads: Option<String>,
    sizes: Option<String>,
    seeds: Option<String>,
    max_cells: Option<usize>,
    sites: usize,
    dispatch: String,
    epoch_len: f64,
    outages: Option<String>,
    out: Option<String>,
    strict: bool,
    materialize: bool,
    result_out: Option<String>,
    addr: Option<String>,
    mode: String,
    max_sessions: usize,
    state_dir: Option<String>,
    fsync: String,
    idle_timeout: u64,
    retries: u32,
    trace_out: Option<String>,
    report_out: Option<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        positional: Vec::new(),
        jobs: 1000,
        seed: 1,
        machine: 128,
        format: Format::Markdown,
        threads: default_threads(),
        scheduler: "easy".to_string(),
        dialect: None,
        scale: "quick".to_string(),
        store: None,
        models: None,
        grid_schedulers: None,
        loads: None,
        sizes: None,
        seeds: None,
        max_cells: None,
        sites: 16,
        dispatch: "least-pressure".to_string(),
        epoch_len: 3600.0,
        outages: None,
        out: None,
        strict: false,
        materialize: false,
        result_out: None,
        addr: None,
        mode: "afap".to_string(),
        max_sessions: 256,
        state_dir: None,
        fsync: "always".to_string(),
        idle_timeout: 300,
        retries: 0,
        trace_out: None,
        report_out: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match arg.as_str() {
            "--jobs" => opts.jobs = num(&value("--jobs")?)?,
            "--seed" => opts.seed = num(&value("--seed")?)?,
            "--machine" => opts.machine = num(&value("--machine")?)?,
            "--threads" => opts.threads = num::<usize>(&value("--threads")?)?.max(1),
            "--format" => {
                let v = value("--format")?;
                opts.format = Format::parse(&v).ok_or_else(|| format!("unknown format {v:?}"))?;
            }
            "--scheduler" => opts.scheduler = value("--scheduler")?,
            "--dialect" => opts.dialect = Some(value("--dialect")?),
            "--scale" => opts.scale = value("--scale")?,
            "--store" => opts.store = Some(value("--store")?),
            "--models" => opts.models = Some(value("--models")?),
            "--schedulers" => opts.grid_schedulers = Some(value("--schedulers")?),
            "--loads" => opts.loads = Some(value("--loads")?),
            "--sizes" => opts.sizes = Some(value("--sizes")?),
            "--seeds" => opts.seeds = Some(value("--seeds")?),
            "--max-cells" => opts.max_cells = Some(num(&value("--max-cells")?)?),
            "--sites" => opts.sites = num::<usize>(&value("--sites")?)?.max(1),
            "--dispatch" => opts.dispatch = value("--dispatch")?,
            "--epoch-len" => opts.epoch_len = num(&value("--epoch-len")?)?,
            "--outages" => opts.outages = Some(value("--outages")?),
            "--out" => opts.out = Some(value("--out")?),
            "--result-out" => opts.result_out = Some(value("--result-out")?),
            "--addr" => opts.addr = Some(value("--addr")?),
            "--mode" => opts.mode = value("--mode")?,
            "--max-sessions" => opts.max_sessions = num::<usize>(&value("--max-sessions")?)?.max(1),
            "--state-dir" => opts.state_dir = Some(value("--state-dir")?),
            "--fsync" => opts.fsync = value("--fsync")?,
            "--idle-timeout" => opts.idle_timeout = num(&value("--idle-timeout")?)?,
            "--retries" => opts.retries = num(&value("--retries")?)?,
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--report-out" => opts.report_out = Some(value("--report-out")?),
            "--strict" => opts.strict = true,
            "--materialize" => opts.materialize = true,
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            other => opts.positional.push(other.to_string()),
        }
    }
    if opts.machine == 0 {
        return Err("--machine must be at least 1 processor".to_string());
    }
    Ok(opts)
}

fn num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid number {s:?}"))
}

/// Parse one comma-separated list flag, rejecting blank entries and empty lists.
fn parse_list<T>(list: &str, f: impl Fn(&str) -> Result<T, String>) -> Result<Vec<T>, String> {
    let items: Vec<T> = list
        .split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(f)
        .collect::<Result<_, _>>()?;
    if items.is_empty() {
        return Err(format!("empty list {list:?}"));
    }
    Ok(items)
}

/// The display name an input spec resolves to (model specs keep the spec,
/// files use their stem) — computable without opening the input, which the
/// store-backed paths need when they serve a cached artifact.
fn input_name(spec: &str) -> String {
    if spec.starts_with("model:") {
        spec.to_string()
    } else {
        std::path::Path::new(spec)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or(spec)
            .to_string()
    }
}

/// Resolve an input spec — `model:<name>` or a file path — into a streaming
/// [`JobSource`]: the one ingestion path every subcommand shares. Model specs
/// become lazy [`GeneratedStream`]s; files are parsed incrementally by
/// [`RecordIter`], so archive logs are never read or materialized whole.
fn open_source(spec: &str, opts: &Opts) -> Result<Box<dyn JobSource>, String> {
    if let Some(name) = spec.strip_prefix("model:") {
        let kind = WorkloadKind::by_name(name).ok_or_else(|| {
            format!(
                "unknown model {name:?}; expected one of {}",
                WorkloadKind::all()
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?;
        let stream =
            GeneratedStream::new(kind.model(opts.machine), opts.jobs, opts.seed).with_name(spec);
        return Ok(Box::new(stream));
    }
    let file = std::fs::File::open(spec).map_err(|e| format!("cannot read {spec:?}: {e}"))?;
    let parse_opts = if opts.strict {
        ParseOptions::strict()
    } else {
        ParseOptions::default()
    };
    Ok(Box::new(
        RecordIter::new(BufReader::new(file), parse_opts).with_name(input_name(spec)),
    ))
}

/// Open the artifact store named by `--store`, if any.
fn open_store(opts: &Opts) -> Result<Option<ArtifactStore>, String> {
    match &opts.store {
        Some(dir) => ArtifactStore::open(dir)
            .map(Some)
            .map_err(|e| format!("cannot open store {dir:?}: {e}")),
        None => Ok(None),
    }
}

/// Render a store I/O failure as a CLI error.
fn store_err(e: std::io::Error) -> String {
    format!("artifact store error: {e}")
}

/// Render a mid-stream parse failure of input `spec` as a CLI error.
fn stream_err(spec: &str) -> impl Fn(ParseError) -> String + '_ {
    move |e| format!("cannot parse {spec:?}: {e}")
}

/// A pass-through [`JobSource`] adapter that records the largest processor
/// count seen, so `simulate` can size the machine from a drained stream the
/// way `SwfLog::machine_size` does from a materialized log.
struct MaxProcsTap<S> {
    inner: S,
    max_procs: u32,
}

impl<S: JobSource> JobSource for MaxProcsTap<S> {
    fn meta(&self) -> &SourceMeta {
        self.inner.meta()
    }

    fn next_record(&mut self) -> Option<Result<SwfRecord, ParseError>> {
        let rec = self.inner.next_record();
        if let Some(Ok(r)) = &rec {
            if let Some(p) = r.procs() {
                self.max_procs = self.max_procs.max(p);
            }
        }
        rec
    }
}

/// Render a harness table in the CLI's output format.
fn render_table(table: &Table, format: Format) -> String {
    match format {
        Format::Markdown => table.to_markdown(),
        Format::Csv => table.to_csv(),
        Format::Json => {
            let mut out = String::new();
            out.push_str("{\"title\":\"");
            out.push_str(&json_escape(&table.title));
            out.push_str("\",\"headers\":[");
            for (i, h) in table.headers.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&json_escape(h));
                out.push('"');
            }
            out.push_str("],\"rows\":[");
            for (i, row) in table.rows.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                for (j, cell) in row.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&json_escape(cell));
                    out.push('"');
                }
                out.push(']');
            }
            out.push_str("]}");
            out
        }
    }
}

fn emit(opts: &Opts, content: &str) -> Result<(), String> {
    match &opts.out {
        Some(path) => {
            std::fs::write(path, content).map_err(|e| format!("cannot write {path:?}: {e}"))
        }
        None => {
            print!("{content}");
            Ok(())
        }
    }
}

/// Profile one input through the streaming path (bounded memory), or through
/// an explicitly materialized log when `--materialize` is given. Both paths
/// produce byte-identical reports; CI asserts it.
fn profile_input(spec: &str, opts: &Opts) -> Result<psbench::analyze::WorkloadProfile, String> {
    let source = open_source(spec, opts)?;
    if opts.materialize {
        let name = source.meta().name.clone();
        let log = source.collect_log().map_err(stream_err(spec))?;
        Ok(profile_parallel(&name, &log, opts.threads))
    } else {
        profile_source_parallel(source, opts.threads).map_err(stream_err(spec))
    }
}

fn cmd_stats(opts: &Opts) -> Result<ExitCode, String> {
    let spec = opts
        .positional
        .first()
        .ok_or("stats expects an <INPUT> (file path or model:<name>)")?;
    // With a store, the profile is content-addressed: a first pass fingerprints
    // the input in bounded memory, then the profile is either decoded from the
    // store or computed once and published. A cached profile carries the name
    // of whatever input first produced it, so the display name is rewritten to
    // this invocation's before rendering — the rest of the profile is a pure
    // function of the trace content.
    let profile = match open_store(opts)? {
        Some(store) => {
            let fp = fingerprint_source(open_source(spec, opts)?).map_err(stream_err(spec))?;
            let key = profile_key(fp);
            match store.get_profile(key).map_err(store_err)? {
                Some(mut cached) => {
                    eprintln!("profile cache hit ({})", key_hex(key));
                    cached.name = input_name(spec);
                    cached
                }
                None => {
                    let profile = profile_input(spec, opts)?;
                    store.put_profile(key, &profile).map_err(store_err)?;
                    profile
                }
            }
        }
        None => profile_input(spec, opts)?,
    };
    emit(opts, &render_profile(&profile, opts.format))?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_compare(opts: &Opts) -> Result<ExitCode, String> {
    let [reference, candidate] = opts.positional.as_slice() else {
        return Err("compare expects exactly <REFERENCE> and <CANDIDATE> inputs".to_string());
    };
    let ref_profile = profile_input(reference, opts)?;
    let cand_profile = profile_input(candidate, opts)?;
    let report = FidelityReport::compare(&ref_profile, &cand_profile);
    emit(opts, &render_fidelity(&report, opts.format))?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_validate(opts: &Opts) -> Result<ExitCode, String> {
    let spec = opts
        .positional
        .first()
        .ok_or("validate expects an <INPUT> (file path or model:<name>)")?;
    let source = open_source(spec, opts)?;
    let name = source.meta().name.clone();
    // The per-record rules run incrementally over the stream; only the
    // minimal cross-record state (summary ids and runtimes, partial sums,
    // unresolved dependency references) is retained, so archive-scale logs
    // validate in bounded memory. `--materialize` keeps the collect-then-
    // validate route as an A/B debugging aid; both produce the same report.
    let report = if opts.materialize {
        let log = source.collect_log().map_err(stream_err(spec))?;
        validate(&log)
    } else {
        validate_source(source).map_err(stream_err(spec))?
    };
    let mut table = Table::new(
        format!("SWF conformance — {name}"),
        &["records", "violations", "clean?"],
    );
    table.push_row(vec![
        report.records.to_string(),
        report.violations.len().to_string(),
        report.is_clean().to_string(),
    ]);
    let mut out = render_table(&table, opts.format);
    if !report.is_clean() && opts.format != Format::Json {
        out.push('\n');
        for v in report.violations.iter().take(20) {
            out.push_str(&format!("violation: {v:?}\n"));
        }
        if report.violations.len() > 20 {
            out.push_str(&format!("... and {} more\n", report.violations.len() - 20));
        }
    }
    emit(opts, &out)?;
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn warn_skipped(skipped: usize) {
    if skipped > 0 {
        eprintln!("warning: skipped {skipped} unparseable lines");
    }
}

/// Announce an ingested trace on stderr, keeping stdout clean for the log.
fn report_ingest(outcome: &psbench::store::IngestOutcome) {
    eprintln!(
        "stored trace {} ({} records{})",
        key_hex(outcome.key),
        outcome.records,
        if outcome.deduplicated {
            ", deduplicated"
        } else {
            ""
        }
    );
}

fn cmd_convert(opts: &Opts) -> Result<ExitCode, String> {
    let spec = opts
        .positional
        .first()
        .ok_or("convert expects a <RAWFILE> path")?;
    let dialect_name = opts
        .dialect
        .as_deref()
        .ok_or("convert requires --dialect <D>")?;
    let dialect = Dialect::all()
        .iter()
        .find(|d| d.name() == dialect_name)
        .copied()
        .ok_or_else(|| {
            format!(
                "unknown dialect {dialect_name:?}; expected one of {}",
                Dialect::all()
                    .iter()
                    .map(|d| d.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?;
    let convert_opts = ConvertOptions {
        strict: opts.strict,
    };
    let store = open_store(opts)?;
    if opts.materialize {
        // Collect-then-convert: the A/B debugging aid. Output is
        // byte-identical to the streaming default below; CI asserts it.
        let raw =
            std::fs::read_to_string(spec).map_err(|e| format!("cannot read {spec:?}: {e}"))?;
        let conversion = convert(&raw, dialect, Some(opts.machine), &convert_opts)
            .map_err(|e| format!("conversion failed: {e}"))?;
        warn_skipped(conversion.skipped);
        if let Some(store) = &store {
            let outcome = store
                .ingest(LogSource::new(input_name(spec), &conversion.log))
                .map_err(|e| format!("cannot ingest converted log: {e}"))?;
            report_ingest(&outcome);
        }
        match &opts.out {
            Some(path) => {
                let file = std::fs::File::create(path)
                    .map_err(|e| format!("cannot write {path:?}: {e}"))?;
                write_to(&conversion.log, std::io::BufWriter::new(file))
                    .map_err(|e| format!("cannot write {path:?}: {e}"))?;
            }
            None => {
                let stdout = std::io::stdout();
                write_to(&conversion.log, stdout.lock())
                    .map_err(|e| format!("cannot write to stdout: {e}"))?;
            }
        }
        return Ok(ExitCode::SUCCESS);
    }
    // Streaming conversion (the default): the header is known up front, so
    // raw lines flow straight to clean SWF lines in bounded memory — the log
    // is never materialized, whatever its size.
    let file = std::fs::File::open(spec).map_err(|e| format!("cannot read {spec:?}: {e}"))?;
    let mut stream = RawStream::new(
        input_name(spec),
        BufReader::new(file),
        dialect,
        opts.machine,
        &convert_opts,
    );
    if let Some(store) = &store {
        // Ingest drains the stream into the store, fingerprinting as it goes;
        // the output sink is then fed from the stored artifact instead of
        // converting a second time.
        let outcome = store
            .ingest(&mut stream)
            .map_err(|e| format!("conversion failed: {e}"))?;
        warn_skipped(stream.report().skipped);
        report_ingest(&outcome);
        let stored = store.path(ArtifactKind::Trace, outcome.key);
        match &opts.out {
            Some(path) => {
                std::fs::copy(&stored, path).map_err(|e| format!("cannot write {path:?}: {e}"))?;
            }
            None => {
                let mut file = std::fs::File::open(&stored)
                    .map_err(|e| format!("cannot reopen stored trace: {e}"))?;
                let stdout = std::io::stdout();
                std::io::copy(&mut file, &mut stdout.lock())
                    .map_err(|e| format!("cannot write to stdout: {e}"))?;
            }
        }
        return Ok(ExitCode::SUCCESS);
    }
    let header_lines = stream.meta().header.render();
    let sink: Box<dyn std::io::Write> = match &opts.out {
        Some(path) => Box::new(
            std::fs::File::create(path).map_err(|e| format!("cannot write {path:?}: {e}"))?,
        ),
        None => Box::new(std::io::stdout()),
    };
    let mut sink = std::io::BufWriter::new(sink);
    let write_err = |e: std::io::Error| format!("cannot write converted log: {e}");
    for line in header_lines {
        writeln!(sink, "{line}").map_err(write_err)?;
    }
    while let Some(rec) = stream.next_record() {
        let rec = rec.map_err(|e| format!("conversion failed: {e}"))?;
        writeln!(sink, "{}", record_line(&rec)).map_err(write_err)?;
    }
    sink.flush().map_err(write_err)?;
    warn_skipped(stream.report().skipped);
    Ok(ExitCode::SUCCESS)
}

/// Stream `spec` into the simulator with no store: jobs flow straight from
/// the source, the SWF record vector is never materialized. Returns the
/// display name, the machine size used, and the result.
fn simulate_streaming(spec: &str, opts: &Opts) -> Result<(String, u32, SimulationResult), String> {
    // The tap records the largest processor count so file inputs without a
    // MaxNodes header still get a machine size.
    let mut tap = MaxProcsTap {
        inner: open_source(spec, opts)?,
        max_procs: 0,
    };
    // Duplicate job ids in dirty archive logs are handled by
    // SimJob::from_source itself (first record kept), matching from_log.
    let jobs = SimJob::from_source(&mut tap).map_err(stream_err(spec))?;
    let name = tap.meta().name.clone();
    let machine = if spec.starts_with("model:") {
        opts.machine
    } else {
        tap.meta().header.max_nodes.unwrap_or(tap.max_procs).max(1)
    };
    let mut scheduler = by_name(&opts.scheduler, machine).map_err(|e| e.to_string())?;
    let result = Simulation::new(SimConfig::new(machine), jobs).run(scheduler.as_mut());
    Ok((name, machine, result))
}

/// Memoized simulate: key the run by its canonical input fingerprint — the
/// sweep cell key for model specs (so `sweep grid` and `simulate` share a
/// cache) or trace fingerprint × scheduler × machine for files — and serve a
/// stored result when one exists. Cache misses run the identical streaming
/// path and publish the result.
fn simulate_memoized(
    spec: &str,
    opts: &Opts,
    store: &ArtifactStore,
) -> Result<(String, u32, SimulationResult), String> {
    let (key, machine) = if spec.starts_with("model:") {
        // Validates the model name with open_source's standard error.
        drop(open_source(spec, opts)?);
        let kind = WorkloadKind::by_name(spec.trim_start_matches("model:"))
            .expect("model name validated by open_source");
        let workload = WorkloadDef {
            kind,
            machine_size: opts.machine,
            jobs: opts.jobs,
            seed: opts.seed,
            interarrival_scale: 1.0,
        };
        let scenario = Scenario::new(spec, workload, &opts.scheduler);
        (cell_key(&scenario), opts.machine)
    } else {
        // Fingerprint pass: drains the file once to learn its content key and
        // machine size, sized exactly as the uncached path sizes it.
        let mut tap = MaxProcsTap {
            inner: open_source(spec, opts)?,
            max_procs: 0,
        };
        let fp = fingerprint_source(&mut tap).map_err(stream_err(spec))?;
        let machine = tap.meta().header.max_nodes.unwrap_or(tap.max_procs).max(1);
        (trace_cell_key(fp, &opts.scheduler, machine, false), machine)
    };
    by_name(&opts.scheduler, machine).map_err(|e| e.to_string())?;
    if let Some(result) = store.get_result(key).map_err(store_err)? {
        eprintln!("result cache hit ({})", key_hex(key));
        return Ok((input_name(spec), machine, result));
    }
    let (name, machine, result) = simulate_streaming(spec, opts)?;
    store.put_result(key, &result).map_err(store_err)?;
    Ok((name, machine, result))
}

fn cmd_simulate(opts: &Opts) -> Result<ExitCode, String> {
    let spec = opts
        .positional
        .first()
        .ok_or("simulate expects an <INPUT> (file path or model:<name>)")?;
    let (name, machine, result) = match open_store(opts)? {
        Some(store) => simulate_memoized(spec, opts, &store)?,
        None => simulate_streaming(spec, opts)?,
    };
    let agg = result.aggregate();
    let sys = result.system();
    let mut table = Table::new(
        format!(
            "Simulation — {name} under {} on {machine} procs",
            opts.scheduler
        ),
        &[
            "jobs",
            "mean wait [s]",
            "mean response [s]",
            "mean bounded slowdown",
            "utilization",
            "loss of capacity",
        ],
    );
    table.push_row(vec![
        agg.jobs.to_string(),
        fmt(agg.wait_time.mean),
        fmt(agg.response_time.mean),
        fmt(agg.bounded_slowdown.mean),
        fmt(sys.utilization),
        fmt(sys.loss_of_capacity),
    ]);
    emit(opts, &render_table(&table, opts.format))?;
    if let Some(path) = &opts.result_out {
        std::fs::write(path, psbench::store::encode_result(&result))
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
    }
    Ok(ExitCode::SUCCESS)
}

/// Parse the `--outages` list: comma-separated `site:start:end` triples.
fn parse_outage_list(list: &str) -> Result<Vec<SiteOutage>, String> {
    parse_list(list, |item| {
        let parts: Vec<&str> = item.split(':').collect();
        let [site, start, end] = parts.as_slice() else {
            return Err(format!("bad outage {item:?}; expected site:start:end"));
        };
        let outage = SiteOutage {
            site: num(site)?,
            start: num(start)?,
            end: num(end)?,
        };
        let well_ordered = outage.end.partial_cmp(&outage.start) == Some(Ordering::Greater);
        if !well_ordered {
            return Err(format!("outage {item:?} must end after it starts"));
        }
        Ok(outage)
    })
}

/// `psbench metasim`: route one global arrival stream across a fleet of
/// engine shards under a cross-site dispatch policy. The input must be a
/// model spec (`model:<name>`, default `model:lublin99`); its interarrivals
/// are compressed by `1/--sites` so the offered load scales with the fleet.
/// With `--store`, runs are memoized under the canonical
/// (workload, fleet, dispatch, config) cell key and warm reruns render
/// byte-identical reports. Timing goes to stderr, never into the report.
fn cmd_metasim(opts: &Opts) -> Result<ExitCode, String> {
    let default_spec = "model:lublin99".to_string();
    let spec = opts.positional.first().unwrap_or(&default_spec);
    let name = spec
        .strip_prefix("model:")
        .ok_or("metasim expects a model input (model:<name>)")?;
    let kind = WorkloadKind::by_name(name).ok_or_else(|| {
        format!(
            "unknown model {name:?}; expected one of {}",
            WorkloadKind::all()
                .iter()
                .map(|k| k.name())
                .collect::<Vec<_>>()
                .join(", ")
        )
    })?;
    let dispatch = DispatchPolicy::parse(&opts.dispatch).ok_or_else(|| {
        format!(
            "unknown dispatch policy {:?}; expected one of {}",
            opts.dispatch,
            DispatchPolicy::all()
                .iter()
                .map(|p| p.name())
                .collect::<Vec<_>>()
                .join(", ")
        )
    })?;
    if opts.epoch_len <= 0.0 {
        return Err("--epoch-len must be positive".to_string());
    }
    let specs = standard_shard_fleet(opts.sites, &opts.scheduler);
    by_name(&opts.scheduler, opts.machine).map_err(|e| e.to_string())?;
    let outages = match &opts.outages {
        Some(list) => parse_outage_list(list)?,
        None => Vec::new(),
    };
    let cfg = MetaConfig::new(dispatch)
        .with_epoch_len(opts.epoch_len)
        .with_threads(opts.threads)
        .with_outages(outages);

    // One global arrival stream, compressed so offered load tracks fleet
    // size: a 16-site metasystem sees 16x the arrival rate of one machine.
    let workload = WorkloadDef {
        kind,
        machine_size: opts.machine,
        jobs: opts.jobs,
        seed: opts.seed,
        interarrival_scale: 1.0 / opts.sites as f64,
    };
    let run = || -> Result<MetaResult, String> {
        let mut jobs = SimJob::from_log(&workload.generate());
        // The metasystem routes an open-loop stream of unique ids below the
        // migration band; model streams satisfy this after renumbering.
        for (i, job) in jobs.iter_mut().enumerate() {
            job.id = i as u64 + 1;
            job.preceding = None;
            job.think_time = 0.0;
        }
        let started = std::time::Instant::now();
        let meta = run_metasystem(&specs, &jobs, &cfg).map_err(|e| e.to_string())?;
        let elapsed = started.elapsed().as_secs_f64();
        eprintln!(
            "metasim: {} sites x {} jobs under {} in {elapsed:.3}s ({:.0} events/sec, {} threads)",
            specs.len(),
            jobs.len(),
            cfg.dispatch.name(),
            meta.result.events_processed as f64 / elapsed.max(1e-9),
            cfg.threads,
        );
        Ok(meta)
    };
    // The workload coordinate also pins the generator's machine size; the
    // interarrival scale is derived from the fleet size, which the specs
    // already key.
    let workload_name = format!("{spec}:m{}", opts.machine);
    let key = MetaResult::cell_key(&workload_name, opts.jobs, opts.seed, &specs, &cfg);
    let meta = match open_store(opts)? {
        Some(store) => match store.get_meta(key).map_err(store_err)? {
            Some(summary) => {
                eprintln!("metasim cache hit ({})", key_hex(key));
                MetaResult::from_summary(summary)
            }
            None => {
                let meta = run()?;
                store.put_meta(key, &meta.to_summary()).map_err(store_err)?;
                meta
            }
        },
        None => run()?,
    };
    emit(opts, &meta.render_report())?;
    Ok(ExitCode::SUCCESS)
}

/// SIGTERM observation for `psbench serve`: a handler flips a flag; the
/// serve loop polls it and shuts down cleanly (checkpoint + stop). Declared
/// by hand to keep the workspace dependency-free.
#[cfg(unix)]
mod term_signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    /// Install the SIGTERM handler. Safe to call once at serve startup.
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
        }
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term);
        }
    }

    /// True once SIGTERM has been received.
    pub fn received() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod term_signal {
    pub fn install() {}
    pub fn received() -> bool {
        false
    }
}

/// `psbench serve`: run the online scheduling service until killed. SIGTERM
/// triggers a clean shutdown: every session journal is checkpointed (fsynced)
/// before the process exits, so `--state-dir` sessions resume seamlessly.
fn cmd_serve(opts: &Opts) -> Result<ExitCode, String> {
    let mode = ClockMode::parse(&opts.mode).ok_or_else(|| {
        format!(
            "unknown mode {:?}; expected afap, real, or scale:<f>",
            opts.mode
        )
    })?;
    // Validate the scheduler up front with the standard registry error.
    by_name(&opts.scheduler, opts.machine).map_err(|e| e.to_string())?;
    if let Some(dir) = &opts.store {
        // Fail fast on an unusable store rather than on the first drain.
        ArtifactStore::open(dir).map_err(store_err)?;
    }
    let fsync = psbench::store::FsyncPolicy::parse(&opts.fsync).ok_or_else(|| {
        format!(
            "unknown --fsync policy {:?}; expected always|off",
            opts.fsync
        )
    })?;
    let config = ServeConfig {
        scheduler: opts.scheduler.clone(),
        machine: opts.machine,
        mode,
        store_dir: opts.store.as_ref().map(std::path::PathBuf::from),
        max_sessions: opts.max_sessions,
        state_dir: opts.state_dir.as_ref().map(std::path::PathBuf::from),
        fsync,
        idle_timeout: match opts.idle_timeout {
            0 => None,
            secs => Some(std::time::Duration::from_secs(secs)),
        },
    };
    let addr = opts.addr.as_deref().unwrap_or("127.0.0.1:7077");
    term_signal::install();
    let handle = serve(addr, config).map_err(|e| format!("cannot bind {addr:?}: {e}"))?;
    if handle.poisoned_sessions() > 0 {
        eprintln!(
            "warning: {} session journal(s) failed recovery; attaching to them reports the error",
            handle.poisoned_sessions()
        );
    }
    println!("listening on {}", handle.addr());
    std::io::stdout().flush().ok();
    // Serve until killed; on SIGTERM, checkpoint journals and exit cleanly.
    while !term_signal::received() {
        std::thread::park_timeout(std::time::Duration::from_millis(200));
    }
    let synced = handle
        .checkpoint()
        .map_err(|e| format!("checkpoint on shutdown: {e}"))?;
    handle.stop();
    println!("sigterm: checkpointed {synced} session journal(s), exiting");
    Ok(ExitCode::SUCCESS)
}

/// `psbench client`: replay a protocol script in lockstep and echo replies.
fn cmd_client(opts: &Opts) -> Result<ExitCode, String> {
    let addr = opts
        .positional
        .first()
        .ok_or("client expects an <ADDR> (host:port)")?;
    let script = match opts.positional.get(1) {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read script {path:?}: {e}"))?,
        None => {
            use std::io::Read as _;
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("cannot read script from stdin: {e}"))?;
            buf
        }
    };
    let lines: Vec<&str> = script.lines().collect();
    let retry = match opts.retries {
        0 => psbench::serve::RetryPolicy::none(),
        n => psbench::serve::RetryPolicy::quick(n),
    };
    let transcript =
        run_script_with(addr.as_str(), &lines, retry).map_err(|e| format!("client {addr}: {e}"))?;
    for reply in &transcript.replies {
        println!("{reply}");
    }
    if let Some(path) = &opts.trace_out {
        let payload = transcript
            .payload("trace")
            .ok_or("--trace-out given but the script never ran `trace`")?;
        std::fs::write(path, &payload.body).map_err(|e| format!("cannot write {path:?}: {e}"))?;
    }
    if let Some(path) = &opts.report_out {
        let payload = transcript
            .payload("drain")
            .ok_or("--report-out given but the script never ran `drain`")?;
        std::fs::write(path, &payload.body).map_err(|e| format!("cannot write {path:?}: {e}"))?;
    }
    Ok(if transcript.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// `psbench sweep grid`: a resumable model × scheduler × load × size × seed
/// sweep, memoized cell by cell in the artifact store. Cells whose results
/// are already stored are decoded instead of recomputed; every completed
/// cell is journaled durably, so a killed sweep (or one capped with
/// `--max-cells`) resumes with zero recomputation and renders byte-identical
/// reports.
fn cmd_sweep_grid(opts: &Opts) -> Result<ExitCode, String> {
    let store = open_store(opts)?
        .ok_or("sweep grid requires --store <DIR> for its memoized results and journal")?;
    let models = match &opts.models {
        Some(list) => parse_list(list, |t| {
            WorkloadKind::by_name(t).ok_or_else(|| format!("unknown model {t:?}"))
        })?,
        None => vec![WorkloadKind::Lublin99],
    };
    let schedulers: Vec<String> = match &opts.grid_schedulers {
        Some(list) => parse_list(list, |t| Ok(t.to_string()))?,
        None => canonical_schedulers()
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };
    let loads = match &opts.loads {
        Some(list) => parse_list(list, num::<f64>)?,
        None => vec![1.0],
    };
    if loads.iter().any(|l| !l.is_finite() || *l <= 0.0) {
        return Err("--loads entries must be positive and finite".to_string());
    }
    let machine_sizes = match &opts.sizes {
        Some(list) => parse_list(list, num::<u32>)?,
        None => vec![opts.machine],
    };
    if machine_sizes.contains(&0) {
        return Err("--sizes entries must be at least 1 processor".to_string());
    }
    let seeds = match &opts.seeds {
        Some(list) => parse_list(list, num::<u64>)?,
        None => vec![1],
    };
    // Scenario::run panics on unknown schedulers (it runs on pool workers),
    // so the whole line-up is validated up front.
    for s in &schedulers {
        by_name(s, machine_sizes[0]).map_err(|e| e.to_string())?;
    }
    let grid = GridSpec {
        models,
        schedulers,
        loads,
        machine_sizes,
        seeds,
        jobs: opts.jobs,
    };
    let cells = grid.enumerate();
    let outcome = run_sweep_resumable("grid", &cells, &store, opts.threads, opts.max_cells)
        .map_err(store_err)?;
    eprintln!(
        "sweep grid: {} cells, {} cached, {} computed, {} pending",
        cells.len(),
        outcome.cached,
        outcome.computed,
        outcome.pending
    );
    let table = results_table("Grid sweep", &outcome.results);
    emit(opts, &render_table(&table, opts.format))?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_sweep(opts: &Opts) -> Result<ExitCode, String> {
    if opts.positional.first().map(String::as_str) == Some("grid") {
        return cmd_sweep_grid(opts);
    }
    let scale = match opts.scale.as_str() {
        "quick" => Scale::quick(),
        "full" => Scale::full(),
        other => return Err(format!("unknown scale {other:?}; expected quick or full")),
    };
    let ids: Vec<String> =
        if opts.positional.is_empty() || opts.positional.iter().any(|p| p == "all") {
            psbench::core::experiment_ids()
                .iter()
                .map(|s| s.to_string())
                .collect()
        } else {
            opts.positional.clone()
        };
    // JSON output is one document: an array with one object per experiment.
    let mut out = String::new();
    if opts.format == Format::Json {
        out.push('[');
    }
    for (i, id) in ids.iter().enumerate() {
        let table =
            run_experiment(id, scale).ok_or_else(|| format!("unknown experiment {id:?}"))?;
        if i > 0 {
            out.push(if opts.format == Format::Json {
                ','
            } else {
                '\n'
            });
        }
        out.push_str(&render_table(&table, opts.format));
        if opts.format != Format::Json {
            out.push('\n');
        }
    }
    if opts.format == Format::Json {
        out.push(']');
    }
    emit(opts, &out)?;
    Ok(ExitCode::SUCCESS)
}

/// `psbench store <ls|gc|verify>`: inspect or maintain an artifact store.
fn cmd_store(opts: &Opts) -> Result<ExitCode, String> {
    let action = opts
        .positional
        .first()
        .ok_or("store expects an action: ls, gc, or verify")?;
    let store = open_store(opts)?.ok_or("store commands require --store <DIR>")?;
    match action.as_str() {
        "ls" => {
            let entries = store.ls().map_err(store_err)?;
            let mut table = Table::new(
                format!("Artifact store — {}", store.root().display()),
                &["kind", "key", "bytes"],
            );
            for e in &entries {
                table.push_row(vec![
                    e.kind.to_string(),
                    key_hex(e.key),
                    e.bytes.to_string(),
                ]);
            }
            emit(opts, &render_table(&table, opts.format))?;
            Ok(ExitCode::SUCCESS)
        }
        "gc" => {
            let report = store.gc().map_err(store_err)?;
            emit(
                opts,
                &format!(
                    "gc: removed {} files ({} bytes), kept {} artifacts\n",
                    report.removed, report.reclaimed_bytes, report.kept
                ),
            )?;
            Ok(ExitCode::SUCCESS)
        }
        "verify" => {
            let report = store.verify().map_err(store_err)?;
            let mut out = format!(
                "verify: {} artifacts ok, {} problems\n",
                report.ok,
                report.problems.len()
            );
            for p in &report.problems {
                out.push_str(&format!("problem: {p}\n"));
            }
            emit(opts, &out)?;
            Ok(if report.problems.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        other => Err(format!(
            "unknown store action {other:?}; expected ls, gc, or verify"
        )),
    }
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(sub) = args.first() else {
        return Err(String::new());
    };
    if args.iter().any(|a| a == "-h" || a == "--help") || sub == "help" {
        print!("{}", usage());
        return Ok(ExitCode::SUCCESS);
    }
    let opts = parse_opts(&args[1..])?;
    match sub.as_str() {
        "stats" => cmd_stats(&opts),
        "compare" => cmd_compare(&opts),
        "validate" => cmd_validate(&opts),
        "convert" => cmd_convert(&opts),
        "simulate" => cmd_simulate(&opts),
        "metasim" => cmd_metasim(&opts),
        "sweep" => cmd_sweep(&opts),
        "store" => cmd_store(&opts),
        "serve" => cmd_serve(&opts),
        "client" => cmd_client(&opts),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn main() -> ExitCode {
    // Seeded fault injection (PSBENCH_FAULTS=seed=…,err=…,short=…,kill=…)
    // threads deterministic I/O faults through store and journal writes —
    // the test harness for crash-safety. A bad spec is a startup error, not
    // a silent no-op.
    match psbench::store::fault::install_from_env() {
        Ok(None) => {}
        Ok(Some(_)) => eprintln!(
            "warning: fault injection active ({} is set); expect injected I/O errors",
            psbench::store::fault::FAULTS_ENV
        ),
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    }
    match run() {
        Ok(code) => code,
        Err(msg) => {
            if msg.is_empty() {
                eprint!("{}", usage());
            } else {
                eprintln!("error: {msg}");
                eprintln!("run `psbench --help` for usage");
            }
            ExitCode::from(2)
        }
    }
}
