//! # psbench — benchmarks and standards for the evaluation of parallel job schedulers
//!
//! Facade crate re-exporting the whole psbench workspace. See the individual crates
//! for details:
//!
//! * [`swf`] — the Standard Workload Format (SWF v2) and the standard outage format.
//! * [`analyze`] — workload characterization (mergeable streaming sketches) and
//!   model validation (KS / earth-mover's distances, fidelity reports).
//! * [`metrics`] — per-job and aggregate metrics, objective functions, statistics.
//! * [`workload`] — workload models (Feitelson96, Jann97, Downey97, Lublin99),
//!   flexible jobs, feedback sessions, raw-log emulation, outage generation.
//! * [`sim`] — the discrete-event cluster simulator.
//! * [`sched`] — the scheduler zoo (FCFS, backfilling, gang scheduling, ...).
//! * [`metasim`] — the metacomputing / WARMstones-style evaluation environment.
//! * [`store`] — the content-addressed artifact store: ingested traces, cached
//!   profiles, memoized simulation results, durable sweep ledgers.
//! * [`core`] — the canonical benchmark suite, experiment harness, and reports.
//! * [`serve`] — the online scheduling service: TCP protocol, per-session engine
//!   shards, live what-if queries.

#![warn(missing_docs)]

pub use psbench_analyze as analyze;
pub use psbench_core as core;
pub use psbench_metasim as metasim;
pub use psbench_metrics as metrics;
pub use psbench_sched as sched;
pub use psbench_serve as serve;
pub use psbench_sim as sim;
pub use psbench_store as store;
pub use psbench_swf as swf;
pub use psbench_workload as workload;
