//! System-centric (machine-owner) metrics: utilization, throughput, makespan, and
//! loss of capacity.
//!
//! The paper contrasts these "low-level, system-centric metrics such as percent
//! utilization" with the user-centric metrics of [`crate::job`]; both families are
//! needed to reproduce the objective-function discussions of Section 1.2 and the
//! economic unification of Section 4.2.

use crate::job::JobOutcome;
use serde::{Deserialize, Serialize};

/// System-level metrics for one simulation / trace interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SystemMetrics {
    /// Number of jobs that terminated in the interval.
    pub jobs_finished: usize,
    /// Makespan: time from the first submit to the last completion, in seconds.
    pub makespan: f64,
    /// Utilization in `[0, 1]`: processor-seconds of work done divided by
    /// processor-seconds available (machine size × makespan, minus capacity lost to
    /// outages if supplied).
    pub utilization: f64,
    /// Throughput in jobs per hour.
    pub throughput_per_hour: f64,
    /// Loss of capacity in `[0, 1]`: fraction of available processor-seconds that
    /// were idle while at least one job was waiting in the queue (requires the idle-
    /// while-waiting integral from the simulator; 0 when not supplied).
    pub loss_of_capacity: f64,
}

/// Inputs needed to compute [`SystemMetrics`].
#[derive(Debug, Clone, Copy)]
pub struct SystemObservation<'a> {
    /// Outcomes of all jobs that ran (including killed ones: their work still
    /// occupied the machine).
    pub outcomes: &'a [JobOutcome],
    /// Machine size in processors.
    pub machine_size: u32,
    /// Processor-seconds lost to outages during the interval (0 if none).
    pub lost_node_seconds: f64,
    /// Integral of (idle processors × seconds) accumulated while the queue was
    /// non-empty, from the simulator; `None` if unavailable.
    pub idle_while_queued: Option<f64>,
}

/// Compute system metrics from an observation.
pub fn system_metrics(obs: &SystemObservation<'_>) -> SystemMetrics {
    let outcomes = obs.outcomes;
    if outcomes.is_empty() || obs.machine_size == 0 {
        return SystemMetrics::default();
    }
    let first_submit = outcomes
        .iter()
        .map(|o| o.submit_time)
        .fold(f64::INFINITY, f64::min);
    let last_end = outcomes.iter().map(|o| o.end_time).fold(0.0f64, f64::max);
    let makespan = (last_end - first_submit).max(0.0);
    let work: f64 = outcomes.iter().map(|o| o.area()).sum();
    let capacity = (obs.machine_size as f64 * makespan - obs.lost_node_seconds).max(0.0);
    let utilization = if capacity > 0.0 {
        (work / capacity).min(1.0)
    } else {
        0.0
    };
    let throughput = if makespan > 0.0 {
        outcomes.len() as f64 / makespan * 3600.0
    } else {
        0.0
    };
    let loss = match obs.idle_while_queued {
        Some(idle) if capacity > 0.0 => (idle / capacity).clamp(0.0, 1.0),
        _ => 0.0,
    };
    SystemMetrics {
        jobs_finished: outcomes.len(),
        makespan,
        utilization,
        throughput_per_hour: throughput,
        loss_of_capacity: loss,
    }
}

/// A simple cost model for the economic unification of system- and user-centric
/// metrics sketched in Section 4.2: suppliers charge per processor-second, users
/// additionally value their waiting time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Price charged per processor-second of allocated computation.
    pub price_per_proc_second: f64,
    /// The user's (opportunity) cost per second of waiting.
    pub wait_cost_per_second: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            price_per_proc_second: 1.0,
            wait_cost_per_second: 0.1,
        }
    }
}

impl CostModel {
    /// What the user pays (and implicitly what the supplier earns) for one job.
    pub fn charge(&self, job: &JobOutcome) -> f64 {
        job.area() * self.price_per_proc_second
    }

    /// The user's total cost for one job: charge plus valued waiting time.
    pub fn user_cost(&self, job: &JobOutcome) -> f64 {
        self.charge(job) + job.wait_time() * self.wait_cost_per_second
    }

    /// Supplier revenue over a set of jobs.
    pub fn revenue(&self, jobs: &[JobOutcome]) -> f64 {
        jobs.iter().map(|j| self.charge(j)).sum()
    }

    /// Aggregate user cost over a set of jobs.
    pub fn total_user_cost(&self, jobs: &[JobOutcome]) -> f64 {
        jobs.iter().map(|j| self.user_cost(j)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(submit: f64, start: f64, end: f64, procs: u32) -> JobOutcome {
        JobOutcome {
            job_id: 0,
            submit_time: submit,
            start_time: start,
            end_time: end,
            procs,
            completed: true,
        }
    }

    #[test]
    fn utilization_and_throughput() {
        // Two jobs on a 10-processor machine, makespan 100s, total work 600 proc-s.
        let outcomes = vec![outcome(0.0, 0.0, 50.0, 10), outcome(0.0, 50.0, 100.0, 2)];
        let m = system_metrics(&SystemObservation {
            outcomes: &outcomes,
            machine_size: 10,
            lost_node_seconds: 0.0,
            idle_while_queued: None,
        });
        assert_eq!(m.jobs_finished, 2);
        assert_eq!(m.makespan, 100.0);
        assert!((m.utilization - 0.6).abs() < 1e-12);
        assert!((m.throughput_per_hour - 72.0).abs() < 1e-9);
        assert_eq!(m.loss_of_capacity, 0.0);
    }

    #[test]
    fn outages_reduce_available_capacity() {
        let outcomes = vec![outcome(0.0, 0.0, 100.0, 5)];
        let without = system_metrics(&SystemObservation {
            outcomes: &outcomes,
            machine_size: 10,
            lost_node_seconds: 0.0,
            idle_while_queued: None,
        });
        let with = system_metrics(&SystemObservation {
            outcomes: &outcomes,
            machine_size: 10,
            lost_node_seconds: 400.0,
            idle_while_queued: None,
        });
        assert!(with.utilization > without.utilization);
        assert!((without.utilization - 0.5).abs() < 1e-12);
        assert!((with.utilization - 500.0 / 600.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_clamped_to_one() {
        let outcomes = vec![outcome(0.0, 0.0, 100.0, 20)];
        let m = system_metrics(&SystemObservation {
            outcomes: &outcomes,
            machine_size: 10,
            lost_node_seconds: 0.0,
            idle_while_queued: None,
        });
        assert_eq!(m.utilization, 1.0);
    }

    #[test]
    fn loss_of_capacity_fraction() {
        let outcomes = vec![outcome(0.0, 0.0, 100.0, 5)];
        let m = system_metrics(&SystemObservation {
            outcomes: &outcomes,
            machine_size: 10,
            lost_node_seconds: 0.0,
            idle_while_queued: Some(250.0),
        });
        assert!((m.loss_of_capacity - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_observation_is_all_zero() {
        let m = system_metrics(&SystemObservation {
            outcomes: &[],
            machine_size: 10,
            lost_node_seconds: 0.0,
            idle_while_queued: None,
        });
        assert_eq!(m, SystemMetrics::default());
    }

    #[test]
    fn cost_model_charges() {
        let model = CostModel {
            price_per_proc_second: 2.0,
            wait_cost_per_second: 1.0,
        };
        let job = outcome(0.0, 30.0, 130.0, 4); // area 400, wait 30
        assert_eq!(model.charge(&job), 800.0);
        assert_eq!(model.user_cost(&job), 830.0);
        let jobs = vec![job, outcome(0.0, 0.0, 10.0, 1)];
        assert_eq!(model.revenue(&jobs), 820.0);
        assert_eq!(model.total_user_cost(&jobs), 850.0);
    }

    #[test]
    fn default_cost_model_is_sane() {
        let m = CostModel::default();
        assert!(m.price_per_proc_second > 0.0);
        assert!(m.wait_cost_per_second >= 0.0);
    }
}
