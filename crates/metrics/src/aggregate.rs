//! Aggregate statistics over per-job metrics.
//!
//! Different studies aggregate per-job metrics differently (arithmetic mean,
//! geometric mean, percentiles, weighted means); the disagreements the paper warns
//! about (Section 1.2) often come from exactly this choice. This module provides
//! the standard aggregations plus batch-means confidence intervals.

use crate::job::JobOutcome;
use serde::{Deserialize, Serialize};

/// Summary statistics of a sample of values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Summary {
    /// Number of values.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Standard deviation (population, 0 for fewer than two values).
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Compute a [`Summary`] of a slice of values. Non-finite values are ignored.
pub fn summarize(values: &[f64]) -> Summary {
    let mut clean: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if clean.is_empty() {
        return Summary::default();
    }
    clean.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let count = clean.len();
    let mean = clean.iter().sum::<f64>() / count as f64;
    let var = clean.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
    Summary {
        count,
        mean,
        std_dev: var.sqrt(),
        min: clean[0],
        max: clean[count - 1],
        median: percentile_sorted(&clean, 50.0),
        p90: percentile_sorted(&clean, 90.0),
        p99: percentile_sorted(&clean, 99.0),
    }
}

/// Percentile of a **sorted** slice using linear interpolation between closest ranks.
/// `p` is in percent (0–100).
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let clamped = p.clamp(0.0, 100.0);
    let rank = clamped / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Geometric mean of a slice of positive values (values ≤ 0 or non-finite are ignored).
pub fn geometric_mean(values: &[f64]) -> f64 {
    let logs: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| v.is_finite() && *v > 0.0)
        .map(f64::ln)
        .collect();
    if logs.is_empty() {
        return 0.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// Weighted arithmetic mean; pairs with non-finite values or non-positive weights are
/// ignored. Returns 0 if no valid pairs remain.
pub fn weighted_mean(values: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(values.len(), weights.len(), "values and weights must align");
    let mut num = 0.0;
    let mut den = 0.0;
    for (&v, &w) in values.iter().zip(weights) {
        if v.is_finite() && w.is_finite() && w > 0.0 {
            num += v * w;
            den += w;
        }
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// A confidence interval around a mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// The point estimate (mean of batch means).
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// Number of batches used.
    pub batches: usize,
}

impl ConfidenceInterval {
    /// Lower bound of the interval.
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }
    /// Upper bound of the interval.
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }
    /// True if `other`'s interval overlaps this one (the rankings are then not
    /// statistically distinguishable at the chosen confidence).
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.low() <= other.high() && other.low() <= self.high()
    }
}

/// Approximate two-sided 95% Student-t critical values indexed by degrees of freedom.
fn t_critical_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= TABLE.len() {
        TABLE[df - 1]
    } else {
        1.96
    }
}

/// Batch-means 95% confidence interval: the sample is split into `batches` contiguous
/// batches, and the interval is computed over the batch means. This is the customary
/// way to handle the autocorrelation of simulation output.
pub fn batch_means_ci(values: &[f64], batches: usize) -> ConfidenceInterval {
    let clean: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if clean.is_empty() || batches == 0 {
        return ConfidenceInterval {
            mean: 0.0,
            half_width: 0.0,
            batches: 0,
        };
    }
    let b = batches.min(clean.len());
    let batch_size = clean.len() / b;
    let mut means = Vec::with_capacity(b);
    for i in 0..b {
        let start = i * batch_size;
        let end = if i == b - 1 {
            clean.len()
        } else {
            start + batch_size
        };
        let slice = &clean[start..end];
        means.push(slice.iter().sum::<f64>() / slice.len() as f64);
    }
    let grand = means.iter().sum::<f64>() / means.len() as f64;
    if means.len() < 2 {
        return ConfidenceInterval {
            mean: grand,
            half_width: 0.0,
            batches: means.len(),
        };
    }
    let var =
        means.iter().map(|m| (m - grand) * (m - grand)).sum::<f64>() / (means.len() - 1) as f64;
    let half = t_critical_95(means.len() - 1) * (var / means.len() as f64).sqrt();
    ConfidenceInterval {
        mean: grand,
        half_width: half,
        batches: means.len(),
    }
}

/// The standard per-workload aggregate report: mean/percentile summaries of the four
/// customary per-job metrics over a set of job outcomes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AggregateMetrics {
    /// Number of jobs included.
    pub jobs: usize,
    /// Summary of wait times (seconds).
    pub wait_time: Summary,
    /// Summary of response times (seconds).
    pub response_time: Summary,
    /// Summary of slowdowns.
    pub slowdown: Summary,
    /// Summary of bounded slowdowns.
    pub bounded_slowdown: Summary,
    /// Area-weighted mean wait time (seconds), weighting each job by processors ×
    /// runtime as advocated for fairness toward large jobs.
    pub area_weighted_wait: f64,
}

impl AggregateMetrics {
    /// Compute aggregates over a set of job outcomes. Only completed jobs are
    /// included (killed jobs distort response-time statistics).
    pub fn from_outcomes(outcomes: &[JobOutcome]) -> Self {
        let done: Vec<&JobOutcome> = outcomes.iter().filter(|o| o.completed).collect();
        let waits: Vec<f64> = done.iter().map(|o| o.wait_time()).collect();
        let resp: Vec<f64> = done.iter().map(|o| o.response_time()).collect();
        let slow: Vec<f64> = done.iter().map(|o| o.slowdown()).collect();
        let bslow: Vec<f64> = done.iter().map(|o| o.bounded_slowdown()).collect();
        let areas: Vec<f64> = done.iter().map(|o| o.area()).collect();
        AggregateMetrics {
            jobs: done.len(),
            wait_time: summarize(&waits),
            response_time: summarize(&resp),
            slowdown: summarize(&slow),
            bounded_slowdown: summarize(&bslow),
            area_weighted_wait: weighted_mean(&waits, &areas),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(submit: f64, start: f64, end: f64, procs: u32) -> JobOutcome {
        JobOutcome {
            job_id: 0,
            submit_time: submit,
            start_time: start,
            end_time: end,
            procs,
            completed: true,
        }
    }

    #[test]
    fn summarize_basic() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!((s.std_dev - (2.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summarize_ignores_nonfinite_and_handles_empty() {
        let s = summarize(&[1.0, f64::INFINITY, f64::NAN, 3.0]);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 2.0);
        let empty = summarize(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 10.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 40.0);
        assert_eq!(percentile_sorted(&sorted, 50.0), 25.0);
        assert_eq!(percentile_sorted(&[], 50.0), 0.0);
        assert_eq!(percentile_sorted(&[7.0], 90.0), 7.0);
    }

    #[test]
    fn geometric_mean_matches_hand_computation() {
        let g = geometric_mean(&[1.0, 4.0, 16.0]);
        assert!((g - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
        assert_eq!(geometric_mean(&[-1.0, 0.0]), 0.0);
    }

    #[test]
    fn weighted_mean_weights_properly() {
        let m = weighted_mean(&[1.0, 10.0], &[9.0, 1.0]);
        assert!((m - 1.9).abs() < 1e-12);
        assert_eq!(weighted_mean(&[1.0], &[0.0]), 0.0);
    }

    #[test]
    #[should_panic]
    fn weighted_mean_length_mismatch_panics() {
        weighted_mean(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn batch_means_ci_contains_true_mean_for_constant_data() {
        let data = vec![5.0; 100];
        let ci = batch_means_ci(&data, 10);
        assert_eq!(ci.mean, 5.0);
        assert_eq!(ci.half_width, 0.0);
        assert_eq!(ci.batches, 10);
        assert!(ci.overlaps(&ci));
    }

    #[test]
    fn batch_means_ci_wider_for_noisier_data() {
        let calm: Vec<f64> = (0..200).map(|i| 10.0 + (i % 2) as f64 * 0.1).collect();
        let noisy: Vec<f64> = (0..200).map(|i| 10.0 + ((i % 20) as f64 - 10.0)).collect();
        let ci_calm = batch_means_ci(&calm, 10);
        let ci_noisy = batch_means_ci(&noisy, 10);
        assert!(ci_noisy.half_width >= ci_calm.half_width);
    }

    #[test]
    fn batch_means_ci_edge_cases() {
        let ci = batch_means_ci(&[], 5);
        assert_eq!(ci.batches, 0);
        let ci1 = batch_means_ci(&[3.0], 5);
        assert_eq!(ci1.mean, 3.0);
        assert_eq!(ci1.half_width, 0.0);
    }

    #[test]
    fn confidence_interval_overlap() {
        let a = ConfidenceInterval {
            mean: 10.0,
            half_width: 2.0,
            batches: 5,
        };
        let b = ConfidenceInterval {
            mean: 13.0,
            half_width: 2.0,
            batches: 5,
        };
        let c = ConfidenceInterval {
            mean: 20.0,
            half_width: 1.0,
            batches: 5,
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(a.low(), 8.0);
        assert_eq!(a.high(), 12.0);
    }

    #[test]
    fn aggregate_metrics_from_outcomes() {
        let outcomes = vec![
            outcome(0.0, 0.0, 100.0, 10),   // wait 0, resp 100, slowdown 1
            outcome(0.0, 100.0, 200.0, 10), // wait 100, resp 200, slowdown 2
            JobOutcome {
                completed: false,
                ..outcome(0.0, 0.0, 1000.0, 1)
            },
        ];
        let agg = AggregateMetrics::from_outcomes(&outcomes);
        assert_eq!(agg.jobs, 2);
        assert_eq!(agg.wait_time.mean, 50.0);
        assert_eq!(agg.response_time.mean, 150.0);
        assert_eq!(agg.slowdown.mean, 1.5);
        // both jobs have area 1000, so area weighting doesn't change the mean here
        assert_eq!(agg.area_weighted_wait, 50.0);
    }

    #[test]
    fn aggregate_metrics_empty() {
        let agg = AggregateMetrics::from_outcomes(&[]);
        assert_eq!(agg.jobs, 0);
        assert_eq!(agg.wait_time.count, 0);
        assert_eq!(agg.area_weighted_wait, 0.0);
        assert_eq!(agg, AggregateMetrics::default());
    }

    #[test]
    fn aggregate_metrics_single_job() {
        // With one job every summary collapses onto that job's value.
        let agg = AggregateMetrics::from_outcomes(&[outcome(0.0, 30.0, 90.0, 8)]);
        assert_eq!(agg.jobs, 1);
        assert_eq!(agg.wait_time.mean, 30.0);
        assert_eq!(agg.wait_time.min, 30.0);
        assert_eq!(agg.wait_time.max, 30.0);
        assert_eq!(agg.wait_time.median, 30.0);
        assert_eq!(agg.wait_time.p99, 30.0);
        assert_eq!(agg.wait_time.std_dev, 0.0);
        assert_eq!(agg.response_time.mean, 90.0);
        assert_eq!(agg.slowdown.mean, 1.5);
        assert_eq!(agg.area_weighted_wait, 30.0);
    }

    #[test]
    fn aggregate_metrics_zero_runtime_job() {
        // Zero runtime: raw slowdown is infinite and must be excluded from its
        // summary; bounded slowdown stays finite via the threshold; zero area
        // means the job cannot contribute to the area-weighted wait.
        let zero = outcome(0.0, 50.0, 50.0, 4);
        assert_eq!(zero.slowdown(), f64::INFINITY);
        let agg = AggregateMetrics::from_outcomes(&[zero]);
        assert_eq!(agg.jobs, 1);
        assert_eq!(agg.slowdown.count, 0);
        assert_eq!(agg.bounded_slowdown.count, 1);
        assert_eq!(agg.bounded_slowdown.mean, 5.0); // response 50 / threshold 10
        assert_eq!(agg.area_weighted_wait, 0.0);
    }

    #[test]
    fn bounded_slowdown_threshold_behaviour() {
        // Below the 10 s threshold the denominator clamps to the threshold…
        let short = outcome(0.0, 10.0, 11.0, 1); // wait 10, run 1, response 11
        assert_eq!(short.slowdown(), 11.0);
        assert_eq!(short.bounded_slowdown(), 1.1); // 11 / max(1, 10)
                                                   // …exactly at the threshold bounded and raw slowdown agree…
        let at = outcome(0.0, 10.0, 20.0, 1); // run 10, response 20
        assert_eq!(at.bounded_slowdown(), at.slowdown());
        // …and above it the bound has no effect.
        let long = outcome(0.0, 100.0, 1100.0, 1); // run 1000, response 1100
        assert!((long.bounded_slowdown() - long.slowdown()).abs() < 1e-12);
        // The metric is floored at 1 even when response < threshold.
        let instant = outcome(0.0, 0.0, 5.0, 1); // response 5 → 5/10 < 1
        assert_eq!(instant.bounded_slowdown(), 1.0);
        // An explicit threshold reproduces the raw slowdown.
        assert_eq!(short.bounded_slowdown_with(1.0), 11.0);
    }
}
