//! Objective functions and scheduler ranking.
//!
//! Section 1.2 of the paper discusses whether the objective function itself should
//! be standardized: different metrics can rank the same schedulers differently
//! (\[30\]), and owner-defined weighted objectives change rankings as the weights move
//! (\[41\]). This module provides the standard single-metric objectives, weighted
//! composite objectives, and ranking utilities used by experiments E1 and E2.

use crate::aggregate::AggregateMetrics;
use crate::system::SystemMetrics;
use serde::{Deserialize, Serialize};

/// The standard single-quantity objectives found "in almost all installations".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Mean response (turnaround) time; minimize.
    MeanResponseTime,
    /// Mean wait time; minimize.
    MeanWaitTime,
    /// Mean slowdown; minimize.
    MeanSlowdown,
    /// Mean bounded slowdown; minimize.
    MeanBoundedSlowdown,
    /// 90th percentile of response time; minimize.
    P90ResponseTime,
    /// Machine utilization; maximize.
    Utilization,
    /// Throughput (jobs/hour); maximize.
    Throughput,
    /// Loss of capacity; minimize.
    LossOfCapacity,
}

impl Objective {
    /// All objectives, for iteration in experiments.
    pub fn all() -> &'static [Objective] {
        &[
            Objective::MeanResponseTime,
            Objective::MeanWaitTime,
            Objective::MeanSlowdown,
            Objective::MeanBoundedSlowdown,
            Objective::P90ResponseTime,
            Objective::Utilization,
            Objective::Throughput,
            Objective::LossOfCapacity,
        ]
    }

    /// Human readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Objective::MeanResponseTime => "mean response time",
            Objective::MeanWaitTime => "mean wait time",
            Objective::MeanSlowdown => "mean slowdown",
            Objective::MeanBoundedSlowdown => "mean bounded slowdown",
            Objective::P90ResponseTime => "p90 response time",
            Objective::Utilization => "utilization",
            Objective::Throughput => "throughput",
            Objective::LossOfCapacity => "loss of capacity",
        }
    }

    /// True if larger values are better (maximize), false if smaller is better.
    pub fn maximize(&self) -> bool {
        matches!(self, Objective::Utilization | Objective::Throughput)
    }

    /// Extract the objective's value from a pair of aggregate and system metrics.
    pub fn value(&self, agg: &AggregateMetrics, sys: &SystemMetrics) -> f64 {
        match self {
            Objective::MeanResponseTime => agg.response_time.mean,
            Objective::MeanWaitTime => agg.wait_time.mean,
            Objective::MeanSlowdown => agg.slowdown.mean,
            Objective::MeanBoundedSlowdown => agg.bounded_slowdown.mean,
            Objective::P90ResponseTime => agg.response_time.p90,
            Objective::Utilization => sys.utilization,
            Objective::Throughput => sys.throughput_per_hour,
            Objective::LossOfCapacity => sys.loss_of_capacity,
        }
    }

    /// A "badness" score in which smaller is always better, so values of different
    /// objectives can be ranked uniformly.
    pub fn badness(&self, agg: &AggregateMetrics, sys: &SystemMetrics) -> f64 {
        let v = self.value(agg, sys);
        if self.maximize() {
            -v
        } else {
            v
        }
    }
}

/// A weighted composite objective in the spirit of the owner-policy objectives of
/// Krallmann, Schwiegelshohn and Yahyapour \[41\]: a convex combination of a
/// user-centric term (bounded slowdown, normalized) and a system-centric term
/// (1 − utilization).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightedObjective {
    /// Weight of the user-centric term, in `[0, 1]`. The system-centric term gets
    /// `1 − weight`.
    pub user_weight: f64,
    /// Normalization constant for bounded slowdown: the slowdown that counts as
    /// "as bad as" zero utilization. Defaults to 100.
    pub slowdown_scale: f64,
}

impl Default for WeightedObjective {
    fn default() -> Self {
        WeightedObjective {
            user_weight: 0.5,
            slowdown_scale: 100.0,
        }
    }
}

impl WeightedObjective {
    /// Create a weighted objective with the given user weight (clamped to `[0,1]`).
    pub fn with_user_weight(user_weight: f64) -> Self {
        WeightedObjective {
            user_weight: user_weight.clamp(0.0, 1.0),
            ..WeightedObjective::default()
        }
    }

    /// Evaluate the objective; smaller is better.
    pub fn badness(&self, agg: &AggregateMetrics, sys: &SystemMetrics) -> f64 {
        let user_term = (agg.bounded_slowdown.mean / self.slowdown_scale).min(10.0);
        let system_term = 1.0 - sys.utilization;
        self.user_weight * user_term + (1.0 - self.user_weight) * system_term
    }
}

/// One scheduler's measured results, as fed to the ranking utilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerResult {
    /// Scheduler name.
    pub name: String,
    /// Aggregate (user-centric) metrics.
    pub aggregate: AggregateMetrics,
    /// System-centric metrics.
    pub system: SystemMetrics,
}

/// Rank schedulers under a single-metric objective; best first. Ties keep input order.
pub fn rank_by_objective(results: &[SchedulerResult], objective: Objective) -> Vec<String> {
    let mut indexed: Vec<(usize, f64)> = results
        .iter()
        .enumerate()
        .map(|(i, r)| (i, objective.badness(&r.aggregate, &r.system)))
        .collect();
    indexed.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    indexed
        .into_iter()
        .map(|(i, _)| results[i].name.clone())
        .collect()
}

/// Rank schedulers under a weighted objective; best first.
pub fn rank_by_weighted(results: &[SchedulerResult], objective: &WeightedObjective) -> Vec<String> {
    let mut indexed: Vec<(usize, f64)> = results
        .iter()
        .enumerate()
        .map(|(i, r)| (i, objective.badness(&r.aggregate, &r.system)))
        .collect();
    indexed.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    indexed
        .into_iter()
        .map(|(i, _)| results[i].name.clone())
        .collect()
}

/// Report whether two objectives *disagree* on the relative order of any pair of
/// schedulers — the phenomenon the paper highlights from \[30\].
pub fn objectives_disagree(results: &[SchedulerResult], a: Objective, b: Objective) -> bool {
    let ra = rank_by_objective(results, a);
    let rb = rank_by_objective(results, b);
    ra != rb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Summary;

    fn result(name: &str, resp: f64, slow: f64, util: f64) -> SchedulerResult {
        let mut agg = AggregateMetrics::default();
        agg.response_time = Summary {
            count: 1,
            mean: resp,
            p90: resp,
            ..Summary::default()
        };
        agg.slowdown = Summary {
            count: 1,
            mean: slow,
            ..Summary::default()
        };
        agg.bounded_slowdown = agg.slowdown;
        agg.wait_time = Summary {
            count: 1,
            mean: resp / 2.0,
            ..Summary::default()
        };
        let sys = SystemMetrics {
            jobs_finished: 1,
            makespan: 1000.0,
            utilization: util,
            throughput_per_hour: util * 100.0,
            loss_of_capacity: 1.0 - util,
        };
        SchedulerResult {
            name: name.to_string(),
            aggregate: agg,
            system: sys,
        }
    }

    #[test]
    fn objective_metadata() {
        assert_eq!(Objective::all().len(), 8);
        assert!(Objective::Utilization.maximize());
        assert!(!Objective::MeanSlowdown.maximize());
        for o in Objective::all() {
            assert!(!o.name().is_empty());
        }
    }

    #[test]
    fn ranking_minimizes_or_maximizes_correctly() {
        let results = vec![result("A", 100.0, 5.0, 0.9), result("B", 50.0, 20.0, 0.7)];
        // B is better on response time, A better on slowdown and utilization.
        assert_eq!(
            rank_by_objective(&results, Objective::MeanResponseTime),
            vec!["B", "A"]
        );
        assert_eq!(
            rank_by_objective(&results, Objective::MeanSlowdown),
            vec!["A", "B"]
        );
        assert_eq!(
            rank_by_objective(&results, Objective::Utilization),
            vec!["A", "B"]
        );
    }

    #[test]
    fn disagreement_detected() {
        let results = vec![result("A", 100.0, 5.0, 0.9), result("B", 50.0, 20.0, 0.7)];
        assert!(objectives_disagree(
            &results,
            Objective::MeanResponseTime,
            Objective::MeanSlowdown
        ));
        assert!(!objectives_disagree(
            &results,
            Objective::MeanSlowdown,
            Objective::Utilization
        ));
    }

    #[test]
    fn weighted_objective_moves_ranking_with_weight() {
        // A: great utilization, terrible slowdown. B: mediocre both.
        let results = vec![
            result("A", 200.0, 90.0, 0.95),
            result("B", 100.0, 10.0, 0.6),
        ];
        let user_heavy = rank_by_weighted(&results, &WeightedObjective::with_user_weight(1.0));
        let system_heavy = rank_by_weighted(&results, &WeightedObjective::with_user_weight(0.0));
        assert_eq!(user_heavy, vec!["B", "A"]);
        assert_eq!(system_heavy, vec!["A", "B"]);
    }

    #[test]
    fn weighted_objective_clamps_weight() {
        let w = WeightedObjective::with_user_weight(7.0);
        assert_eq!(w.user_weight, 1.0);
        let w2 = WeightedObjective::with_user_weight(-1.0);
        assert_eq!(w2.user_weight, 0.0);
    }

    #[test]
    fn badness_is_negated_for_maximize_objectives() {
        let r = result("A", 100.0, 5.0, 0.9);
        let b = Objective::Utilization.badness(&r.aggregate, &r.system);
        assert!(b < 0.0);
        let v = Objective::Utilization.value(&r.aggregate, &r.system);
        assert_eq!(v, 0.9);
    }

    #[test]
    fn tie_preserves_input_order() {
        let results = vec![result("X", 100.0, 5.0, 0.5), result("Y", 100.0, 5.0, 0.5)];
        assert_eq!(
            rank_by_objective(&results, Objective::MeanResponseTime),
            vec!["X", "Y"]
        );
    }
}
