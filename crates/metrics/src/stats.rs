//! Distribution statistics used to compare workloads and models.
//!
//! Section 2.1 of the paper cites a statistical comparison of workload models and
//! logs ("comparing logs and models ... using the co-plot method" \[58\]) and the
//! model-selection question ("Lublin is relatively representative"). This module
//! provides the machinery experiment E3 needs: empirical CDFs, Kolmogorov–Smirnov
//! distances, moments, correlations, and a normalized multi-workload comparison
//! matrix in the spirit of co-plot.

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution function over a finite sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build an ECDF from a sample; non-finite values are dropped.
    pub fn new(values: &[f64]) -> Self {
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ecdf { sorted }
    }

    /// Number of points in the sample.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The fraction of the sample that is ≤ `x`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (q in `[0,1]`) of the sample.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        self.sorted[idx]
    }

    /// Kolmogorov–Smirnov distance between two ECDFs: the maximum absolute
    /// difference of the two distribution functions, evaluated at all sample points.
    pub fn ks_distance(&self, other: &Ecdf) -> f64 {
        if self.is_empty() || other.is_empty() {
            return if self.is_empty() && other.is_empty() {
                0.0
            } else {
                1.0
            };
        }
        let mut d: f64 = 0.0;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        d
    }
}

/// First four standardized moments of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Moments {
    /// Sample size.
    pub count: usize,
    /// Mean.
    pub mean: f64,
    /// Coefficient of variation (std dev / mean; 0 when the mean is 0).
    pub cv: f64,
    /// Skewness (third standardized moment; 0 for fewer than 3 points).
    pub skewness: f64,
}

/// Compute the [`Moments`] of a sample; non-finite values are ignored.
pub fn moments(values: &[f64]) -> Moments {
    let clean: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let n = clean.len();
    if n == 0 {
        return Moments::default();
    }
    let mean = clean.iter().sum::<f64>() / n as f64;
    let var = clean.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
    let sd = var.sqrt();
    let cv = if mean.abs() > 1e-300 { sd / mean } else { 0.0 };
    let skew = if n >= 3 && sd > 1e-300 {
        clean.iter().map(|v| ((v - mean) / sd).powi(3)).sum::<f64>() / n as f64
    } else {
        0.0
    };
    Moments {
        count: n,
        mean,
        cv,
        skewness: skew,
    }
}

/// Pearson correlation coefficient between two equal-length samples; 0 if either
/// sample is degenerate.
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation needs equal-length samples");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// The per-workload feature vector used in the co-plot-style comparison: a handful
/// of dimensionless characteristics that together locate a workload in "workload
/// space".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct WorkloadFeatures {
    /// Name of the workload (log or model).
    pub name: String,
    /// Mean job size in processors.
    pub mean_procs: f64,
    /// Fraction of jobs whose size is a power of two.
    pub power_of_two_fraction: f64,
    /// Fraction of serial (1-processor) jobs.
    pub serial_fraction: f64,
    /// Mean runtime in seconds.
    pub mean_runtime: f64,
    /// Coefficient of variation of runtimes.
    pub runtime_cv: f64,
    /// Mean interarrival time in seconds.
    pub mean_interarrival: f64,
    /// Coefficient of variation of interarrival times.
    pub interarrival_cv: f64,
    /// Correlation between job size and runtime.
    pub size_runtime_correlation: f64,
}

/// Extract [`WorkloadFeatures`] from an SWF log.
pub fn workload_features(name: &str, log: &psbench_swf::SwfLog) -> WorkloadFeatures {
    let sizes: Vec<f64> = log
        .summaries()
        .filter_map(|j| j.procs())
        .map(|p| p as f64)
        .collect();
    let runtimes: Vec<f64> = log
        .summaries()
        .filter_map(|j| j.run_time)
        .map(|r| r as f64)
        .collect();
    let mut submits: Vec<f64> = log.summaries().map(|j| j.submit_time as f64).collect();
    submits.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let interarrivals: Vec<f64> = submits.windows(2).map(|w| w[1] - w[0]).collect();

    let pow2 = if sizes.is_empty() {
        0.0
    } else {
        sizes
            .iter()
            .filter(|&&s| {
                let p = s as u64;
                p > 0 && (p & (p - 1)) == 0
            })
            .count() as f64
            / sizes.len() as f64
    };
    let serial = if sizes.is_empty() {
        0.0
    } else {
        sizes.iter().filter(|&&s| s == 1.0).count() as f64 / sizes.len() as f64
    };

    // size-runtime correlation needs paired samples
    let pairs: Vec<(f64, f64)> = log
        .summaries()
        .filter_map(|j| match (j.procs(), j.run_time) {
            (Some(p), Some(r)) => Some((p as f64, r as f64)),
            _ => None,
        })
        .collect();
    let (ps, rs): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();

    let size_m = moments(&sizes);
    let run_m = moments(&runtimes);
    let ia_m = moments(&interarrivals);

    WorkloadFeatures {
        name: name.to_string(),
        mean_procs: size_m.mean,
        power_of_two_fraction: pow2,
        serial_fraction: serial,
        mean_runtime: run_m.mean,
        runtime_cv: run_m.cv,
        mean_interarrival: ia_m.mean,
        interarrival_cv: ia_m.cv,
        size_runtime_correlation: pearson_correlation(&ps, &rs),
    }
}

impl WorkloadFeatures {
    /// The raw feature vector (excluding the name), in a fixed order.
    pub fn vector(&self) -> [f64; 8] {
        [
            self.mean_procs,
            self.power_of_two_fraction,
            self.serial_fraction,
            self.mean_runtime,
            self.runtime_cv,
            self.mean_interarrival,
            self.interarrival_cv,
            self.size_runtime_correlation,
        ]
    }

    /// Names of the feature dimensions, aligned with [`vector`](Self::vector).
    pub fn dimension_names() -> [&'static str; 8] {
        [
            "mean procs",
            "power-of-two fraction",
            "serial fraction",
            "mean runtime",
            "runtime CV",
            "mean interarrival",
            "interarrival CV",
            "size-runtime correlation",
        ]
    }
}

/// A co-plot-style comparison of several workloads: every feature dimension is
/// normalized to `[0,1]` across the workloads, and pairwise Euclidean distances in
/// the normalized space measure how similar the workloads are.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ComparisonMatrix {
    /// Workload names in row/column order.
    pub names: Vec<String>,
    /// Normalized feature vectors, one per workload.
    pub normalized: Vec<[f64; 8]>,
    /// Pairwise distances `distance[i][j]` between workloads i and j.
    pub distance: Vec<Vec<f64>>,
}

/// Build a [`ComparisonMatrix`] from per-workload features.
pub fn compare_workloads(features: &[WorkloadFeatures]) -> ComparisonMatrix {
    let n = features.len();
    if n == 0 {
        return ComparisonMatrix::default();
    }
    let vectors: Vec<[f64; 8]> = features.iter().map(|f| f.vector()).collect();
    // Normalize each dimension to [0,1] across workloads.
    let mut normalized = vectors.clone();
    for d in 0..8 {
        let min = vectors.iter().map(|v| v[d]).fold(f64::INFINITY, f64::min);
        let max = vectors
            .iter()
            .map(|v| v[d])
            .fold(f64::NEG_INFINITY, f64::max);
        let range = max - min;
        for (i, v) in vectors.iter().enumerate() {
            normalized[i][d] = if range > 1e-300 {
                (v[d] - min) / range
            } else {
                0.0
            };
        }
    }
    let mut distance = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            let d: f64 = (0..8)
                .map(|k| (normalized[i][k] - normalized[j][k]).powi(2))
                .sum::<f64>()
                .sqrt();
            distance[i][j] = d;
        }
    }
    ComparisonMatrix {
        names: features.iter().map(|f| f.name.clone()).collect(),
        normalized,
        distance,
    }
}

impl ComparisonMatrix {
    /// The workload most similar (smallest distance) to the workload at `index`,
    /// excluding itself. Returns `None` for a singleton matrix.
    pub fn nearest(&self, index: usize) -> Option<(usize, f64)> {
        let row = self.distance.get(index)?;
        row.iter()
            .enumerate()
            .filter(|(j, _)| *j != index)
            .map(|(j, &d)| (j, d))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbench_swf::{SwfHeader, SwfLog, SwfRecord};

    #[test]
    fn ecdf_eval_and_quantile() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(2.0), 0.5);
        assert_eq!(e.eval(10.0), 1.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 4.0);
        assert!(!e.is_empty());
    }

    #[test]
    fn ecdf_handles_empty_and_nonfinite() {
        let e = Ecdf::new(&[f64::NAN, f64::INFINITY]);
        assert!(e.is_empty() || e.len() == 1); // infinity kept? it's not finite -> dropped
        assert_eq!(Ecdf::new(&[]).eval(1.0), 0.0);
        assert_eq!(Ecdf::new(&[]).quantile(0.5), 0.0);
    }

    #[test]
    fn ks_distance_properties() {
        let a = Ecdf::new(&[1.0, 2.0, 3.0]);
        let b = Ecdf::new(&[1.0, 2.0, 3.0]);
        let c = Ecdf::new(&[100.0, 200.0, 300.0]);
        assert_eq!(a.ks_distance(&b), 0.0);
        assert_eq!(a.ks_distance(&c), 1.0);
        let d = Ecdf::new(&[1.0, 2.0, 300.0]);
        let dist = a.ks_distance(&d);
        assert!(dist > 0.0 && dist < 1.0);
        // symmetry
        assert!((a.ks_distance(&d) - d.ks_distance(&a)).abs() < 1e-12);
        // empty cases
        assert_eq!(Ecdf::new(&[]).ks_distance(&Ecdf::new(&[])), 0.0);
        assert_eq!(a.ks_distance(&Ecdf::new(&[])), 1.0);
    }

    #[test]
    fn moments_of_known_sample() {
        let m = moments(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(m.count, 8);
        assert_eq!(m.mean, 5.0);
        assert!((m.cv - 2.0 / 5.0).abs() < 1e-12);
        assert!(m.skewness > 0.0); // right-skewed sample
        assert_eq!(moments(&[]).count, 0);
    }

    #[test]
    fn correlation_known_values() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson_correlation(&xs, &ys) - 1.0).abs() < 1e-12);
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson_correlation(&xs, &zs) + 1.0).abs() < 1e-12);
        let flat = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(pearson_correlation(&xs, &flat), 0.0);
        assert_eq!(pearson_correlation(&[1.0], &[2.0]), 0.0);
    }

    fn tiny_log(sizes: &[u32], runtimes: &[i64]) -> SwfLog {
        let jobs: Vec<SwfRecord> = sizes
            .iter()
            .zip(runtimes)
            .enumerate()
            .map(|(i, (&p, &r))| SwfRecord::rigid(i as u64 + 1, i as i64 * 10, r, p))
            .collect();
        SwfLog::new(SwfHeader::default(), jobs)
    }

    #[test]
    fn workload_features_empty_log() {
        let f = workload_features("empty", &SwfLog::default());
        assert_eq!(f.mean_procs, 0.0);
        assert_eq!(f.power_of_two_fraction, 0.0);
        assert_eq!(f.serial_fraction, 0.0);
        for v in f.vector() {
            assert!(
                v.is_finite(),
                "feature vector must stay finite on an empty log"
            );
        }
    }

    #[test]
    fn workload_features_single_job() {
        // One job: means collapse to the job, spreads and correlations to zero.
        let f = workload_features("one", &tiny_log(&[4], &[100]));
        assert_eq!(f.mean_procs, 4.0);
        assert_eq!(f.mean_runtime, 100.0);
        assert_eq!(f.runtime_cv, 0.0);
        assert_eq!(f.mean_interarrival, 0.0);
        assert_eq!(f.size_runtime_correlation, 0.0);
        for v in f.vector() {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn workload_features_from_log() {
        let log = tiny_log(&[1, 2, 4, 3], &[10, 20, 40, 30]);
        let f = workload_features("tiny", &log);
        assert_eq!(f.name, "tiny");
        assert_eq!(f.mean_procs, 2.5);
        assert_eq!(f.serial_fraction, 0.25);
        assert_eq!(f.power_of_two_fraction, 0.75);
        assert_eq!(f.mean_runtime, 25.0);
        assert_eq!(f.mean_interarrival, 10.0);
        assert!((f.size_runtime_correlation - 1.0).abs() < 1e-12);
        assert_eq!(WorkloadFeatures::dimension_names().len(), f.vector().len());
    }

    #[test]
    fn comparison_matrix_identifies_similar_workloads() {
        let a = workload_features("a", &tiny_log(&[1, 2, 4, 8], &[10, 20, 40, 80]));
        let b = workload_features("b", &tiny_log(&[1, 2, 4, 8], &[11, 21, 41, 81]));
        let c = workload_features(
            "c",
            &tiny_log(&[128, 256, 512, 300], &[50_000, 60_000, 70_000, 1_000]),
        );
        let m = compare_workloads(&[a, b, c]);
        assert_eq!(m.names, vec!["a", "b", "c"]);
        // a is closer to b than to c
        assert!(m.distance[0][1] < m.distance[0][2]);
        assert_eq!(m.nearest(0).unwrap().0, 1);
        // distances are symmetric with zero diagonal
        for i in 0..3 {
            assert_eq!(m.distance[i][i], 0.0);
            for j in 0..3 {
                assert!((m.distance[i][j] - m.distance[j][i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn comparison_matrix_edge_cases() {
        assert_eq!(compare_workloads(&[]), ComparisonMatrix::default());
        let single = compare_workloads(&[workload_features("x", &tiny_log(&[1], &[10]))]);
        assert_eq!(single.nearest(0), None);
    }
}
