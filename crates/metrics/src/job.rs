//! Per-job metrics.
//!
//! The paper (and its companion "Metrics and benchmarking for parallel job
//! scheduling" \[23\]) uses a small set of per-job quantities as the raw material of
//! every objective function: wait time, response time, slowdown, and bounded
//! slowdown. This module computes them from completed-job records.

use psbench_swf::SwfRecord;
use serde::{Deserialize, Serialize};

/// The threshold (in seconds) used by the *bounded* slowdown metric: runtimes
/// shorter than this are clamped up to it so that very short jobs do not dominate
/// the average. Ten seconds is the customary value in the JSSPP literature.
pub const BOUNDED_SLOWDOWN_THRESHOLD: f64 = 10.0;

/// The outcome of one job's passage through the system, as needed by the metrics.
///
/// This is deliberately independent of the simulator so it can be computed from an
/// SWF record of a real log, from a simulation result, or constructed by hand in
/// tests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Job identifier (for reports; not used by the formulas).
    pub job_id: u64,
    /// Submit (arrival) time in seconds.
    pub submit_time: f64,
    /// Time the job started running, in seconds.
    pub start_time: f64,
    /// Time the job finished, in seconds.
    pub end_time: f64,
    /// Number of processors used.
    pub procs: u32,
    /// Whether the job completed successfully (killed/cancelled jobs are usually
    /// excluded from response-time statistics but counted for utilization).
    pub completed: bool,
}

impl JobOutcome {
    /// Construct an outcome from an SWF record, if the record carries enough
    /// information (wait time, run time and processors must all be known).
    pub fn from_swf(record: &SwfRecord) -> Option<Self> {
        let wait = record.wait_time?;
        let run = record.run_time?;
        let procs = record.procs()?;
        Some(JobOutcome {
            job_id: record.job_id,
            submit_time: record.submit_time as f64,
            start_time: (record.submit_time + wait) as f64,
            end_time: (record.submit_time + wait + run) as f64,
            procs,
            completed: record.status.is_successful()
                || record.status == psbench_swf::CompletionStatus::Unknown,
        })
    }

    /// Wait time: start − submit.
    pub fn wait_time(&self) -> f64 {
        self.start_time - self.submit_time
    }

    /// Run time: end − start.
    pub fn run_time(&self) -> f64 {
        self.end_time - self.start_time
    }

    /// Response time (turnaround): end − submit.
    pub fn response_time(&self) -> f64 {
        self.end_time - self.submit_time
    }

    /// Slowdown: response time divided by run time. Undefined (infinite) for zero
    /// runtime jobs; use [`bounded_slowdown`](Self::bounded_slowdown) to avoid that.
    pub fn slowdown(&self) -> f64 {
        let run = self.run_time();
        if run <= 0.0 {
            f64::INFINITY
        } else {
            self.response_time() / run
        }
    }

    /// Bounded slowdown with the customary 10-second threshold.
    pub fn bounded_slowdown(&self) -> f64 {
        self.bounded_slowdown_with(BOUNDED_SLOWDOWN_THRESHOLD)
    }

    /// Bounded slowdown with an explicit threshold `tau`:
    /// `max(1, response / max(runtime, tau))`.
    pub fn bounded_slowdown_with(&self, tau: f64) -> f64 {
        let denom = self.run_time().max(tau);
        (self.response_time() / denom).max(1.0)
    }

    /// Processor-seconds consumed by the job.
    pub fn area(&self) -> f64 {
        self.run_time() * self.procs as f64
    }

    /// Area-weighted wait ("processor waiting cost"): wait × processors. Used by
    /// owner-policy objective functions that penalize keeping wide jobs waiting.
    pub fn weighted_wait(&self) -> f64 {
        self.wait_time() * self.procs as f64
    }
}

/// Extract job outcomes from all usable summary records of an SWF log.
pub fn outcomes_from_log(log: &psbench_swf::SwfLog) -> Vec<JobOutcome> {
    log.summaries().filter_map(JobOutcome::from_swf).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbench_swf::{CompletionStatus, SwfHeader, SwfLog, SwfRecordBuilder};

    fn outcome(submit: f64, start: f64, end: f64, procs: u32) -> JobOutcome {
        JobOutcome {
            job_id: 1,
            submit_time: submit,
            start_time: start,
            end_time: end,
            procs,
            completed: true,
        }
    }

    #[test]
    fn basic_formulas() {
        let j = outcome(0.0, 30.0, 130.0, 8);
        assert_eq!(j.wait_time(), 30.0);
        assert_eq!(j.run_time(), 100.0);
        assert_eq!(j.response_time(), 130.0);
        assert!((j.slowdown() - 1.3).abs() < 1e-12);
        assert!((j.bounded_slowdown() - 1.3).abs() < 1e-12);
        assert_eq!(j.area(), 800.0);
        assert_eq!(j.weighted_wait(), 240.0);
    }

    #[test]
    fn slowdown_of_zero_wait_job_is_one() {
        let j = outcome(10.0, 10.0, 110.0, 1);
        assert_eq!(j.slowdown(), 1.0);
        assert_eq!(j.bounded_slowdown(), 1.0);
    }

    #[test]
    fn zero_runtime_job_slowdown_is_infinite_but_bounded_is_finite() {
        let j = outcome(0.0, 50.0, 50.0, 1);
        assert!(j.slowdown().is_infinite());
        // bounded: response 50 / max(0, 10) = 5
        assert_eq!(j.bounded_slowdown(), 5.0);
    }

    #[test]
    fn short_job_bounded_slowdown_clamped() {
        // 1 second job that waited 1 second: raw slowdown 2, bounded = 2/10 -> clamped to 1? No:
        // response = 2, denom = max(1,10)=10, 2/10=0.2 -> max(.,1)=1.
        let j = outcome(0.0, 1.0, 2.0, 1);
        assert_eq!(j.slowdown(), 2.0);
        assert_eq!(j.bounded_slowdown(), 1.0);
    }

    #[test]
    fn bounded_slowdown_custom_threshold() {
        let j = outcome(0.0, 10.0, 15.0, 1);
        // runtime 5, response 15; tau=1 -> 15/5 = 3 ; tau=60 -> 15/60=0.25 -> 1
        assert_eq!(j.bounded_slowdown_with(1.0), 3.0);
        assert_eq!(j.bounded_slowdown_with(60.0), 1.0);
    }

    #[test]
    fn from_swf_requires_complete_information() {
        let full = SwfRecordBuilder::new(3, 100)
            .wait_time(20)
            .run_time(300)
            .allocated_procs(32)
            .status(CompletionStatus::Completed)
            .build();
        let o = JobOutcome::from_swf(&full).unwrap();
        assert_eq!(o.job_id, 3);
        assert_eq!(o.submit_time, 100.0);
        assert_eq!(o.start_time, 120.0);
        assert_eq!(o.end_time, 420.0);
        assert_eq!(o.procs, 32);
        assert!(o.completed);

        let missing = SwfRecordBuilder::new(4, 100).run_time(300).build();
        assert!(JobOutcome::from_swf(&missing).is_none());
    }

    #[test]
    fn from_swf_marks_failed_jobs() {
        let failed = SwfRecordBuilder::new(5, 0)
            .wait_time(1)
            .run_time(10)
            .allocated_procs(1)
            .status(CompletionStatus::Failed)
            .build();
        let o = JobOutcome::from_swf(&failed).unwrap();
        assert!(!o.completed);
    }

    #[test]
    fn outcomes_from_log_skips_partials_and_incomplete_records() {
        let mut part = SwfRecordBuilder::new(1, 0)
            .wait_time(0)
            .run_time(10)
            .allocated_procs(2)
            .build();
        part.status = CompletionStatus::PartialContinued;
        let jobs = vec![
            SwfRecordBuilder::new(1, 0)
                .wait_time(0)
                .run_time(20)
                .allocated_procs(2)
                .status(CompletionStatus::Completed)
                .build(),
            part,
            SwfRecordBuilder::new(2, 5).build(), // unusable
        ];
        let log = SwfLog::new(SwfHeader::default(), jobs);
        let outcomes = outcomes_from_log(&log);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].job_id, 1);
    }
}
