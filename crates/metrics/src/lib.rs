//! # psbench-metrics — metrics and objective functions for parallel job scheduling
//!
//! The paper's Section 1.2 observes that "the measured performance of a system
//! depends not only on the system and workload, but also on the metrics used to
//! gauge performance", and that different metrics may rank the same schedulers
//! differently. This crate provides the standard metric set so every experiment in
//! the workspace measures the same quantities the same way:
//!
//! * [`job`] — per-job metrics: wait, response time, slowdown, bounded slowdown.
//! * [`aggregate`] — means, percentiles, weighted means, batch-means confidence
//!   intervals, and the per-workload aggregate report.
//! * [`system`] — machine-owner metrics: utilization, throughput, makespan, loss of
//!   capacity, and a simple economic cost model.
//! * [`objective`] — standard and owner-weighted objective functions, scheduler
//!   ranking, and metric-disagreement detection (experiments E1/E2).
//! * [`stats`] — distribution statistics and the co-plot-style workload comparison
//!   (experiment E3).

#![warn(missing_docs)]

pub mod aggregate;
pub mod job;
pub mod objective;
pub mod stats;
pub mod system;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::aggregate::{
        batch_means_ci, geometric_mean, percentile_sorted, summarize, weighted_mean,
        AggregateMetrics, ConfidenceInterval, Summary,
    };
    pub use crate::job::{outcomes_from_log, JobOutcome, BOUNDED_SLOWDOWN_THRESHOLD};
    pub use crate::objective::{
        objectives_disagree, rank_by_objective, rank_by_weighted, Objective, SchedulerResult,
        WeightedObjective,
    };
    pub use crate::stats::{
        compare_workloads, moments, pearson_correlation, workload_features, ComparisonMatrix, Ecdf,
        Moments, WorkloadFeatures,
    };
    pub use crate::system::{system_metrics, CostModel, SystemMetrics, SystemObservation};
}

pub use prelude::*;
