//! Property tests for the sharded metasystem's epoch loop.
//!
//! The headline property is the determinism contract of [`run_metasystem`]:
//! over randomized fleets, mixed workload models, outages (and the migrations
//! they induce), the parallel epoch advance is **bit-identical** to the
//! serial twin for any thread count, and the result does not depend on the
//! order jobs are handed over or on the order shard completions are
//! harvested within an epoch.

use proptest::prelude::*;
use psbench_metasim::{
    run_metasystem, standard_shard_fleet, DispatchPolicy, Dispatcher, MetaConfig, Shard, ShardSpec,
    SiteOutage,
};
use psbench_sim::SimJob;
use psbench_workload::{Downey97, Feitelson96, Jann97, Lublin99, WorkloadModel};

/// Local schedulers drawn for randomized fleets: a spread of the zoo
/// (greedy, backfilling, sorted-order) rather than every registry entry, to
/// keep the 128-case budget fast while still mixing policies across sites.
const ZOO: &[&str] = &["fcfs", "easy", "sjf", "greedy-fcfs"];

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A randomized heterogeneous fleet: palette sizes/speeds from
/// [`standard_shard_fleet`], local policy per site drawn from [`ZOO`].
fn fleet(n_sites: usize, policy_seed: u64) -> Vec<ShardSpec> {
    let mut specs = standard_shard_fleet(n_sites, "fcfs");
    for (i, spec) in specs.iter_mut().enumerate() {
        spec.scheduler =
            ZOO[(splitmix64(policy_seed ^ i as u64) % ZOO.len() as u64) as usize].to_string();
    }
    specs
}

/// A mixed-model global arrival stream: jobs from one of the four rigid
/// workload models, renumbered 1..=n (distinct ids below the migration band).
fn mixed_workload(kind: u8, n_jobs: usize, seed: u64) -> Vec<SimJob> {
    let model: Box<dyn WorkloadModel> = match kind % 4 {
        0 => Box::new(Lublin99::with_machine_size(256)),
        1 => Box::new(Jann97::with_machine_size(256)),
        2 => Box::new(Feitelson96::with_machine_size(256)),
        _ => Box::new(Downey97::with_machine_size(256)),
    };
    let mut jobs = SimJob::from_log(&model.generate(n_jobs, seed));
    for (i, job) in jobs.iter_mut().enumerate() {
        job.id = i as u64 + 1;
        job.preceding = None;
        job.think_time = 0.0;
    }
    jobs
}

/// Scale raw outage draws onto the workload's actual time span so outages
/// really overlap arrivals (and so migrations actually happen).
fn scale_outages(
    raw: &[(u8, u16, u16)],
    n_sites: usize,
    jobs: &[SimJob],
    epoch_len: f64,
) -> Vec<SiteOutage> {
    let span = jobs.iter().map(|j| j.submit).fold(0.0f64, f64::max) + epoch_len;
    raw.iter()
        .map(|&(site, start, len)| SiteOutage {
            site: site as u32 % n_sites as u32,
            start: span * start as f64 / 1000.0,
            end: span * start as f64 / 1000.0 + (1 + len as u64) as f64 * epoch_len / 3.0,
        })
        .collect()
}

fn policy_strategy() -> impl Strategy<Value = DispatchPolicy> {
    prop_oneof![
        Just(DispatchPolicy::RoundRobin),
        Just(DispatchPolicy::LeastPressure),
        Just(DispatchPolicy::Affinity),
        Just(DispatchPolicy::Reserve),
    ]
}

/// Deterministic Fisher–Yates permutation of `0..n` from a seed.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (splitmix64(seed ^ (i as u64) << 17) % (i as u64 + 1)) as usize;
        p.swap(i, j);
    }
    p
}

proptest! {
    /// The headline property: over randomized fleets, mixed workload models,
    /// dispatch policies, and outages (which force cancellations and
    /// migrations), the parallel advance at 2 and 8 threads is bit-identical
    /// to the single-threaded serial twin — results, fingerprints, and
    /// rendered reports all `==`.
    #[test]
    fn parallel_epoch_advance_is_bit_identical_to_the_serial_twin(
        n_sites in 2usize..6,
        policy_seed in 0u64..1_000,
        kind in 0u8..4,
        n_jobs in 8usize..40,
        seed in 0u64..10_000,
        raw_outages in prop::collection::vec((0u8..8, 0u16..1000, 0u16..6), 0..3),
        dispatch in policy_strategy(),
    ) {
        let specs = fleet(n_sites, policy_seed);
        let jobs = mixed_workload(kind, n_jobs, seed);
        let epoch_len = 1800.0;
        let outages = scale_outages(&raw_outages, n_sites, &jobs, epoch_len);
        let cfg = MetaConfig::new(dispatch)
            .with_epoch_len(epoch_len)
            .with_outages(outages);

        let serial = run_metasystem(&specs, &jobs, &cfg.clone().with_threads(1)).unwrap();
        for threads in [2usize, 8] {
            let par = run_metasystem(&specs, &jobs, &cfg.clone().with_threads(threads)).unwrap();
            prop_assert_eq!(&par.result, &serial.result);
            prop_assert_eq!(par.fingerprint(), serial.fingerprint());
            prop_assert_eq!(par.render_report(), serial.render_report());
        }

        // Identity survives migrations: every finished job carries its
        // original id exactly once, with its original submit time.
        let mut ids: Vec<u64> = serial.result.finished.iter().map(|f| f.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), serial.result.finished.len());
        prop_assert_eq!(
            serial.result.finished.len() + serial.result.unfinished,
            jobs.len()
        );
        for f in &serial.result.finished {
            let original = &jobs[(f.id - 1) as usize];
            prop_assert_eq!(f.submit.to_bits(), original.submit.to_bits());
        }
    }

    /// Dispatch is a pure function of the canonical `(submit, id)` stream:
    /// permuting the order the job vector is handed over changes nothing,
    /// bit for bit.
    #[test]
    fn results_are_invariant_under_permutation_of_the_job_vector(
        n_sites in 2usize..6,
        kind in 0u8..4,
        n_jobs in 8usize..32,
        seed in 0u64..10_000,
        perm_seed in 0u64..1_000,
        dispatch in policy_strategy(),
    ) {
        let specs = fleet(n_sites, seed);
        let jobs = mixed_workload(kind, n_jobs, seed);
        let cfg = MetaConfig::new(dispatch).with_epoch_len(1800.0);

        let baseline = run_metasystem(&specs, &jobs, &cfg).unwrap();
        let shuffled: Vec<SimJob> = permutation(jobs.len(), perm_seed)
            .into_iter()
            .map(|i| jobs[i].clone())
            .collect();
        let permuted = run_metasystem(&specs, &shuffled, &cfg).unwrap();
        prop_assert_eq!(baseline.result, permuted.result);
        prop_assert_eq!(baseline.render_report(), permuted.render_report());
    }

    /// Dispatch-policy determinism under permuted shard completion arrival:
    /// within an epoch, shards complete work in whatever order the worker
    /// threads reach them. Advancing and harvesting the shards in a permuted
    /// order must leave every shard in an identical state, so the dispatcher
    /// makes the identical pick sequence for the next epoch's arrivals.
    #[test]
    fn dispatcher_picks_are_invariant_under_permuted_completion_arrival(
        n_sites in 2usize..8,
        policy_seed in 0u64..1_000,
        n_jobs in 4usize..24,
        seed in 0u64..10_000,
        perm_seed in 0u64..1_000,
        dispatch in policy_strategy(),
    ) {
        let specs = fleet(n_sites, policy_seed);
        let warmup = mixed_workload(0, 16, seed);
        let arrivals = mixed_workload(1, n_jobs, seed ^ 0xBEEF);

        // Two identical fleets; only the order of shard-local advance and
        // harvest calls differs between them.
        let build = |order: &[usize]| -> (Vec<Vec<u64>>, Vec<usize>) {
            let mut shards: Vec<Shard> = specs
                .iter()
                .cloned()
                .map(|s| Shard::new(s).unwrap())
                .collect();
            let down = vec![false; shards.len()];
            // Seed every shard with the warmup stream (round-robin) so the
            // frontier advance below produces real completions and queues.
            for (i, job) in warmup.iter().enumerate() {
                let s = i % shards.len();
                shards[s].submit(job, job.id, job.submit.max(0.0)).unwrap();
            }
            let frontier = warmup.iter().map(|j| j.submit).fold(0.0f64, f64::max) + 3600.0;
            let mut harvests: Vec<Vec<u64>> = vec![Vec::new(); shards.len()];
            for &s in order {
                shards[s].advance_to(frontier);
                harvests[s] = shards[s].harvest().iter().map(|f| f.id).collect();
            }
            // Next epoch: the dispatcher routes fresh arrivals against the
            // post-completion shard states.
            let mut dispatcher = Dispatcher::new(dispatch);
            dispatcher.begin_epoch(&shards, &down);
            let mut picks = Vec::new();
            for job in &arrivals {
                let s = dispatcher.pick(&mut shards, &down, job, frontier).unwrap();
                shards[s].submit(job, 1_000_000 + job.id, frontier).unwrap();
                dispatcher.note_submitted(&shards, s);
                picks.push(s);
            }
            (harvests, picks)
        };

        let identity: Vec<usize> = (0..n_sites).collect();
        let (harvest_a, picks_a) = build(&identity);
        let (harvest_b, picks_b) = build(&permutation(n_sites, perm_seed));
        prop_assert_eq!(harvest_a, harvest_b);
        prop_assert_eq!(picks_a, picks_b);
    }
}
