//! Engine shards: each metasystem site wraps an independent online
//! [`Simulation`] plus a local scheduling policy from the zoo.
//!
//! Where [`crate::site`] models a site analytically (the paper's "simple
//! models of local schedulers"), a [`Shard`] *is* a local scheduler: a real
//! O(log n) calendar engine advanced online epoch by epoch, so cross-site
//! dispatch decisions are evaluated against real queues, real backfilling,
//! and real completions. Shards never interact mid-epoch — every cross-shard
//! decision happens at epoch boundaries on the driving thread (see
//! [`crate::epoch`]) — which is what makes the fleet embarrassingly parallel.

use psbench_sched::{by_name, UnknownScheduler};
use psbench_sim::{
    Cluster, FinishedJob, JobQueue, OnlineError, Scheduler, SimConfig, SimJob, Simulation,
    SimulationResult,
};
use serde::{Deserialize, Serialize};

/// The static description of an engine shard: one site of the metasystem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Site identifier (also the shard's position in the fleet).
    pub id: u32,
    /// Number of processors.
    pub procs: u32,
    /// Relative processor speed; 1.0 is the reference speed. Runtimes scale
    /// by `1 / speed`.
    pub speed: f64,
    /// Local scheduling policy, by registry name (`fcfs`, `easy`,
    /// `conservative`, ...).
    pub scheduler: String,
}

impl ShardSpec {
    /// A reference-speed shard of the given size under the given policy.
    pub fn new(id: u32, procs: u32, scheduler: &str) -> Self {
        ShardSpec {
            id,
            procs: procs.max(1),
            speed: 1.0,
            scheduler: scheduler.to_string(),
        }
    }
}

/// Build a heterogeneous fleet of `n` shard specs, cycling the same size and
/// speed palette as [`crate::site::standard_metasystem`] so the analytic and
/// engine-backed metasystems describe comparable hardware.
pub fn standard_shard_fleet(n: usize, scheduler: &str) -> Vec<ShardSpec> {
    let sizes = [128u32, 256, 64, 512, 96, 384];
    let speeds = [1.0, 1.4, 0.8, 2.0, 1.1, 0.9];
    (0..n)
        .map(|i| {
            let mut spec = ShardSpec::new(i as u32, sizes[i % sizes.len()], scheduler);
            spec.speed = speeds[i % speeds.len()];
            spec
        })
        .collect()
}

/// One site of the sharded metasystem: an online engine, its local policy,
/// and the bookkeeping the epoch loop needs.
pub struct Shard {
    /// The static description of this shard.
    pub spec: ShardSpec,
    sim: Simulation,
    policy: Box<dyn Scheduler>,
    /// Advisory reservation calendar for co-allocating dispatch policies.
    /// Separate from the engine (local policies keep full control of their
    /// machine); bookings model the negotiation of Section 3.1 and steer
    /// [`crate::dispatch::DispatchPolicy::Reserve`] away from booked sites.
    pub calendar: Cluster,
    /// Processors demanded by jobs dispatched this epoch whose arrival events
    /// have not fired yet — they are in the engine but not in its queue, so
    /// queue aggregates alone would undercount pressure mid-dispatch. Reset
    /// by [`Shard::advance_to`].
    pub inflight: u64,
    harvested: usize,
}

impl Shard {
    /// Build a shard: a fresh online engine of `spec.procs` processors under
    /// a newly constructed local policy.
    pub fn new(spec: ShardSpec) -> Result<Self, UnknownScheduler> {
        let mut policy = by_name(&spec.scheduler, spec.procs)?;
        let mut sim = Simulation::new_online(SimConfig::new(spec.procs));
        sim.begin(policy.as_mut());
        Ok(Shard {
            calendar: Cluster::new(spec.procs.max(1)),
            sim,
            policy,
            inflight: 0,
            harvested: 0,
            spec,
        })
    }

    /// The runtime of `reference_runtime` seconds of computation on this
    /// shard's processors (heterogeneous speed applied).
    pub fn scaled_runtime(&self, reference_runtime: f64) -> f64 {
        reference_runtime / self.spec.speed.max(1e-9)
    }

    /// Submit a (rigid) metasystem job to this shard under `engine_id`,
    /// arriving at time `at`: the runtime and estimate are scaled by the
    /// shard's speed and the processor request is clamped to the machine.
    pub fn submit(&mut self, job: &SimJob, engine_id: u64, at: f64) -> Result<(), OnlineError> {
        let procs = job.procs.min(self.spec.procs).max(1);
        let scaled = SimJob {
            id: engine_id,
            submit: at,
            work: self.scaled_runtime(job.work),
            estimate: self.scaled_runtime(job.estimate.max(job.work)),
            procs,
            user: job.user,
            preceding: None,
            think_time: 0.0,
            speedup: None,
        };
        self.sim.submit(scaled)?;
        self.inflight += procs as u64;
        Ok(())
    }

    /// Advance the shard's engine to the epoch boundary `frontier`,
    /// processing every local event strictly below it. Pure shard-local work:
    /// this is the call the epoch loop fans out across threads.
    pub fn advance_to(&mut self, frontier: f64) {
        self.sim.advance_released(self.policy.as_mut(), frontier);
        self.inflight = 0;
    }

    /// The completions this shard produced since the last harvest, in the
    /// engine's completion order. Called on the driving thread in site-id
    /// order, which is what makes the merged stream deterministic.
    pub fn harvest(&mut self) -> &[FinishedJob] {
        let all = self.sim.finished_jobs();
        let from = self.harvested;
        self.harvested = all.len();
        &all[from..]
    }

    /// Cancel a queued or pending job (used when an outage migrates the
    /// shard's backlog elsewhere).
    pub fn cancel(&mut self, engine_id: u64) -> Result<(), OnlineError> {
        self.sim.cancel(self.policy.as_mut(), engine_id)
    }

    /// Engine ids of the queued jobs, in arrival order.
    pub fn queued_engine_ids(&self) -> Vec<u64> {
        self.sim.queue().iter().map(|q| q.job.id).collect()
    }

    /// The shard's load pressure: demanded-but-unserved processor work
    /// relative to the machine's delivery rate. Combines the backlog index's
    /// O(1) demanded-procs aggregate, the capacity in use, and the demand
    /// dispatched this epoch but not yet arrived — all O(1) reads, which is
    /// what lets least-pressure dispatch consult a thousand shards per epoch.
    pub fn pressure(&self) -> f64 {
        let demanded = self.sim.queue().demanded_procs() as f64
            + self.sim.used_capacity()
            + self.inflight as f64;
        demanded / (self.spec.procs as f64 * self.spec.speed.max(1e-9))
    }

    /// [`Shard::pressure`] as total-order bits, for heap keys. Pressure is
    /// never negative, so the IEEE bit pattern orders correctly.
    pub fn pressure_bits(&self) -> u64 {
        self.pressure().to_bits()
    }

    /// The wait queue of the underlying engine (backlog aggregates included).
    pub fn queue(&self) -> &JobQueue {
        self.sim.queue()
    }

    /// Jobs waiting in the shard's queue.
    pub fn queue_len(&self) -> usize {
        self.sim.queue_len()
    }

    /// Jobs currently holding processors on this shard.
    pub fn running_len(&self) -> usize {
        self.sim.running_len()
    }

    /// Drain the shard to completion and return the engine's result (site
    /// times, engine ids).
    pub fn finish(self) -> SimulationResult {
        let Shard {
            sim, mut policy, ..
        } = self;
        sim.finish(policy.as_mut())
    }
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("spec", &self.spec)
            .field("queued", &self.queue_len())
            .field("running", &self.running_len())
            .field("inflight", &self.inflight)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_runs_jobs_through_a_real_engine() {
        let mut shard = Shard::new(ShardSpec::new(0, 64, "easy")).unwrap();
        for i in 0..10u64 {
            let job = SimJob::rigid(i + 1, i as f64 * 10.0, 100.0, 32);
            shard.submit(&job, i + 1, job.submit).unwrap();
        }
        assert_eq!(
            shard.queue_len() + shard.running_len(),
            0,
            "nothing arrived yet"
        );
        shard.advance_to(55.0);
        assert!(shard.running_len() > 0 || shard.queue_len() > 0);
        let result = shard.finish();
        assert_eq!(result.finished.len(), 10);
    }

    #[test]
    fn speed_scales_runtimes() {
        let mut spec = ShardSpec::new(0, 64, "fcfs");
        spec.speed = 2.0;
        let mut fast = Shard::new(spec).unwrap();
        let job = SimJob::rigid(1, 0.0, 100.0, 64);
        fast.submit(&job, 1, 0.0).unwrap();
        let result = fast.finish();
        assert_eq!(result.finished.len(), 1);
        assert!((result.finished[0].end - 50.0).abs() < 1e-9);
    }

    #[test]
    fn pressure_tracks_queue_running_and_inflight_demand() {
        let mut shard = Shard::new(ShardSpec::new(0, 100, "fcfs")).unwrap();
        assert_eq!(shard.pressure(), 0.0);
        // Dispatched but not yet arrived: counted as inflight.
        shard
            .submit(&SimJob::rigid(1, 10.0, 1000.0, 60), 1, 10.0)
            .unwrap();
        shard
            .submit(&SimJob::rigid(2, 10.0, 1000.0, 60), 2, 10.0)
            .unwrap();
        assert!((shard.pressure() - 1.2).abs() < 1e-9, "inflight demand");
        // After the advance both arrived: one runs (used capacity), one queues
        // (backlog demanded procs); inflight resets.
        shard.advance_to(20.0);
        assert_eq!(shard.inflight, 0);
        assert_eq!(shard.running_len(), 1);
        assert_eq!(shard.queue_len(), 1);
        assert!((shard.pressure() - 1.2).abs() < 1e-9, "arrived demand");
        assert_eq!(shard.queue().demanded_procs(), 60);
    }

    #[test]
    fn harvest_returns_each_completion_exactly_once() {
        let mut shard = Shard::new(ShardSpec::new(0, 64, "easy")).unwrap();
        for i in 0..6u64 {
            let job = SimJob::rigid(i + 1, 0.0, (i + 1) as f64 * 10.0, 64);
            shard.submit(&job, i + 1, 0.0).unwrap();
        }
        let mut seen = Vec::new();
        let mut t = 0.0;
        while seen.len() < 6 {
            t += 25.0;
            shard.advance_to(t);
            seen.extend(shard.harvest().iter().map(|f| f.id));
            assert!(t < 1e6, "runaway");
        }
        assert!(shard.harvest().is_empty(), "harvest is a suffix cursor");
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn standard_fleet_cycles_the_palette() {
        let fleet = standard_shard_fleet(8, "easy");
        assert_eq!(fleet.len(), 8);
        assert_eq!(fleet[0].procs, 128);
        assert_eq!(fleet[6].procs, 128, "palette cycles");
        assert!(fleet.iter().all(|s| s.scheduler == "easy"));
        assert!(fleet.windows(2).any(|w| w[0].speed != w[1].speed));
    }
}
