//! Meta-schedulers and application schedulers.
//!
//! Following Figure 1 of the paper, *meta-schedulers* sit between users and the
//! machine schedulers of individual sites: they pick sites for requests using
//! whatever information is available (current load, queue-wait predictions, cost),
//! and — for multi-site applications — obtain simultaneous access either by hoping
//! the queues line up or by booking advance reservations (Section 3.1). *Application
//! schedulers* are the special case that maps the modules of one annotated program
//! graph onto the offered resources.

use crate::appmodel::{AppGraph, Device, Network};
use crate::site::{Site, SitePlacement};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Where each device of the metasystem lives (device-constrained modules must be
/// placed on the hosting site).
#[derive(Debug, Clone, Default)]
pub struct DeviceMap {
    hosting: HashMap<Device, u32>,
}

impl DeviceMap {
    /// Spread the three device kinds across the given sites round-robin.
    pub fn spread_over(sites: &[Site]) -> Self {
        let mut hosting = HashMap::new();
        if !sites.is_empty() {
            for (i, d) in [Device::Visualization, Device::Archive, Device::Instrument]
                .into_iter()
                .enumerate()
            {
                hosting.insert(d, sites[i % sites.len()].spec.id);
            }
        }
        DeviceMap { hosting }
    }

    /// The site hosting a device, if any.
    pub fn site_of(&self, device: Device) -> Option<u32> {
        self.hosting.get(&device).copied()
    }
}

/// How the meta-scheduler picks a site for a module / request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// Pick the site with the smallest predicted queue wait.
    LeastPredictedWait,
    /// Pick the site with the earliest predicted completion (wait + runtime +
    /// incoming data transfers) — the application-centric choice.
    FastestCompletion,
    /// Pick the cheapest site (the economic model of Section 4.2), breaking ties by
    /// predicted completion.
    Cheapest,
    /// Round robin over sites (the naive baseline).
    RoundRobin,
}

impl PlacementStrategy {
    /// All strategies, for sweeps.
    pub fn all() -> &'static [PlacementStrategy] {
        &[
            PlacementStrategy::LeastPredictedWait,
            PlacementStrategy::FastestCompletion,
            PlacementStrategy::Cheapest,
            PlacementStrategy::RoundRobin,
        ]
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PlacementStrategy::LeastPredictedWait => "least-wait",
            PlacementStrategy::FastestCompletion => "fastest-completion",
            PlacementStrategy::Cheapest => "cheapest",
            PlacementStrategy::RoundRobin => "round-robin",
        }
    }
}

/// The schedule of one application graph across the metasystem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSchedule {
    /// Application name.
    pub app: String,
    /// Per-module placements, indexed like the graph's modules.
    pub placements: Vec<SitePlacement>,
    /// Turnaround of the whole application (last module end − submission).
    pub makespan: f64,
    /// Total cost charged across sites.
    pub cost: f64,
}

/// An application scheduler: maps modules of a graph onto sites in topological
/// order using the chosen placement strategy.
#[derive(Debug, Clone)]
pub struct AppScheduler {
    /// Placement strategy.
    pub strategy: PlacementStrategy,
    /// The inter-site network model.
    pub network: Network,
    rr_next: usize,
}

impl AppScheduler {
    /// Create an application scheduler.
    pub fn new(strategy: PlacementStrategy, network: Network) -> Self {
        AppScheduler {
            strategy,
            network,
            rr_next: 0,
        }
    }

    fn pick_site(
        &mut self,
        sites: &[Site],
        devices: &DeviceMap,
        module: &crate::appmodel::Module,
        ready: f64,
    ) -> usize {
        // A device constraint pins the module.
        if let Some(dev) = module.device {
            if let Some(site_id) = devices.site_of(dev) {
                if let Some(idx) = sites.iter().position(|s| s.spec.id == site_id) {
                    return idx;
                }
            }
        }
        match self.strategy {
            PlacementStrategy::RoundRobin => {
                let idx = self.rr_next % sites.len();
                self.rr_next += 1;
                idx
            }
            PlacementStrategy::LeastPredictedWait => (0..sites.len())
                .min_by(|&a, &b| {
                    let wa = sites[a].predict_wait(ready, module.procs);
                    let wb = sites[b].predict_wait(ready, module.procs);
                    wa.total_cmp(&wb)
                })
                .unwrap_or(0),
            PlacementStrategy::FastestCompletion => (0..sites.len())
                .min_by(|&a, &b| {
                    let ca = sites[a].predict_wait(ready, module.procs)
                        + sites[a].runtime_of(module.work, module.procs);
                    let cb = sites[b].predict_wait(ready, module.procs)
                        + sites[b].runtime_of(module.work, module.procs);
                    ca.total_cmp(&cb)
                })
                .unwrap_or(0),
            PlacementStrategy::Cheapest => (0..sites.len())
                .min_by(|&a, &b| {
                    let pa = module.work / sites[a].spec.speed * sites[a].spec.cost_per_proc_second;
                    let pb = module.work / sites[b].spec.speed * sites[b].spec.cost_per_proc_second;
                    pa.total_cmp(&pb)
                })
                .unwrap_or(0),
        }
    }

    /// Schedule one application graph submitted at `now` onto the sites.
    pub fn schedule(
        &mut self,
        app: &AppGraph,
        sites: &mut [Site],
        devices: &DeviceMap,
        now: f64,
    ) -> AppSchedule {
        assert!(!sites.is_empty(), "metasystem has no sites");
        assert!(app.is_well_formed(), "application graph is malformed");
        let mut placements: Vec<SitePlacement> = Vec::with_capacity(app.modules.len());
        for module in &app.modules {
            // Ready when all predecessors have finished and their data has arrived.
            let mut ready = now;
            for pred in app.predecessors(module.id) {
                let p = &placements[pred];
                let data = app
                    .edges
                    .iter()
                    .find(|e| e.from == pred && e.to == module.id)
                    .map(|e| e.data_mb)
                    .unwrap_or(0.0);
                // The destination site is not chosen yet; charge the transfer against
                // the slowest possibility only once the choice is made below. Use the
                // pred end as the lower bound here.
                ready = ready.max(p.end + self.network.latency.max(0.0) * 0.0);
                let _ = data;
            }
            let site_idx = self.pick_site(sites, devices, module, ready);
            // Now account the transfers to the chosen site.
            let mut ready_with_transfers = ready;
            for pred in app.predecessors(module.id) {
                let p = &placements[pred];
                let data = app
                    .edges
                    .iter()
                    .find(|e| e.from == pred && e.to == module.id)
                    .map(|e| e.data_mb)
                    .unwrap_or(0.0);
                let arrive = p.end
                    + self
                        .network
                        .transfer_time(p.site, sites[site_idx].spec.id, data);
                ready_with_transfers = ready_with_transfers.max(arrive);
            }
            let placement = sites[site_idx].submit(ready_with_transfers, module.work, module.procs);
            placements.push(placement);
        }
        let end = placements.iter().map(|p| p.end).fold(now, f64::max);
        let cost = placements.iter().map(|p| p.cost).sum();
        AppSchedule {
            app: app.name.clone(),
            placements,
            makespan: end - now,
            cost,
        }
    }
}

/// A request for simultaneous access to several sites (co-allocation): `procs`
/// processors on each of `parts` sites, for `duration` seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoallocationRequest {
    /// Number of sites the application must span.
    pub parts: usize,
    /// Processors needed on each site.
    pub procs: u32,
    /// Duration of the coupled computation, seconds (at reference speed).
    pub duration: f64,
}

/// How a co-allocation attempt went.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoallocationOutcome {
    /// Mechanism used ("queues" or "reservations").
    pub mechanism: String,
    /// Time the coupled computation actually started on all parts.
    pub start: f64,
    /// Whether all parts started within the tolerance window of each other.
    pub synchronized: bool,
    /// Node-seconds wasted by parts that held processors while waiting for the
    /// slowest part (zero for reservation-based co-allocation).
    pub wasted_node_seconds: f64,
}

/// Attempt co-allocation by submitting the parts to the `parts` least-loaded sites'
/// queues and letting each start whenever its queue lets it (the status quo the
/// paper criticizes: queue-wait predictions are "still relatively inaccurate,
/// making them inadequate ... for co-allocation").
pub fn coallocate_via_queues(
    req: &CoallocationRequest,
    sites: &mut [Site],
    now: f64,
    tolerance: f64,
) -> CoallocationOutcome {
    assert!(req.parts >= 1 && req.parts <= sites.len());
    // Choose the sites with the smallest predicted waits.
    let mut order: Vec<usize> = (0..sites.len()).collect();
    order.sort_by(|&a, &b| {
        let wa = sites[a].predict_wait(now, req.procs);
        let wb = sites[b].predict_wait(now, req.procs);
        wa.total_cmp(&wb)
    });
    let chosen = &order[..req.parts];
    let work = req.duration * req.procs as f64;
    let placements: Vec<SitePlacement> = chosen
        .iter()
        .map(|&i| sites[i].submit(now, work, req.procs))
        .collect();
    let latest_start = placements.iter().map(|p| p.start).fold(0.0, f64::max);
    let earliest_start = placements
        .iter()
        .map(|p| p.start)
        .fold(f64::INFINITY, f64::min);
    let wasted: f64 = placements
        .iter()
        .map(|p| (latest_start - p.start) * p.procs as f64)
        .sum();
    CoallocationOutcome {
        mechanism: "queues".to_string(),
        start: latest_start,
        synchronized: latest_start - earliest_start <= tolerance,
        wasted_node_seconds: wasted,
    }
}

/// Co-allocation via advance reservations: find the earliest time at which every
/// chosen site can promise the processors, book all the reservations, and start the
/// coupled computation exactly then (the mechanism Section 3.1 asks local
/// schedulers to provide).
pub fn coallocate_via_reservations(
    req: &CoallocationRequest,
    sites: &mut [Site],
    now: f64,
    lead_time: f64,
) -> Option<CoallocationOutcome> {
    assert!(req.parts >= 1 && req.parts <= sites.len());
    let capable: Vec<usize> = (0..sites.len())
        .filter(|&i| sites[i].spec.supports_reservations && sites[i].spec.procs >= req.procs)
        .collect();
    if capable.len() < req.parts {
        return None;
    }
    // Earliest common start: the max over the chosen sites of their earliest slot,
    // searched jointly by advancing until every site can book at the same instant.
    let chosen = &capable[..req.parts];
    let mut t = now + lead_time.max(0.0);
    for _ in 0..24 * 14 {
        let ok = chosen.iter().all(|&i| {
            sites[i].calendar.max_reserved_during(t, t + req.duration) + req.procs
                <= sites[i].spec.procs
        });
        if ok {
            for &i in chosen {
                sites[i]
                    .try_reserve(t, req.duration, req.procs)
                    .expect("joint slot was verified");
            }
            return Some(CoallocationOutcome {
                mechanism: "reservations".to_string(),
                start: t,
                synchronized: true,
                wasted_node_seconds: 0.0,
            });
        }
        t += 3600.0;
    }
    None
}

/// The kinds of entities in the scheduling hierarchy of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntityKind {
    /// A human user submitting work.
    User,
    /// An application scheduler developed with a specific application.
    ApplicationScheduler,
    /// A meta-scheduler spanning several machines.
    MetaScheduler,
    /// The scheduler controlling one machine.
    MachineScheduler,
    /// A node scheduler internal to a parallel machine.
    NodeScheduler,
}

/// One entity of the Figure-1 hierarchy together with the entities it talks to
/// downward.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entity {
    /// What kind of entity this is.
    pub kind: EntityKind,
    /// Display name.
    pub name: String,
    /// Indices (into the hierarchy vector) of the entities this one submits to.
    pub children: Vec<usize>,
}

/// Build the Figure-1 entity hierarchy for a metasystem of the given sites: users
/// feed meta-/application schedulers, which feed machine schedulers, which feed
/// node schedulers.
pub fn build_hierarchy(sites: &[Site], users: usize) -> Vec<Entity> {
    let mut entities = Vec::new();
    // Node schedulers and machine schedulers per site.
    let mut machine_indices = Vec::new();
    for site in sites {
        let node_idx = entities.len();
        entities.push(Entity {
            kind: EntityKind::NodeScheduler,
            name: format!("node-schedulers@site{}", site.spec.id),
            children: Vec::new(),
        });
        let machine_idx = entities.len();
        entities.push(Entity {
            kind: EntityKind::MachineScheduler,
            name: format!("machine-scheduler@site{}", site.spec.id),
            children: vec![node_idx],
        });
        machine_indices.push(machine_idx);
    }
    let meta_idx = entities.len();
    entities.push(Entity {
        kind: EntityKind::MetaScheduler,
        name: "meta-scheduler".to_string(),
        children: machine_indices.clone(),
    });
    let app_idx = entities.len();
    entities.push(Entity {
        kind: EntityKind::ApplicationScheduler,
        name: "application-scheduler".to_string(),
        children: machine_indices,
    });
    for u in 0..users {
        entities.push(Entity {
            kind: EntityKind::User,
            name: format!("user{u}"),
            children: vec![meta_idx, app_idx],
        });
    }
    entities
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::appmodel::MicroBenchmark;
    use crate::site::standard_metasystem;

    #[test]
    fn device_map_pins_devices_to_sites() {
        let sites = standard_metasystem(3, 1);
        let map = DeviceMap::spread_over(&sites);
        let vis = map.site_of(Device::Visualization).unwrap();
        let arc = map.site_of(Device::Archive).unwrap();
        let ins = map.site_of(Device::Instrument).unwrap();
        assert_ne!(vis, arc);
        assert_ne!(arc, ins);
        assert!(DeviceMap::default().site_of(Device::Archive).is_none());
    }

    #[test]
    fn app_scheduler_produces_consistent_schedules() {
        let mut sites = standard_metasystem(4, 11);
        let devices = DeviceMap::spread_over(&sites);
        let app = MicroBenchmark::CommunicationIntensive.generate(6, 5);
        let mut sched = AppScheduler::new(PlacementStrategy::FastestCompletion, Network::default());
        let schedule = sched.schedule(&app, &mut sites, &devices, 0.0);
        assert_eq!(schedule.placements.len(), 6);
        assert!(schedule.makespan > 0.0);
        assert!(schedule.cost > 0.0);
        // Every module starts after its predecessors finished.
        for (m, p) in schedule.placements.iter().enumerate() {
            for pred in app.predecessors(m) {
                assert!(p.start >= schedule.placements[pred].end - 1e-6);
            }
        }
    }

    #[test]
    fn device_constrained_modules_land_on_hosting_sites() {
        let mut sites = standard_metasystem(3, 13);
        let devices = DeviceMap::spread_over(&sites);
        let app = MicroBenchmark::DeviceConstrained.generate(6, 3);
        let mut sched =
            AppScheduler::new(PlacementStrategy::LeastPredictedWait, Network::default());
        let schedule = sched.schedule(&app, &mut sites, &devices, 0.0);
        for (module, placement) in app.modules.iter().zip(&schedule.placements) {
            let expected = devices.site_of(module.device.unwrap()).unwrap();
            assert_eq!(placement.site, expected);
        }
    }

    #[test]
    fn cheapest_strategy_prefers_cheap_sites_fastest_prefers_fast_ones() {
        let mut sites = standard_metasystem(4, 17);
        // Make the trade-off stark: site 0 is slow and cheap, site 3 fast and pricey.
        sites[0].spec.speed = 0.5;
        sites[0].spec.cost_per_proc_second = 0.1;
        sites[0].spec.background_load = 0.1;
        sites[3].spec.speed = 4.0;
        sites[3].spec.cost_per_proc_second = 10.0;
        sites[3].spec.background_load = 0.1;
        let devices = DeviceMap::default();
        let app = MicroBenchmark::ComputeIntensive.generate(4, 9);
        let mut cheap = AppScheduler::new(PlacementStrategy::Cheapest, Network::default());
        let mut fast = AppScheduler::new(PlacementStrategy::FastestCompletion, Network::default());
        let cheap_schedule = cheap.schedule(&app, &mut sites.clone(), &devices, 0.0);
        let fast_schedule = fast.schedule(&app, &mut sites.clone(), &devices, 0.0);
        assert!(cheap_schedule.cost < fast_schedule.cost);
        assert!(cheap_schedule
            .placements
            .iter()
            .all(|p| p.site == sites[0].spec.id));
    }

    #[test]
    fn round_robin_spreads_modules() {
        let mut sites = standard_metasystem(3, 19);
        let devices = DeviceMap::default();
        let app = MicroBenchmark::ComputeIntensive.generate(6, 2);
        let mut rr = AppScheduler::new(PlacementStrategy::RoundRobin, Network::default());
        let schedule = rr.schedule(&app, &mut sites, &devices, 0.0);
        let used: std::collections::HashSet<u32> =
            schedule.placements.iter().map(|p| p.site).collect();
        assert_eq!(used.len(), 3);
        assert_eq!(PlacementStrategy::all().len(), 4);
        assert_eq!(PlacementStrategy::RoundRobin.name(), "round-robin");
    }

    #[test]
    fn reservation_coallocation_is_synchronized_queue_coallocation_usually_is_not() {
        let req = CoallocationRequest {
            parts: 3,
            procs: 64,
            duration: 3600.0,
        };
        let mut q_sites = standard_metasystem(4, 23);
        let via_queues = coallocate_via_queues(&req, &mut q_sites, 0.0, 60.0);
        let mut r_sites = standard_metasystem(4, 23);
        let via_res = coallocate_via_reservations(&req, &mut r_sites, 0.0, 3600.0).unwrap();
        assert!(via_res.synchronized);
        assert_eq!(via_res.wasted_node_seconds, 0.0);
        assert!(via_res.start >= 3600.0);
        // Queue-based co-allocation wastes processors while parts wait for each other.
        assert!(via_queues.wasted_node_seconds > 0.0);
        assert!(!via_queues.synchronized);
        // Reservations are actually booked on the sites.
        assert!(
            r_sites
                .iter()
                .filter(|s| !s.calendar.reservations.is_empty())
                .count()
                >= 3
        );
    }

    #[test]
    fn reservation_coallocation_fails_without_enough_capable_sites() {
        let req = CoallocationRequest {
            parts: 3,
            procs: 64,
            duration: 3600.0,
        };
        let mut sites = standard_metasystem(3, 29);
        sites[0].spec.supports_reservations = false;
        assert!(coallocate_via_reservations(&req, &mut sites, 0.0, 0.0).is_none());
    }

    #[test]
    fn hierarchy_matches_figure_one() {
        let sites = standard_metasystem(2, 31);
        let entities = build_hierarchy(&sites, 4);
        let count = |k: EntityKind| entities.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(EntityKind::NodeScheduler), 2);
        assert_eq!(count(EntityKind::MachineScheduler), 2);
        assert_eq!(count(EntityKind::MetaScheduler), 1);
        assert_eq!(count(EntityKind::ApplicationScheduler), 1);
        assert_eq!(count(EntityKind::User), 4);
        // users submit to meta- and application schedulers, which submit to machine
        // schedulers, which drive node schedulers
        let user = entities
            .iter()
            .find(|e| e.kind == EntityKind::User)
            .unwrap();
        assert_eq!(user.children.len(), 2);
        let meta = entities
            .iter()
            .find(|e| e.kind == EntityKind::MetaScheduler)
            .unwrap();
        assert_eq!(meta.children.len(), 2);
        for &c in &meta.children {
            assert_eq!(entities[c].kind, EntityKind::MachineScheduler);
            assert_eq!(
                entities[entities[c].children[0]].kind,
                EntityKind::NodeScheduler
            );
        }
    }
}
