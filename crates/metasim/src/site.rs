//! Sites: machine schedulers wrapped for the metasystem.
//!
//! Section 4.2 of the paper prescribes exactly the simplification implemented here:
//! "meta schedulers can be evaluated using simple models of local schedulers ...
//! A simple model of a local scheduler would just model the wait time of
//! applications submitted to it, the error of wait time predictions, when
//! reservations can be made, etc." A [`Site`] therefore models a parallel machine
//! by its size, its background load, a queue-wait model, a wait-time predictor with
//! a configurable error, an advance-reservation calendar, and a price.

use psbench_sim::Cluster;
use psbench_workload::dist::exponential;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Heterogeneity knobs of a site (Section 4.1's three flavours).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiteSpec {
    /// Site identifier.
    pub id: u32,
    /// Number of processors.
    pub procs: u32,
    /// Relative processor speed (architectural/configuration heterogeneity); 1.0 is
    /// the reference speed. Runtimes scale by `1 / speed`.
    pub speed: f64,
    /// Background utilization in `[0,1)` from locally submitted jobs (load
    /// heterogeneity). Higher load means longer queue waits.
    pub background_load: f64,
    /// Price charged per processor-second (the economic model of Section 4.2).
    pub cost_per_proc_second: f64,
    /// Mean wait time (seconds) of a job that asks for the whole machine when the
    /// background load is 0.5; scales with load and request size.
    pub base_wait: f64,
    /// Relative error of the site's queue-wait predictions (0 = clairvoyant).
    pub prediction_error: f64,
    /// Whether the local scheduler supports advance reservations.
    pub supports_reservations: bool,
}

impl SiteSpec {
    /// A reasonable default site of the given size.
    pub fn new(id: u32, procs: u32) -> Self {
        SiteSpec {
            id,
            procs,
            speed: 1.0,
            background_load: 0.6,
            cost_per_proc_second: 1.0,
            base_wait: 4.0 * 3600.0,
            prediction_error: 0.3,
            supports_reservations: true,
        }
    }
}

/// A site: the spec plus mutable state (reservation calendar, queue backlog, RNG).
#[derive(Debug, Clone)]
pub struct Site {
    /// The static description of the site.
    pub spec: SiteSpec,
    /// The reservation calendar (shared machinery with the local simulator).
    pub calendar: Cluster,
    /// Earliest time at which the site's queue is expected to drain for a
    /// full-machine request (advances as meta-jobs are accepted).
    backlog_until: f64,
    rng: StdRng,
}

/// The outcome of submitting a request to a site's queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SitePlacement {
    /// Site the request ran on.
    pub site: u32,
    /// Time the request was handed to the site.
    pub submitted: f64,
    /// Time the request started.
    pub start: f64,
    /// Time the request finished.
    pub end: f64,
    /// Processors used.
    pub procs: u32,
    /// What the user paid.
    pub cost: f64,
}

impl Site {
    /// Create a site from its spec with a deterministic per-site RNG.
    pub fn new(spec: SiteSpec, seed: u64) -> Self {
        Site {
            calendar: Cluster::new(spec.procs.max(1)),
            backlog_until: 0.0,
            rng: StdRng::seed_from_u64(seed ^ (spec.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            spec,
        }
    }

    /// The runtime of `work` reference-seconds of computation on this site, on
    /// `procs` processors with ideal scaling (heterogeneous speed applied).
    pub fn runtime_of(&self, work_proc_seconds: f64, procs: u32) -> f64 {
        work_proc_seconds / (procs.max(1) as f64 * self.spec.speed.max(1e-9))
    }

    /// The *actual* queue wait a request of `procs` processors experiences if
    /// submitted at `now` (drawn from the site's wait model).
    pub fn sample_wait(&mut self, now: f64, procs: u32) -> f64 {
        let fraction = procs.min(self.spec.procs) as f64 / self.spec.procs as f64;
        let load_factor = 1.0 / (1.0 - self.spec.background_load.clamp(0.0, 0.95));
        let mean = self.spec.base_wait * fraction * load_factor * 0.5;
        let queue_wait = exponential(&mut self.rng, mean.max(1.0));
        let backlog_wait = (self.backlog_until - now).max(0.0);
        queue_wait + backlog_wait
    }

    /// The site's *prediction* of the wait a request of `procs` processors would
    /// experience if submitted at `now` (the true expectation perturbed by the
    /// site's prediction error, as in the queue-time-prediction literature).
    ///
    /// Prediction is a pure query: the noise is a deterministic hash of
    /// `(site, now, procs)`, not a draw from the site's RNG, so asking for a
    /// prediction never perturbs subsequent [`Self::sample_wait`] draws —
    /// predict-then-submit places a job exactly where submit alone would.
    pub fn predict_wait(&self, now: f64, procs: u32) -> f64 {
        let fraction = procs.min(self.spec.procs) as f64 / self.spec.procs as f64;
        let load_factor = 1.0 / (1.0 - self.spec.background_load.clamp(0.0, 0.95));
        let mean = self.spec.base_wait * fraction * load_factor * 0.5;
        let backlog_wait = (self.backlog_until - now).max(0.0);
        let err = self.spec.prediction_error.max(0.0);
        let noise: f64 = if err > 0.0 {
            // splitmix64 over the query coordinates → uniform in [-err, err).
            let mut h = (self.spec.id as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(now.to_bits())
                .wrapping_add((procs as u64) << 32);
            h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            h ^= h >> 31;
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
            err * (2.0 * unit - 1.0)
        } else {
            0.0
        };
        ((mean + backlog_wait) * (1.0 + noise)).max(0.0)
    }

    /// Submit a request through the batch queue: `work_proc_seconds` of computation
    /// on `procs` processors at time `now`. Returns where and when it ran.
    pub fn submit(&mut self, now: f64, work_proc_seconds: f64, procs: u32) -> SitePlacement {
        let procs = procs.min(self.spec.procs).max(1);
        let wait = self.sample_wait(now, procs);
        let start = now + wait;
        let runtime = self.runtime_of(work_proc_seconds, procs);
        let end = start + runtime;
        // Wide requests push the site's backlog out (they occupy the machine).
        let fraction = procs as f64 / self.spec.procs as f64;
        self.backlog_until = self.backlog_until.max(now) + runtime * fraction;
        SitePlacement {
            site: self.spec.id,
            submitted: now,
            start,
            end,
            procs,
            cost: work_proc_seconds / self.spec.speed * self.spec.cost_per_proc_second,
        }
    }

    /// Try to book an advance reservation for `procs` processors during
    /// `[start, start+duration)`. Fails if the site does not support reservations or
    /// the calendar is full.
    pub fn try_reserve(&mut self, start: f64, duration: f64, procs: u32) -> Option<u64> {
        if !self.spec.supports_reservations {
            return None;
        }
        self.calendar.try_reserve(start, start + duration, procs)
    }

    /// Run a request inside a previously booked reservation: it starts exactly at
    /// the reservation start (no queue wait).
    pub fn run_reserved(
        &mut self,
        start: f64,
        work_proc_seconds: f64,
        procs: u32,
    ) -> SitePlacement {
        let procs = procs.min(self.spec.procs).max(1);
        let runtime = self.runtime_of(work_proc_seconds, procs);
        SitePlacement {
            site: self.spec.id,
            submitted: start,
            start,
            end: start + runtime,
            procs,
            cost: work_proc_seconds / self.spec.speed * self.spec.cost_per_proc_second,
        }
    }

    /// The earliest time ≥ `from` at which a reservation of `procs` processors for
    /// `duration` seconds could be booked (searching the calendar in hourly steps).
    pub fn earliest_reservation(&self, from: f64, duration: f64, procs: u32) -> Option<f64> {
        if !self.spec.supports_reservations || procs > self.spec.procs {
            return None;
        }
        let mut t = from;
        for _ in 0..24 * 14 {
            if self.calendar.max_reserved_during(t, t + duration) + procs <= self.spec.procs {
                return Some(t);
            }
            t += 3600.0;
        }
        None
    }
}

/// Build a heterogeneous metasystem of `n` sites with varied sizes, speeds, loads
/// and prices (the three heterogeneity axes of Section 4.1).
pub fn standard_metasystem(n: usize, seed: u64) -> Vec<Site> {
    let sizes = [128u32, 256, 64, 512, 96, 384];
    let speeds = [1.0, 1.4, 0.8, 2.0, 1.1, 0.9];
    let loads = [0.5, 0.7, 0.4, 0.8, 0.6, 0.55];
    let prices = [1.0, 1.8, 0.6, 2.5, 1.2, 0.9];
    (0..n)
        .map(|i| {
            let mut spec = SiteSpec::new(i as u32, sizes[i % sizes.len()]);
            spec.speed = speeds[i % speeds.len()];
            spec.background_load = loads[i % loads.len()];
            spec.cost_per_proc_second = prices[i % prices.len()];
            Site::new(spec, seed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_scales_with_procs_and_speed() {
        let mut spec = SiteSpec::new(1, 128);
        spec.speed = 2.0;
        let site = Site::new(spec, 1);
        assert_eq!(site.runtime_of(6400.0, 32), 100.0);
        assert_eq!(site.runtime_of(6400.0, 64), 50.0);
        let slow = Site::new(SiteSpec { speed: 0.5, ..spec }, 1);
        assert_eq!(slow.runtime_of(6400.0, 32), 400.0);
    }

    #[test]
    fn heavier_load_means_longer_expected_waits() {
        let mut light_spec = SiteSpec::new(1, 128);
        light_spec.background_load = 0.2;
        let mut heavy_spec = SiteSpec::new(2, 128);
        heavy_spec.background_load = 0.9;
        let mut light = Site::new(light_spec, 7);
        let mut heavy = Site::new(heavy_spec, 7);
        let n = 300;
        let mean = |s: &mut Site| (0..n).map(|_| s.sample_wait(0.0, 64)).sum::<f64>() / n as f64;
        assert!(mean(&mut heavy) > mean(&mut light) * 2.0);
    }

    #[test]
    fn wider_requests_wait_longer_on_average() {
        let mut site = Site::new(SiteSpec::new(1, 128), 3);
        let n = 300;
        let narrow: f64 = (0..n).map(|_| site.sample_wait(0.0, 1)).sum::<f64>() / n as f64;
        let wide: f64 = (0..n).map(|_| site.sample_wait(0.0, 128)).sum::<f64>() / n as f64;
        assert!(wide > narrow);
    }

    #[test]
    fn submit_accumulates_backlog() {
        let mut site = Site::new(SiteSpec::new(1, 128), 5);
        let p1 = site.submit(0.0, 128.0 * 3600.0, 128);
        assert!(p1.start >= 0.0);
        assert!(p1.end > p1.start);
        assert!(p1.cost > 0.0);
        // A second full-machine submission sees the backlog of the first.
        let w_before = site.backlog_until;
        let p2 = site.submit(0.0, 128.0 * 3600.0, 128);
        assert!(w_before > 0.0);
        assert!(p2.start >= w_before - 1e-6);
    }

    #[test]
    fn predictions_are_within_the_configured_error() {
        let mut spec = SiteSpec::new(1, 128);
        spec.prediction_error = 0.0;
        let clairvoyant = Site::new(spec, 9);
        let p = clairvoyant.predict_wait(0.0, 64);
        let expected = spec.base_wait * 0.5 * (1.0 / (1.0 - spec.background_load)) * 0.5;
        assert!((p - expected).abs() < 1e-6);
        spec.prediction_error = 0.5;
        let noisy = Site::new(spec, 9);
        // Distinct query points draw distinct (but bounded) noise.
        let mut distinct = std::collections::BTreeSet::new();
        for i in 0..100 {
            let p = noisy.predict_wait(i as f64, 64);
            assert!(
                p >= expected * 0.49 && p <= expected * 1.51,
                "prediction {p}"
            );
            distinct.insert(p.to_bits());
        }
        assert!(distinct.len() > 50, "noise should vary across query points");
    }

    #[test]
    fn predicting_never_perturbs_subsequent_submissions() {
        // Regression test: predict_wait used to advance the site RNG, so a
        // what-if query changed where the next submission landed. Prediction
        // must be a pure read: predict-then-submit == submit alone.
        let mut queried = Site::new(SiteSpec::new(3, 256), 21);
        let mut untouched = queried.clone();
        for i in 0..50 {
            let now = i as f64 * 60.0;
            // Hammer the predictor on one twin only.
            for procs in [1u32, 16, 64, 256] {
                let _ = queried.predict_wait(now, procs);
            }
            let procs = 32 + (i % 5) as u32 * 16;
            let a = queried.submit(now, 1e6, procs);
            let b = untouched.submit(now, 1e6, procs);
            assert_eq!(a, b, "submission {i} diverged after predictions");
        }
        // And repeated predictions at one query point are self-consistent.
        let p1 = queried.predict_wait(0.0, 64);
        let p2 = queried.predict_wait(0.0, 64);
        assert_eq!(p1.to_bits(), p2.to_bits());
    }

    #[test]
    fn reservations_start_on_time_and_respect_capacity() {
        let mut site = Site::new(SiteSpec::new(1, 64), 11);
        let id = site.try_reserve(1000.0, 3600.0, 48).unwrap();
        assert!(id > 0);
        // A second overlapping reservation that exceeds the machine fails.
        assert!(site.try_reserve(1500.0, 3600.0, 32).is_none());
        let placement = site.run_reserved(1000.0, 48.0 * 100.0, 48);
        assert_eq!(placement.start, 1000.0);
        assert_eq!(placement.end, 1100.0);
        // earliest_reservation skips past the booked window for large requests
        let t = site.earliest_reservation(0.0, 3600.0, 32).unwrap();
        assert!(t >= 4600.0 - 3600.0, "found {t}");
        // a site without reservation support refuses
        let mut no_res_spec = SiteSpec::new(2, 64);
        no_res_spec.supports_reservations = false;
        let mut no_res = Site::new(no_res_spec, 1);
        assert!(no_res.try_reserve(0.0, 10.0, 1).is_none());
        assert!(no_res.earliest_reservation(0.0, 10.0, 1).is_none());
    }

    #[test]
    fn standard_metasystem_is_heterogeneous() {
        let sites = standard_metasystem(4, 42);
        assert_eq!(sites.len(), 4);
        let sizes: Vec<u32> = sites.iter().map(|s| s.spec.procs).collect();
        let speeds: Vec<f64> = sites.iter().map(|s| s.spec.speed).collect();
        assert!(sizes.windows(2).any(|w| w[0] != w[1]));
        assert!(speeds.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9));
    }
}
