//! Cross-site dispatch policies for the sharded metasystem.
//!
//! The dispatcher runs **only on the driving thread**, at epoch boundaries,
//! over shard state that is quiescent (no shard advances mid-dispatch). All
//! four policies are therefore deterministic by construction: the same
//! arrival stream and fleet state produce the same placements for any thread
//! count.
//!
//! Least-pressure dispatch is the load-adaptive policy built on the backlog
//! index's O(1) aggregates: it keeps a lazy min-heap of `(pressure, site)`
//! keys, re-validating entries on pop against the shard's current pressure
//! and reinserting stale ones — O(log sites) amortized per dispatch instead
//! of an O(sites) argmin scan per job, which is the difference between 10⁹
//! and ~10⁷ comparisons at 1,000 sites × 1M jobs.

use crate::shard::Shard;
use psbench_sim::SimJob;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How the metascheduler routes each arriving job to a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Cycle over the up sites (the naive baseline).
    RoundRobin,
    /// Route to the site with the least demanded-work pressure, read from the
    /// backlog index's O(1) aggregates through a lazy min-heap.
    LeastPressure,
    /// Pin each user's jobs to a home site by hash (data-affinity: inputs
    /// staged where the user's previous jobs ran), falling over to the next
    /// up site only during outages.
    Affinity,
    /// Reservation-based co-allocation: probe a deterministic power-of-k
    /// choice of candidate sites' advisory calendars via `try_reserve` and
    /// book the earliest feasible window.
    Reserve,
}

impl DispatchPolicy {
    /// All policies, for sweeps and benches.
    pub fn all() -> &'static [DispatchPolicy] {
        &[
            DispatchPolicy::RoundRobin,
            DispatchPolicy::LeastPressure,
            DispatchPolicy::Affinity,
            DispatchPolicy::Reserve,
        ]
    }

    /// Short name for reports and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::LeastPressure => "least-pressure",
            DispatchPolicy::Affinity => "affinity",
            DispatchPolicy::Reserve => "reserve",
        }
    }

    /// Parse a CLI name (the inverse of [`DispatchPolicy::name`]).
    pub fn parse(name: &str) -> Option<DispatchPolicy> {
        DispatchPolicy::all()
            .iter()
            .copied()
            .find(|p| p.name() == name)
    }
}

/// How many candidate sites [`DispatchPolicy::Reserve`] probes per job.
const RESERVE_CHOICES: usize = 4;

/// How far ahead a reservation probe searches before giving up and treating
/// the candidate as unavailable (two weeks, matching the analytic sites'
/// search horizon).
const RESERVE_HORIZON: f64 = 14.0 * 24.0 * 3600.0;

fn splitmix64(mut h: u64) -> u64 {
    h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// The metascheduler's routing state: one dispatcher drives one fleet.
#[derive(Debug)]
pub struct Dispatcher {
    policy: DispatchPolicy,
    rr: usize,
    /// Lazy min-heap of `(pressure bits, site)` for [`DispatchPolicy::LeastPressure`];
    /// entries are validated on pop and reinserted when stale.
    heap: BinaryHeap<Reverse<(u64, u32)>>,
}

impl Dispatcher {
    /// A dispatcher for the given policy.
    pub fn new(policy: DispatchPolicy) -> Self {
        Dispatcher {
            policy,
            rr: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// The policy this dispatcher routes by.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// Refresh per-epoch routing state after the fleet advanced: rebuild the
    /// pressure heap from the shards' current aggregates. Call at every epoch
    /// boundary before dispatching.
    pub fn begin_epoch(&mut self, shards: &[Shard], down: &[bool]) {
        if self.policy == DispatchPolicy::LeastPressure {
            self.heap.clear();
            for (i, shard) in shards.iter().enumerate() {
                if !down[i] {
                    self.heap.push(Reverse((shard.pressure_bits(), i as u32)));
                }
            }
        }
    }

    /// Route one job: pick an up site, book any advisory reservation, and
    /// return the chosen shard index — or `None` when every site is down
    /// (the caller parks the job until a site comes back).
    ///
    /// The caller must submit the job to the returned shard and then call
    /// [`Dispatcher::note_submitted`] so pressure-tracking state stays exact.
    pub fn pick(
        &mut self,
        shards: &mut [Shard],
        down: &[bool],
        job: &SimJob,
        now: f64,
    ) -> Option<usize> {
        let n = shards.len();
        if n == 0 || down.iter().all(|&d| d) {
            return None;
        }
        match self.policy {
            DispatchPolicy::RoundRobin => {
                for _ in 0..n {
                    let i = self.rr % n;
                    self.rr += 1;
                    if !down[i] {
                        return Some(i);
                    }
                }
                None
            }
            DispatchPolicy::LeastPressure => {
                while let Some(Reverse((bits, site))) = self.heap.pop() {
                    let i = site as usize;
                    if down[i] {
                        continue;
                    }
                    let current = shards[i].pressure_bits();
                    if current == bits {
                        return Some(i);
                    }
                    // Stale entry: reinsert with the fresh key and retry.
                    self.heap.push(Reverse((current, site)));
                }
                // Heap exhausted (e.g. sites came up since begin_epoch):
                // fall back to a scan of the up sites.
                (0..n)
                    .filter(|&i| !down[i])
                    .min_by_key(|&i| (shards[i].pressure_bits(), i))
            }
            DispatchPolicy::Affinity => {
                let key = job.user.map(|u| u as u64 + 1).unwrap_or(job.id << 1);
                let home = (splitmix64(key) % n as u64) as usize;
                (0..n).map(|d| (home + d) % n).find(|&i| !down[i])
            }
            DispatchPolicy::Reserve => {
                let mut best: Option<(u64, u32, usize)> = None;
                for c in 0..RESERVE_CHOICES {
                    let cand = (splitmix64(job.id ^ ((c as u64) << 48)) % n as u64) as usize;
                    if down[cand] {
                        continue;
                    }
                    let shard = &shards[cand];
                    let procs = job.procs.min(shard.spec.procs).max(1);
                    let dur = shard.scaled_runtime(job.estimate.max(job.work)).max(1.0);
                    let start = earliest_window(shard, now, dur, procs).unwrap_or(f64::MAX);
                    let key = (start.to_bits(), shard.spec.id, cand);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
                let (start_bits, _, chosen) = best?;
                let shard = &mut shards[chosen];
                let procs = job.procs.min(shard.spec.procs).max(1);
                let dur = shard.scaled_runtime(job.estimate.max(job.work)).max(1.0);
                let start = f64::from_bits(start_bits);
                if start < f64::MAX {
                    // Advisory booking; a full calendar just means the site
                    // absorbs the job through its queue like any other.
                    let _ = shard.calendar.try_reserve(start, start + dur, procs);
                }
                Some(chosen)
            }
        }
    }

    /// Record that a job was submitted to shard `i`, keeping the pressure
    /// heap in sync with the shard's now-larger inflight demand.
    pub fn note_submitted(&mut self, shards: &[Shard], i: usize) {
        if self.policy == DispatchPolicy::LeastPressure {
            self.heap
                .push(Reverse((shards[i].pressure_bits(), i as u32)));
        }
    }
}

/// The earliest window at or after `from` where the shard's advisory
/// calendar can hold `procs` processors for `dur` seconds, or `None` when
/// nothing fits within [`RESERVE_HORIZON`].
///
/// One O(R log R) sweep over the calendar's breakpoints: the reserved count
/// is a step function, so a window is feasible iff every breakpoint interval
/// it covers is — the sweep tracks the earliest still-open candidate start
/// and restarts it past any overloaded interval. (The naive alternative —
/// stepping a probe time and re-scanning the reservation list per step — is
/// O(steps · R²) per job and dominated fleet runs.)
fn earliest_window(shard: &Shard, from: f64, dur: f64, procs: u32) -> Option<f64> {
    let cap = shard.spec.procs;
    if procs > cap {
        return None;
    }
    // Breakpoints of the reserved-count step function at or after `from`.
    let mut events: Vec<(f64, i64)> = Vec::new();
    for r in &shard.calendar.reservations {
        if r.end <= from {
            continue;
        }
        events.push((r.start.max(from), r.procs as i64));
        events.push((r.end, -(r.procs as i64)));
    }
    if events.is_empty() {
        return Some(from);
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut load = 0i64;
    let mut candidate = from;
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        // A feasible run long enough to hold the whole window ends the search.
        if t - candidate >= dur {
            return Some(candidate);
        }
        while i < events.len() && events[i].0 == t {
            load += events[i].1;
            i += 1;
        }
        if load + procs as i64 > cap as i64 {
            // Overloaded from t until the next breakpoint: any window
            // overlapping it is infeasible, so the candidate restarts at the
            // next load change.
            candidate = match events.get(i) {
                Some(&(next, _)) => next,
                None => return None, // overloaded with no later release: corrupt calendar
            };
            if candidate - from > RESERVE_HORIZON {
                return None;
            }
        }
    }
    // Past the last breakpoint the calendar is empty.
    Some(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{standard_shard_fleet, Shard};

    fn fleet(n: usize) -> Vec<Shard> {
        standard_shard_fleet(n, "fcfs")
            .into_iter()
            .map(|s| Shard::new(s).unwrap())
            .collect()
    }

    #[test]
    fn policy_names_round_trip() {
        for p in DispatchPolicy::all() {
            assert_eq!(DispatchPolicy::parse(p.name()), Some(*p));
        }
        assert_eq!(DispatchPolicy::parse("nonsense"), None);
    }

    #[test]
    fn round_robin_cycles_and_skips_down_sites() {
        let mut shards = fleet(4);
        let mut down = vec![false; 4];
        down[1] = true;
        let mut d = Dispatcher::new(DispatchPolicy::RoundRobin);
        let job = SimJob::rigid(1, 0.0, 10.0, 8);
        let picks: Vec<usize> = (0..6)
            .map(|_| d.pick(&mut shards, &down, &job, 0.0).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 2, 3, 0, 2, 3]);
    }

    #[test]
    fn least_pressure_prefers_the_emptiest_site() {
        let mut shards = fleet(3);
        let down = vec![false; 3];
        // Load site 0 heavily.
        for i in 0..20u64 {
            let job = SimJob::rigid(1000 + i, 0.0, 1e5, 64);
            shards[0].submit(&job, 1000 + i, 0.0).unwrap();
        }
        let mut d = Dispatcher::new(DispatchPolicy::LeastPressure);
        d.begin_epoch(&shards, &down);
        let job = SimJob::rigid(1, 0.0, 10.0, 8);
        let pick = d.pick(&mut shards, &down, &job, 0.0).unwrap();
        assert_ne!(pick, 0, "loaded site must lose");
        // Submitting through the protocol keeps the heap exact.
        shards[pick].submit(&job, 1, 0.0).unwrap();
        d.note_submitted(&shards, pick);
    }

    #[test]
    fn least_pressure_heap_converges_under_staleness() {
        let mut shards = fleet(5);
        let down = vec![false; 5];
        let mut d = Dispatcher::new(DispatchPolicy::LeastPressure);
        d.begin_epoch(&shards, &down);
        // Mutate pressures behind the heap's back, then dispatch many jobs:
        // every pick must still return a valid up site.
        for i in 0..50u64 {
            let job = SimJob::rigid(i + 1, 0.0, 100.0, 32);
            let pick = d.pick(&mut shards, &down, &job, 0.0).unwrap();
            shards[pick].submit(&job, i + 1, 0.0).unwrap();
            d.note_submitted(&shards, pick);
        }
        let dispatched: u64 = shards.iter().map(|s| s.inflight).sum();
        assert_eq!(dispatched, 50 * 32);
    }

    #[test]
    fn affinity_is_sticky_per_user() {
        let mut shards = fleet(8);
        let down = vec![false; 8];
        let mut d = Dispatcher::new(DispatchPolicy::Affinity);
        let job_a = SimJob::rigid(1, 0.0, 10.0, 4).with_user(7);
        let job_b = SimJob::rigid(2, 0.0, 10.0, 4).with_user(7);
        let a = d.pick(&mut shards, &down, &job_a, 0.0).unwrap();
        let b = d.pick(&mut shards, &down, &job_b, 0.0).unwrap();
        assert_eq!(a, b, "same user, same home site");
        // When the home site is down, the user fails over deterministically.
        let mut down2 = down.clone();
        down2[a] = true;
        let c = d.pick(&mut shards, &down2, &job_a, 0.0).unwrap();
        assert_eq!(c, (a + 1) % 8);
    }

    #[test]
    fn reserve_books_advisory_windows() {
        let mut shards = fleet(4);
        let down = vec![false; 4];
        let mut d = Dispatcher::new(DispatchPolicy::Reserve);
        for i in 0..12u64 {
            let job = SimJob::rigid(i + 1, 0.0, 5000.0, 64);
            let pick = d.pick(&mut shards, &down, &job, 0.0).unwrap();
            shards[pick].submit(&job, i + 1, 0.0).unwrap();
            d.note_submitted(&shards, pick);
        }
        let booked: usize = shards.iter().map(|s| s.calendar.reservations.len()).sum();
        assert!(booked > 0, "reserve policy must book windows");
    }

    #[test]
    fn earliest_window_sweep_matches_the_calendar_oracle() {
        // Differential check: the O(R log R) sweep must agree with the
        // cluster's own max_reserved_during at every breakpoint-derived
        // candidate start, on a deterministic pseudo-random calendar.
        let mut shard = fleet(1).pop().unwrap();
        let cap = shard.spec.procs;
        let mut h = 12345u64;
        for _ in 0..60 {
            h = splitmix64(h);
            let start = (h % 100_000) as f64;
            let dur = 600.0 + (h % 7) as f64 * 3600.0;
            let procs = 1 + (h % (cap as u64 / 2)) as u32;
            shard.calendar.try_reserve(start, start + dur, procs);
        }
        for probe in 0..40u64 {
            let from = (probe * 2_500) as f64;
            let dur = 1_800.0 + (probe % 5) as f64 * 3_600.0;
            let procs = 1 + (splitmix64(probe) % cap as u64) as u32;
            let got = earliest_window(&shard, from, dur, procs);
            if let Some(t) = got {
                assert!(t >= from);
                assert!(
                    shard.calendar.max_reserved_during(t, t + dur) + procs <= cap,
                    "window at {t} overbooks"
                );
                // Earliest: every breakpoint-derived start strictly before it
                // must be infeasible (starts between breakpoints can only see
                // equal or higher load than the breakpoint preceding them).
                let mut earlier: Vec<f64> = shard
                    .calendar
                    .reservations
                    .iter()
                    .map(|r| r.end)
                    .filter(|&e| e > from && e < t)
                    .collect();
                earlier.push(from);
                for &s in earlier.iter().filter(|&&s| s < t) {
                    assert!(
                        shard.calendar.max_reserved_during(s, s + dur) + procs > cap,
                        "earlier start {s} was feasible but sweep chose {t}"
                    );
                }
            } else {
                assert!(
                    shard.calendar.max_reserved_during(from, from + dur) + procs > cap,
                    "sweep gave up but the window at {from} was free"
                );
            }
        }
    }

    #[test]
    fn all_sites_down_parks_the_job() {
        let mut shards = fleet(2);
        let down = vec![true; 2];
        for p in DispatchPolicy::all() {
            let mut d = Dispatcher::new(*p);
            d.begin_epoch(&shards, &down);
            let job = SimJob::rigid(1, 0.0, 10.0, 4);
            assert_eq!(d.pick(&mut shards, &down, &job, 0.0), None, "{}", p.name());
        }
    }
}
