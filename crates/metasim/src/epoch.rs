//! The bulk-synchronous epoch loop: fleet-scale metasystem simulation over
//! engine shards.
//!
//! # The loop
//!
//! Time is cut into epochs of `epoch_len` seconds. Each iteration works on a
//! quiescent fleet at boundary `t0 = k·epoch_len` and runs four strictly
//! ordered phases:
//!
//! 1. **Outage transitions** (driving thread): sites whose outage ended come
//!    back up; sites whose outage started go down — their queued jobs are
//!    cancelled and handed back to the metascheduler as migrations. Running
//!    jobs ride out the outage (the site drains but accepts nothing new).
//! 2. **Dispatch** (driving thread): parked and migrated jobs are re-routed
//!    at `t0`, then every arrival with submit time in `[t0, t1)` is routed
//!    under the configured [`DispatchPolicy`] and submitted with its original
//!    submit time.
//! 3. **Advance** (parallel): every shard advances its engine to `t1`
//!    independently — shards share nothing mid-epoch, so this fans out over
//!    [`parallel_map_mut`] with zero synchronization beyond the barrier.
//! 4. **Merge** (driving thread): completions are harvested in ascending
//!    site-id order and appended to the global stream.
//!
//! # Determinism invariants
//!
//! The merged result is **bit-identical for any thread count**:
//!
//! * every routing decision happens on the driving thread against quiescent
//!   shard state — the parallel phase never influences *which* site a job
//!   lands on within an epoch;
//! * shard advances are pure per-shard functions of the shard's own inputs;
//! * the merge order is `(epoch, site id, engine completion order)` — fixed
//!   by the harvest loop, not by thread scheduling;
//! * reports derived from a [`MetaResult`] contain no wall-clock or
//!   thread-count-dependent values.
//!
//! The serial twin (`threads == 1`) runs the very same code path with the
//! parallel section degraded to a `for` loop; the proptests in
//! `tests/proptest_epoch.rs` enforce equality against it.
//!
//! # Epoch-boundary semantics
//!
//! Arrivals are routed at the *start* of the epoch containing their submit
//! time, with the metascheduler seeing fleet pressure as of `t0` (dispatch
//! decisions within an epoch are blind to each other's completions — the
//! price of parallelism, bounded by `epoch_len`). Outage transitions are
//! quantized to the first boundary at or after their scheduled instant.
//! Events within the engine's `EPS` fuzz of a boundary defer to the next
//! epoch on every shard identically.

use crate::dispatch::{DispatchPolicy, Dispatcher};
use crate::shard::{Shard, ShardSpec};
use psbench_harness::parallel_map_mut;
use psbench_sched::UnknownScheduler;
use psbench_sim::{FinishedJob, SimJob, SimulationResult};
use psbench_store::{result_fingerprint, Fnv128, MetaSummary};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Version of the epoch loop's observable semantics. Folded into store keys
/// so cached metasystem results are invalidated when the loop changes.
pub const META_VERSION: u32 = 1;

/// Engine ids encode the migration attempt in a high band:
/// `engine_id = original_id + attempt · MIGRATION_BAND`, so a job re-entering
/// a site it already visited never collides with its cancelled first attempt.
const MIGRATION_BAND: u64 = 1 << 40;

/// A scheduled outage of one site, in metasystem time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiteOutage {
    /// The site that goes down.
    pub site: u32,
    /// When the outage begins.
    pub start: f64,
    /// When the site comes back up.
    pub end: f64,
}

/// Configuration of a metasystem run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetaConfig {
    /// Epoch length in seconds (the granularity of cross-site decisions).
    pub epoch_len: f64,
    /// Worker threads for the parallel advance phase. Affects wall-clock
    /// only — results are bit-identical for any value.
    pub threads: usize,
    /// The cross-site dispatch policy.
    pub dispatch: DispatchPolicy,
    /// Scheduled site outages.
    pub outages: Vec<SiteOutage>,
}

impl MetaConfig {
    /// A one-hour-epoch, single-threaded configuration under `dispatch`.
    pub fn new(dispatch: DispatchPolicy) -> Self {
        MetaConfig {
            epoch_len: 3600.0,
            threads: 1,
            dispatch,
            outages: Vec::new(),
        }
    }

    /// Set the epoch length.
    pub fn with_epoch_len(mut self, epoch_len: f64) -> Self {
        self.epoch_len = epoch_len;
        self
    }

    /// Set the advance-phase thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Attach scheduled outages.
    pub fn with_outages(mut self, outages: Vec<SiteOutage>) -> Self {
        self.outages = outages;
        self
    }
}

/// Everything a metasystem run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaResult {
    /// The merged fleet-wide result: finished jobs carry their **original**
    /// ids and submit times, `restarts` counts outage-induced migrations, and
    /// the aggregate counters are summed across shards.
    pub result: SimulationResult,
    /// Number of sites simulated.
    pub sites: usize,
    /// Dispatch policy name.
    pub dispatch: String,
    /// Epochs the loop executed.
    pub epochs: u64,
    /// Total jobs dispatched (first placements; migrations not included).
    pub dispatched: u64,
    /// Outage-induced migrations performed.
    pub migrations: u64,
    /// Completed jobs per site, in site-id order.
    pub per_site_finished: Vec<u64>,
}

impl MetaResult {
    /// A 64-bit fingerprint of the merged result, via the store codec's
    /// canonical encoding — byte-stable across platforms and thread counts.
    pub fn fingerprint(&self) -> u64 {
        result_fingerprint(&self.result)
    }

    /// The canonical store key of a metasystem cell: the (workload, fleet,
    /// dispatch, config) coordinates under [`META_VERSION`] and the scheduler
    /// zoo's version. Two runs share a key iff the epoch loop guarantees them
    /// byte-identical results.
    pub fn cell_key(
        workload: &str,
        jobs: usize,
        seed: u64,
        specs: &[ShardSpec],
        cfg: &MetaConfig,
    ) -> u128 {
        let mut h = Fnv128::new();
        h.write_str("metasim-cell");
        h.write_u32(META_VERSION);
        h.write_u32(psbench_sched::SCHED_VERSION);
        h.write_str(workload);
        h.write_u64(jobs as u64);
        h.write_u64(seed);
        h.write_f64(cfg.epoch_len);
        h.write_str(cfg.dispatch.name());
        h.write_u64(specs.len() as u64);
        for s in specs {
            h.write_u32(s.id);
            h.write_u32(s.procs);
            h.write_f64(s.speed);
            h.write_str(&s.scheduler);
        }
        h.write_u64(cfg.outages.len() as u64);
        for o in &cfg.outages {
            h.write_u32(o.site);
            h.write_f64(o.start);
            h.write_f64(o.end);
        }
        h.finish()
    }

    /// The store-codec form of this result, for memoization under
    /// [`MetaResult::cell_key`]. [`MetaResult::from_summary`] restores a
    /// value `==` this one, so cached reports re-render byte-identically.
    pub fn to_summary(&self) -> MetaSummary {
        MetaSummary {
            sites: self.sites as u64,
            dispatch: self.dispatch.clone(),
            epochs: self.epochs,
            dispatched: self.dispatched,
            migrations: self.migrations,
            per_site_finished: self.per_site_finished.clone(),
            result: self.result.clone(),
        }
    }

    /// Exact inverse of [`MetaResult::to_summary`].
    pub fn from_summary(s: MetaSummary) -> MetaResult {
        MetaResult {
            result: s.result,
            sites: s.sites as usize,
            dispatch: s.dispatch,
            epochs: s.epochs,
            dispatched: s.dispatched,
            migrations: s.migrations,
            per_site_finished: s.per_site_finished,
        }
    }

    /// Render the deterministic run report: identical bytes for any thread
    /// count (timing never goes here — the CLI prints it to stderr).
    pub fn render_report(&self) -> String {
        let agg = self.result.aggregate();
        let sys = self.result.system();
        let (min_fin, max_fin) = self
            .per_site_finished
            .iter()
            .fold((u64::MAX, 0u64), |(lo, hi), &c| (lo.min(c), hi.max(c)));
        let mean_fin = if self.per_site_finished.is_empty() {
            0.0
        } else {
            self.per_site_finished.iter().sum::<u64>() as f64 / self.per_site_finished.len() as f64
        };
        let mut out = String::new();
        out.push_str("# metasim report\n\n");
        out.push_str(&format!("sites: {}\n", self.sites));
        out.push_str(&format!("dispatch: {}\n", self.dispatch));
        out.push_str(&format!("epochs: {}\n", self.epochs));
        out.push_str(&format!("dispatched: {}\n", self.dispatched));
        out.push_str(&format!("migrations: {}\n", self.migrations));
        out.push_str(&format!("finished: {}\n", self.result.finished.len()));
        out.push_str(&format!("unfinished: {}\n", self.result.unfinished));
        out.push_str(&format!(
            "events processed: {}\n",
            self.result.events_processed
        ));
        out.push_str(&format!("end time: {:.3}\n", self.result.end_time));
        out.push_str(&format!("mean wait [s]: {:.6}\n", agg.wait_time.mean));
        out.push_str(&format!(
            "mean response [s]: {:.6}\n",
            agg.response_time.mean
        ));
        out.push_str(&format!(
            "mean bounded slowdown: {:.6}\n",
            agg.bounded_slowdown.mean
        ));
        out.push_str(&format!("utilization: {:.6}\n", sys.utilization));
        out.push_str(&format!(
            "per-site finished: min {} / mean {:.1} / max {}\n",
            if min_fin == u64::MAX { 0 } else { min_fin },
            mean_fin,
            max_fin
        ));
        out.push_str(&format!("fingerprint: {:016x}\n", self.fingerprint()));
        out
    }
}

/// Run a metasystem of `specs` over the global arrival stream `jobs` under
/// `cfg`. Jobs are routed by `(submit, id)` order; every job id must be
/// unique and below 2⁴⁰ (the migration band).
///
/// See the [module docs](self) for the loop structure and the determinism
/// invariants the result satisfies.
pub fn run_metasystem(
    specs: &[ShardSpec],
    jobs: &[SimJob],
    cfg: &MetaConfig,
) -> Result<MetaResult, UnknownScheduler> {
    assert!(cfg.epoch_len > 0.0, "epoch length must be positive");
    assert!(!specs.is_empty(), "metasystem has no sites");
    let mut shards = specs
        .iter()
        .cloned()
        .map(Shard::new)
        .collect::<Result<Vec<_>, _>>()?;
    let n = shards.len();
    let threads = cfg.threads.max(1);

    // Global arrival order: (submit, id).
    let mut order: Vec<u32> = (0..jobs.len() as u32).collect();
    order.sort_by(|&a, &b| {
        let (ja, jb) = (&jobs[a as usize], &jobs[b as usize]);
        ja.submit.total_cmp(&jb.submit).then(ja.id.cmp(&jb.id))
    });

    // Outage transition schedules, each consumed by a cursor at boundaries.
    let mut starts: Vec<(f64, u32)> = cfg.outages.iter().map(|o| (o.start, o.site)).collect();
    starts.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut ends: Vec<(f64, u32)> = cfg.outages.iter().map(|o| (o.end, o.site)).collect();
    ends.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let (mut si, mut ei) = (0usize, 0usize);
    let mut down_count = vec![0u32; n];
    let mut down = vec![false; n];

    let mut dispatcher = Dispatcher::new(cfg.dispatch);
    // original id → (index into `jobs`, migrations so far).
    let mut origin: HashMap<u64, (u32, u32)> = HashMap::with_capacity(jobs.len());
    let mut cursor = 0usize;
    let mut parked: Vec<u64> = Vec::new();
    let mut merged: Vec<FinishedJob> = Vec::new();
    let mut epochs = 0u64;
    let mut dispatched = 0u64;
    let mut migrations = 0u64;
    let mut k = 0u64;

    let harvest_into = |shards: &mut Vec<Shard>,
                        merged: &mut Vec<FinishedJob>,
                        origin: &HashMap<u64, (u32, u32)>| {
        for shard in shards.iter_mut() {
            for f in shard.harvest() {
                let orig = f.id % MIGRATION_BAND;
                let &(idx, migs) = origin.get(&orig).expect("finished job has an origin");
                merged.push(FinishedJob {
                    id: orig,
                    submit: jobs[idx as usize].submit.max(0.0),
                    start: f.start,
                    first_start: f.first_start,
                    end: f.end,
                    procs: f.procs,
                    restarts: f.restarts + migs,
                    user: f.user,
                });
            }
        }
    };

    loop {
        let t0 = k as f64 * cfg.epoch_len;
        let t1 = (k + 1) as f64 * cfg.epoch_len;

        // Phase 1a: sites coming back up by t0.
        while ei < ends.len() && ends[ei].0 <= t0 {
            let site = ends[ei].1 as usize;
            ei += 1;
            if site < n && down_count[site] > 0 {
                down_count[site] -= 1;
                if down_count[site] == 0 {
                    down[site] = false;
                }
            }
        }
        // Phase 1b: sites going down by t0 — cancel their backlogs for
        // re-dispatch. Transition order is (time, site id): deterministic.
        let mut freshly_migrated: Vec<u64> = Vec::new();
        while si < starts.len() && starts[si].0 <= t0 {
            let site = starts[si].1 as usize;
            si += 1;
            if site >= n {
                continue;
            }
            down_count[site] += 1;
            if down_count[site] == 1 {
                down[site] = true;
                // Withdraw the backlog in arrival order. Each cancellation
                // consults the local policy, which may react by *starting*
                // a later queued job at this very instant — the local
                // scheduler keeps running its machine and wins that race;
                // such jobs ride out the outage like any running job.
                for engine_id in shards[site].queued_engine_ids() {
                    match shards[site].cancel(engine_id) {
                        Ok(()) => freshly_migrated.push(engine_id % MIGRATION_BAND),
                        Err(psbench_sim::OnlineError::JobRunning(_)) => {}
                        Err(e) => panic!("withdrawing queued job {engine_id}: {e:?}"),
                    }
                }
            }
        }

        // Phase 2: dispatch. Routing state reflects the quiescent fleet at t0.
        dispatcher.begin_epoch(&shards, &down);
        let mut redispatch = std::mem::take(&mut parked);
        redispatch.extend(freshly_migrated);
        for orig in redispatch {
            let entry = origin.get_mut(&orig).expect("migrated job has an origin");
            let job = &jobs[entry.0 as usize];
            match dispatcher.pick(&mut shards, &down, job, t0) {
                Some(i) => {
                    entry.1 += 1;
                    migrations += 1;
                    let engine_id = orig + entry.1 as u64 * MIGRATION_BAND;
                    shards[i]
                        .submit(job, engine_id, t0)
                        .expect("boundary submit is never in the released past");
                    dispatcher.note_submitted(&shards, i);
                }
                None => parked.push(orig),
            }
        }
        while cursor < order.len() {
            let idx = order[cursor] as usize;
            let job = &jobs[idx];
            let at = job.submit.max(0.0);
            if at >= t1 {
                break;
            }
            cursor += 1;
            let orig = job.id;
            assert!(
                orig < MIGRATION_BAND,
                "job id {orig} exceeds the migration band"
            );
            origin.insert(orig, (idx as u32, 0));
            dispatched += 1;
            match dispatcher.pick(&mut shards, &down, job, t0) {
                Some(i) => {
                    shards[i]
                        .submit(job, orig, at)
                        .expect("epoch arrivals are never in the released past");
                    dispatcher.note_submitted(&shards, i);
                }
                None => parked.push(orig),
            }
        }

        // Phase 2½: stop once no dispatch decision can ever be needed again.
        if cursor >= order.len() && si >= starts.len() {
            if parked.is_empty() {
                break;
            }
            if ei >= ends.len() {
                // Every site is down forever; parked jobs can never run.
                break;
            }
        }

        // Phase 3: the parallel advance — shard-local, zero cross-talk.
        parallel_map_mut(&mut shards, threads, |_, s| s.advance_to(t1));

        // Phase 4: deterministic merge in site-id order.
        harvest_into(&mut shards, &mut merged, &origin);
        for shard in shards.iter_mut() {
            shard.calendar.expire_reservations(t1);
        }
        epochs += 1;

        // Next boundary, jumping stretches where nothing is due.
        k += 1;
        let mut next_due = f64::INFINITY;
        if cursor < order.len() {
            next_due = next_due.min(jobs[order[cursor] as usize].submit.max(0.0));
        }
        if si < starts.len() {
            next_due = next_due.min(starts[si].0);
        }
        if ei < ends.len() && (!parked.is_empty() || cursor < order.len()) {
            next_due = next_due.min(ends[ei].0);
        }
        if next_due.is_finite() {
            let due_k = (next_due.max(0.0) / cfg.epoch_len).floor() as u64;
            k = k.max(due_k);
        }
    }

    // Final drain: all dispatch decisions are made; run every shard dry.
    parallel_map_mut(&mut shards, threads, |_, s| s.advance_to(f64::INFINITY));
    harvest_into(&mut shards, &mut merged, &origin);

    let mut result = SimulationResult {
        scheduler: format!("metasim/{}", cfg.dispatch.name()),
        machine_size: specs.iter().fold(0u32, |a, s| a.saturating_add(s.procs)),
        finished: Vec::new(),
        unfinished: parked.len(),
        discarded: 0,
        idle_while_queued: 0.0,
        busy_integral: 0.0,
        lost_node_seconds: 0.0,
        kills: 0,
        rejected_decisions: 0,
        coalesced_wakeups: 0,
        events_processed: 0,
        end_time: 0.0,
    };
    let mut per_site_finished = Vec::with_capacity(n);
    for shard in shards {
        let r = shard.finish();
        per_site_finished.push(r.finished.len() as u64);
        result.unfinished += r.unfinished;
        result.discarded += r.discarded;
        result.idle_while_queued += r.idle_while_queued;
        result.busy_integral += r.busy_integral;
        result.lost_node_seconds += r.lost_node_seconds;
        result.kills += r.kills;
        result.rejected_decisions += r.rejected_decisions;
        result.coalesced_wakeups += r.coalesced_wakeups;
        result.events_processed += r.events_processed;
        result.end_time = result.end_time.max(r.end_time);
    }
    result.finished = merged;

    Ok(MetaResult {
        result,
        sites: n,
        dispatch: cfg.dispatch.name().to_string(),
        epochs,
        dispatched,
        migrations,
        per_site_finished,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::standard_shard_fleet;

    fn stream(n: u64, seed: u64) -> Vec<SimJob> {
        // A deterministic synthetic stream: staggered submits, mixed widths
        // and runtimes, a few users.
        (0..n)
            .map(|i| {
                let h = (i ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 7;
                let submit = (i as f64) * 30.0 + (h % 1000) as f64 / 10.0;
                let procs = 1 + (h % 96) as u32;
                let runtime = 60.0 + (h % 7919) as f64;
                SimJob::rigid(i + 1, submit, runtime, procs).with_user((h % 13) as u32)
            })
            .collect()
    }

    #[test]
    fn every_job_finishes_and_keeps_its_identity() {
        let specs = standard_shard_fleet(6, "easy");
        let jobs = stream(200, 1);
        let cfg = MetaConfig::new(DispatchPolicy::RoundRobin).with_epoch_len(600.0);
        let res = run_metasystem(&specs, &jobs, &cfg).unwrap();
        assert_eq!(res.result.finished.len(), 200);
        assert_eq!(res.result.unfinished, 0);
        assert_eq!(res.dispatched, 200);
        let mut ids: Vec<u64> = res.result.finished.iter().map(|f| f.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (1..=200).collect::<Vec<u64>>());
        // Original submit times are preserved in the merged stream.
        for f in &res.result.finished {
            let job = jobs.iter().find(|j| j.id == f.id).unwrap();
            assert_eq!(f.submit.to_bits(), job.submit.max(0.0).to_bits());
            assert!(f.start >= f.submit - 1e-9);
        }
        assert_eq!(res.per_site_finished.iter().sum::<u64>(), 200);
    }

    #[test]
    fn parallel_advance_is_bit_identical_to_the_serial_twin() {
        let specs = standard_shard_fleet(8, "easy");
        let jobs = stream(300, 7);
        for dispatch in DispatchPolicy::all() {
            let cfg = MetaConfig::new(*dispatch).with_epoch_len(900.0);
            let serial = run_metasystem(&specs, &jobs, &cfg).unwrap();
            for threads in [2usize, 8] {
                let par =
                    run_metasystem(&specs, &jobs, &cfg.clone().with_threads(threads)).unwrap();
                assert_eq!(
                    par.result,
                    serial.result,
                    "{} t={}",
                    dispatch.name(),
                    threads
                );
                assert_eq!(par.fingerprint(), serial.fingerprint());
                assert_eq!(par.render_report(), serial.render_report());
            }
        }
    }

    #[test]
    fn outages_migrate_queued_jobs_and_count_restarts() {
        let specs = standard_shard_fleet(4, "fcfs");
        // Saturate site backlog, then take sites down mid-run.
        let jobs = stream(120, 3);
        let outages = vec![
            SiteOutage {
                site: 0,
                start: 500.0,
                end: 4000.0,
            },
            SiteOutage {
                site: 2,
                start: 1000.0,
                end: 3000.0,
            },
        ];
        let cfg = MetaConfig::new(DispatchPolicy::RoundRobin)
            .with_epoch_len(300.0)
            .with_outages(outages);
        let res = run_metasystem(&specs, &jobs, &cfg).unwrap();
        assert_eq!(res.result.finished.len(), 120, "outages lose no jobs");
        assert!(res.migrations > 0, "down sites must shed their backlogs");
        // Migration counts surface as restarts in the merged result.
        let restarted: u64 = res.result.finished.iter().map(|f| f.restarts as u64).sum();
        assert_eq!(restarted, res.migrations);
        // The outage windows keep their sites from finishing *new* work
        // mid-window, so the loaded sites' shares shift measurably.
        assert!(res.per_site_finished[1] > 0);
    }

    #[test]
    fn least_pressure_beats_round_robin_under_imbalanced_load() {
        // An imbalanced fleet: one big fast site, several small slow ones.
        let mut specs = standard_shard_fleet(5, "easy");
        specs[0].procs = 1024;
        specs[0].speed = 2.0;
        for s in specs.iter_mut().skip(1) {
            s.procs = 64;
            s.speed = 0.8;
        }
        let jobs = stream(400, 11);
        let rr = run_metasystem(
            &specs,
            &jobs,
            &MetaConfig::new(DispatchPolicy::RoundRobin).with_epoch_len(600.0),
        )
        .unwrap();
        let lp = run_metasystem(
            &specs,
            &jobs,
            &MetaConfig::new(DispatchPolicy::LeastPressure).with_epoch_len(600.0),
        )
        .unwrap();
        assert!(
            lp.result.mean_response_time() < rr.result.mean_response_time(),
            "least-pressure {} vs round-robin {}",
            lp.result.mean_response_time(),
            rr.result.mean_response_time()
        );
    }

    #[test]
    fn cell_keys_separate_every_coordinate() {
        let specs = standard_shard_fleet(4, "easy");
        let cfg = MetaConfig::new(DispatchPolicy::RoundRobin);
        let base = MetaResult::cell_key("lublin99", 100, 1, &specs, &cfg);
        assert_ne!(
            base,
            MetaResult::cell_key("lublin99", 100, 2, &specs, &cfg),
            "seed"
        );
        assert_ne!(
            base,
            MetaResult::cell_key("lublin99", 101, 1, &specs, &cfg),
            "jobs"
        );
        assert_ne!(
            base,
            MetaResult::cell_key("jann97", 100, 1, &specs, &cfg),
            "workload"
        );
        let other_fleet = standard_shard_fleet(5, "easy");
        assert_ne!(
            base,
            MetaResult::cell_key("lublin99", 100, 1, &other_fleet, &cfg),
            "fleet"
        );
        assert_ne!(
            base,
            MetaResult::cell_key(
                "lublin99",
                100,
                1,
                &specs,
                &MetaConfig::new(DispatchPolicy::LeastPressure)
            ),
            "dispatch"
        );
    }

    #[test]
    fn report_is_deterministic_and_carries_the_fingerprint() {
        let specs = standard_shard_fleet(3, "fcfs");
        let jobs = stream(50, 5);
        let cfg = MetaConfig::new(DispatchPolicy::Affinity).with_epoch_len(600.0);
        let a = run_metasystem(&specs, &jobs, &cfg).unwrap();
        let b = run_metasystem(&specs, &jobs, &cfg).unwrap();
        assert_eq!(a.render_report(), b.render_report());
        assert!(a
            .render_report()
            .contains(&format!("{:016x}", a.fingerprint())));
        assert!(a.render_report().contains("dispatch: affinity"));
    }

    #[test]
    fn summary_round_trip_preserves_the_report_byte_for_byte() {
        let specs = standard_shard_fleet(4, "easy");
        let jobs = stream(80, 9);
        let cfg = MetaConfig::new(DispatchPolicy::LeastPressure).with_epoch_len(900.0);
        let meta = run_metasystem(&specs, &jobs, &cfg).unwrap();
        let back = MetaResult::from_summary(meta.to_summary());
        assert_eq!(back, meta);
        assert_eq!(back.render_report(), meta.render_report());
    }
}
