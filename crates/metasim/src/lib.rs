//! # psbench-metasim — a WARMstones-style metacomputing evaluation environment
//!
//! Sections 3 and 4 of the paper extend the benchmarking question from single
//! parallel machines to metasystems ("computational grids"), and sketch the
//! WARMstones evaluation environment: a benchmark suite of annotated application
//! graphs, a canonical representation of the metasystem, and a simulation engine.
//! Following the paper's own prescription ("meta schedulers can be evaluated using
//! simple models of local schedulers"), the sites here are simple queue-wait /
//! reservation models rather than full per-site event simulations:
//!
//! * [`site`] — sites (machine schedulers wrapped for the metasystem): size, speed,
//!   background load, price, queue-wait model, wait predictions, reservations.
//! * [`appmodel`] — annotated application graphs, the three micro-benchmark classes
//!   of Section 3.2, mixed-mode workloads, and the inter-site network model.
//! * [`metasched`] — placement strategies, the application scheduler (list
//!   scheduling of graphs onto sites), queue- versus reservation-based
//!   co-allocation, and the Figure-1 entity hierarchy.

#![warn(missing_docs)]

pub mod appmodel;
pub mod metasched;
pub mod site;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::appmodel::{
        mixed_workload, AppGraph, Device, Edge, MicroBenchmark, Module, Network,
    };
    pub use crate::metasched::{
        build_hierarchy, coallocate_via_queues, coallocate_via_reservations, AppSchedule,
        AppScheduler, CoallocationOutcome, CoallocationRequest, DeviceMap, Entity, EntityKind,
        PlacementStrategy,
    };
    pub use crate::site::{standard_metasystem, Site, SitePlacement, SiteSpec};
}

pub use prelude::*;
