//! # psbench-metasim — a WARMstones-style metacomputing evaluation environment
//!
//! Sections 3 and 4 of the paper extend the benchmarking question from single
//! parallel machines to metasystems ("computational grids"), and sketch the
//! WARMstones evaluation environment: a benchmark suite of annotated application
//! graphs, a canonical representation of the metasystem, and a simulation engine.
//! Two tiers of fidelity implement Sections 3–4:
//!
//! **Analytic sites** — the paper's own prescription ("meta schedulers can be
//! evaluated using simple models of local schedulers"): queue-wait /
//! reservation models for fast strategy studies.
//!
//! * [`site`] — sites (machine schedulers wrapped for the metasystem): size, speed,
//!   background load, price, queue-wait model, wait predictions, reservations.
//! * [`appmodel`] — annotated application graphs, the three micro-benchmark classes
//!   of Section 3.2, mixed-mode workloads, and the inter-site network model.
//! * [`metasched`] — placement strategies, the application scheduler (list
//!   scheduling of graphs onto sites), queue- versus reservation-based
//!   co-allocation, and the Figure-1 entity hierarchy.
//!
//! **Engine shards** — fleet-scale simulation over *real* local schedulers:
//! every site wraps an independent online calendar engine, advanced in
//! parallel by a bulk-synchronous epoch loop with deterministic cross-site
//! dispatch.
//!
//! * [`shard`] — one site as an online engine + zoo policy + pressure
//!   aggregates.
//! * [`dispatch`] — the pluggable cross-site [`dispatch::DispatchPolicy`]s
//!   (round-robin, least-pressure over the backlog index's O(1) aggregates,
//!   data-affinity, reservation-based co-allocation).
//! * [`epoch`] — the epoch loop itself: parallel shard advance, outage
//!   migration, and a merge that is bit-identical for any thread count.

#![warn(missing_docs)]

pub mod appmodel;
pub mod dispatch;
pub mod epoch;
pub mod metasched;
pub mod shard;
pub mod site;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::appmodel::{
        mixed_workload, AppGraph, Device, Edge, MicroBenchmark, Module, Network,
    };
    pub use crate::dispatch::{DispatchPolicy, Dispatcher};
    pub use crate::epoch::{run_metasystem, MetaConfig, MetaResult, SiteOutage, META_VERSION};
    pub use crate::metasched::{
        build_hierarchy, coallocate_via_queues, coallocate_via_reservations, AppSchedule,
        AppScheduler, CoallocationOutcome, CoallocationRequest, DeviceMap, Entity, EntityKind,
        PlacementStrategy,
    };
    pub use crate::shard::{standard_shard_fleet, Shard, ShardSpec};
    pub use crate::site::{standard_metasystem, Site, SitePlacement, SiteSpec};
}

pub use prelude::*;
