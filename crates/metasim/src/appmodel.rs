//! Metacomputing applications: annotated program graphs and micro-benchmarks.
//!
//! Section 4.3 proposes representing benchmark applications as "annotated graphs"
//! (Legion program graphs) and simulating their execution by interpreting the
//! graphs; Section 3.2 proposes starting the benchmark suite from micro-benchmarks
//! that each stress one aspect of the metasystem (compute-intensive,
//! communication-intensive, device-constrained) plus mixed-mode workloads.

use psbench_workload::dist::{exponential, log_uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A special device a module may require (the "specific set of devices from
/// different locations" of Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Device {
    /// A visualization engine.
    Visualization,
    /// A mass storage archive.
    Archive,
    /// A physical instrument (telescope, microscope, ...).
    Instrument,
}

/// One module (task) of a meta-application graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Module identifier (index in the graph).
    pub id: usize,
    /// Computation in processor-seconds (at reference speed).
    pub work: f64,
    /// Processors the module wants.
    pub procs: u32,
    /// Device the module must be co-located with, if any.
    pub device: Option<Device>,
}

/// A dependence edge between modules, annotated with the data volume transferred.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Producer module.
    pub from: usize,
    /// Consumer module.
    pub to: usize,
    /// Data transferred along the edge, in megabytes.
    pub data_mb: f64,
}

/// An annotated application graph (DAG of modules).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AppGraph {
    /// Human readable name (micro-benchmark class or application name).
    pub name: String,
    /// The modules.
    pub modules: Vec<Module>,
    /// The dependence edges (must reference existing modules, producer < consumer).
    pub edges: Vec<Edge>,
}

impl AppGraph {
    /// Total computation of the application in processor-seconds.
    pub fn total_work(&self) -> f64 {
        self.modules.iter().map(|m| m.work).sum()
    }

    /// Total data volume moved along edges, in megabytes.
    pub fn total_data_mb(&self) -> f64 {
        self.edges.iter().map(|e| e.data_mb).sum()
    }

    /// Communication-to-computation ratio (MB per processor-second).
    pub fn comm_to_comp(&self) -> f64 {
        let work = self.total_work();
        if work <= 0.0 {
            0.0
        } else {
            self.total_data_mb() / work
        }
    }

    /// Modules with no incoming edges (entry modules).
    pub fn entry_modules(&self) -> Vec<usize> {
        (0..self.modules.len())
            .filter(|&m| !self.edges.iter().any(|e| e.to == m))
            .collect()
    }

    /// Predecessors of a module.
    pub fn predecessors(&self, module: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|e| e.to == module)
            .map(|e| e.from)
            .collect()
    }

    /// True if the edges form a DAG over valid module indices with `from < to`
    /// (the canonical topological numbering used throughout this crate).
    pub fn is_well_formed(&self) -> bool {
        self.edges
            .iter()
            .all(|e| e.from < self.modules.len() && e.to < self.modules.len() && e.from < e.to)
    }
}

/// The micro-benchmark classes of Section 3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MicroBenchmark {
    /// "A compute-intensive meta-application that can use all the cycles from all
    /// the machines it can get": wide independent modules, almost no communication.
    ComputeIntensive,
    /// "A communication-intensive meta application that requires extensive data
    /// transfers between its parts": a pipeline of modules with heavy edges.
    CommunicationIntensive,
    /// "A meta-application that requires a specific set of devices from different
    /// locations": modules pinned to devices.
    DeviceConstrained,
}

impl MicroBenchmark {
    /// All micro-benchmark classes.
    pub fn all() -> &'static [MicroBenchmark] {
        &[
            MicroBenchmark::ComputeIntensive,
            MicroBenchmark::CommunicationIntensive,
            MicroBenchmark::DeviceConstrained,
        ]
    }

    /// Generate one application graph of this class.
    pub fn generate(&self, modules: usize, seed: u64) -> AppGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let modules = modules.max(1);
        match self {
            MicroBenchmark::ComputeIntensive => {
                let mods: Vec<Module> = (0..modules)
                    .map(|id| Module {
                        id,
                        work: log_uniform(&mut rng, 10_000.0, 500_000.0),
                        procs: 1u32 << rng.gen_range(4..8),
                        device: None,
                    })
                    .collect();
                AppGraph {
                    name: "compute-intensive".to_string(),
                    modules: mods,
                    edges: Vec::new(),
                }
            }
            MicroBenchmark::CommunicationIntensive => {
                let mods: Vec<Module> = (0..modules)
                    .map(|id| Module {
                        id,
                        work: exponential(&mut rng, 20_000.0),
                        procs: 1u32 << rng.gen_range(3..6),
                        device: None,
                    })
                    .collect();
                let edges: Vec<Edge> = (1..modules)
                    .map(|to| Edge {
                        from: to - 1,
                        to,
                        data_mb: log_uniform(&mut rng, 500.0, 50_000.0),
                    })
                    .collect();
                AppGraph {
                    name: "communication-intensive".to_string(),
                    modules: mods,
                    edges,
                }
            }
            MicroBenchmark::DeviceConstrained => {
                let devices = [Device::Visualization, Device::Archive, Device::Instrument];
                let mods: Vec<Module> = (0..modules)
                    .map(|id| Module {
                        id,
                        work: exponential(&mut rng, 30_000.0),
                        procs: 1u32 << rng.gen_range(2..6),
                        device: Some(devices[id % devices.len()]),
                    })
                    .collect();
                let edges: Vec<Edge> = (1..modules)
                    .map(|to| Edge {
                        from: rng.gen_range(0..to),
                        to,
                        data_mb: exponential(&mut rng, 200.0),
                    })
                    .collect();
                AppGraph {
                    name: "device-constrained".to_string(),
                    modules: mods,
                    edges,
                }
            }
        }
    }
}

/// A mixed-mode workload: a sequence of meta-applications with arrival times, drawn
/// from the micro-benchmark classes with the given weights.
pub fn mixed_workload(
    n_apps: usize,
    mean_interarrival: f64,
    weights: &[(MicroBenchmark, f64)],
    seed: u64,
) -> Vec<(f64, AppGraph)> {
    assert!(!weights.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let ws: Vec<f64> = weights.iter().map(|(_, w)| *w).collect();
    let mut t = 0.0;
    (0..n_apps)
        .map(|i| {
            t += exponential(&mut rng, mean_interarrival.max(1.0));
            let idx = psbench_workload::dist::discrete(&mut rng, &ws);
            let modules = rng.gen_range(3..10);
            (
                t,
                weights[idx]
                    .0
                    .generate(modules, seed.wrapping_add(i as u64)),
            )
        })
        .collect()
}

/// The inter-site network: a uniform latency/bandwidth model (Section 4.3's
/// "simple model" level of detail).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Network {
    /// One-way latency between two different sites, seconds.
    pub latency: f64,
    /// Bandwidth between two different sites, megabytes per second.
    pub bandwidth_mb_per_s: f64,
}

impl Default for Network {
    fn default() -> Self {
        Network {
            latency: 0.05,
            bandwidth_mb_per_s: 10.0,
        }
    }
}

impl Network {
    /// Transfer time of `data_mb` megabytes between `from` and `to` (zero within a
    /// site).
    pub fn transfer_time(&self, from: u32, to: u32, data_mb: f64) -> f64 {
        if from == to || data_mb <= 0.0 {
            0.0
        } else {
            self.latency + data_mb / self.bandwidth_mb_per_s.max(1e-9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_benchmarks_have_their_defining_shapes() {
        let compute = MicroBenchmark::ComputeIntensive.generate(6, 1);
        let comm = MicroBenchmark::CommunicationIntensive.generate(6, 1);
        let device = MicroBenchmark::DeviceConstrained.generate(6, 1);
        assert!(compute.is_well_formed());
        assert!(comm.is_well_formed());
        assert!(device.is_well_formed());
        assert_eq!(compute.edges.len(), 0);
        assert_eq!(comm.edges.len(), 5);
        assert!(comm.comm_to_comp() > compute.comm_to_comp());
        assert!(device.modules.iter().all(|m| m.device.is_some()));
        assert!(compute.modules.iter().all(|m| m.device.is_none()));
        assert_eq!(MicroBenchmark::all().len(), 3);
    }

    #[test]
    fn graph_queries() {
        let g = MicroBenchmark::CommunicationIntensive.generate(5, 3);
        assert_eq!(g.entry_modules(), vec![0]);
        assert_eq!(g.predecessors(3), vec![2]);
        assert!(g.total_work() > 0.0);
        assert!(g.total_data_mb() > 0.0);
        let empty = AppGraph::default();
        assert_eq!(empty.comm_to_comp(), 0.0);
        assert!(empty.is_well_formed());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = MicroBenchmark::DeviceConstrained.generate(7, 42);
        let b = MicroBenchmark::DeviceConstrained.generate(7, 42);
        assert_eq!(a, b);
        let c = MicroBenchmark::DeviceConstrained.generate(7, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn mixed_workload_mixes_classes() {
        let apps = mixed_workload(
            60,
            600.0,
            &[
                (MicroBenchmark::ComputeIntensive, 1.0),
                (MicroBenchmark::CommunicationIntensive, 1.0),
                (MicroBenchmark::DeviceConstrained, 1.0),
            ],
            7,
        );
        assert_eq!(apps.len(), 60);
        assert!(apps.windows(2).all(|w| w[0].0 <= w[1].0));
        let names: std::collections::HashSet<&str> =
            apps.iter().map(|(_, g)| g.name.as_str()).collect();
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn network_transfer_times() {
        let net = Network::default();
        assert_eq!(net.transfer_time(1, 1, 1000.0), 0.0);
        assert_eq!(net.transfer_time(1, 2, 0.0), 0.0);
        let t = net.transfer_time(1, 2, 100.0);
        assert!((t - (0.05 + 10.0)).abs() < 1e-9);
        // a faster network moves the same data sooner
        let fast = Network {
            latency: 0.01,
            bandwidth_mb_per_s: 1000.0,
        };
        assert!(fast.transfer_time(1, 2, 100.0) < t);
    }
}
