//! Canonical FNV-1a hashing for every fingerprint in the workspace.
//!
//! Two widths share one algorithm:
//!
//! * **64-bit** ([`Fnv64`], [`fnv1a_64`], [`fnv1a_64_hex`]) — the table and
//!   result fingerprints that `sweep-bench` snapshots into
//!   `BENCH_sweep.json`. The helper here is byte-for-byte the hash that tool
//!   has always computed (same offset basis, same prime, same `{:016x}`
//!   rendering), so extracting it into this module changes no committed
//!   baseline.
//! * **128-bit** ([`Fnv128`]) — the content-addressing width of the artifact
//!   store. Store keys name artifacts on disk and must never collide across
//!   thousands of sweep cells and ingested traces; 128 bits of FNV-1a is far
//!   past birthday range for any realistic store population while staying
//!   dependency-free and platform-independent.
//!
//! Both hashers are *streaming*: state is a single integer, `write` can be
//! fed arbitrarily small slices, and the digest of a concatenation equals the
//! digest of the parts fed in order. That is what lets trace ingestion
//! fingerprint an archive file while streaming it record by record in
//! bounded memory.
//!
//! The typed helpers ([`Fnv64::write_u64`], [`Fnv128::write_i64`], …) define
//! the **canonical encoding** of scalars for key derivation: fixed-width
//! little-endian bytes, with `f64` hashed via [`f64::to_bits`] so keys are
//! exact in the same way the codec is (two configs differing only in the sign
//! of a zero hash differently — that is intended: they are different bit
//! patterns). Every multi-field key writes a `/`-separated ASCII tag first so
//! that keys of different kinds can never collide by field reshuffling.

/// The 64-bit FNV-1a offset basis.
const BASIS64: u64 = 0xcbf2_9ce4_8422_2325;
/// The 64-bit FNV-1a prime.
const PRIME64: u64 = 0x0000_0100_0000_01b3;
/// The 128-bit FNV-1a offset basis.
const BASIS128: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// The 128-bit FNV-1a prime.
const PRIME128: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A streaming 64-bit FNV-1a hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(BASIS64)
    }
}

impl Fnv64 {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv64::default()
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(PRIME64);
        }
    }

    /// Absorb a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot 64-bit FNV-1a digest of a byte slice.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// One-shot 64-bit FNV-1a digest rendered as the canonical 16-digit lowercase
/// hex string used by `BENCH_sweep.json`.
pub fn fnv1a_64_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a_64(bytes))
}

/// A streaming 128-bit FNV-1a hasher: the content-addressing hash of the
/// artifact store.
#[derive(Debug, Clone, Copy)]
pub struct Fnv128(u128);

impl Default for Fnv128 {
    fn default() -> Self {
        Fnv128(BASIS128)
    }
}

impl Fnv128 {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv128::default()
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(PRIME128);
        }
    }

    /// Absorb a string's UTF-8 bytes followed by a `/` separator, so adjacent
    /// variable-length fields cannot alias (`("ab","c")` vs `("a","bc")`).
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(b"/");
    }

    /// Absorb a `u32` as 4 little-endian bytes.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb an `i64` as 8 little-endian bytes.
    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb an `f64` by exact bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The digest so far.
    pub fn finish(&self) -> u128 {
        self.0
    }
}

/// Render a 128-bit key as its canonical 32-digit lowercase hex file name.
pub fn key_hex(key: u128) -> String {
    format!("{key:032x}")
}

/// Parse a canonical 32-digit hex key back to its value (`None` for anything
/// that is not exactly 32 lowercase hex digits).
pub fn parse_key_hex(s: &str) -> Option<u128> {
    if s.len() != 32
        || !s
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Classic FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
        assert_eq!(fnv1a_64_hex(b"foobar"), "85944171f73967e8");
    }

    #[test]
    fn fnv64_streaming_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a_64(b"foobar"));
    }

    #[test]
    fn fnv128_streaming_equals_one_shot_and_reference() {
        // FNV-1a 128 of "a" (reference value from the FNV spec tables).
        let mut h = Fnv128::new();
        h.write(b"a");
        let one = h.finish();
        let mut h2 = Fnv128::new();
        h2.write(b"");
        assert_eq!(h2.finish(), BASIS128);
        let mut split = Fnv128::new();
        split.write(b"");
        split.write(b"a");
        assert_eq!(split.finish(), one);
        assert_ne!(one, BASIS128);
    }

    #[test]
    fn string_separator_prevents_field_aliasing() {
        let mut a = Fnv128::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv128::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn key_hex_round_trips() {
        for key in [0u128, 1, u128::MAX, 0xdead_beef_u128 << 64 | 42] {
            assert_eq!(parse_key_hex(&key_hex(key)), Some(key));
        }
        assert_eq!(parse_key_hex("zz"), None);
        assert_eq!(parse_key_hex("00000000000000000000000000000000"), Some(0));
        assert_eq!(parse_key_hex("0000000000000000000000000000000G"), None);
    }

    #[test]
    fn f64_keys_are_bit_exact() {
        let mut a = Fnv128::new();
        a.write_f64(0.0);
        let mut b = Fnv128::new();
        b.write_f64(-0.0);
        assert_ne!(
            a.finish(),
            b.finish(),
            "distinct bit patterns, distinct keys"
        );
    }
}
