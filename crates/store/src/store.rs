//! The content-addressed on-disk artifact store.
//!
//! One store is one directory tree:
//!
//! ```text
//! <root>/traces/<key>.swf        ingested traces, canonical SWF text
//! <root>/profiles/<key>.profile  cached WorkloadProfiles (codec text)
//! <root>/results/<key>.result    memoized SimulationResults (codec text)
//! <root>/meta/<key>.meta         memoized metasystem run summaries (codec text)
//! <root>/ledgers/<key>.ledger    durable sweep progress journals
//! ```
//!
//! Every artifact file is named by the 32-hex-digit rendering of its 128-bit
//! FNV-1a key and written **atomically**: bytes go to a dot-prefixed temp file
//! in the same directory, which is then renamed over the final name. A reader
//! (or a concurrently resumed sweep) therefore only ever observes absent or
//! complete artifacts — never a torn write — and a killed writer leaves at
//! worst a temp file that [`ArtifactStore::gc`] reclaims.
//!
//! Keys are *input* fingerprints, not output hashes: a profile is keyed by
//! (trace fingerprint, analyze version), a result by (trace fingerprint,
//! scheduler, simulation config, scheduler-semantics version). Bumping
//! [`psbench_analyze::ANALYZE_VERSION`] or [`psbench_sched::SCHED_VERSION`]
//! changes every key, so stale artifacts are simply never addressed again;
//! `gc` removes them because their embedded version stamp no longer decodes.
//! Trace keys *are* content-derived — the fingerprint of the parse-canonical
//! record lines plus header — so re-ingesting an already-stored trace (or any
//! byte-different file that parses to the same canonical log) dedupes onto
//! the same artifact.

use crate::codec::{self, CodecError};
use crate::fault::{self, FaultyWriter};
use crate::fnv::{key_hex, parse_key_hex, Fnv128};
use psbench_analyze::{WorkloadProfile, ANALYZE_VERSION};
use psbench_sim::SimulationResult;
use psbench_swf::{record_line, JobSource, ParseError, ParseOptions, RecordIter};
use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The kinds of artifact a store holds, each in its own subdirectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ArtifactKind {
    /// An ingested trace in canonical SWF text.
    Trace,
    /// A cached [`WorkloadProfile`].
    Profile,
    /// A memoized [`SimulationResult`].
    Result,
    /// A memoized metasystem run summary (see [`crate::codec::MetaSummary`]).
    Meta,
    /// A durable sweep progress ledger (see [`crate::ledger::SweepLedger`]).
    Ledger,
}

impl ArtifactKind {
    /// Every kind, in the order store listings report them.
    pub const ALL: [ArtifactKind; 5] = [
        ArtifactKind::Trace,
        ArtifactKind::Profile,
        ArtifactKind::Result,
        ArtifactKind::Meta,
        ArtifactKind::Ledger,
    ];

    /// The subdirectory this kind lives in.
    pub fn dir(self) -> &'static str {
        match self {
            ArtifactKind::Trace => "traces",
            ArtifactKind::Profile => "profiles",
            ArtifactKind::Result => "results",
            ArtifactKind::Meta => "meta",
            ArtifactKind::Ledger => "ledgers",
        }
    }

    /// The file extension of this kind's artifacts.
    pub fn ext(self) -> &'static str {
        match self {
            ArtifactKind::Trace => "swf",
            ArtifactKind::Profile => "profile",
            ArtifactKind::Result => "result",
            ArtifactKind::Meta => "meta",
            ArtifactKind::Ledger => "ledger",
        }
    }
}

impl fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArtifactKind::Trace => "trace",
            ArtifactKind::Profile => "profile",
            ArtifactKind::Result => "result",
            ArtifactKind::Meta => "meta",
            ArtifactKind::Ledger => "ledger",
        })
    }
}

/// One artifact in a store listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreEntry {
    /// What kind of artifact this is.
    pub kind: ArtifactKind,
    /// Its 128-bit key.
    pub key: u128,
    /// On-disk size in bytes.
    pub bytes: u64,
}

/// What [`ArtifactStore::ingest`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestOutcome {
    /// The trace's content fingerprint — its key under [`ArtifactKind::Trace`].
    pub key: u128,
    /// Number of job records in the trace.
    pub records: u64,
    /// `true` when the trace was already present and no bytes were written.
    pub deduplicated: bool,
}

/// What [`ArtifactStore::gc`] reclaimed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Files removed (stale-version artifacts, corrupt artifacts, temp litter).
    pub removed: usize,
    /// Total bytes reclaimed.
    pub reclaimed_bytes: u64,
    /// Artifacts that decoded cleanly and were kept.
    pub kept: usize,
}

/// What [`ArtifactStore::verify`] found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Artifacts that passed every check.
    pub ok: usize,
    /// Human-readable descriptions of every problem found.
    pub problems: Vec<String>,
}

/// Removes a temp file on drop unless defused — keeps error paths from
/// littering the store with partial writes.
struct TmpGuard {
    path: PathBuf,
    keep: bool,
}

impl TmpGuard {
    fn new(path: PathBuf) -> Self {
        TmpGuard { path, keep: false }
    }

    fn defuse(mut self) {
        self.keep = true;
    }
}

impl Drop for TmpGuard {
    fn drop(&mut self) {
        if !self.keep {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// A content-addressed artifact store rooted at one directory.
///
/// All methods take `&self`; concurrent use from sweep workers is safe because
/// every write is an atomic rename and every key names immutable content.
#[derive(Debug)]
pub struct ArtifactStore {
    root: PathBuf,
    tmp_seq: AtomicU64,
}

impl ArtifactStore {
    /// Open (creating if needed) the store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<ArtifactStore> {
        let root = root.into();
        for kind in ArtifactKind::ALL {
            fs::create_dir_all(root.join(kind.dir()))?;
        }
        Ok(ArtifactStore {
            root,
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The on-disk path of an artifact (whether or not it exists).
    pub fn path(&self, kind: ArtifactKind, key: u128) -> PathBuf {
        self.root
            .join(kind.dir())
            .join(format!("{}.{}", key_hex(key), kind.ext()))
    }

    /// Whether an artifact is present.
    pub fn has(&self, kind: ArtifactKind, key: u128) -> bool {
        self.path(kind, key).is_file()
    }

    /// A fresh dot-prefixed temp path in `dir`, unique within this process.
    fn tmp_path(&self, dir: &Path) -> PathBuf {
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        dir.join(format!(".tmp-{}-{seq}", std::process::id()))
    }

    /// Atomically publish `bytes` as the artifact `(kind, key)`. A no-op if
    /// the artifact already exists (content under one key is immutable, so
    /// first-writer-wins is correct).
    fn put_bytes(&self, kind: ArtifactKind, key: u128, bytes: &[u8]) -> io::Result<()> {
        let final_path = self.path(kind, key);
        if final_path.is_file() {
            return Ok(());
        }
        let tmp = self.tmp_path(&self.root.join(kind.dir()));
        let guard = TmpGuard::new(tmp.clone());
        {
            let mut f = File::create(&tmp)?;
            fault::write_all(&mut f, bytes)?;
            f.flush()?;
        }
        fs::rename(&tmp, &final_path)?;
        guard.defuse();
        Ok(())
    }

    fn get_string(&self, kind: ArtifactKind, key: u128) -> io::Result<Option<String>> {
        match fs::read_to_string(self.path(kind, key)) {
            Ok(text) => Ok(Some(text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Cache a profile under `key` (see [`profile_key`] for the canonical key
    /// derivation).
    pub fn put_profile(&self, key: u128, profile: &WorkloadProfile) -> io::Result<()> {
        self.put_bytes(
            ArtifactKind::Profile,
            key,
            codec::encode_profile(profile).as_bytes(),
        )
    }

    /// Fetch a cached profile; `Ok(None)` when absent, `Err` with
    /// [`io::ErrorKind::InvalidData`] when present but corrupt or stale.
    pub fn get_profile(&self, key: u128) -> io::Result<Option<WorkloadProfile>> {
        match self.get_string(ArtifactKind::Profile, key)? {
            None => Ok(None),
            Some(text) => codec::decode_profile(&text).map(Some).map_err(invalid_data),
        }
    }

    /// Memoize a simulation result under `key`.
    pub fn put_result(&self, key: u128, result: &SimulationResult) -> io::Result<()> {
        self.put_bytes(
            ArtifactKind::Result,
            key,
            codec::encode_result(result).as_bytes(),
        )
    }

    /// Fetch a memoized result; `Ok(None)` when absent, `Err` with
    /// [`io::ErrorKind::InvalidData`] when present but corrupt or stale.
    pub fn get_result(&self, key: u128) -> io::Result<Option<SimulationResult>> {
        Ok(self.get_result_with_fingerprint(key)?.map(|(r, _)| r))
    }

    /// Fetch a memoized result together with the FNV-1a fingerprint of its
    /// stored encoding — the same value [`result_fingerprint`] computes,
    /// without re-encoding: stored bytes *are* the canonical encoding
    /// (`encode(decode(text)) == text`, property-tested), so hashing them is
    /// equivalent and additionally pins the actual on-disk bytes.
    ///
    /// [`result_fingerprint`]: crate::codec::result_fingerprint
    pub fn get_result_with_fingerprint(
        &self,
        key: u128,
    ) -> io::Result<Option<(SimulationResult, u64)>> {
        match self.get_string(ArtifactKind::Result, key)? {
            None => Ok(None),
            Some(text) => {
                let fp = crate::fnv::fnv1a_64(text.as_bytes());
                codec::decode_result(&text)
                    .map(|r| Some((r, fp)))
                    .map_err(invalid_data)
            }
        }
    }

    /// Memoize a metasystem run summary under `key`.
    pub fn put_meta(&self, key: u128, meta: &codec::MetaSummary) -> io::Result<()> {
        self.put_bytes(ArtifactKind::Meta, key, codec::encode_meta(meta).as_bytes())
    }

    /// Fetch a memoized metasystem summary; `Ok(None)` when absent, `Err`
    /// with [`io::ErrorKind::InvalidData`] when present but corrupt or stale.
    pub fn get_meta(&self, key: u128) -> io::Result<Option<codec::MetaSummary>> {
        match self.get_string(ArtifactKind::Meta, key)? {
            None => Ok(None),
            Some(text) => codec::decode_meta(&text).map(Some).map_err(invalid_data),
        }
    }

    /// Ingest a job stream as a stored trace, in bounded memory.
    ///
    /// Records are fingerprinted and spilled to a temp body file one at a
    /// time — the stream is never materialized — and the header (complete
    /// once the stream is drained, per the [`JobSource`] contract) is
    /// fingerprinted last and written first. If a trace with the same
    /// fingerprint is already stored, nothing is written
    /// ([`IngestOutcome::deduplicated`]); re-ingesting a stored trace always
    /// dedupes because stored traces are parse-canonical.
    ///
    /// I/O failures surface as [`ParseError::Io`], like any other source
    /// failure.
    pub fn ingest<S: JobSource>(&self, mut source: S) -> Result<IngestOutcome, ParseError> {
        let trace_dir = self.root.join(ArtifactKind::Trace.dir());
        let body_path = self.tmp_path(&trace_dir);
        let _body_guard = TmpGuard::new(body_path.clone());
        let mut body = BufWriter::new(FaultyWriter::new(
            File::create(&body_path).map_err(io_parse)?,
        ));
        let mut hasher = trace_hasher();
        let mut records = 0u64;
        while let Some(rec) = source.next_record() {
            let line = record_line(&rec?);
            hasher.write(line.as_bytes());
            hasher.write(b"\n");
            body.write_all(line.as_bytes()).map_err(io_parse)?;
            body.write_all(b"\n").map_err(io_parse)?;
            records += 1;
        }
        body.flush().map_err(io_parse)?;
        drop(body);
        let header_lines = source.meta().header.render();
        for line in &header_lines {
            hasher.write(line.as_bytes());
            hasher.write(b"\n");
        }
        let key = hasher.finish();
        let final_path = self.path(ArtifactKind::Trace, key);
        if final_path.is_file() {
            return Ok(IngestOutcome {
                key,
                records,
                deduplicated: true,
            });
        }
        // Assemble header + body into the final artifact, atomically.
        let assembled = self.tmp_path(&trace_dir);
        let guard = TmpGuard::new(assembled.clone());
        {
            let mut out = BufWriter::new(FaultyWriter::new(
                File::create(&assembled).map_err(io_parse)?,
            ));
            for line in &header_lines {
                out.write_all(line.as_bytes()).map_err(io_parse)?;
                out.write_all(b"\n").map_err(io_parse)?;
            }
            let mut body_in = File::open(&body_path).map_err(io_parse)?;
            io::copy(&mut body_in, &mut out).map_err(io_parse)?;
            out.flush().map_err(io_parse)?;
        }
        fs::rename(&assembled, &final_path).map_err(io_parse)?;
        guard.defuse();
        Ok(IngestOutcome {
            key,
            records,
            deduplicated: false,
        })
    }

    /// Open a stored trace as a streaming [`JobSource`]; `Ok(None)` when the
    /// trace is absent.
    pub fn open_trace(&self, key: u128) -> io::Result<Option<RecordIter<BufReader<File>>>> {
        match File::open(self.path(ArtifactKind::Trace, key)) {
            Ok(f) => Ok(Some(RecordIter::new(
                BufReader::new(f),
                ParseOptions::default(),
            ))),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// List every artifact, sorted by kind then key. Files that are not
    /// well-formed artifacts (temp litter) are skipped here; [`Self::verify`]
    /// and [`Self::gc`] report and reclaim them.
    pub fn ls(&self) -> io::Result<Vec<StoreEntry>> {
        let mut out = Vec::new();
        for kind in ArtifactKind::ALL {
            for (path, key) in self.dir_files(kind)? {
                if let Some(key) = key {
                    out.push(StoreEntry {
                        kind,
                        key,
                        bytes: fs::metadata(&path)?.len(),
                    });
                }
            }
        }
        out.sort_by_key(|e| (e.kind, e.key));
        Ok(out)
    }

    /// Every file in a kind's directory, with its parsed key (`None` for
    /// files whose name is not `<32-hex>.<ext>`).
    fn dir_files(&self, kind: ArtifactKind) -> io::Result<Vec<(PathBuf, Option<u128>)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(self.root.join(kind.dir()))? {
            let path = entry?.path();
            if !path.is_file() {
                continue;
            }
            let key = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_suffix(&format!(".{}", kind.ext())))
                .and_then(parse_key_hex);
            out.push((path, key));
        }
        out.sort();
        Ok(out)
    }

    /// Reclaim everything no longer useful: temp litter from killed writers,
    /// corrupt artifacts, and artifacts whose embedded version stamp is stale
    /// (their keys are unreachable under the current
    /// [`ANALYZE_VERSION`] / [`psbench_sched::SCHED_VERSION`], so they can
    /// never be served again). Traces and ledgers are content-stable and only
    /// lose litter.
    pub fn gc(&self) -> io::Result<GcReport> {
        let mut report = GcReport::default();
        for kind in ArtifactKind::ALL {
            for (path, key) in self.dir_files(kind)? {
                let stale = match (kind, key) {
                    (_, None) => true, // temp litter / foreign file
                    (ArtifactKind::Profile, Some(key)) => {
                        matches!(self.get_profile(key), Err(_) | Ok(None))
                    }
                    (ArtifactKind::Result, Some(key)) => {
                        matches!(self.get_result(key), Err(_) | Ok(None))
                    }
                    (ArtifactKind::Meta, Some(key)) => {
                        matches!(self.get_meta(key), Err(_) | Ok(None))
                    }
                    (ArtifactKind::Trace | ArtifactKind::Ledger, Some(_)) => false,
                };
                if stale {
                    report.reclaimed_bytes += fs::metadata(&path)?.len();
                    fs::remove_file(&path)?;
                    report.removed += 1;
                } else {
                    report.kept += 1;
                }
            }
        }
        Ok(report)
    }

    /// Check every artifact: names must be well-formed keys, profiles and
    /// results must decode, and each trace's content must re-fingerprint to
    /// its own key (the content-addressing invariant).
    pub fn verify(&self) -> io::Result<VerifyReport> {
        let mut report = VerifyReport::default();
        for kind in ArtifactKind::ALL {
            for (path, key) in self.dir_files(kind)? {
                let Some(key) = key else {
                    report
                        .problems
                        .push(format!("{}: not a store artifact", path.display()));
                    continue;
                };
                let problem = match kind {
                    ArtifactKind::Profile => self.get_profile(key).err().map(|e| e.to_string()),
                    ArtifactKind::Result => self.get_result(key).err().map(|e| e.to_string()),
                    ArtifactKind::Meta => self.get_meta(key).err().map(|e| e.to_string()),
                    ArtifactKind::Trace => match self.open_trace(key) {
                        Err(e) => Some(e.to_string()),
                        Ok(None) => Some("vanished during verify".into()),
                        Ok(Some(src)) => match fingerprint_source(src) {
                            Err(e) => Some(e.to_string()),
                            Ok(fp) if fp != key => {
                                Some(format!("content fingerprints to {}", key_hex(fp)))
                            }
                            Ok(_) => None,
                        },
                    },
                    // Ledgers are tolerant-by-design append logs; presence of
                    // a well-formed name is all verify asserts.
                    ArtifactKind::Ledger => None,
                };
                match problem {
                    Some(p) => report
                        .problems
                        .push(format!("{kind} {}: {p}", key_hex(key))),
                    None => report.ok += 1,
                }
            }
        }
        Ok(report)
    }
}

fn invalid_data(e: CodecError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

fn io_parse(e: io::Error) -> ParseError {
    ParseError::Io(e.to_string())
}

fn trace_hasher() -> Fnv128 {
    let mut h = Fnv128::new();
    h.write_str("trace");
    h
}

/// The content fingerprint of a job stream — the key [`ArtifactStore::ingest`]
/// would store it under — computed by draining the stream without writing
/// anything. Hash-only twin of `ingest`: canonical record lines first, header
/// (complete only after the drain) last.
pub fn fingerprint_source<S: JobSource>(mut source: S) -> Result<u128, ParseError> {
    let mut hasher = trace_hasher();
    while let Some(rec) = source.next_record() {
        let line = record_line(&rec?);
        hasher.write(line.as_bytes());
        hasher.write(b"\n");
    }
    for line in source.meta().header.render() {
        hasher.write(line.as_bytes());
        hasher.write(b"\n");
    }
    Ok(hasher.finish())
}

/// The canonical key of a cached profile: the trace fingerprint bound to the
/// current [`ANALYZE_VERSION`]. Bumping the version retires every cached
/// profile at once.
pub fn profile_key(trace_fp: u128) -> u128 {
    let mut h = Fnv128::new();
    h.write_str("profile");
    h.write_u32(ANALYZE_VERSION);
    h.write(&trace_fp.to_le_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbench_workload::{Lublin99, WorkloadModel};

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("psbench-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_log() -> psbench_swf::SwfLog {
        Lublin99::default().generate(50, 3)
    }

    #[test]
    fn ingest_then_reingest_deduplicates() {
        let dir = scratch("ingest");
        let store = ArtifactStore::open(&dir).unwrap();
        let log = sample_log();
        let first = store.ingest(log.as_source("trace")).unwrap();
        assert!(!first.deduplicated);
        assert_eq!(first.records, 50);
        assert!(store.has(ArtifactKind::Trace, first.key));

        // Same content again: same key, nothing written.
        let again = store.ingest(log.as_source("trace")).unwrap();
        assert!(again.deduplicated);
        assert_eq!(again.key, first.key);

        // Re-ingesting the *stored* trace (parse-canonical) also dedupes.
        let stored = store.open_trace(first.key).unwrap().unwrap();
        let third = store.ingest(stored).unwrap();
        assert!(third.deduplicated);
        assert_eq!(third.key, first.key);

        // And the hash-only pass agrees with ingest.
        let fp = fingerprint_source(log.as_source("trace")).unwrap();
        assert_eq!(fp, first.key);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn profile_and_result_round_trip_through_disk() {
        let dir = scratch("artifacts");
        let store = ArtifactStore::open(&dir).unwrap();
        let log = sample_log();
        let profile = psbench_analyze::WorkloadProfile::of_log("p", &log);
        let key = profile_key(0xfeed);
        assert_eq!(store.get_profile(key).unwrap(), None);
        store.put_profile(key, &profile).unwrap();
        assert_eq!(store.get_profile(key).unwrap().unwrap(), profile);

        let result = SimulationResult {
            scheduler: "fcfs".into(),
            machine_size: 8,
            finished: vec![],
            unfinished: 0,
            discarded: 0,
            idle_while_queued: 0.25,
            busy_integral: 1.5,
            lost_node_seconds: 0.0,
            kills: 0,
            rejected_decisions: 0,
            coalesced_wakeups: 0,
            events_processed: 17,
            end_time: 9.5,
        };
        store.put_result(42, &result).unwrap();
        assert_eq!(store.get_result(42).unwrap().unwrap(), result);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_reclaims_litter_and_corruption_and_keeps_good_artifacts() {
        let dir = scratch("gc");
        let store = ArtifactStore::open(&dir).unwrap();
        let log = sample_log();
        let ingested = store.ingest(log.as_source("t")).unwrap();
        let profile = psbench_analyze::WorkloadProfile::of_log("p", &log);
        store
            .put_profile(profile_key(ingested.key), &profile)
            .unwrap();
        // Simulated kill mid-write: temp litter in two directories.
        fs::write(dir.join("traces/.tmp-999-0"), b"partial").unwrap();
        fs::write(dir.join("results/.tmp-999-1"), b"partial").unwrap();
        // A corrupt (e.g. stale-version) result under a well-formed key.
        fs::write(
            dir.join("results")
                .join("00000000000000000000000000000abc.result"),
            b"junk",
        )
        .unwrap();

        let report = store.gc().unwrap();
        assert_eq!(report.removed, 3);
        assert_eq!(report.kept, 2);
        assert!(report.reclaimed_bytes > 0);
        assert!(store.has(ArtifactKind::Trace, ingested.key));
        assert!(store
            .get_profile(profile_key(ingested.key))
            .unwrap()
            .is_some());
        // gc is idempotent.
        assert_eq!(store.gc().unwrap().removed, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_flags_tampered_trace_content() {
        let dir = scratch("verify");
        let store = ArtifactStore::open(&dir).unwrap();
        let log = sample_log();
        let ingested = store.ingest(log.as_source("t")).unwrap();
        assert!(store.verify().unwrap().problems.is_empty());

        // Flip a byte of the stored trace: the key no longer matches content.
        let path = store.path(ArtifactKind::Trace, ingested.key);
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("9999 1 -1 -1 1 -1 -1 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
        fs::write(&path, text).unwrap();
        let report = store.verify().unwrap();
        assert_eq!(report.problems.len(), 1);
        assert!(report.problems[0].contains("fingerprints to"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
