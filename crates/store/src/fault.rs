//! Deterministic fault injection for durability-critical write paths.
//!
//! Crash-safety code is only trustworthy if it has been exercised against
//! misbehaving I/O, not just happy-path kills. This module is a seeded,
//! process-wide fault plan that the journal ([`crate::journal`]) and the
//! artifact store ([`crate::store`]) thread through their write syscalls:
//!
//! * **transient errors** — the write fails without touching the file;
//! * **short writes** — a strict prefix of the buffer lands on disk and the
//!   write then fails (a torn append, exactly what a kill mid-`write` leaves);
//! * **kill-points** — a torn prefix lands and every subsequent write in the
//!   process fails, simulating the instant of process death from the
//!   filesystem's point of view.
//!
//! Faults are decided per write operation from a hash of `(seed, op counter)`,
//! so a given [`FaultPlan`] produces the same fault sequence on every run —
//! failures found by the injection matrix in CI reproduce locally from the
//! seed alone. When no plan is installed (the default), the only cost on the
//! write path is one relaxed atomic load.
//!
//! Injected errors are marked with the `injected fault:` message prefix and
//! recognized by [`is_injected`], so tests can distinguish "the fault layer
//! fired as planned" from a genuine disk failure.

use std::fs::File;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::fnv::fnv1a_64;

/// Environment variable [`install_from_env`] reads a plan spec from.
pub const FAULTS_ENV: &str = "PSBENCH_FAULTS";

/// A seeded plan of write faults. Rates are per-mille (0–1000) per write
/// operation; the fault sequence is a pure function of the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed the per-operation fault decisions are hashed from.
    pub seed: u64,
    /// Per-mille rate of transient `io::Error`s (nothing written).
    pub io_error: u32,
    /// Per-mille rate of short writes (a torn prefix lands, then an error).
    pub short_write: u32,
    /// Per-mille rate of kill-points (a torn prefix lands, then every later
    /// write in the process fails).
    pub kill: u32,
}

impl FaultPlan {
    /// Parse a plan spec of comma-separated `key=value` pairs:
    /// `seed=<n>,err=<per-mille>,short=<per-mille>,kill=<per-mille>`.
    /// Every key is optional; omitted rates default to 0 and the seed to 0.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan {
            seed: 0,
            io_error: 0,
            short_write: 0,
            kill: 0,
        };
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => {
                    plan.seed = value.parse().map_err(|_| format!("bad seed {value:?}"))?;
                }
                "err" | "short" | "kill" => {
                    let rate: u32 = value
                        .parse()
                        .map_err(|_| format!("bad rate for {key}: {value:?}"))?;
                    if rate > 1000 {
                        return Err(format!("rate for {key} must be <= 1000, got {rate}"));
                    }
                    match key {
                        "err" => plan.io_error = rate,
                        "short" => plan.short_write = rate,
                        _ => plan.kill = rate,
                    }
                }
                _ => {
                    return Err(format!(
                        "unknown fault key {key:?}; expected seed, err, short, kill"
                    ))
                }
            }
        }
        Ok(plan)
    }
}

/// What the plan decided for one write operation.
enum Decision {
    Pass,
    /// Fail without writing; later writes proceed normally.
    Transient,
    /// Write `prefix` bytes of the buffer, then fail.
    Short {
        prefix: usize,
    },
    /// Write `prefix` bytes, then fail this and every later write.
    Kill {
        prefix: usize,
    },
}

struct FaultState {
    plan: FaultPlan,
    /// Write operations seen so far; the decision for op `n` is a pure
    /// function of `(plan.seed, n)`.
    counter: u64,
    /// Set once a kill-point fires: the simulated process is "dead" and no
    /// write may succeed after it.
    dead: bool,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<FaultState>> = Mutex::new(None);

/// Install `plan` process-wide (or clear it with `None`). Resets the
/// operation counter, so installing the same plan twice replays the same
/// fault sequence.
pub fn install(plan: Option<FaultPlan>) {
    let mut state = STATE.lock().unwrap();
    ACTIVE.store(plan.is_some(), Ordering::SeqCst);
    *state = plan.map(|plan| FaultState {
        plan,
        counter: 0,
        dead: false,
    });
}

/// Install the plan named by the `PSBENCH_FAULTS` environment variable, once
/// per process. Returns the installed plan, `None` when the variable is
/// unset, or an error for an unparseable spec (nothing is installed then).
pub fn install_from_env() -> Result<Option<FaultPlan>, String> {
    static ONCE: OnceLock<Result<Option<FaultPlan>, String>> = OnceLock::new();
    ONCE.get_or_init(|| match std::env::var(FAULTS_ENV) {
        Err(_) => Ok(None),
        Ok(spec) => {
            let plan = FaultPlan::parse(&spec)
                .map_err(|e| format!("bad {FAULTS_ENV} spec {spec:?}: {e}"))?;
            install(Some(plan));
            Ok(Some(plan))
        }
    })
    .clone()
}

/// Whether a fault plan is currently installed.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// True when `err` was produced by the fault layer rather than a real disk.
pub fn is_injected(err: &io::Error) -> bool {
    err.to_string().contains("injected fault:")
}

fn injected_err(what: &str, op: u64) -> io::Error {
    io::Error::other(format!("injected fault: {what} at write op {op}"))
}

/// Hash `(seed, counter, lane)` to a uniform-ish u64; drives all decisions.
fn roll(seed: u64, counter: u64, lane: u64) -> u64 {
    let mut bytes = [0u8; 24];
    bytes[..8].copy_from_slice(&seed.to_le_bytes());
    bytes[8..16].copy_from_slice(&counter.to_le_bytes());
    bytes[16..].copy_from_slice(&lane.to_le_bytes());
    fnv1a_64(&bytes)
}

/// Decide the fate of one write of `len` bytes.
fn decide(len: usize) -> (Decision, u64) {
    let mut guard = STATE.lock().unwrap();
    let Some(state) = guard.as_mut() else {
        return (Decision::Pass, 0);
    };
    let op = state.counter;
    state.counter += 1;
    if state.dead {
        return (Decision::Transient, op);
    }
    let plan = state.plan;
    let draw = roll(plan.seed, op, 0) % 1000;
    // Rates stack in a fixed order: kill, then short, then transient.
    let prefix = |lane: u64| {
        if len <= 1 {
            0
        } else {
            (roll(plan.seed, op, lane) as usize) % len
        }
    };
    if draw < plan.kill as u64 {
        state.dead = true;
        (Decision::Kill { prefix: prefix(1) }, op)
    } else if draw < (plan.kill + plan.short_write) as u64 {
        (Decision::Short { prefix: prefix(2) }, op)
    } else if draw < (plan.kill + plan.short_write + plan.io_error) as u64 {
        (Decision::Transient, op)
    } else {
        (Decision::Pass, op)
    }
}

/// Write all of `buf` to `file`, subject to the installed fault plan. This is
/// the choke point the journal and the store's unbuffered writes go through:
/// one call is one fault-decision operation.
pub fn write_all(file: &mut File, buf: &[u8]) -> io::Result<()> {
    if !active() {
        return file.write_all(buf);
    }
    match decide(buf.len()) {
        (Decision::Pass, _) => file.write_all(buf),
        (Decision::Transient, op) => Err(injected_err("transient error", op)),
        (Decision::Short { prefix }, op) => {
            file.write_all(&buf[..prefix])?;
            let _ = file.flush();
            Err(injected_err("short write", op))
        }
        (Decision::Kill { prefix }, op) => {
            file.write_all(&buf[..prefix])?;
            let _ = file.flush();
            Err(injected_err("kill-point", op))
        }
    }
}

/// A [`Write`] adapter that routes every write through the fault plan —
/// used for the store's buffered (streaming) write paths, where wrapping the
/// inner file keeps `BufWriter`'s batching intact while still letting faults
/// tear real syscalls.
pub struct FaultyWriter<W: Write> {
    inner: W,
}

impl<W: Write> FaultyWriter<W> {
    /// Wrap `inner`; when no plan is installed this is a zero-cost shim.
    pub fn new(inner: W) -> FaultyWriter<W> {
        FaultyWriter { inner }
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if !active() {
            return self.inner.write(buf);
        }
        match decide(buf.len()) {
            (Decision::Pass, _) => self.inner.write(buf),
            (Decision::Transient, op) => Err(injected_err("transient error", op)),
            (Decision::Short { prefix }, op) => {
                self.inner.write_all(&buf[..prefix])?;
                let _ = self.inner.flush();
                Err(injected_err("short write", op))
            }
            (Decision::Kill { prefix }, op) => {
                self.inner.write_all(&buf[..prefix])?;
                let _ = self.inner.flush();
                Err(injected_err("kill-point", op))
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

// Tests that *install* a plan live in `tests/fault_injection.rs`, where one
// process-wide mutex serializes them — the plan is process-global, and unit
// tests here share their process (and its writes) with the whole crate.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plan_specs() {
        assert_eq!(
            FaultPlan::parse("seed=7,err=50,short=30,kill=5").unwrap(),
            FaultPlan {
                seed: 7,
                io_error: 50,
                short_write: 30,
                kill: 5,
            }
        );
        assert_eq!(
            FaultPlan::parse("seed=9").unwrap(),
            FaultPlan {
                seed: 9,
                io_error: 0,
                short_write: 0,
                kill: 0,
            }
        );
        assert!(FaultPlan::parse("err=1001").is_err());
        assert!(FaultPlan::parse("frobs=3").is_err());
        assert!(FaultPlan::parse("seed").is_err());
    }

    #[test]
    fn no_plan_means_writes_pass_through() {
        let path =
            std::env::temp_dir().join(format!("psbench-fault-passthrough-{}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        write_all(&mut f, b"hello").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        std::fs::remove_file(&path).unwrap();
    }
}
