//! Durable sweep progress journals.
//!
//! A resumable sweep writes one ledger per sweep key. The ledger is an
//! append-only text file of `cell <cell-key> <result-fingerprint>` lines, one
//! per completed cell, flushed after every append — after a `SIGKILL` the
//! ledger holds every cell whose line made it into the `write` syscall, plus
//! at most one torn final line, which [`SweepLedger::replay`] skips.
//!
//! The ledger is a *progress log*, not the source of truth: cell results live
//! in the store under their own keys, and the sweep driver always writes the
//! result artifact **before** journaling the cell, so a journaled cell's
//! result is guaranteed present. Resume correctness therefore never depends
//! on the ledger — a missing or truncated ledger only costs the driver a
//! per-cell `has()` probe — but the replayed fingerprints let a resumed sweep
//! assert it is reading back exactly the bytes the interrupted run produced.

use crate::fnv::{key_hex, parse_key_hex};
use crate::store::{ArtifactKind, ArtifactStore};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::PathBuf;

/// The append-only journal of one sweep's completed cells.
#[derive(Debug)]
pub struct SweepLedger {
    path: PathBuf,
    file: Mutex<File>,
}

impl SweepLedger {
    /// Open (creating if needed) the ledger for `sweep_key` in `store`.
    pub fn open(store: &ArtifactStore, sweep_key: u128) -> io::Result<SweepLedger> {
        let path = store.path(ArtifactKind::Ledger, sweep_key);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(SweepLedger {
            path,
            file: Mutex::new(file),
        })
    }

    /// The ledger's on-disk path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Durably journal a completed cell: one line, flushed before returning.
    /// Callers must have already published the cell's result artifact.
    pub fn record(&self, cell_key: u128, result_fingerprint: u64) -> io::Result<()> {
        let mut file = self.file.lock();
        writeln!(file, "cell {} {result_fingerprint:016x}", key_hex(cell_key))?;
        file.flush()
    }

    /// Replay the journal: every completed cell and its result fingerprint.
    /// Malformed lines (at most a torn tail after a kill) are skipped, never
    /// an error. A later line for the same cell wins.
    pub fn replay(&self) -> io::Result<BTreeMap<u128, u64>> {
        let text = match fs::read_to_string(&self.path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
            Err(e) => return Err(e),
        };
        let mut cells = BTreeMap::new();
        for line in text.lines() {
            let mut parts = line.split_ascii_whitespace();
            let parsed = match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some("cell"), Some(key), Some(fp), None) => {
                    parse_key_hex(key).zip(u64::from_str_radix(fp, 16).ok())
                }
                _ => None,
            };
            if let Some((key, fp)) = parsed {
                cells.insert(key, fp);
            }
        }
        Ok(cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("psbench-ledger-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn record_then_replay_round_trips() {
        let dir = scratch("roundtrip");
        let store = ArtifactStore::open(&dir).unwrap();
        let ledger = SweepLedger::open(&store, 7).unwrap();
        ledger.record(10, 0xaaaa).unwrap();
        ledger.record(11, 0xbbbb).unwrap();
        let cells = ledger.replay().unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[&10], 0xaaaa);
        assert_eq!(cells[&11], 0xbbbb);

        // Reopening appends rather than truncating.
        drop(ledger);
        let ledger = SweepLedger::open(&store, 7).unwrap();
        ledger.record(12, 0xcccc).unwrap();
        assert_eq!(ledger.replay().unwrap().len(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_skipped_not_fatal() {
        let dir = scratch("torn");
        let store = ArtifactStore::open(&dir).unwrap();
        let ledger = SweepLedger::open(&store, 9).unwrap();
        ledger.record(1, 0x1111).unwrap();
        // Simulate a kill mid-append: a truncated final line.
        {
            let mut f = OpenOptions::new().append(true).open(ledger.path()).unwrap();
            write!(f, "cell 00000000000000000000000000").unwrap();
        }
        let cells = ledger.replay().unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[&1], 0x1111);
        // The ledger stays appendable after the torn line... but the torn
        // bytes corrupt the *next* line, which replay also tolerates.
        ledger.record(2, 0x2222).unwrap();
        let cells = ledger.replay().unwrap();
        assert!(cells.contains_key(&1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_ledger_replays_empty() {
        let dir = scratch("missing");
        let store = ArtifactStore::open(&dir).unwrap();
        let ledger = SweepLedger::open(&store, 1).unwrap();
        fs::remove_file(ledger.path()).unwrap();
        assert!(ledger.replay().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
