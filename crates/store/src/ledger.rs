//! Durable sweep progress journals.
//!
//! A resumable sweep writes one ledger per sweep key. The ledger is an
//! append-only text file of `cell <cell-key> <result-fingerprint>` lines, one
//! per completed cell, flushed after every append — after a `SIGKILL` the
//! ledger holds every cell whose line made it into the `write` syscall, plus
//! at most one torn final line, which opening the ledger truncates away and
//! [`SweepLedger::replay`] would skip anyway.
//!
//! The file handling is the shared [`crate::journal`] machinery (the same
//! code serve session logs recover through), so a failed append rolls back
//! its torn prefix and reopening cuts any unterminated tail. The line format
//! is unchanged from when the ledger carried its own file code: ledgers
//! written by older builds replay byte-identically.
//!
//! The ledger is a *progress log*, not the source of truth: cell results live
//! in the store under their own keys, and the sweep driver always writes the
//! result artifact **before** journaling the cell, so a journaled cell's
//! result is guaranteed present. Resume correctness therefore never depends
//! on the ledger — a missing or truncated ledger only costs the driver a
//! per-cell `has()` probe — but the replayed fingerprints let a resumed sweep
//! assert it is reading back exactly the bytes the interrupted run produced.

use crate::fnv::{key_hex, parse_key_hex};
use crate::journal::{FsyncPolicy, Journal};
use crate::store::{ArtifactKind, ArtifactStore};
use std::collections::BTreeMap;
use std::fs;
use std::io;

/// The append-only journal of one sweep's completed cells.
#[derive(Debug)]
pub struct SweepLedger {
    journal: Journal,
}

impl SweepLedger {
    /// Open (creating if needed) the ledger for `sweep_key` in `store`.
    /// An unterminated torn tail left by a kill is truncated here.
    pub fn open(store: &ArtifactStore, sweep_key: u128) -> io::Result<SweepLedger> {
        let path = store.path(ArtifactKind::Ledger, sweep_key);
        // Ledger lines are tolerated malformed (see `replay`), so recovery
        // accepts every complete line; flush-only durability matches the
        // ledger's contract (survive process death, not power loss).
        let (journal, _) = Journal::recover(path, FsyncPolicy::Never, |_| true)?;
        Ok(SweepLedger { journal })
    }

    /// The ledger's on-disk path.
    pub fn path(&self) -> &std::path::Path {
        self.journal.path()
    }

    /// Durably journal a completed cell: one line, flushed before returning.
    /// Callers must have already published the cell's result artifact.
    pub fn record(&self, cell_key: u128, result_fingerprint: u64) -> io::Result<()> {
        self.journal.append_line(&format!(
            "cell {} {result_fingerprint:016x}",
            key_hex(cell_key)
        ))
    }

    /// Replay the journal: every completed cell and its result fingerprint.
    /// Malformed lines (at most a torn tail after a kill) are skipped, never
    /// an error. A later line for the same cell wins.
    pub fn replay(&self) -> io::Result<BTreeMap<u128, u64>> {
        let text = match fs::read_to_string(self.journal.path()) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
            Err(e) => return Err(e),
        };
        let mut cells = BTreeMap::new();
        for line in text.lines() {
            let mut parts = line.split_ascii_whitespace();
            let parsed = match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some("cell"), Some(key), Some(fp), None) => {
                    parse_key_hex(key).zip(u64::from_str_radix(fp, 16).ok())
                }
                _ => None,
            };
            if let Some((key, fp)) = parsed {
                cells.insert(key, fp);
            }
        }
        Ok(cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;
    use std::io::Write;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("psbench-ledger-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn record_then_replay_round_trips() {
        let dir = scratch("roundtrip");
        let store = ArtifactStore::open(&dir).unwrap();
        let ledger = SweepLedger::open(&store, 7).unwrap();
        ledger.record(10, 0xaaaa).unwrap();
        ledger.record(11, 0xbbbb).unwrap();
        let cells = ledger.replay().unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[&10], 0xaaaa);
        assert_eq!(cells[&11], 0xbbbb);

        // Reopening appends rather than truncating.
        drop(ledger);
        let ledger = SweepLedger::open(&store, 7).unwrap();
        ledger.record(12, 0xcccc).unwrap();
        assert_eq!(ledger.replay().unwrap().len(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ledger_lines_keep_the_historic_byte_format() {
        let dir = scratch("format");
        let store = ArtifactStore::open(&dir).unwrap();
        let ledger = SweepLedger::open(&store, 3).unwrap();
        ledger.record(0xabc, 0x1234).unwrap();
        let text = fs::read_to_string(ledger.path()).unwrap();
        assert_eq!(
            text,
            "cell 00000000000000000000000000000abc 0000000000001234\n"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open_not_fatal() {
        let dir = scratch("torn");
        let store = ArtifactStore::open(&dir).unwrap();
        let ledger = SweepLedger::open(&store, 9).unwrap();
        ledger.record(1, 0x1111).unwrap();
        let path = ledger.path().to_path_buf();
        drop(ledger);
        // Simulate a kill mid-append: a truncated final line.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "cell 00000000000000000000000000").unwrap();
        }
        // Reopening cuts the torn tail, so the next record lands clean and
        // replay sees exactly the completed cells.
        let ledger = SweepLedger::open(&store, 9).unwrap();
        let cells = ledger.replay().unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[&1], 0x1111);
        ledger.record(2, 0x2222).unwrap();
        let cells = ledger.replay().unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[&2], 0x2222);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_complete_lines_are_skipped_by_replay() {
        let dir = scratch("malformed");
        let store = ArtifactStore::open(&dir).unwrap();
        let ledger = SweepLedger::open(&store, 5).unwrap();
        ledger.record(1, 0x1111).unwrap();
        let path = ledger.path().to_path_buf();
        drop(ledger);
        // A complete-but-garbled line mid-file (e.g. filesystem bitrot):
        // replay skips it; the ledger is a hint, not the source of truth.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            writeln!(f, "cell not-a-key junk").unwrap();
        }
        let ledger = SweepLedger::open(&store, 5).unwrap();
        ledger.record(2, 0x2222).unwrap();
        let cells = ledger.replay().unwrap();
        assert_eq!(cells.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_ledger_replays_empty() {
        let dir = scratch("missing");
        let store = ArtifactStore::open(&dir).unwrap();
        let ledger = SweepLedger::open(&store, 1).unwrap();
        fs::remove_file(ledger.path()).unwrap();
        assert!(ledger.replay().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
