//! # psbench-store — content-addressed artifacts and resumable sweeps
//!
//! Fleet-scale evaluation re-runs the same expensive work constantly: the
//! same archived trace is re-parsed for every experiment, the same workload
//! profile recomputed for every report, the same (trace, scheduler, config)
//! simulation re-run whenever a sweep is restarted. This crate makes all of
//! that work *content-addressed and durable*:
//!
//! * [`fnv`] — the canonical FNV-1a hashing module for the whole workspace:
//!   the 64-bit table/result fingerprints `sweep-bench` snapshots, and the
//!   128-bit keys that name store artifacts.
//! * [`codec`] — exact, deterministic (de)serialization of
//!   [`psbench_analyze::WorkloadProfile`]s and
//!   [`psbench_sim::SimulationResult`]s. Integer accumulators travel as
//!   decimal, floats as bit patterns; `decode(encode(x)) == x` holds with
//!   `==`, which is what makes cached artifacts indistinguishable from
//!   freshly computed values — byte for byte, report for report.
//! * [`store`] — the [`ArtifactStore`] directory tree: ingested traces
//!   (fingerprinted while streaming in bounded memory), cached profiles
//!   keyed by trace fingerprint + [`psbench_analyze::ANALYZE_VERSION`], and
//!   memoized results keyed by canonical (trace, scheduler, config)
//!   fingerprints + [`psbench_sched::SCHED_VERSION`]. All writes are
//!   atomic temp-file renames; `gc` reclaims litter and stale versions;
//!   `verify` re-checks the content-addressing invariant.
//! * [`journal`] — the shared append-only write-ahead-log primitive:
//!   flushed-per-append files with rollback on failed appends, torn-tail
//!   truncation on recovery, checksummed record framing, and a configurable
//!   fsync policy. Both the sweep ledger and `psbench-serve`'s crash-safe
//!   session logs are built on it.
//! * [`ledger`] — append-only, flushed-per-cell sweep journals. Together
//!   with the store they make sweeps resumable: a killed sweep restarts,
//!   recomputes **zero** completed cells, and renders byte-identical
//!   reports (driven by `psbench_core::sweep`).
//! * [`fault`] — a seeded, deterministic fault-injection plan (transient
//!   errors, short writes, kill-points) threaded through the journal and
//!   store write paths, so crash-safety claims are tested against simulated
//!   disk misbehavior, not just happy-path kills.
//!
//! ## Invariants
//!
//! 1. **Keys name immutable content.** A key is only ever associated with one
//!    artifact value; writers publish by atomic rename and first-writer-wins.
//! 2. **Exactness.** Decoding returns a value `==` to the encoded one — no
//!    float rounds through decimal, no map reorders, no histogram forgets
//!    whether it was ever allocated.
//! 3. **Version stamps gate reuse.** Analysis/scheduler semantics versions
//!    are folded into keys (stale artifacts become unreachable) *and*
//!    embedded in artifact bodies (so `gc` can reclaim them).
//! 4. **Journal after publish.** A sweep cell is journaled only after its
//!    result artifact is durably in the store, so a replayed ledger never
//!    points at missing data.

#![warn(missing_docs)]

pub mod codec;
pub mod fault;
pub mod fnv;
pub mod journal;
pub mod ledger;
pub mod store;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::codec::{
        decode_meta, decode_profile, decode_result, encode_meta, encode_profile, encode_result,
        result_fingerprint, CodecError, MetaSummary,
    };
    pub use crate::fault::FaultPlan;
    pub use crate::fnv::{fnv1a_64, fnv1a_64_hex, key_hex, parse_key_hex, Fnv128, Fnv64};
    pub use crate::journal::{frame_record, parse_record, FsyncPolicy, Journal};
    pub use crate::ledger::SweepLedger;
    pub use crate::store::{
        fingerprint_source, profile_key, ArtifactKind, ArtifactStore, GcReport, IngestOutcome,
        StoreEntry, VerifyReport,
    };
}

pub use prelude::*;
