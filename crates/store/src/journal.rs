//! Append-only, torn-tail-tolerant write-ahead journals.
//!
//! This is the durability primitive behind both the sweep ledger
//! ([`crate::ledger`]) and the serve crate's per-session command logs: an
//! append-only text file of `\n`-terminated records, flushed per append, that
//! a `SIGKILL` (or an injected fault — see [`crate::fault`]) can tear only at
//! the tail.
//!
//! The contract a [`Journal`] maintains:
//!
//! * **Appends are all-or-nothing at recovery time.** Each append is a single
//!   `write` of `line + "\n"`. If the write fails partway (short write, kill),
//!   the journal rolls the file back to its pre-append length, so torn bytes
//!   can never silently merge with a later record. If even the rollback fails,
//!   the journal poisons itself and refuses further appends — the torn bytes
//!   are then guaranteed to be the *last* thing in the file.
//! * **Recovery truncates, never guesses.** [`Journal::recover`] keeps the
//!   longest prefix of complete lines the caller's validator accepts. An
//!   unterminated tail, or a final complete line the validator rejects, is a
//!   torn append: it is cut off (and the file physically truncated) so the
//!   journal is clean for new appends. A rejected line *followed by an
//!   accepted one* cannot be torn-append damage — that is real corruption and
//!   recovery fails loudly with [`io::ErrorKind::InvalidData`].
//! * **Fsync is policy.** [`FsyncPolicy::Always`] pays one `fdatasync` per
//!   append for power-loss durability; [`FsyncPolicy::Never`] flushes to the
//!   OS only (survives process death, not power loss).
//!
//! For journals that need per-record integrity (the serve session logs),
//! [`frame_record`]/[`parse_record`] add a sequence number and an FNV-1a
//! checksum to each line, so recovery can tell a torn half-record from a
//! complete one even when the tear lands on a newline boundary.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use crate::fault;
use crate::fnv::fnv1a_64;

/// When a journal forces appended bytes to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append: survives power loss.
    #[default]
    Always,
    /// Flush to the OS only: survives process death, not power loss.
    Never,
}

impl FsyncPolicy {
    /// Parse a policy name: `always` or `off`.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "off" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Never => "off",
        })
    }
}

struct Inner {
    file: File,
    /// Length of the journal's valid prefix: everything up to here is
    /// complete, appended records. Rollback truncates to this.
    len: u64,
    /// Set when a failed append could not be rolled back: the file may end in
    /// torn bytes, and appending more would merge garbage into a record.
    poisoned: bool,
}

/// An append-only journal of `\n`-terminated records.
///
/// Single-writer by design: one process (one `Journal` value) owns the file.
/// `&self` methods are thread-safe within that process.
pub struct Journal {
    path: PathBuf,
    policy: FsyncPolicy,
    inner: Mutex<Inner>,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("policy", &self.policy)
            .finish()
    }
}

impl Journal {
    /// Open `path` for appending, creating it if needed, without reading or
    /// validating existing content. Use [`Journal::recover`] when the file
    /// may hold prior records.
    pub fn open(path: impl Into<PathBuf>, policy: FsyncPolicy) -> io::Result<Journal> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let len = file.metadata()?.len();
        Ok(Journal {
            path,
            policy,
            inner: Mutex::new(Inner {
                file,
                len,
                poisoned: false,
            }),
        })
    }

    /// Recover the journal at `path`: read it, keep the longest valid prefix
    /// of complete lines, truncate anything torn, and reopen for appending.
    ///
    /// `validate` is called once per complete line, in file order, and may be
    /// stateful (e.g. enforce increasing sequence numbers). A rejected line
    /// is tolerated only as the *final* complete line — that is what a torn
    /// append looks like — and is truncated away together with any trailing
    /// unterminated bytes. A rejected line with accepted lines after it means
    /// the file is corrupt mid-stream, and recovery fails with
    /// [`io::ErrorKind::InvalidData`].
    ///
    /// Returns the journal plus the accepted lines, in order. A missing file
    /// recovers to an empty journal.
    pub fn recover(
        path: impl Into<PathBuf>,
        policy: FsyncPolicy,
        mut validate: impl FnMut(&str) -> bool,
    ) -> io::Result<(Journal, Vec<String>)> {
        let path = path.into();
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let mut lines = Vec::new();
        let mut valid_len = 0usize;
        let mut cursor = 0usize;
        let mut rejected_at: Option<usize> = None;
        while let Some(nl) = bytes[cursor..].iter().position(|&b| b == b'\n') {
            let end = cursor + nl;
            let line = String::from_utf8_lossy(&bytes[cursor..end]).into_owned();
            cursor = end + 1;
            if !validate(&line) {
                rejected_at = Some(lines.len());
                break;
            }
            lines.push(line);
            valid_len = cursor;
        }
        if let Some(at) = rejected_at {
            // A rejected line is only torn-append damage if nothing valid
            // (indeed nothing complete at all) follows it.
            if bytes[cursor..].contains(&b'\n') {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{}: corrupt record {} is not at the journal tail",
                        path.display(),
                        at
                    ),
                ));
            }
        }
        if valid_len as u64 != bytes.len() as u64 {
            // Physically drop the torn tail so new appends start clean.
            let f = OpenOptions::new()
                .write(true)
                .truncate(false)
                .create(true)
                .open(&path)?;
            f.set_len(valid_len as u64)?;
            f.sync_data()?;
        }
        let journal = Journal::open(&path, policy)?;
        journal.inner.lock().len = valid_len as u64;
        Ok((journal, lines))
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Length in bytes of the journal's valid (fully appended) prefix.
    pub fn len(&self) -> u64 {
        self.inner.lock().len
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Durably append one record (`line` must not contain `\n`). The line and
    /// its terminator go down in a single write; on failure the file is
    /// rolled back to its pre-append length so no torn bytes survive.
    pub fn append_line(&self, line: &str) -> io::Result<()> {
        debug_assert!(!line.contains('\n'), "journal records are single lines");
        let mut inner = self.inner.lock();
        if inner.poisoned {
            return Err(io::Error::other(
                "journal poisoned by an earlier failed append",
            ));
        }
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        let before = inner.len;
        match fault::write_all(&mut inner.file, &buf).and_then(|()| inner.file.flush()) {
            Ok(()) => {}
            Err(e) => {
                // Roll back whatever prefix landed; if that also fails the
                // journal is poisoned and the torn bytes stay at the tail,
                // where recovery knows how to cut them off.
                if inner.file.set_len(before).is_err() {
                    inner.poisoned = true;
                }
                return Err(e);
            }
        }
        inner.len = before + buf.len() as u64;
        if self.policy == FsyncPolicy::Always {
            inner.file.sync_data()?;
        }
        Ok(())
    }

    /// Force everything appended so far to stable storage (a checkpoint
    /// barrier for [`FsyncPolicy::Never`] journals; a no-op amount of extra
    /// durability under [`FsyncPolicy::Always`]).
    pub fn sync(&self) -> io::Result<()> {
        self.inner.lock().file.sync_data()
    }
}

/// Frame a checksummed journal record: `c <seq> <checksum> <payload>`.
///
/// The checksum is the low 32 bits of the FNV-1a hash of `"<seq> <payload>"`,
/// so a record torn mid-line (or bit-flipped) fails [`parse_record`] and is
/// treated as a torn tail by recovery rather than replayed as a half-command.
pub fn frame_record(seq: u64, payload: &str) -> String {
    format!("c {seq} {:08x} {payload}", record_sum(seq, payload))
}

/// Parse and verify a framed record; `None` when the frame or checksum is
/// bad. Returns the sequence number and the payload.
pub fn parse_record(line: &str) -> Option<(u64, String)> {
    let rest = line.strip_prefix("c ")?;
    let (seq, rest) = rest.split_once(' ')?;
    let (sum, payload) = rest.split_once(' ')?;
    let seq: u64 = seq.parse().ok()?;
    let sum = u32::from_str_radix(sum, 16).ok()?;
    (sum == record_sum(seq, payload)).then(|| (seq, payload.to_string()))
}

fn record_sum(seq: u64, payload: &str) -> u32 {
    fnv1a_64(format!("{seq} {payload}").as_bytes()) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("psbench-journal-{name}-{}", std::process::id()));
        let _ = fs::remove_file(&path);
        path
    }

    #[test]
    fn append_then_recover_round_trips() {
        let path = scratch("roundtrip");
        let journal = Journal::open(&path, FsyncPolicy::Never).unwrap();
        journal.append_line("alpha").unwrap();
        journal.append_line("beta").unwrap();
        drop(journal);
        let (journal, lines) = Journal::recover(&path, FsyncPolicy::Never, |_| true).unwrap();
        assert_eq!(lines, vec!["alpha".to_string(), "beta".to_string()]);
        journal.append_line("gamma").unwrap();
        let (_, lines) = Journal::recover(&path, FsyncPolicy::Never, |_| true).unwrap();
        assert_eq!(lines.len(), 3);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_recovers_empty() {
        let path = scratch("missing");
        let (journal, lines) = Journal::recover(&path, FsyncPolicy::Never, |_| true).unwrap();
        assert!(lines.is_empty());
        assert!(journal.is_empty());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unterminated_tail_is_truncated() {
        let path = scratch("torn");
        let journal = Journal::open(&path, FsyncPolicy::Never).unwrap();
        journal.append_line("whole").unwrap();
        drop(journal);
        // A kill mid-write: bytes with no newline at the tail.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"half-a-rec").unwrap();
        drop(f);
        let (journal, lines) = Journal::recover(&path, FsyncPolicy::Never, |_| true).unwrap();
        assert_eq!(lines, vec!["whole".to_string()]);
        // The torn bytes are physically gone: a fresh append lands clean.
        journal.append_line("next").unwrap();
        let (_, lines) = Journal::recover(&path, FsyncPolicy::Never, |_| true).unwrap();
        assert_eq!(lines, vec!["whole".to_string(), "next".to_string()]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejected_final_line_is_treated_as_torn() {
        let path = scratch("rejected-tail");
        fs::write(&path, "good 1\ngood 2\nbad\n").unwrap();
        let (journal, lines) =
            Journal::recover(&path, FsyncPolicy::Never, |l| l.starts_with("good")).unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(journal.len(), "good 1\ngood 2\n".len() as u64);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejected_line_mid_file_is_a_hard_error() {
        let path = scratch("mid-corrupt");
        fs::write(&path, "good 1\nbad\ngood 2\n").unwrap();
        let err = Journal::recover(&path, FsyncPolicy::Never, |l| l.starts_with("good"))
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stateful_validator_sees_lines_in_order() {
        let path = scratch("stateful");
        fs::write(&path, "1\n2\n3\n2\n").unwrap();
        let mut last = 0u64;
        let (_, lines) = Journal::recover(&path, FsyncPolicy::Never, |l| match l.parse::<u64>() {
            Ok(n) if n > last => {
                last = n;
                true
            }
            _ => false,
        })
        .unwrap();
        // The out-of-order final line reads as a torn append and is dropped.
        assert_eq!(lines, vec!["1".to_string(), "2".into(), "3".into()]);
        fs::remove_file(&path).unwrap();
    }

    // Rollback-on-failed-append is exercised with injected faults in
    // `tests/fault_injection.rs` (the fault plan is process-global and must
    // not be installed from unit tests that share this process).

    #[test]
    fn framed_records_detect_tearing() {
        let framed = frame_record(7, "submit id=1 time=0");
        assert_eq!(
            parse_record(&framed),
            Some((7, "submit id=1 time=0".into()))
        );
        // Any strict prefix of the line fails the checksum (or the frame).
        for cut in 0..framed.len() {
            assert_eq!(parse_record(&framed[..cut]), None, "prefix {cut} parsed");
        }
        // So does a corrupted payload.
        let tampered = framed.replace("id=1", "id=2");
        assert_eq!(parse_record(&tampered), None);
    }
}
