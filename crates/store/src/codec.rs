//! Exact, deterministic (de)serialization of cached artifacts.
//!
//! The artifact store must hand back artifacts **bit-identical** to the
//! values that were put in — a resumed sweep's report is only byte-identical
//! to an uninterrupted run if a decoded `SimulationResult` compares `==` to
//! the one the simulator produced, and a cached `WorkloadProfile` must merge
//! and render exactly like a freshly computed one. The codec therefore never
//! formats a float as decimal text:
//!
//! * every integer accumulator (counts, `i128` power sums, histogram bins) is
//!   written as exact decimal integers — sketch state is integral by design,
//!   so this is lossless;
//! * every `f64` is written as the 16-digit hex of [`f64::to_bits`] and
//!   restored with [`f64::from_bits`], preserving the exact bit pattern
//!   (including signed zeros and subnormals);
//! * map-valued state (per-user / per-group aggregates) is written in
//!   ascending key order, and histograms sparsely as `bin:count` pairs, so
//!   encoding is deterministic: equal values encode to equal bytes, which is
//!   what makes encoded artifacts themselves fingerprintable.
//!
//! The format is line-oriented ASCII with a versioned magic first line;
//! [`decode_profile`] / [`decode_result`] reject anything whose magic or
//! shape they do not understand (a store written by a future format version
//! reads as corrupt, never as wrong data).

use psbench_analyze::profile::GroupStats;
use psbench_analyze::{
    Correlation, Histogram, Histogram2, MarginalSketch, Moments, WorkloadProfile, ANALYZE_VERSION,
};
use psbench_sched::SCHED_VERSION;
use psbench_sim::{FinishedJob, SimulationResult};
use std::fmt;

/// Magic first line of an encoded [`WorkloadProfile`].
pub const PROFILE_MAGIC: &str = "psbench-profile v1";
/// Magic first line of an encoded [`SimulationResult`].
pub const RESULT_MAGIC: &str = "psbench-result v1";
/// Magic first line of an encoded [`MetaSummary`].
pub const META_MAGIC: &str = "psbench-meta v1";

/// A decoding failure: the artifact bytes do not describe a well-formed value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// 1-based line number of the offending line (0 when the input ended early).
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "artifact line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for CodecError {}

fn err<T>(line: usize, reason: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError {
        line,
        reason: reason.into(),
    })
}

/// Escape a display name onto one line: backslashes and line breaks only,
/// everything else passes through.
fn escape_name(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape_name(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// A line cursor over an encoded artifact.
struct Lines<'a> {
    iter: std::str::Lines<'a>,
    line: usize,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        Lines {
            iter: text.lines(),
            line: 0,
        }
    }

    fn next(&mut self) -> Result<&'a str, CodecError> {
        self.line += 1;
        match self.iter.next() {
            Some(l) => Ok(l),
            None => err(0, "unexpected end of artifact"),
        }
    }

    /// Next line, which must start with `tag ` (or equal `tag`); returns the rest.
    fn tagged(&mut self, tag: &str) -> Result<&'a str, CodecError> {
        let l = self.next()?;
        if l == tag {
            return Ok("");
        }
        match l.strip_prefix(tag).and_then(|r| r.strip_prefix(' ')) {
            Some(rest) => Ok(rest),
            None => err(self.line, format!("expected `{tag} ...`, found {l:?}")),
        }
    }
}

fn parse_num<T: std::str::FromStr>(tok: &str, line: usize, what: &str) -> Result<T, CodecError> {
    tok.parse().map_err(|_| CodecError {
        line,
        reason: format!("bad {what}: {tok:?}"),
    })
}

fn parse_f64_bits(tok: &str, line: usize) -> Result<f64, CodecError> {
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|_| CodecError {
            line,
            reason: format!("bad f64 bits: {tok:?}"),
        })
}

fn split_n<const N: usize>(rest: &str, line: usize) -> Result<[&str; N], CodecError> {
    let mut out = [""; N];
    let mut it = rest.split_ascii_whitespace();
    for slot in out.iter_mut() {
        match it.next() {
            Some(t) => *slot = t,
            None => return err(line, format!("expected {N} fields, found fewer")),
        }
    }
    if it.next().is_some() {
        return err(line, format!("expected exactly {N} fields"));
    }
    Ok(out)
}

fn push_moments(out: &mut String, tag: &str, m: &Moments) {
    out.push_str(&format!(
        "{tag} {} {} {} {} {}\n",
        m.count, m.sum, m.sum_sq, m.min, m.max
    ));
}

fn parse_moments(rest: &str, line: usize) -> Result<Moments, CodecError> {
    let [count, sum, sum_sq, min, max] = split_n::<5>(rest, line)?;
    Ok(Moments {
        count: parse_num(count, line, "count")?,
        sum: parse_num(sum, line, "sum")?,
        sum_sq: parse_num(sum_sq, line, "sum_sq")?,
        min: parse_num(min, line, "min")?,
        max: parse_num(max, line, "max")?,
    })
}

/// Sparse `bin:count` rendering of histogram counts (deterministic: ascending
/// bin order, zero bins omitted).
fn push_sparse(out: &mut String, counts: &[u64]) {
    for (bin, &c) in counts.iter().enumerate() {
        if c != 0 {
            out.push_str(&format!(" {bin}:{c}"));
        }
    }
    out.push('\n');
}

fn parse_sparse(rest: &str, len: usize, line: usize) -> Result<Vec<u64>, CodecError> {
    let mut counts = vec![0u64; len];
    for pair in rest.split_ascii_whitespace() {
        let Some((bin, c)) = pair.split_once(':') else {
            return err(line, format!("expected bin:count, found {pair:?}"));
        };
        let bin: usize = parse_num(bin, line, "bin index")?;
        if bin >= len {
            return err(line, format!("bin index {bin} out of range (< {len})"));
        }
        counts[bin] = parse_num(c, line, "bin count")?;
    }
    Ok(counts)
}

fn push_marginal(out: &mut String, tag: &str, m: &MarginalSketch) {
    push_moments(out, &format!("moments {tag}"), &m.moments);
    out.push_str(&format!("hist {tag}"));
    push_sparse(out, m.histogram.counts());
}

fn parse_marginal(lines: &mut Lines<'_>, tag: &str) -> Result<MarginalSketch, CodecError> {
    let rest = lines.tagged(&format!("moments {tag}"))?;
    let moments = parse_moments(rest, lines.line)?;
    let rest = lines.tagged(&format!("hist {tag}"))?;
    let counts = parse_sparse(rest, psbench_analyze::HISTOGRAM_BINS, lines.line)?;
    Ok(MarginalSketch {
        moments,
        histogram: Histogram::from_counts(counts),
    })
}

/// Encode a [`WorkloadProfile`] into the exact, deterministic artifact text.
pub fn encode_profile(p: &WorkloadProfile) -> String {
    let mut out = String::new();
    out.push_str(PROFILE_MAGIC);
    out.push('\n');
    out.push_str(&format!("analyze_version {ANALYZE_VERSION}\n"));
    out.push_str(&format!("name {}\n", escape_name(&p.name)));
    out.push_str(&format!("jobs {}\n", p.jobs));
    let opt = |v: Option<i64>| v.map(|x| x.to_string()).unwrap_or_else(|| "-".into());
    out.push_str(&format!(
        "submits {} {}\n",
        opt(p.first_submit),
        opt(p.last_submit)
    ));
    push_marginal(&mut out, "interarrival", &p.interarrival);
    push_marginal(&mut out, "runtime", &p.runtime);
    push_marginal(&mut out, "size", &p.size);
    push_marginal(&mut out, "accuracy", &p.accuracy);
    out.push_str("diurnal");
    for v in &p.diurnal {
        out.push_str(&format!(" {v}"));
    }
    out.push('\n');
    out.push_str("weekly");
    for v in &p.weekly {
        out.push_str(&format!(" {v}"));
    }
    out.push('\n');
    let sums = p.size_runtime.sums();
    out.push_str(&format!(
        "corr {} {} {} {} {} {}\n",
        p.size_runtime.count, sums[0], sums[1], sums[2], sums[3], sums[4]
    ));
    out.push_str(&format!(
        "hist2 {}",
        if p.size_runtime_hist.counts().is_empty() {
            0
        } else {
            1
        }
    ));
    push_sparse(&mut out, p.size_runtime_hist.counts());
    out.push_str(&format!("users {}\n", p.per_user.len()));
    for (id, g) in &p.per_user {
        push_group(&mut out, "user", *id, g);
    }
    out.push_str(&format!("groups {}\n", p.per_group.len()));
    for (id, g) in &p.per_group {
        push_group(&mut out, "group", *id, g);
    }
    out.push_str("end\n");
    out
}

fn push_group(out: &mut String, tag: &str, id: u32, g: &GroupStats) {
    out.push_str(&format!(
        "{tag} {id} {} {} {} {} {} {} {}\n",
        g.jobs,
        g.area,
        g.runtime.count,
        g.runtime.sum,
        g.runtime.sum_sq,
        g.runtime.min,
        g.runtime.max
    ));
}

fn parse_group(rest: &str, line: usize) -> Result<(u32, GroupStats), CodecError> {
    let [id, jobs, area, count, sum, sum_sq, min, max] = split_n::<8>(rest, line)?;
    Ok((
        parse_num(id, line, "id")?,
        GroupStats {
            jobs: parse_num(jobs, line, "jobs")?,
            area: parse_num(area, line, "area")?,
            runtime: Moments {
                count: parse_num(count, line, "count")?,
                sum: parse_num(sum, line, "sum")?,
                sum_sq: parse_num(sum_sq, line, "sum_sq")?,
                min: parse_num(min, line, "min")?,
                max: parse_num(max, line, "max")?,
            },
        },
    ))
}

/// Decode a [`WorkloadProfile`] from artifact text produced by
/// [`encode_profile`]; the decoded value compares `==` to the original.
pub fn decode_profile(text: &str) -> Result<WorkloadProfile, CodecError> {
    let mut lines = Lines::new(text);
    let magic = lines.next()?;
    if magic != PROFILE_MAGIC {
        return err(lines.line, format!("bad profile magic {magic:?}"));
    }
    let version: u32 = parse_num(
        lines.tagged("analyze_version")?,
        lines.line,
        "analyze version",
    )?;
    if version != ANALYZE_VERSION {
        return err(
            lines.line,
            format!("stale analyze_version {version} (current {ANALYZE_VERSION})"),
        );
    }
    let name = unescape_name(lines.tagged("name")?);
    let jobs: u64 = parse_num(lines.tagged("jobs")?, lines.line, "jobs")?;
    let rest = lines.tagged("submits")?;
    let [first, last] = split_n::<2>(rest, lines.line)?;
    let opt = |tok: &str, line: usize| -> Result<Option<i64>, CodecError> {
        if tok == "-" {
            Ok(None)
        } else {
            parse_num(tok, line, "submit").map(Some)
        }
    };
    let first_submit = opt(first, lines.line)?;
    let last_submit = opt(last, lines.line)?;
    let interarrival = parse_marginal(&mut lines, "interarrival")?;
    let runtime = parse_marginal(&mut lines, "runtime")?;
    let size = parse_marginal(&mut lines, "size")?;
    let accuracy = parse_marginal(&mut lines, "accuracy")?;
    let rest = lines.tagged("diurnal")?;
    let d = split_n::<24>(rest, lines.line)?;
    let mut diurnal = [0u64; 24];
    for (slot, tok) in diurnal.iter_mut().zip(d.iter()) {
        *slot = parse_num(tok, lines.line, "diurnal count")?;
    }
    let rest = lines.tagged("weekly")?;
    let w = split_n::<7>(rest, lines.line)?;
    let mut weekly = [0u64; 7];
    for (slot, tok) in weekly.iter_mut().zip(w.iter()) {
        *slot = parse_num(tok, lines.line, "weekly count")?;
    }
    let rest = lines.tagged("corr")?;
    let [count, sx, sy, sxx, syy, sxy] = split_n::<6>(rest, lines.line)?;
    let size_runtime = Correlation::from_sums(
        parse_num(count, lines.line, "count")?,
        [
            parse_num(sx, lines.line, "sum")?,
            parse_num(sy, lines.line, "sum")?,
            parse_num(sxx, lines.line, "sum")?,
            parse_num(syy, lines.line, "sum")?,
            parse_num(sxy, lines.line, "sum")?,
        ],
    );
    let rest = lines.tagged("hist2")?;
    let (alloc, cells) = match rest.split_once(' ') {
        Some((a, rest)) => (a, rest),
        None => (rest, ""),
    };
    let size_runtime_hist = match alloc {
        "0" => {
            if !cells.trim().is_empty() {
                return err(lines.line, "unallocated hist2 carries cells");
            }
            Histogram2::new()
        }
        "1" => Histogram2::from_counts(parse_sparse(
            cells,
            psbench_analyze::JOINT_BINS * psbench_analyze::JOINT_BINS,
            lines.line,
        )?),
        other => return err(lines.line, format!("bad hist2 alloc flag {other:?}")),
    };
    let n_users: usize = parse_num(lines.tagged("users")?, lines.line, "user count")?;
    let mut per_user = std::collections::BTreeMap::new();
    for _ in 0..n_users {
        let rest = lines.tagged("user")?;
        let (id, g) = parse_group(rest, lines.line)?;
        per_user.insert(id, g);
    }
    let n_groups: usize = parse_num(lines.tagged("groups")?, lines.line, "group count")?;
    let mut per_group = std::collections::BTreeMap::new();
    for _ in 0..n_groups {
        let rest = lines.tagged("group")?;
        let (id, g) = parse_group(rest, lines.line)?;
        per_group.insert(id, g);
    }
    lines.tagged("end")?;
    Ok(WorkloadProfile {
        name,
        jobs,
        interarrival,
        runtime,
        size,
        accuracy,
        diurnal,
        weekly,
        per_user,
        per_group,
        size_runtime,
        size_runtime_hist,
        first_submit,
        last_submit,
    })
}

/// Encode a [`SimulationResult`] into the exact, deterministic artifact text.
/// Every float travels as its bit pattern, so `decode(encode(r)) == r` holds
/// with `==` — the property the byte-identical-resume guarantee rests on.
pub fn encode_result(r: &SimulationResult) -> String {
    let mut out = String::new();
    out.push_str(RESULT_MAGIC);
    out.push('\n');
    out.push_str(&format!("sched_version {SCHED_VERSION}\n"));
    out.push_str(&format!("scheduler {}\n", escape_name(&r.scheduler)));
    out.push_str(&format!("machine_size {}\n", r.machine_size));
    out.push_str(&format!(
        "counters {} {} {} {} {} {}\n",
        r.unfinished,
        r.discarded,
        r.kills,
        r.rejected_decisions,
        r.coalesced_wakeups,
        r.events_processed
    ));
    out.push_str(&format!(
        "integrals {} {} {} {}\n",
        f64_hex(r.idle_while_queued),
        f64_hex(r.busy_integral),
        f64_hex(r.lost_node_seconds),
        f64_hex(r.end_time)
    ));
    out.push_str(&format!("finished {}\n", r.finished.len()));
    for f in &r.finished {
        out.push_str(&format!(
            "f {} {} {} {} {} {} {} {}\n",
            f.id,
            f64_hex(f.submit),
            f64_hex(f.start),
            f64_hex(f.first_start),
            f64_hex(f.end),
            f.procs,
            f.restarts,
            f.user.map(|u| u.to_string()).unwrap_or_else(|| "-".into())
        ));
    }
    out.push_str("end\n");
    out
}

/// Decode a [`SimulationResult`] from artifact text produced by
/// [`encode_result`].
pub fn decode_result(text: &str) -> Result<SimulationResult, CodecError> {
    let mut lines = Lines::new(text);
    let magic = lines.next()?;
    if magic != RESULT_MAGIC {
        return err(lines.line, format!("bad result magic {magic:?}"));
    }
    let version: u32 = parse_num(lines.tagged("sched_version")?, lines.line, "sched version")?;
    if version != SCHED_VERSION {
        return err(
            lines.line,
            format!("stale sched_version {version} (current {SCHED_VERSION})"),
        );
    }
    let scheduler = unescape_name(lines.tagged("scheduler")?);
    let machine_size: u32 = parse_num(lines.tagged("machine_size")?, lines.line, "machine size")?;
    let rest = lines.tagged("counters")?;
    let [unfinished, discarded, kills, rejected, coalesced, events] =
        split_n::<6>(rest, lines.line)?;
    let rest = lines.tagged("integrals")?;
    let [idle, busy, lost, end_time] = split_n::<4>(rest, lines.line)?;
    let n: usize = parse_num(lines.tagged("finished")?, lines.line, "finished count")?;
    let mut finished = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let rest = lines.tagged("f")?;
        let [id, submit, start, first_start, end, procs, restarts, user] =
            split_n::<8>(rest, lines.line)?;
        finished.push(FinishedJob {
            id: parse_num(id, lines.line, "job id")?,
            submit: parse_f64_bits(submit, lines.line)?,
            start: parse_f64_bits(start, lines.line)?,
            first_start: parse_f64_bits(first_start, lines.line)?,
            end: parse_f64_bits(end, lines.line)?,
            procs: parse_num(procs, lines.line, "procs")?,
            restarts: parse_num(restarts, lines.line, "restarts")?,
            user: if user == "-" {
                None
            } else {
                Some(parse_num(user, lines.line, "user")?)
            },
        });
    }
    lines.tagged("end")?;
    Ok(SimulationResult {
        scheduler,
        machine_size,
        finished,
        unfinished: parse_num(unfinished, 3, "unfinished")?,
        discarded: parse_num(discarded, 3, "discarded")?,
        idle_while_queued: parse_f64_bits(idle, 4)?,
        busy_integral: parse_f64_bits(busy, 4)?,
        lost_node_seconds: parse_f64_bits(lost, 4)?,
        kills: parse_num(kills, 3, "kills")?,
        rejected_decisions: parse_num(rejected, 3, "rejected")?,
        coalesced_wakeups: parse_num(coalesced, 3, "coalesced")?,
        events_processed: parse_num(events, 3, "events")?,
        end_time: parse_f64_bits(end_time, 4)?,
    })
}

/// The canonical 64-bit fingerprint of a simulation result: FNV-1a over its
/// exact encoding. This is the per-cell fingerprint journaled by sweep
/// ledgers, and the one width-compatible continuation of the table
/// fingerprints `sweep-bench` snapshots.
pub fn result_fingerprint(r: &SimulationResult) -> u64 {
    crate::fnv::fnv1a_64(encode_result(r).as_bytes())
}

/// A memoized metasystem run: the merged fleet-wide [`SimulationResult`]
/// plus the epoch-loop counters a metasystem report needs — they are not
/// recoverable from the merged result (site identity is erased by the
/// merge), so they travel alongside it.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaSummary {
    /// Number of sites simulated.
    pub sites: u64,
    /// Cross-site dispatch policy name.
    pub dispatch: String,
    /// Epochs the loop executed.
    pub epochs: u64,
    /// Jobs dispatched (first placements).
    pub dispatched: u64,
    /// Outage-induced migrations performed.
    pub migrations: u64,
    /// Completed jobs per site, in site-id order.
    pub per_site_finished: Vec<u64>,
    /// The merged fleet-wide result.
    pub result: SimulationResult,
}

/// Encode a [`MetaSummary`]: a short counter header followed by the embedded
/// result in its own exact encoding, so `decode_meta(encode_meta(m)) == m`
/// holds with `==` like every other artifact.
pub fn encode_meta(m: &MetaSummary) -> String {
    let mut out = String::new();
    out.push_str(META_MAGIC);
    out.push('\n');
    out.push_str(&format!("sites {}\n", m.sites));
    out.push_str(&format!("dispatch {}\n", escape_name(&m.dispatch)));
    out.push_str(&format!(
        "loop {} {} {}\n",
        m.epochs, m.dispatched, m.migrations
    ));
    out.push_str(&format!("per_site {}", m.per_site_finished.len()));
    for c in &m.per_site_finished {
        out.push_str(&format!(" {c}"));
    }
    out.push('\n');
    out.push_str(&encode_result(&m.result));
    out
}

/// Exact inverse of [`encode_meta`]. Scheduler-semantics staleness is caught
/// by the embedded result's own `sched_version` stamp.
pub fn decode_meta(text: &str) -> Result<MetaSummary, CodecError> {
    // The header is exactly five lines; everything after it is the embedded
    // result's encoding, handed to `decode_result` verbatim.
    let mut offset = 0usize;
    for _ in 0..5 {
        match text[offset..].find('\n') {
            Some(line_end) => offset += line_end + 1,
            None => return err(0, "unexpected end of artifact"),
        }
    }
    let mut lines = Lines::new(text);
    let magic = lines.next()?;
    if magic != META_MAGIC {
        return err(lines.line, format!("bad meta magic {magic:?}"));
    }
    let sites: u64 = parse_num(lines.tagged("sites")?, lines.line, "sites")?;
    let dispatch = unescape_name(lines.tagged("dispatch")?);
    let rest = lines.tagged("loop")?;
    let [epochs, dispatched, migrations] = split_n::<3>(rest, lines.line)?;
    let rest = lines.tagged("per_site")?;
    let mut toks = rest.split_ascii_whitespace();
    let n: usize = parse_num(toks.next().unwrap_or(""), lines.line, "per-site count")?;
    let mut per_site_finished = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let tok = match toks.next() {
            Some(t) => t,
            None => return err(lines.line, "missing per-site counts"),
        };
        per_site_finished.push(parse_num(tok, lines.line, "per-site count")?);
    }
    if toks.next().is_some() {
        return err(lines.line, "trailing per-site counts");
    }
    let result = decode_result(&text[offset..])?;
    Ok(MetaSummary {
        sites,
        dispatch,
        epochs: parse_num(epochs, 4, "epochs")?,
        dispatched: parse_num(dispatched, 4, "dispatched")?,
        migrations: parse_num(migrations, 4, "migrations")?,
        per_site_finished,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> SimulationResult {
        SimulationResult {
            scheduler: "easy".into(),
            machine_size: 64,
            finished: vec![
                FinishedJob {
                    id: 1,
                    submit: 0.0,
                    start: 0.5,
                    first_start: 0.25,
                    end: 100.125,
                    procs: 32,
                    restarts: 1,
                    user: Some(7),
                },
                FinishedJob {
                    id: 2,
                    submit: -0.0,
                    start: 1.0e-9,
                    first_start: 1.0e-9,
                    end: 1.0e12,
                    procs: 1,
                    restarts: 0,
                    user: None,
                },
            ],
            unfinished: 3,
            discarded: 1,
            idle_while_queued: 320.0625,
            busy_integral: 1.0 / 3.0,
            lost_node_seconds: 0.1 + 0.2,
            kills: 2,
            rejected_decisions: 4,
            coalesced_wakeups: 5,
            events_processed: 999,
            end_time: 12345.6789,
        }
    }

    #[test]
    fn result_round_trips_bit_for_bit() {
        let r = sample_result();
        let text = encode_result(&r);
        let back = decode_result(&text).unwrap();
        assert_eq!(back, r);
        // Determinism: equal values, equal bytes, equal fingerprints.
        assert_eq!(encode_result(&back), text);
        assert_eq!(result_fingerprint(&back), result_fingerprint(&r));
    }

    #[test]
    fn meta_round_trips_bit_for_bit() {
        let m = MetaSummary {
            sites: 12,
            dispatch: "least-pressure".into(),
            epochs: 480,
            dispatched: 10_000,
            migrations: 37,
            per_site_finished: (0..12).map(|i| 800 + i).collect(),
            result: sample_result(),
        };
        let text = encode_meta(&m);
        let back = decode_meta(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(encode_meta(&back), text);
        // Degenerate corner: no per-site counts at all still round-trips.
        let empty = MetaSummary {
            per_site_finished: Vec::new(),
            ..m
        };
        assert_eq!(decode_meta(&encode_meta(&empty)).unwrap(), empty);
    }

    #[test]
    fn meta_rejects_mangled_headers() {
        let m = MetaSummary {
            sites: 2,
            dispatch: "round-robin".into(),
            epochs: 1,
            dispatched: 2,
            migrations: 0,
            per_site_finished: vec![1, 1],
            result: sample_result(),
        };
        let text = encode_meta(&m);
        assert!(decode_meta(&text.replace(META_MAGIC, "psbench-meta v0")).is_err());
        assert!(decode_meta(&text.replace("per_site 2 1 1", "per_site 3 1 1")).is_err());
        assert!(decode_meta(&text.replace("per_site 2 1 1", "per_site 2 1 1 9")).is_err());
        assert!(decode_meta(text.split("psbench-result").next().unwrap()).is_err());
    }

    #[test]
    fn profile_round_trips_bit_for_bit() {
        use psbench_workload::{Lublin99, WorkloadModel};
        let log = Lublin99::default().generate(300, 11);
        let p = WorkloadProfile::of_log("lublin99 roundtrip", &log);
        let text = encode_profile(&p);
        let back = decode_profile(&text).unwrap();
        assert_eq!(back, p);
        assert_eq!(encode_profile(&back), text);
    }

    #[test]
    fn empty_profile_round_trips_including_lazy_hist2() {
        let p = WorkloadProfile::named("empty");
        let back = decode_profile(&encode_profile(&p)).unwrap();
        assert_eq!(back, p);
        assert!(
            back.size_runtime_hist.counts().is_empty(),
            "stays unallocated"
        );
    }

    #[test]
    fn names_with_escapes_survive() {
        let mut p = WorkloadProfile::named("weird \\ name\nwith newline\r");
        p.jobs = 0;
        let back = decode_profile(&encode_profile(&p)).unwrap();
        assert_eq!(back.name, p.name);
    }

    #[test]
    fn corrupt_artifacts_are_rejected() {
        assert!(decode_profile("nonsense").is_err());
        assert!(decode_result("psbench-result v999\n").is_err());
        let good = encode_result(&sample_result());
        // Truncation is detected.
        let truncated = &good[..good.len() - 5];
        assert!(decode_result(truncated).is_err());
        // A tampered field is detected as malformed (non-hex float).
        let tampered = good.replace("machine_size 64", "machine_size sixty-four");
        assert!(decode_result(&tampered).is_err());
    }
}
