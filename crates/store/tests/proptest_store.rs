//! Property tests of the codec's exactness invariant: for any profile the
//! analyzer can produce and any result the simulator can produce,
//! `decode(encode(x))` returns a value `==` to `x` — bit for bit, including
//! the lazily-allocated joint histogram's never-allocated state — and the
//! result fingerprint is a pure function of the encoding. This is the
//! property that makes cached artifacts indistinguishable from freshly
//! computed ones, and resumed sweep reports byte-identical.

use proptest::prelude::*;
use psbench_analyze::WorkloadProfile;
use psbench_sched::by_name;
use psbench_sim::{SimConfig, SimJob, Simulation};
use psbench_store::{
    decode_profile, decode_result, encode_profile, encode_result, result_fingerprint,
};
use psbench_swf::{CompletionStatus, SwfLog, SwfRecord, SwfRecordBuilder};

/// Strategy for one raw record spec: interarrival gap, runtime (0 = unknown,
/// which keeps the joint runtime×size histogram unallocated for that record),
/// procs, requested time, user id (group id is derived), and completion
/// status selector.
fn record_spec() -> impl Strategy<Value = (i64, i64, u32, i64, u32, u8)> {
    (
        0i64..40_000,
        0i64..6_000,
        1u32..64,
        0i64..8_000,
        1u32..9,
        0u8..4,
    )
}

/// Materialize record specs as a conforming log (ids 1..n, submits ascending).
fn build_log(specs: &[(i64, i64, u32, i64, u32, u8)]) -> SwfLog {
    let mut log = SwfLog::default();
    log.header.max_nodes = Some(64);
    let mut submit = 0i64;
    for (i, &(gap, run, procs, req, user, status)) in specs.iter().enumerate() {
        submit += gap;
        let group = user % 3 + 1;
        let mut b = SwfRecordBuilder::new(i as u64 + 1, submit)
            .allocated_procs(procs)
            .requested_procs(procs)
            .user_id(user)
            .group_id(group)
            .status(match status {
                0 => CompletionStatus::Completed,
                1 => CompletionStatus::Failed,
                2 => CompletionStatus::Cancelled,
                _ => CompletionStatus::Completed,
            });
        if run > 0 {
            b = b.run_time(run);
        }
        if req > 0 {
            b = b.requested_time(req);
        }
        log.jobs.push(b.build());
    }
    log
}

fn roundtrip_profile(profile: &WorkloadProfile) {
    let encoded = encode_profile(profile);
    let decoded = decode_profile(&encoded).expect("encoded profile decodes");
    assert_eq!(&decoded, profile, "decode(encode(p)) != p");
    // Encoding is deterministic: re-encoding the decoded value is identical.
    assert_eq!(encode_profile(&decoded), encoded);
}

proptest! {
    #[test]
    fn any_profile_roundtrips_bit_identical(
        specs in prop::collection::vec(record_spec(), 0..160),
    ) {
        let log = build_log(&specs);
        let profile = WorkloadProfile::of_records("prop", &log.jobs);
        roundtrip_profile(&profile);
    }

    #[test]
    fn unallocated_joint_histogram_survives_the_roundtrip(
        specs in prop::collection::vec(record_spec(), 0..40),
    ) {
        // Strip every runtime: the runtime×size joint histogram is lazily
        // allocated and must come back *unallocated*, not as an allocated
        // all-zero table (those compare unequal).
        let mut log = build_log(&specs);
        for j in &mut log.jobs {
            j.run_time = None;
        }
        let profile = WorkloadProfile::of_records("lazy", &log.jobs);
        roundtrip_profile(&profile);
    }

    #[test]
    fn any_simulation_result_roundtrips_bit_identical(
        specs in prop::collection::vec(record_spec(), 1..60),
        sched_ix in 0usize..6,
    ) {
        let mut log = build_log(&specs);
        // The simulator needs runtimes; make unknown ones explicit zeros.
        for j in &mut log.jobs {
            if j.run_time.is_none() {
                j.run_time = Some(0);
            }
        }
        let name = ["fcfs", "sjf", "greedy-fcfs", "easy", "conservative", "gang"][sched_ix];
        let mut scheduler = by_name(name, 64).expect("registry scheduler");
        let jobs: Vec<SimJob> = SimJob::from_log(&log);
        let result = Simulation::new(SimConfig::new(64), jobs).run(scheduler.as_mut());

        let encoded = encode_result(&result);
        let decoded = decode_result(&encoded).expect("encoded result decodes");
        prop_assert_eq!(&decoded, &result, "decode(encode(r)) != r");
        prop_assert_eq!(encode_result(&decoded), encoded.clone());
        // The fingerprint sweeps journal is a pure function of the value.
        prop_assert_eq!(result_fingerprint(&decoded), result_fingerprint(&result));
    }
}

/// Records with every optional field unknown still roundtrip (all the `-`
/// sentinels in the encoding).
#[test]
fn minimal_records_roundtrip() {
    let rec: SwfRecord = SwfRecordBuilder::new(1, 0).build();
    let profile = WorkloadProfile::of_records("minimal", &[rec]);
    roundtrip_profile(&profile);
}
