//! The fault-injection harness turned on itself: journal appends and store
//! publishes under seeded write faults must fail loudly, roll back cleanly,
//! and leave every durable structure in a state recovery accepts.
//!
//! The fault plan is process-global, and cargo runs `#[test]`s in this file
//! on parallel threads — every test takes [`plan_guard`] first, which both
//! serializes them and clears the plan when the test ends (or panics), so a
//! leaked plan can never tear the writes of an unrelated test.

use std::sync::{Mutex, MutexGuard, OnceLock};

use psbench_sched::by_name;
use psbench_sim::{SimConfig, SimJob, Simulation, SimulationResult};
use psbench_store::fault::{self, is_injected, FaultPlan};
use psbench_store::{ArtifactKind, ArtifactStore, FsyncPolicy, Journal, SweepLedger};

/// Serialize fault tests and guarantee the plan is cleared afterwards.
struct PlanGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for PlanGuard {
    fn drop(&mut self) {
        fault::install(None);
    }
}

fn plan_guard(plan: Option<FaultPlan>) -> PlanGuard {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| Mutex::new(()));
    // A previous test may have panicked while holding the lock; the plan
    // itself is what must stay consistent, so a poisoned mutex is fine.
    let _lock = match lock.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    fault::install(plan);
    PlanGuard { _lock }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("psbench-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn plan(seed: u64, err: u32, short: u32, kill: u32) -> FaultPlan {
    FaultPlan {
        seed,
        io_error: err,
        short_write: short,
        kill,
    }
}

/// A small deterministic result to publish through the store's write path.
fn sample_result(salt: u64) -> SimulationResult {
    use psbench_swf::{SwfLog, SwfRecordBuilder};
    let mut log = SwfLog::default();
    log.header.max_nodes = Some(32);
    for i in 0..8u64 {
        log.jobs.push(
            SwfRecordBuilder::new(i + 1, (i as i64) * 50 + (salt % 17) as i64)
                .run_time(60 + (i as i64 * 13 + salt as i64) % 300)
                .allocated_procs(1 + ((i + salt) % 16) as u32)
                .requested_procs(1 + ((i + salt) % 16) as u32)
                .build(),
        );
    }
    let jobs = SimJob::from_log(&log);
    let mut policy = by_name("fcfs", 32).unwrap();
    Simulation::new(SimConfig::new(32), jobs).run(policy.as_mut())
}

#[test]
fn transient_errors_roll_appends_back_and_the_journal_stays_usable() {
    let _guard = plan_guard(None);
    let dir = temp_dir("transient");
    let path = dir.join("t.journal");
    let journal = Journal::open(&path, FsyncPolicy::Always).unwrap();
    journal.append_line("one").unwrap();
    let before = std::fs::read(&path).unwrap();

    // Every write fails, nothing lands.
    fault::install(Some(plan(1, 1000, 0, 0)));
    let err = journal.append_line("two").unwrap_err();
    assert!(is_injected(&err), "{err}");
    assert_eq!(
        std::fs::read(&path).unwrap(),
        before,
        "failed append left bytes"
    );

    // Clear the plan: the same journal accepts the retry.
    fault::install(None);
    journal.append_line("two").unwrap();
    drop(journal);
    let (_, lines) = Journal::recover(&path, FsyncPolicy::Always, |_| true).unwrap();
    assert_eq!(lines, ["one", "two"]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn short_writes_and_kill_points_never_leave_torn_bytes_behind() {
    let _guard = plan_guard(None);
    let dir = temp_dir("torn");
    let path = dir.join("t.journal");
    let journal = Journal::open(&path, FsyncPolicy::Always).unwrap();
    journal.append_line("durable").unwrap();
    let before = std::fs::read(&path).unwrap();

    // A short write tears the append mid-buffer; the journal rolls the file
    // back so the tear is invisible.
    fault::install(Some(plan(3, 0, 1000, 0)));
    let err = journal.append_line("torn-by-short-write").unwrap_err();
    assert!(is_injected(&err), "{err}");
    assert_eq!(std::fs::read(&path).unwrap(), before);

    // A kill-point tears one write and deadens every later one — the
    // simulated process is gone from the filesystem's point of view.
    fault::install(Some(plan(4, 0, 0, 1000)));
    let err = journal.append_line("torn-by-kill").unwrap_err();
    assert!(is_injected(&err), "{err}");
    let err = journal.append_line("after-death").unwrap_err();
    assert!(
        is_injected(&err),
        "writes after a kill-point must fail: {err}"
    );
    assert_eq!(std::fs::read(&path).unwrap(), before);

    // "Reboot": clear the plan, recover, and the journal carries on.
    fault::install(None);
    drop(journal);
    let (journal, lines) = Journal::recover(&path, FsyncPolicy::Always, |_| true).unwrap();
    assert_eq!(lines, ["durable"]);
    journal.append_line("after-reboot").unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_same_seed_replays_the_same_fault_sequence() {
    let _guard = plan_guard(None);
    let dir = temp_dir("replay");
    let the_plan = plan(42, 150, 100, 0);

    let run = |path: &std::path::Path| -> (Vec<Option<String>>, Vec<u8>) {
        fault::install(Some(the_plan));
        let journal = Journal::open(path, FsyncPolicy::Always).unwrap();
        let outcomes = (0..40)
            .map(|i| {
                journal.append_line(&format!("record {i}")).err().map(|e| {
                    assert!(is_injected(&e), "{e}");
                    e.to_string()
                })
            })
            .collect();
        fault::install(None);
        (outcomes, std::fs::read(path).unwrap())
    };

    let (first, first_bytes) = run(&dir.join("a.journal"));
    let (second, second_bytes) = run(&dir.join("b.journal"));
    assert!(
        first.iter().any(|o| o.is_some()) && first.iter().any(|o| o.is_none()),
        "plan should mix failures and successes: {first:?}"
    );
    assert_eq!(
        first, second,
        "fault sequence must be a pure function of the seed"
    );
    assert_eq!(first_bytes, second_bytes);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_publishes_under_faults_either_land_whole_or_not_at_all() {
    let _guard = plan_guard(None);
    let dir = temp_dir("store");
    let store = ArtifactStore::open(&dir).unwrap();
    let result = sample_result(0);

    // Hammer publishes under a mixed fault plan; each either succeeds fully
    // or fails loudly with an injected error.
    fault::install(Some(plan(7, 120, 120, 0)));
    let mut failed = 0usize;
    let mut landed = 0usize;
    for key in 0..60u128 {
        match store.put_result(key, &result) {
            Ok(()) => landed += 1,
            Err(e) => {
                assert!(is_injected(&e), "{e}");
                failed += 1;
            }
        }
    }
    fault::install(None);
    assert!(failed > 0, "fault plan never fired");
    assert!(landed > 0, "fault plan never let a publish through");

    // Whatever the faults did, the store verifies clean: no torn artifact is
    // ever visible under its content address.
    let report = store.verify().unwrap();
    assert!(report.problems.is_empty(), "{:?}", report.problems);
    assert_eq!(report.ok, landed);
    for key in 0..60u128 {
        if store.has(ArtifactKind::Result, key) {
            let got = store.get_result(key).unwrap().expect("present result");
            assert_eq!(got, result, "artifact {key} decoded differently");
        }
    }

    // Failed publishes retry cleanly once the faults stop.
    for key in 0..60u128 {
        if !store.has(ArtifactKind::Result, key) {
            store.put_result(key, &result).unwrap();
        }
    }
    assert_eq!(store.verify().unwrap().ok, 60);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ledgers_survive_faulted_records_and_replay_only_whole_entries() {
    let _guard = plan_guard(None);
    let dir = temp_dir("ledger");
    let store = ArtifactStore::open(&dir).unwrap();
    let ledger = SweepLedger::open(&store, 0xfeed_beef).unwrap();

    fault::install(Some(plan(11, 200, 200, 0)));
    let mut recorded = Vec::new();
    for cell in 0..40u128 {
        match ledger.record(cell, cell as u64 * 3 + 1) {
            Ok(()) => recorded.push(cell),
            Err(e) => assert!(is_injected(&e), "{e}"),
        }
    }
    fault::install(None);
    assert!(!recorded.is_empty(), "no record survived the plan");
    assert!(recorded.len() < 40, "fault plan never fired");

    // Reopening replays exactly the successfully recorded cells.
    drop(ledger);
    let ledger = SweepLedger::open(&store, 0xfeed_beef).unwrap();
    let replayed = ledger.replay().unwrap();
    assert_eq!(
        replayed.keys().copied().collect::<Vec<_>>(),
        recorded,
        "replay must hold exactly the appends that reported success"
    );
    for (&cell, &fp) in &replayed {
        assert_eq!(fp, cell as u64 * 3 + 1);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
