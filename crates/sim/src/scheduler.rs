//! The interface between the simulator and scheduling policies.
//!
//! The simulator owns the queue, the running set and the cluster; a [`Scheduler`]
//! is consulted whenever the state changes (arrival, completion, outage,
//! reservation change, or a timer it asked for) and answers with a list of
//! [`Decision`]s. The simulator validates every decision against the capacity
//! constraint before applying it, so a buggy policy cannot oversubscribe the
//! machine — it just gets its decision rejected (and counted).

use crate::cluster::{Cluster, Reservation};
use crate::job::RunningJob;
use crate::queue::JobQueue;
use serde::{Deserialize, Serialize};

/// What just happened; passed to the scheduler so policies can react differently to
/// different triggers (most simply re-plan on every call).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SchedulerEvent {
    /// The simulation is starting (time 0, before any arrival).
    Start,
    /// A job entered the queue.
    JobArrived {
        /// Id of the arriving job.
        job_id: u64,
    },
    /// A running job completed.
    JobCompleted {
        /// Id of the completed job.
        job_id: u64,
    },
    /// Two or more running jobs completed at the same instant. The engine
    /// coalesces all same-instant completions into this single consult — all
    /// freed capacity is already reflected in the context — instead of one
    /// [`SchedulerEvent::JobCompleted`] react per job, so a mass completion
    /// under saturation costs one replan, not N. Policies that track running
    /// jobs by id (e.g. a gang matrix) should reconcile against the context's
    /// running set and queue rather than expect per-id notifications.
    CompletionBatch {
        /// Number of jobs that completed at this instant.
        count: usize,
    },
    /// Jobs were killed by an outage and put back in the queue.
    JobsKilled {
        /// Number of jobs killed.
        count: usize,
    },
    /// An outage was announced for the future (advance notice).
    OutageAnnounced {
        /// When the outage will start.
        start: f64,
        /// When the outage will end.
        end: f64,
        /// Number of processors that will be lost.
        procs: u32,
    },
    /// An outage started; capacity already reflects the loss.
    OutageStarted {
        /// Number of processors lost.
        procs: u32,
    },
    /// An outage ended; capacity already reflects the recovery.
    OutageEnded {
        /// Number of processors restored.
        procs: u32,
    },
    /// A queued job was cancelled by an external agent (online sessions); it
    /// has already left the queue when the scheduler is consulted. Policies
    /// holding per-job plans should drop the job and may replan the hole it
    /// leaves behind.
    JobCancelled {
        /// Id of the cancelled job.
        job_id: u64,
    },
    /// A reservation was added or removed by an external agent (meta-scheduler).
    ReservationsChanged,
    /// A timer previously requested via [`Decision::Wakeup`] fired.
    Timer,
}

/// An action the scheduler asks the simulator to take.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Decision {
    /// Start a queued job now on `procs` processors with the given time share.
    Start {
        /// Id of the queued job to start.
        job_id: u64,
        /// Processors to allocate; `None` means the job's requested size.
        procs: Option<u32>,
        /// Time share in `(0, 1]`; 1.0 means dedicated processors.
        share: f64,
    },
    /// Change the time share of a running job (gang scheduling repacks, malleable
    /// policies).
    SetShare {
        /// Id of the running job.
        job_id: u64,
        /// New share in `(0, 1]`.
        share: f64,
    },
    /// Preempt a running job: its remaining work is preserved and it returns to the
    /// queue (position by original queue time).
    Preempt {
        /// Id of the running job to preempt.
        job_id: u64,
    },
    /// Ask to be called again at the given absolute time (quantum expiry, planned
    /// drain before an announced outage, reservation start).
    Wakeup {
        /// Absolute simulation time of the requested callback.
        at: f64,
    },
}

impl Decision {
    /// Convenience: start a job on its requested processors, dedicated.
    pub fn start(job_id: u64) -> Decision {
        Decision::Start {
            job_id,
            procs: None,
            share: 1.0,
        }
    }

    /// Convenience: start a job on an explicit number of processors, dedicated.
    pub fn start_on(job_id: u64, procs: u32) -> Decision {
        Decision::Start {
            job_id,
            procs: Some(procs),
            share: 1.0,
        }
    }
}

/// A read-only view of the simulation state passed to the scheduler.
///
/// `queue` iterates in `(queued_at, job id)` order — arrival order, with
/// requeued jobs back at their original position — maintained structurally by
/// the engine, so policies never sort it; head-of-queue policies can stop
/// iterating at the first job that does not fit. Deep-queue policies should
/// consult the queue's **backlog index**
/// ([`JobQueue::candidates_fitting`] /
/// [`JobQueue::candidates_fitting_either`]) instead of scanning: it
/// enumerates, still in arrival order, only the jobs that can possibly fit a
/// capacity/estimate budget, so replans stay sub-linear in the backlog depth
/// even under saturation. The `running` slice, by contrast, is in **no
/// meaningful order** (the engine uses swap-removal): policies that emit
/// per-running-job decisions should order them by job id so results stay
/// independent of the engine's internal layout.
#[derive(Debug)]
pub struct SchedulerContext<'a> {
    /// Current simulation time, seconds.
    pub now: f64,
    /// The cluster (capacity, outages, reservations).
    pub cluster: &'a Cluster,
    /// Jobs waiting in the queue, iterated in `(queued_at, id)` order.
    pub queue: &'a JobQueue,
    /// Jobs currently running (unspecified order).
    pub running: &'a [RunningJob],
    /// Processor·share capacity currently in use by running jobs, maintained
    /// incrementally by the engine (`Σ procs·share` over `running`).
    pub used_procs: f64,
}

impl SchedulerContext<'_> {
    /// Processor·share capacity currently in use by running jobs. O(1): reads
    /// the engine's incrementally maintained accumulator instead of re-summing
    /// the running set.
    pub fn used_capacity(&self) -> f64 {
        self.used_procs
    }

    /// Free capacity right now: available processors minus what running jobs use,
    /// minus processors promised to reservations active at this instant.
    pub fn free_capacity(&self) -> f64 {
        self.cluster.available_procs() as f64
            - self.used_capacity()
            - self.cluster.reserved_at(self.now) as f64
    }

    /// Free capacity ignoring reservations (for policies that handle reservations
    /// themselves).
    pub fn free_capacity_ignoring_reservations(&self) -> f64 {
        self.cluster.available_procs() as f64 - self.used_capacity()
    }

    /// The reservations currently outstanding.
    pub fn reservations(&self) -> &[Reservation] {
        &self.cluster.reservations
    }

    /// Estimated completions of all running jobs as `(id, time, proc_share)`
    /// triples, sorted by `(time, id)`. This is the raw material of every
    /// backfilling shadow/profile computation: sorted once per react and carrying
    /// the capacity each completion releases, so policies need neither a re-sort
    /// nor a per-completion lookup into the running set. Ties on the estimated
    /// end break by job id, which keeps the profile independent of the engine's
    /// internal running-set layout.
    pub fn completion_profile(&self) -> Vec<(u64, f64, f64)> {
        let mut v: Vec<(u64, f64, f64)> = self
            .running
            .iter()
            .map(|r| {
                // Use the *estimate* of remaining time, as a real scheduler would:
                // elapsed runtime so far versus the user's estimate.
                let elapsed = self.now - r.started_at;
                let est_total = r.job.estimate.max(1.0);
                let est_remaining = (est_total - elapsed).max(0.0);
                (r.job.id, self.now + est_remaining, r.proc_share())
            })
            .collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        v
    }

    /// **Canonical** estimated completions of all running jobs as
    /// `(id, end, proc_share)` triples, sorted by `(end, id)` in total order.
    ///
    /// Unlike [`Self::completion_profile`], the end here is the *absolute*
    /// `started_at + max(estimate, 1)` (clamped up to `now` for overdue
    /// estimates), not `now + remaining`. The absolute form is **bit-stable
    /// across reacts**: the same running job reports the same end at every
    /// consult until it actually completes, because no `now`-dependent float
    /// arithmetic re-derives it. Persistent planners (the conservative
    /// reservation calendar) depend on that stability — a reservation placed
    /// against a completion at one react must still face the identical
    /// breakpoint at the next, or incremental and rebuilt-from-scratch plans
    /// diverge in the last bit and cascade into different decisions.
    pub fn canonical_completions(&self) -> Vec<(u64, f64, f64)> {
        let mut v: Vec<(u64, f64, f64)> = self
            .running
            .iter()
            .map(|r| {
                let end = (r.started_at + r.job.estimate.max(1.0)).max(self.now);
                (r.job.id, end, r.proc_share())
            })
            .collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Estimated completion times (id, time) of all running jobs at their current
    /// rates, sorted soonest first (ties by id). Backfilling policies that also
    /// need the released capacity should use [`Self::completion_profile`].
    pub fn estimated_completions(&self) -> Vec<(u64, f64)> {
        self.completion_profile()
            .into_iter()
            .map(|(id, end, _)| (id, end))
            .collect()
    }
}

/// A scheduling policy.
///
/// Policies are `Send` so a live policy instance can ride inside a per-session
/// engine shard handed to a connection thread (`psbench serve`); every policy
/// is plain owned data, so this costs nothing.
pub trait Scheduler: Send {
    /// A short, stable name used in reports.
    fn name(&self) -> &str;

    /// React to a state change with zero or more decisions.
    fn react(&mut self, ctx: &SchedulerContext<'_>, event: SchedulerEvent) -> Vec<Decision>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::SimJob;

    fn running(id: u64, procs: u32, share: f64) -> RunningJob {
        RunningJob {
            job: SimJob::rigid(id, 0.0, 100.0, procs),
            queued_at: 0.0,
            procs,
            share,
            remaining_work: 50.0,
            anchor_time: 0.0,
            predicted_end: 50.0,
            started_at: 0.0,
            first_started_at: 0.0,
            restarts: 0,
        }
    }

    /// Build a context over the given running set, with `used_procs` derived the
    /// way the engine maintains it.
    fn ctx_over<'a>(
        now: f64,
        cluster: &'a Cluster,
        queue: &'a JobQueue,
        running: &'a [RunningJob],
    ) -> SchedulerContext<'a> {
        SchedulerContext {
            now,
            cluster,
            queue,
            running,
            used_procs: running.iter().map(|r| r.proc_share()).sum(),
        }
    }

    #[test]
    fn context_capacity_accounting() {
        let mut cluster = Cluster::new(64);
        cluster.try_reserve(0.0, 100.0, 8).unwrap();
        let running = vec![running(1, 16, 1.0), running(2, 32, 0.5)];
        let queue = JobQueue::new();
        let ctx = ctx_over(10.0, &cluster, &queue, &running);
        assert_eq!(ctx.used_capacity(), 32.0);
        assert_eq!(ctx.free_capacity(), 64.0 - 32.0 - 8.0);
        assert_eq!(ctx.free_capacity_ignoring_reservations(), 32.0);
        assert_eq!(ctx.reservations().len(), 1);
    }

    #[test]
    fn estimated_completions_use_estimates_and_sort() {
        let cluster = Cluster::new(64);
        let mut a = running(1, 8, 1.0);
        a.job.estimate = 1000.0;
        a.started_at = 0.0;
        let mut b = running(2, 8, 1.0);
        b.job.estimate = 100.0;
        b.started_at = 50.0;
        let running = vec![a, b];
        let queue = JobQueue::new();
        let ctx = ctx_over(100.0, &cluster, &queue, &running);
        let comps = ctx.estimated_completions();
        // b: estimate 100, elapsed 50 -> completes at 150; a: estimate 1000, elapsed 100 -> 1000
        assert_eq!(comps[0], (2, 150.0));
        assert_eq!(comps[1], (1, 1000.0));
        // The profile carries the proc·share each completion releases.
        let profile = ctx.completion_profile();
        assert_eq!(profile[0], (2, 150.0, 8.0));
        assert_eq!(profile[1], (1, 1000.0, 8.0));
    }

    #[test]
    fn estimated_completion_never_in_the_past() {
        let cluster = Cluster::new(4);
        let mut a = running(1, 4, 1.0);
        a.job.estimate = 10.0; // badly underestimated; job still running at t=100
        a.started_at = 0.0;
        let running = vec![a];
        let queue = JobQueue::new();
        let ctx = ctx_over(100.0, &cluster, &queue, &running);
        assert_eq!(ctx.estimated_completions()[0].1, 100.0);
    }

    #[test]
    fn completion_profile_ties_break_by_id() {
        let cluster = Cluster::new(64);
        // Same estimate, same start: estimated ends tie; order must be by id
        // regardless of the slice layout.
        let jobs = vec![running(7, 8, 1.0), running(3, 16, 1.0), running(5, 4, 1.0)];
        let queue = JobQueue::new();
        let ctx = ctx_over(0.0, &cluster, &queue, &jobs);
        let ids: Vec<u64> = ctx.completion_profile().iter().map(|c| c.0).collect();
        assert_eq!(ids, vec![3, 5, 7]);
    }

    #[test]
    fn decision_helpers() {
        assert_eq!(
            Decision::start(5),
            Decision::Start {
                job_id: 5,
                procs: None,
                share: 1.0
            }
        );
        assert_eq!(
            Decision::start_on(5, 16),
            Decision::Start {
                job_id: 5,
                procs: Some(16),
                share: 1.0
            }
        );
    }
}
