//! The engine's wait queue: arrival-ordered, with cheap mutation and
//! contiguous, already-sorted iteration.
//!
//! Scheduling policies overwhelmingly consume the queue in arrival order
//! (`(queued_at, job id)` — requeued jobs keep their original `queued_at`, so a
//! preempted job returns to its original position). The seed engine stored a
//! plain `Vec` and every policy re-sorted it on every react, which turns
//! quadratic on archive-scale traces with deep queues. [`JobQueue`] maintains
//! the order structurally instead, exploiting the engine's access pattern:
//!
//! * **arrivals append**: `queued_at` is the simulation clock, which never goes
//!   backwards, so a new arrival's key is almost always the largest yet and the
//!   job is pushed at the tail in O(1);
//! * **removals tombstone**: starting a job marks its slot dead in O(1) via an
//!   id→slot map (slots never shift), with the dead prefix skipped eagerly and
//!   the whole vector compacted amortized-O(1) once tombstones outnumber live
//!   jobs;
//! * **out-of-order pushes walk back from the tail**: same-instant arrivals
//!   whose ids land out of order (closed-loop dependency releases) insert a
//!   few slots from the end at O(cluster) cost, and a genuine requeue (outage
//!   kill, preemption) pays O(distance) to return to its original
//!   `(queued_at, id)` position — only the shifted suffix is touched, never
//!   the whole vector;
//! * **iteration is a contiguous scan** over the slot vector, skipping
//!   tombstones: policies consume the queue in sorted order at slice speed, no
//!   sort, no per-react allocation, and head-of-queue policies can stop early.
//!
//! # The backlog index
//!
//! Arrival-ordered iteration alone still leaves backfilling super-linear under
//! saturation: every completion-time replan walks the whole backlog even
//! though almost nothing in a deep queue can fit the freed capacity. The queue
//! therefore also maintains a **secondary index over the scheduling keys**:
//! one **treap per requested-`procs` value**, keyed by the arrival pair
//! `(queued_at, id)` and augmented with the **minimum estimate of every
//! subtree**, kept incrementally consistent with the arrival-ordered array by
//! every mutation (push/tombstone/requeue; compaction never touches it, the
//! index is keyed by job values, not slot positions). The augmentation is the
//! load-bearing part: "the next job of this width, in arrival order, whose
//! estimate fits a budget" is a single O(log n) descent — the estimate-
//! unfitting entries in between are pruned wholesale, never visited.
//!
//! [`JobQueue::candidates_fitting`] consults the index to enumerate, **in
//! arrival order**, exactly the queued jobs that can possibly fit a
//! capacity/estimate budget, and [`JobQueue::backfill_scan`] streams the same
//! candidates lazily with mid-scan bound tightening, so a replan's cost
//! scales with the *viable candidates actually reached* — O(widths × log
//! backlog) plus the yields — instead of the backlog depth.
//!
//! ## Index invariants
//!
//! * Every live queue entry appears in exactly one bucket treap — that of its
//!   requested `procs` — as `(queued_at bits, id, estimate bits)`, where
//!   "bits" is a [`f64::total_cmp`]-compatible unsigned encoding;
//!   tombstoned entries appear in no treap.
//! * Buckets are never empty: the last removal from a bucket removes the
//!   bucket itself, so a candidates query touches only `procs` values that
//!   are actually present in the backlog.
//! * Treaps are keyed by `(queued_at bits, id)` — the order of
//!   [`JobQueue::iter`] — so in-order traversal is arrival order and bucket
//!   streams merge into
//!   global arrival order without sorting; every node's `min_est` equals the
//!   exact minimum estimate bits of its subtree (checked, together with the
//!   heap property, by the debug invariants).
//! * Estimate bounds compare by **total order** (`total_cmp`), which agrees
//!   with `<=` for every pair of non-NaN estimates except the irrelevant
//!   `0.0 == -0.0` corner; callers that must reproduce an exact `<=`
//!   comparison (EASY's shadow test) re-test gathered candidates and rely on
//!   the index only never to *miss* a viable one.
//! * Treap priorities are a deterministic hash of the entry key, so tree
//!   shape (irrelevant to results, which depend only on the key order) is
//!   reproducible run to run.

use crate::job::QueuedJob;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

/// The compact per-job scheduling key carried alongside each queue slot: the
/// fields every queue-scanning policy (FCFS, backfilling, gang admission)
/// tests before deciding anything. Scanning these 24-byte entries instead of
/// full [`QueuedJob`]s keeps deep-queue reacts cache-resident; fetch the full
/// job via [`JobQueue::get`] once a key passes the cheap tests.
///
/// `procs == 0` never occurs for a live entry (`SimJob` clamps requests to
/// ≥ 1), so the key array uses it as its tombstone marker internally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueKey {
    /// Job id (the handle for `get` and for decisions).
    pub id: u64,
    /// The user's runtime estimate in seconds.
    pub estimate: f64,
    /// Requested processors (≥ 1).
    pub procs: u32,
}

impl QueueKey {
    fn of(q: &QueuedJob) -> Self {
        QueueKey {
            id: q.job.id,
            estimate: q.job.estimate,
            procs: q.job.procs,
        }
    }

    const TOMBSTONE: QueueKey = QueueKey {
        id: 0,
        estimate: 0.0,
        procs: 0,
    };
}

/// Map a (non-NaN) time to bits whose unsigned order matches `f64::total_cmp`,
/// so queue keys order exactly like the float sort the policies used to do.
fn order_bits(t: f64) -> u64 {
    let b = t.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Exact inverse of [`order_bits`].
fn unorder_bits(b: u64) -> f64 {
    if b >> 63 == 1 {
        f64::from_bits(b & !(1 << 63))
    } else {
        f64::from_bits(!b)
    }
}

fn key_of(q: &QueuedJob) -> (u64, u64) {
    (order_bits(q.queued_at), q.job.id)
}

/// One backlog-index entry: `(queued_at bits, id, estimate bits)`. Arrival
/// key first, so every bucket iterates in arrival order and bucket streams
/// merge lazily without a sort; the estimate rides along for budget tests.
type IndexEntry = (u64, u64, u64);

/// A [`BackfillScan`] heap entry: an [`IndexEntry`] plus the bucket's `procs`
/// and its stream slot, min-ordered by the arrival key.
type ScanEntry = std::cmp::Reverse<(u64, u64, u64, u32, usize)>;

fn index_entry(q: &QueuedJob) -> IndexEntry {
    (
        order_bits(q.queued_at),
        q.job.id,
        order_bits(q.job.estimate),
    )
}

/// Deterministic mixer for treap priorities (splitmix64 finalizer). Seeded
/// from the entry's own key, so the tree shape — while irrelevant to any
/// result — is reproducible run to run.
fn prio_of(arr: u64, id: u64) -> u64 {
    let mut z = arr ^ id.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Sentinel "no node" arena slot.
const NIL: u32 = u32::MAX;

/// One node of a bucket treap: keyed by the arrival pair `(arr, id)`, heap
/// ordered by `prio`, augmented with the minimum estimate bits of its subtree.
#[derive(Debug, Clone, Copy)]
struct TreapNode {
    arr: u64,
    id: u64,
    est: u64,
    /// min(est) over this node's whole subtree.
    min_est: u64,
    prio: u64,
    left: u32,
    right: u32,
}

/// Arena storage shared by all bucket treaps, with a free list so backlog
/// churn reuses slots instead of reallocating.
#[derive(Debug, Clone, Default)]
struct Arena {
    nodes: Vec<TreapNode>,
    free: Vec<u32>,
}

impl Arena {
    fn alloc(&mut self, (arr, id, est): IndexEntry) -> u32 {
        let node = TreapNode {
            arr,
            id,
            est,
            min_est: est,
            prio: prio_of(arr, id),
            left: NIL,
            right: NIL,
        };
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    fn key(&self, t: u32) -> (u64, u64) {
        let n = &self.nodes[t as usize];
        (n.arr, n.id)
    }

    /// Recompute a node's subtree minimum from its children.
    fn pull(&mut self, t: u32) {
        let (l, r) = {
            let n = &self.nodes[t as usize];
            (n.left, n.right)
        };
        let mut m = self.nodes[t as usize].est;
        if l != NIL {
            m = m.min(self.nodes[l as usize].min_est);
        }
        if r != NIL {
            m = m.min(self.nodes[r as usize].min_est);
        }
        self.nodes[t as usize].min_est = m;
    }

    /// Split into `(keys < key, keys >= key)`.
    fn split_lt(&mut self, t: u32, key: (u64, u64)) -> (u32, u32) {
        if t == NIL {
            return (NIL, NIL);
        }
        if self.key(t) < key {
            let (a, b) = self.split_lt(self.nodes[t as usize].right, key);
            self.nodes[t as usize].right = a;
            self.pull(t);
            (t, b)
        } else {
            let (a, b) = self.split_lt(self.nodes[t as usize].left, key);
            self.nodes[t as usize].left = b;
            self.pull(t);
            (a, t)
        }
    }

    /// Merge two treaps where every key of `a` precedes every key of `b`.
    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].prio >= self.nodes[b as usize].prio {
            let m = self.merge(self.nodes[a as usize].right, b);
            self.nodes[a as usize].right = m;
            self.pull(a);
            a
        } else {
            let m = self.merge(a, self.nodes[b as usize].left);
            self.nodes[b as usize].left = m;
            self.pull(b);
            b
        }
    }

    /// Insert an entry (keys are unique) and return the new root.
    fn insert(&mut self, root: u32, entry: IndexEntry) -> u32 {
        let n = self.alloc(entry);
        let key = (entry.0, entry.1);
        let (l, r) = self.split_lt(root, key);
        let lr = self.merge(l, n);
        self.merge(lr, r)
    }

    /// Remove the entry with the given arrival key and return the new root.
    fn remove(&mut self, root: u32, key: (u64, u64)) -> u32 {
        if root == NIL {
            return NIL;
        }
        if self.key(root) == key {
            let (l, r) = {
                let n = &self.nodes[root as usize];
                (n.left, n.right)
            };
            self.free.push(root);
            return self.merge(l, r);
        }
        if key < self.key(root) {
            let nl = self.remove(self.nodes[root as usize].left, key);
            self.nodes[root as usize].left = nl;
        } else {
            let nr = self.remove(self.nodes[root as usize].right, key);
            self.nodes[root as usize].right = nr;
        }
        self.pull(root);
        root
    }

    /// The first entry in arrival order with key strictly greater than
    /// `after` (if given) and estimate bits at most `bound`. The `min_est`
    /// augmentation prunes subtrees with nothing inside the budget, so the
    /// query is O(depth) — this is what lets a backfill replan step through
    /// only viable candidates no matter how deep the backlog is.
    fn first_fitting(&self, t: u32, after: Option<(u64, u64)>, bound: u64) -> Option<IndexEntry> {
        if t == NIL || self.nodes[t as usize].min_est > bound {
            return None;
        }
        let n = self.nodes[t as usize];
        if after.is_some_and(|a| (n.arr, n.id) <= a) {
            // This node and its whole left subtree are at or before `after`.
            return self.first_fitting(n.right, after, bound);
        }
        if let Some(hit) = self.first_fitting(n.left, after, bound) {
            return Some(hit);
        }
        if n.est <= bound {
            return Some((n.arr, n.id, n.est));
        }
        self.first_fitting(n.right, after, bound)
    }

    /// In-order traversal of the entries after `after` with estimate bits at
    /// most `bound`, appending to `out`.
    fn gather(&self, t: u32, after: Option<(u64, u64)>, bound: u64, out: &mut Vec<IndexEntry>) {
        if t == NIL || self.nodes[t as usize].min_est > bound {
            return;
        }
        let n = self.nodes[t as usize];
        if after.is_some_and(|a| (n.arr, n.id) <= a) {
            return self.gather(n.right, after, bound, out);
        }
        self.gather(n.left, after, bound, out);
        if n.est <= bound {
            out.push((n.arr, n.id, n.est));
        }
        self.gather(n.right, after, bound, out);
    }

    /// Number of nodes in the subtree (debug helper; O(n)).
    #[cfg(debug_assertions)]
    fn count(&self, t: u32) -> usize {
        if t == NIL {
            return 0;
        }
        let n = &self.nodes[t as usize];
        1 + self.count(n.left) + self.count(n.right)
    }

    /// Verify every node's `min_est` equals the true subtree minimum and the
    /// heap property holds (debug helper; O(n)).
    #[cfg(debug_assertions)]
    fn check_min_est(&self, t: u32) -> u64 {
        if t == NIL {
            return u64::MAX;
        }
        let n = &self.nodes[t as usize];
        for c in [n.left, n.right] {
            if c != NIL {
                debug_assert!(
                    self.nodes[c as usize].prio <= n.prio,
                    "treap heap property violated"
                );
            }
        }
        let want = n
            .est
            .min(self.check_min_est(n.left))
            .min(self.check_min_est(n.right));
        debug_assert_eq!(n.min_est, want, "min_est pull-up drifted");
        want
    }
}

/// Arrival-ordered candidate keys gathered from the backlog index by
/// [`JobQueue::candidates_fitting`] / [`JobQueue::candidates_fitting_either`].
///
/// The iterator owns its (already sorted) candidate set, so consumers may
/// mutate nothing and still re-test each key against whatever *dynamic* bounds
/// they maintain while starting jobs — the index guarantees only that no key
/// satisfying the bounds given at query time is missing. For the hot loops
/// that stop early, prefer the lazy [`JobQueue::backfill_scan`].
#[derive(Debug)]
pub struct Candidates {
    items: std::vec::IntoIter<QueueKey>,
}

impl Iterator for Candidates {
    type Item = QueueKey;

    fn next(&mut self) -> Option<QueueKey> {
        self.items.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.items.size_hint()
    }
}

impl ExactSizeIterator for Candidates {}

/// The lazy arrival-ordered backlog scan behind [`JobQueue::backfill_scan`].
///
/// A k-way merge with one cursor per `procs` bucket, where a cursor step is a
/// treap successor query under the bucket's *current* estimate bound: a
/// narrow bucket (`procs <= narrow`) steps through everything, a wide-only
/// bucket steps directly from one estimate-fitting entry to the next — the
/// estimate-unfitting entries in between are pruned by the `min_est`
/// augmentation and never touched. [`BackfillScan::shrink`] tightens the
/// bounds mid-scan: buckets that fall out of both bounds are dropped, and a
/// bucket that falls out of the narrow bound starts applying the estimate
/// budget from its very next refill. Together this keeps a saturated replan's
/// cost at O(buckets x log backlog) plus the candidates actually yielded,
/// independent of the backlog depth.
#[derive(Debug)]
pub struct BackfillScan<'a> {
    arena: &'a Arena,
    /// The treap root of each contributing bucket (the bucket's `procs`
    /// travels in the heap entries).
    streams: Vec<u32>,
    /// Min-heap over `(queued_at bits, id, estimate bits, procs, stream)`.
    heap: BinaryHeap<ScanEntry>,
    wide: u32,
    narrow: u32,
    /// `order_bits` of the estimate budget; `None` means unbounded.
    est_bound: Option<u64>,
}

impl BackfillScan<'_> {
    /// Tighten the capacity bounds. Bounds may only shrink (a wider bound is
    /// ignored): the scan never revisits entries, so widening cannot be
    /// honoured.
    pub fn shrink(&mut self, wide: u32, narrow: u32) {
        self.wide = self.wide.min(wide);
        self.narrow = self.narrow.min(narrow);
    }

    /// The estimate-bits bound a bucket of width `procs` is currently subject
    /// to: unbounded while inside the narrow bound, the budget outside it.
    fn bound_for(&self, procs: u32) -> u64 {
        if procs <= self.narrow {
            u64::MAX
        } else {
            self.est_bound.unwrap_or(u64::MAX)
        }
    }

    /// The next candidate under the current bounds, in arrival order.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<QueueKey> {
        while let Some(std::cmp::Reverse((arr, id, est, procs, si))) = self.heap.pop() {
            if procs > self.wide && procs > self.narrow {
                // The whole bucket is out of both bounds now; bounds only
                // shrink, so its remaining entries can never qualify.
                continue;
            }
            // Refill under the bucket's *current* estimate bound, so a bucket
            // that left the narrow bound steps straight to its next
            // estimate-fitting entry.
            let root = self.streams[si];
            if let Some((narr, nid, nest)) =
                self.arena
                    .first_fitting(root, Some((arr, id)), self.bound_for(procs))
            {
                self.heap
                    .push(std::cmp::Reverse((narr, nid, nest, procs, si)));
            }
            // The in-hand entry was queried under a (possibly) looser bound:
            // re-test it against the current one.
            if est > self.bound_for(procs) {
                continue;
            }
            let _ = arr;
            return Some(QueueKey {
                id,
                estimate: unorder_bits(est),
                procs,
            });
        }
        None
    }
}

/// The lazy arrival-ordered scan behind [`JobQueue::staircase_scan`]: jobs
/// fitting a *per-width* estimate staircase.
///
/// Where [`BackfillScan`] knows two capacity bounds (narrow = any estimate,
/// wide = one shared estimate budget), this scan carries one estimate bound
/// per width range — the "how long does width `p` stay continuously free"
/// staircase a reservation calendar computes after a completion. Each bucket
/// cursor steps under its own bound via the `min_est` treap augmentation, so
/// backlog entries wider or longer than their stair are never touched.
///
/// Unlike [`BackfillScan::shrink`], the staircase may move *either way*
/// mid-scan (a conservative-backfill start both consumes capacity at `now`
/// and releases the job's far reservation, so some stairs tighten while
/// others loosen). [`StaircaseScan::rebind`] therefore rebuilds every bucket
/// cursor from just after the last yielded candidate under the new bounds —
/// candidates before that position already had their (arrival-order) turn
/// under the bounds that were current then, and are never revisited.
#[derive(Debug)]
pub struct StaircaseScan<'a> {
    queue: &'a JobQueue,
    /// The treap root of each contributing bucket (the bucket's `procs`
    /// travels in the heap entries).
    streams: Vec<u32>,
    /// Min-heap over `(queued_at bits, id, estimate bits, procs, stream)`.
    heap: BinaryHeap<ScanEntry>,
    /// `(inclusive procs upper edge, estimate-bits bound)`, ascending by
    /// procs. A width above the last edge is out of the staircase entirely.
    stairs: Vec<(u32, u64)>,
    /// `(queued_at bits, id)` of the last yielded candidate; a rebind resumes
    /// strictly after it.
    last: Option<(u64, u64)>,
}

impl StaircaseScan<'_> {
    /// The estimate-bits bound width `procs` is currently subject to, or
    /// `None` when the width is above the staircase's top edge.
    fn bound_for(&self, procs: u32) -> Option<u64> {
        let i = self.stairs.partition_point(|&(edge, _)| edge < procs);
        self.stairs.get(i).map(|&(_, b)| b)
    }

    /// Replace the staircase and rebuild every bucket cursor from just after
    /// the last yielded candidate. Call this whenever the capacity profile
    /// behind the staircase changed (in either direction); the scan position
    /// is preserved, so each queued job still gets exactly one arrival-order
    /// turn.
    pub fn rebind(&mut self, stairs: &[(u32, f64)]) {
        self.stairs = convert_stairs(stairs);
        self.streams.clear();
        self.heap.clear();
        let top = self.stairs.last().map(|&(edge, _)| edge).unwrap_or(0);
        for (&procs, &root) in self.queue.by_procs.range(..=top) {
            let i = self.stairs.partition_point(|&(edge, _)| edge < procs);
            let bound = self.stairs[i].1;
            if let Some((arr, id, est)) = self.queue.arena.first_fitting(root, self.last, bound) {
                let si = self.streams.len();
                self.heap.push(std::cmp::Reverse((arr, id, est, procs, si)));
                self.streams.push(root);
            }
        }
    }

    /// The next candidate under the current staircase, in arrival order.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<QueueKey> {
        while let Some(std::cmp::Reverse((arr, id, est, procs, si))) = self.heap.pop() {
            // Between rebinds the staircase is constant, so in-hand entries
            // always satisfy their bucket's bound; the guards are belt and
            // braces against misuse.
            let Some(bound) = self.bound_for(procs) else {
                continue;
            };
            // Refill under the bucket's current bound: the treap steps
            // straight to the next estimate-fitting entry.
            let root = self.streams[si];
            if let Some((narr, nid, nest)) =
                self.queue.arena.first_fitting(root, Some((arr, id)), bound)
            {
                self.heap
                    .push(std::cmp::Reverse((narr, nid, nest, procs, si)));
            }
            if est > bound {
                continue;
            }
            self.last = Some((arr, id));
            return Some(QueueKey {
                id,
                estimate: unorder_bits(est),
                procs,
            });
        }
        None
    }
}

/// `(procs edge, estimate bound)` stairs to bit-order bounds; a non-finite
/// bound (the calendar's "free forever at this width") admits any estimate,
/// NaN included.
fn convert_stairs(stairs: &[(u32, f64)]) -> Vec<(u32, u64)> {
    stairs
        .iter()
        .map(|&(edge, est)| {
            let bound = if est.is_finite() {
                order_bits(est)
            } else {
                u64::MAX
            };
            (edge, bound)
        })
        .collect()
}

/// The wait queue, iterated in `(queued_at, job id)` order.
#[derive(Debug, Clone, Default)]
pub struct JobQueue {
    /// Live jobs in key order, with tombstones left by removals.
    slots: Vec<Option<QueuedJob>>,
    /// Compact scheduling keys, mirroring `slots` tombstone-for-tombstone
    /// (`procs == 0` marks a dead entry).
    keys: Vec<QueueKey>,
    /// Job id → slot position (stable until a compaction).
    index: HashMap<u64, usize>,
    /// The backlog index: per-`procs` bucket treaps (roots into `arena`),
    /// one entry per live job, keyed by arrival order and augmented with
    /// subtree minimum estimates (see the module docs for the invariants).
    /// Keyed by job values only, so slot compaction never has to touch it.
    by_procs: BTreeMap<u32, u32>,
    /// Node storage shared by all bucket treaps.
    arena: Arena,
    /// Total processors demanded by all live queued jobs — the O(1)
    /// aggregate behind load-adaptive cross-site dispatch.
    demanded: u64,
    /// Live-job count per requested width (`procs → count`), maintained
    /// alongside the bucket treaps; iterating it is O(distinct widths).
    widths: BTreeMap<u32, u32>,
    /// First slot that may be live (everything before it is dead).
    head: usize,
    /// Largest key ever appended; new keys above it may use the O(1) tail path.
    max_key: Option<(u64, u64)>,
}

impl JobQueue {
    /// An empty queue.
    pub fn new() -> Self {
        JobQueue::default()
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The queued jobs in `(queued_at, job id)` order — arrival order, with
    /// requeued (preempted / outage-killed) jobs back at their original
    /// position. Head-of-queue policies can stop iterating early.
    pub fn iter(&self) -> impl Iterator<Item = &QueuedJob> {
        self.slots[self.head..].iter().filter_map(Option::as_ref)
    }

    /// The queued jobs' compact [`QueueKey`]s, in the same `(queued_at, id)`
    /// order as [`Self::iter`]. This is the fast path for policies that scan
    /// deep queues: ~3× less memory traffic than iterating full jobs.
    pub fn iter_keys(&self) -> impl Iterator<Item = &QueueKey> {
        self.keys[self.head..].iter().filter(|k| k.procs != 0)
    }

    /// Look up a queued job by id, O(1).
    pub fn get(&self, id: u64) -> Option<&QueuedJob> {
        self.index.get(&id).and_then(|&i| self.slots[i].as_ref())
    }

    /// Total processors demanded by all queued jobs, O(1). Maintained
    /// incrementally at the push/remove mutation points, this is the backlog
    /// "pressure" aggregate that load-adaptive metaschedulers route by
    /// without scanning the queue.
    pub fn demanded_procs(&self) -> u64 {
        self.demanded
    }

    /// The live width histogram — `(procs, live job count)` in ascending
    /// width order, O(distinct widths) to iterate. One entry per non-empty
    /// backlog-index bucket.
    pub fn width_histogram(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.widths.iter().map(|(&p, &c)| (p, c))
    }

    /// The queued jobs that *can possibly fit* a capacity/estimate budget:
    /// every key with `procs <= max_procs` whose estimate is at most
    /// `max_estimate` (by total order; pass `f64::INFINITY` for "any
    /// estimate"), in the same `(queued_at, id)` arrival order as
    /// [`Self::iter`].
    ///
    /// Consulting the backlog index costs O(buckets ≤ `max_procs`) to gather
    /// plus O(c log c) to restore arrival order over the `c` candidates —
    /// independent of the backlog depth, which is what keeps backfilling
    /// replans sub-linear under saturation.
    pub fn candidates_fitting(&self, max_procs: u32, max_estimate: f64) -> Candidates {
        self.gather_candidates(max_procs, max_estimate, 0, None)
    }

    /// The union of two candidate budgets, in arrival order: keys with
    /// `procs <= narrow_procs` (any estimate) together with keys with
    /// `procs <= wide_procs` and estimate at most `wide_max_estimate`. Keys at
    /// or before the exclusive `(queued_at, id)` position `after` are skipped
    /// — the "rest of the queue behind the blocked head" shape of an EASY
    /// replan, where short jobs may use all free processors but long ones only
    /// the `narrow` share left over at the head's reservation.
    pub fn candidates_fitting_either(
        &self,
        wide_procs: u32,
        wide_max_estimate: f64,
        narrow_procs: u32,
        after: Option<(f64, u64)>,
    ) -> Candidates {
        self.gather_candidates(wide_procs, wide_max_estimate, narrow_procs, after)
    }

    fn gather_candidates(
        &self,
        wide_procs: u32,
        wide_max_estimate: f64,
        narrow_procs: u32,
        after: Option<(f64, u64)>,
    ) -> Candidates {
        let after_key = after.map(|(t, id)| (order_bits(t), id));
        // `total_cmp(est, bound) <= 0` as a bit comparison; a +inf (or NaN)
        // bound means "everything", including NaN estimates that sort above
        // +inf in total order.
        let est_bound = wide_max_estimate
            .is_finite()
            .then(|| order_bits(wide_max_estimate));
        let mut items: Vec<(u64, u64, QueueKey)> = Vec::new();
        let mut entries = Vec::new();
        for (&procs, &root) in self.by_procs.range(..=wide_procs.max(narrow_procs)) {
            // A narrow bucket (or any bucket under an unbounded estimate)
            // contributes whole; a wide-only bucket contributes only its
            // estimate-budget members.
            let bound = match est_bound {
                Some(b) if procs > narrow_procs => b,
                _ => u64::MAX,
            };
            entries.clear();
            self.arena.gather(root, after_key, bound, &mut entries);
            for &(arr, id, est) in &entries {
                let key = QueueKey {
                    id,
                    estimate: unorder_bits(est),
                    procs,
                };
                items.push((arr, id, key));
            }
        }
        items.sort_unstable_by_key(|&(arr, id, _)| (arr, id));
        let keys: Vec<QueueKey> = items.into_iter().map(|(_, _, k)| k).collect();
        Candidates {
            items: keys.into_iter(),
        }
    }

    /// A **lazy** arrival-ordered merge over the backlog index's bucket
    /// streams, for the backfilling hot loop: candidates with
    /// `procs <= narrow` (any estimate) or `procs <= wide` and estimate at
    /// most `wide_max_estimate` (by total order), after the exclusive
    /// `(queued_at, id)` position `after`.
    ///
    /// Unlike [`Self::candidates_fitting_either`], nothing is collected up
    /// front: the consumer pulls candidates one at a time and may tighten the
    /// capacity bounds with [`BackfillScan::shrink`] as it commits
    /// processors, which drops the bucket streams that can no longer produce
    /// a viable job. A saturated replan that starts only a few jobs therefore
    /// touches only a few index entries per width, not the whole backlog.
    pub fn backfill_scan(
        &self,
        wide_procs: u32,
        wide_max_estimate: f64,
        narrow_procs: u32,
        after: Option<(f64, u64)>,
    ) -> BackfillScan<'_> {
        let after_key = after.map(|(t, id)| (order_bits(t), id));
        let est_bound = wide_max_estimate
            .is_finite()
            .then(|| order_bits(wide_max_estimate));
        let mut streams = Vec::new();
        let mut heap = BinaryHeap::new();
        for (&procs, &root) in self.by_procs.range(..=wide_procs.max(narrow_procs)) {
            // A bucket inside the narrow bound streams whole; a wide-only
            // bucket streams only its estimate-budget subset — in both cases
            // one treap query per step, never a materialized list.
            let bound = match est_bound {
                Some(b) if procs > narrow_procs => b,
                _ => u64::MAX,
            };
            if let Some((arr, id, est)) = self.arena.first_fitting(root, after_key, bound) {
                let si = streams.len();
                heap.push(std::cmp::Reverse((arr, id, est, procs, si)));
                streams.push(root);
            }
        }
        BackfillScan {
            arena: &self.arena,
            streams,
            heap,
            wide: wide_procs,
            narrow: narrow_procs,
            est_bound,
        }
    }

    /// A lazy arrival-ordered merge over the backlog index's bucket streams
    /// under a **per-width estimate staircase**: `stairs` is a list of
    /// `(inclusive procs upper edge, max estimate)` pairs, ascending by
    /// procs, and a job with width `p` qualifies when its estimate is at most
    /// (by total order) the bound of the first stair whose edge is `>= p`.
    /// Pass a non-finite bound for "any estimate at this width". Widths above
    /// the last edge never qualify.
    ///
    /// This is the candidate query for a conservative-backfill compression
    /// pass: the staircase is the calendar's run-length profile ("width `p`
    /// stays free for `L(p)` seconds from now"), and a queued job can start
    /// immediately iff it fits its stair. Consumers re-test each candidate
    /// against the *fresh* profile as starts commit and release capacity,
    /// rebuilding the cursors via [`StaircaseScan::rebind`]; the index only
    /// guarantees that no job satisfying the current staircase and sitting
    /// after the scan position is missing. Cost is one O(log backlog) treap
    /// step per candidate yielded plus one per contributing bucket per
    /// (re)bind — entries outside their stair are pruned by the `min_est`
    /// augmentation and never touched.
    pub fn staircase_scan(&self, stairs: &[(u32, f64)]) -> StaircaseScan<'_> {
        let mut scan = StaircaseScan {
            queue: self,
            streams: Vec::new(),
            heap: BinaryHeap::new(),
            stairs: Vec::new(),
            last: None,
        };
        scan.rebind(stairs);
        scan
    }

    /// Insert a job (ids must be unique within the queue). O(log n): amortized
    /// O(1) slot append for keys in arrival order (the overwhelmingly common
    /// case) plus the backlog-index insert; a requeue below the high-water key
    /// pays a compacting sorted insert.
    pub(crate) fn push(&mut self, q: QueuedJob) {
        let procs = q.job.procs;
        self.demanded += procs as u64;
        *self.widths.entry(procs).or_insert(0) += 1;
        let root = self.by_procs.get(&procs).copied().unwrap_or(NIL);
        let root = self.arena.insert(root, index_entry(&q));
        self.by_procs.insert(procs, root);
        let key = key_of(&q);
        if self.max_key.is_none_or(|m| key > m) {
            self.max_key = Some(key);
            self.index.insert(q.job.id, self.slots.len());
            self.keys.push(QueueKey::of(&q));
            self.slots.push(Some(q));
        } else {
            self.insert_sorted(q, key);
        }
    }

    /// Remove a job by id. O(log n) amortized (tombstone plus backlog-index
    /// removal plus occasional compaction).
    pub(crate) fn remove(&mut self, id: u64) -> Option<QueuedJob> {
        let i = self.index.remove(&id)?;
        let q = self.slots[i].take();
        if let Some(job) = &q {
            let procs = job.job.procs;
            self.demanded -= procs as u64;
            if let Some(count) = self.widths.get_mut(&procs) {
                *count -= 1;
                if *count == 0 {
                    self.widths.remove(&procs);
                }
            }
            if let Some(&root) = self.by_procs.get(&procs) {
                let (arr, jid, _) = index_entry(job);
                let root = self.arena.remove(root, (arr, jid));
                if root == NIL {
                    self.by_procs.remove(&procs);
                } else {
                    self.by_procs.insert(procs, root);
                }
            }
        }
        self.keys[i] = QueueKey::TOMBSTONE;
        while self.head < self.slots.len() && self.slots[self.head].is_none() {
            self.head += 1;
        }
        // Keep scans tight: iteration cost is proportional to live + dead, so
        // compact once tombstones reach a quarter of the live population.
        if self.slots.len() - self.head > self.index.len() + self.index.len() / 4 + 32 {
            self.compact();
        }
        q
    }

    /// Drop tombstones and rebuild the id→slot map.
    fn compact(&mut self) {
        self.slots.retain(Option::is_some);
        self.keys.retain(|k| k.procs != 0);
        self.head = 0;
        self.index.clear();
        for (i, s) in self.slots.iter().enumerate() {
            self.index
                .insert(s.as_ref().expect("retained Some").job.id, i);
        }
    }

    /// The out-of-order path: place a job below the high-water key at its
    /// sorted position. Walks back from the tail, so the cost is the distance
    /// to the insertion point — O(cluster) for the common case (same-instant
    /// closed-loop releases whose ids arrive out of order land within a few
    /// slots of the end), O(n) only for a genuine deep requeue (outage kill /
    /// preemption putting a job back near its original position). Only the
    /// shifted suffix has its id→slot entries fixed up; the seed
    /// implementation densified the whole vector and rebuilt the entire map
    /// per insert, which turned saturated closed-loop runs quadratic.
    fn insert_sorted(&mut self, q: QueuedJob, key: (u64, u64)) {
        let mut pos = self.slots.len();
        while pos > self.head {
            match &self.slots[pos - 1] {
                Some(j) if key_of(j) > key => pos -= 1,
                Some(_) => break,
                // Dead slots carry no order; passing them only means they end
                // up after the new entry, which cannot disturb the live order.
                None => pos -= 1,
            }
        }
        self.keys.insert(pos, QueueKey::of(&q));
        let id = q.job.id;
        self.slots.insert(pos, Some(q));
        for i in pos + 1..self.slots.len() {
            if let Some(j) = &self.slots[i] {
                self.index.insert(j.job.id, i);
            }
        }
        self.index.insert(id, pos);
    }

    #[cfg(debug_assertions)]
    pub(crate) fn check_invariants(&self) {
        debug_assert!(self.slots[..self.head].iter().all(Option::is_none));
        debug_assert_eq!(self.slots.len(), self.keys.len());
        let live: Vec<&QueuedJob> = self.iter().collect();
        debug_assert_eq!(live.len(), self.index.len());
        for w in live.windows(2) {
            debug_assert!(key_of(w[0]) < key_of(w[1]), "queue out of order");
        }
        for (id, &i) in &self.index {
            debug_assert_eq!(self.slots[i].as_ref().map(|q| q.job.id), Some(*id));
        }
        for (s, k) in self.slots.iter().zip(self.keys.iter()) {
            debug_assert_eq!(
                s.as_ref().map(QueueKey::of).unwrap_or(QueueKey::TOMBSTONE),
                *k,
                "keys out of sync with slots"
            );
        }
        // Backlog-index invariants: one treap entry per live job in its
        // procs bucket, no stale entries, no empty buckets, exact min_est
        // pull-ups, arrival-sorted in-order traversal.
        let indexed: usize = self
            .by_procs
            .values()
            .map(|&root| self.arena.count(root))
            .sum();
        debug_assert_eq!(indexed, self.index.len(), "backlog index size drifted");
        let live_demand: u64 = live.iter().map(|q| q.job.procs as u64).sum();
        debug_assert_eq!(
            self.demanded, live_demand,
            "demanded-procs aggregate drifted"
        );
        let mut live_widths: BTreeMap<u32, u32> = BTreeMap::new();
        for q in &live {
            *live_widths.entry(q.job.procs).or_insert(0) += 1;
        }
        debug_assert_eq!(self.widths, live_widths, "width histogram drifted");
        debug_assert!(
            self.by_procs.values().all(|&root| root != NIL),
            "empty backlog-index bucket retained"
        );
        for (&procs, &root) in &self.by_procs {
            let mut entries = Vec::new();
            self.arena.gather(root, None, u64::MAX, &mut entries);
            debug_assert!(
                entries
                    .windows(2)
                    .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)),
                "bucket {procs} treap out of arrival order"
            );
            let min = entries.iter().map(|e| e.2).min().unwrap_or(u64::MAX);
            debug_assert_eq!(
                self.arena.nodes[root as usize].min_est, min,
                "bucket {procs} min_est drifted"
            );
            self.arena.check_min_est(root);
        }
        for q in self.iter() {
            let (arr, jid, est) = index_entry(q);
            debug_assert!(
                self.by_procs.get(&q.job.procs).is_some_and(|&root| {
                    let mut hits = Vec::new();
                    self.arena.gather(root, None, u64::MAX, &mut hits);
                    hits.contains(&(arr, jid, est))
                }),
                "job {} missing from the backlog index",
                q.job.id
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::SimJob;

    fn queued(id: u64, queued_at: f64) -> QueuedJob {
        QueuedJob {
            job: SimJob::rigid(id, queued_at, 100.0, 4),
            queued_at,
            restarts: 0,
            first_started_at: None,
        }
    }

    fn ids(q: &JobQueue) -> Vec<u64> {
        q.iter().map(|j| j.job.id).collect()
    }

    #[test]
    fn demand_aggregates_track_push_and_remove() {
        let mut q = JobQueue::new();
        assert_eq!(q.demanded_procs(), 0);
        assert_eq!(q.width_histogram().count(), 0);
        let widths = [4u32, 16, 4, 1, 16, 16, 64];
        for (i, &w) in widths.iter().enumerate() {
            let t = i as f64;
            q.push(QueuedJob {
                job: SimJob::rigid(i as u64 + 1, t, 100.0, w),
                queued_at: t,
                restarts: 0,
                first_started_at: None,
            });
        }
        assert_eq!(q.demanded_procs(), 4 + 16 + 4 + 1 + 16 + 16 + 64);
        let hist: Vec<(u32, u32)> = q.width_histogram().collect();
        assert_eq!(hist, vec![(1, 1), (4, 2), (16, 3), (64, 1)]);
        q.check_invariants();
        // Removals (including a double-remove no-op) keep the aggregates exact
        // and drop emptied histogram entries.
        assert!(q.remove(7).is_some()); // the 64-wide job
        assert!(q.remove(7).is_none());
        assert!(q.remove(4).is_some()); // the 1-wide job
        assert_eq!(q.demanded_procs(), 4 + 16 + 4 + 16 + 16);
        let hist: Vec<(u32, u32)> = q.width_histogram().collect();
        assert_eq!(hist, vec![(4, 2), (16, 3)]);
        q.check_invariants();
        // Drain completely: back to zero.
        for id in [1u64, 2, 3, 5, 6] {
            assert!(q.remove(id).is_some());
        }
        assert_eq!(q.demanded_procs(), 0);
        assert_eq!(q.width_histogram().count(), 0);
        q.check_invariants();
    }

    #[test]
    fn iterates_in_queued_at_then_id_order() {
        let mut q = JobQueue::new();
        q.push(queued(5, 10.0));
        q.push(queued(2, 10.0)); // same time, lower id: takes the slow path
        q.push(queued(9, 0.5)); // earlier time: slow path
        q.push(queued(1, 20.0));
        assert_eq!(ids(&q), vec![9, 2, 5, 1]);
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn requeued_job_returns_to_original_position() {
        let mut q = JobQueue::new();
        q.push(queued(1, 0.0));
        q.push(queued(2, 5.0));
        q.push(queued(3, 10.0));
        // Job 1 starts, runs, and is preempted: it re-enters with its original
        // queued_at and must come back to the head.
        let j1 = q.remove(1).unwrap();
        assert_eq!(q.iter().next().unwrap().job.id, 2);
        q.push(j1);
        assert_eq!(ids(&q), vec![1, 2, 3]);
    }

    #[test]
    fn get_and_remove_by_id() {
        let mut q = JobQueue::new();
        q.push(queued(7, 3.0));
        assert_eq!(q.get(7).unwrap().queued_at, 3.0);
        assert!(q.get(8).is_none());
        assert!(q.remove(8).is_none());
        let j = q.remove(7).unwrap();
        assert_eq!(j.job.id, 7);
        assert!(q.is_empty());
    }

    #[test]
    fn tombstones_compact_and_order_survives() {
        let mut q = JobQueue::new();
        for i in 0..200u64 {
            q.push(queued(i + 1, i as f64));
        }
        // Remove most of the middle, triggering compactions along the way.
        for i in (10..190u64).rev() {
            assert!(q.remove(i + 1).is_some());
        }
        q.check_invariants();
        let got = ids(&q);
        let want: Vec<u64> = (1..=10).chain(191..=200).collect();
        assert_eq!(got, want);
        // A requeue lands back in the middle of the survivors.
        q.push(queued(100, 99.0));
        assert_eq!(q.iter().nth(10).unwrap().job.id, 100);
        q.check_invariants();
    }

    #[test]
    fn order_bits_matches_total_cmp() {
        let vals = [0.0, -0.0, 0.5, 1.0, -1.0, 1e9, f64::INFINITY, -3.25];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    order_bits(a).cmp(&order_bits(b)),
                    a.total_cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn order_bits_round_trips() {
        for v in [0.0, -0.0, 1.5, -2.25, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(unorder_bits(order_bits(v)).to_bits(), v.to_bits());
        }
        let nan_bits = unorder_bits(order_bits(f64::NAN));
        assert!(nan_bits.is_nan());
    }

    fn queued_with(id: u64, queued_at: f64, procs: u32, estimate: f64) -> QueuedJob {
        QueuedJob {
            job: SimJob::rigid(id, queued_at, 100.0, procs).with_estimate(estimate),
            queued_at,
            restarts: 0,
            first_started_at: None,
        }
    }

    #[test]
    fn candidates_fitting_prunes_by_procs_and_estimate() {
        let mut q = JobQueue::new();
        q.push(queued_with(1, 0.0, 4, 50.0));
        q.push(queued_with(2, 1.0, 16, 10.0));
        q.push(queued_with(3, 2.0, 4, 500.0));
        q.push(queued_with(4, 3.0, 32, 10.0));
        q.push(queued_with(5, 4.0, 1, 1000.0));
        // Capacity only: everything at or under 16 procs, arrival order.
        let got: Vec<u64> = q
            .candidates_fitting(16, f64::INFINITY)
            .map(|k| k.id)
            .collect();
        assert_eq!(got, vec![1, 2, 3, 5]);
        // Capacity + estimate budget.
        let got: Vec<u64> = q.candidates_fitting(16, 50.0).map(|k| k.id).collect();
        assert_eq!(got, vec![1, 2]);
        // Keys carry the exact estimate and procs back out of the index.
        let keys: Vec<QueueKey> = q.candidates_fitting(4, f64::INFINITY).collect();
        assert_eq!(keys[0].estimate, 50.0);
        assert_eq!(keys[2].procs, 1);
    }

    #[test]
    fn candidates_fitting_either_unions_and_skips_prefix() {
        let mut q = JobQueue::new();
        q.push(queued_with(1, 0.0, 2, 999.0)); // narrow, long
        q.push(queued_with(2, 1.0, 8, 20.0)); // wide, short
        q.push(queued_with(3, 2.0, 8, 999.0)); // wide, long: excluded
        q.push(queued_with(4, 3.0, 2, 5.0)); // narrow and short
        let got: Vec<u64> = q
            .candidates_fitting_either(8, 50.0, 2, None)
            .map(|k| k.id)
            .collect();
        assert_eq!(got, vec![1, 2, 4]);
        // Skip everything at or before job 2's arrival position.
        let got: Vec<u64> = q
            .candidates_fitting_either(8, 50.0, 2, Some((1.0, 2)))
            .map(|k| k.id)
            .collect();
        assert_eq!(got, vec![4]);
    }

    /// The model the index must agree with: a plain filtered scan of the
    /// arrival-ordered queue, with estimate bounds compared by total order.
    fn filtered_scan(
        q: &JobQueue,
        wide: u32,
        wide_est: f64,
        narrow: u32,
        after: Option<(f64, u64)>,
    ) -> Vec<u64> {
        q.iter()
            .filter(|j| {
                after
                    .is_none_or(|(t, id)| (order_bits(j.queued_at), j.job.id) > (order_bits(t), id))
            })
            .filter(|j| {
                let est_ok = !wide_est.is_finite()
                    || j.job.estimate.total_cmp(&wide_est) != std::cmp::Ordering::Greater;
                j.job.procs <= narrow || (j.job.procs <= wide && est_ok)
            })
            .map(|j| j.job.id)
            .collect()
    }

    proptest::proptest! {
        /// Index integrity under churn: after any sequence of pushes,
        /// tombstoning removals, requeues (re-push at an old queued_at) and
        /// the compactions they trigger, every candidates query equals the
        /// filtered arrival-order scan.
        #[test]
        fn candidates_match_filtered_scan_under_churn(
            ops in proptest::collection::vec(
                (0u8..3, 0u32..40, 1u32..24, 0u32..600, 0u32..50),
                1..120,
            ),
            queries in proptest::collection::vec(
                (0u32..26, 0u32..700, 0u32..26, 0u8..2),
                1..6,
            ),
        ) {
            let mut q = JobQueue::new();
            let mut clock = 0.0f64;
            let mut next_id = 1u64;
            let mut removed: Vec<QueuedJob> = Vec::new();
            for (op, dt, procs, est, pick) in ops {
                match op {
                    // Arrival: monotone queued_at, fresh id.
                    0 => {
                        clock += dt as f64 / 8.0;
                        q.push(queued_with(next_id, clock, procs, est as f64 / 4.0));
                        next_id += 1;
                    }
                    // Tombstoning removal of some live job.
                    1 => {
                        let live: Vec<u64> = q.iter().map(|j| j.job.id).collect();
                        if !live.is_empty() {
                            let id = live[pick as usize % live.len()];
                            removed.push(q.remove(id).unwrap());
                        }
                    }
                    // Requeue: a previously removed job returns at its
                    // original (old) queued_at — the sorted re-insert path.
                    _ => {
                        if !removed.is_empty() {
                            let j = removed.swap_remove(pick as usize % removed.len());
                            q.push(j);
                        }
                    }
                }
                q.check_invariants();
            }
            for (wide, est_num, narrow, bounded) in queries {
                let wide_est = if bounded == 1 {
                    est_num as f64 / 4.0
                } else {
                    f64::INFINITY
                };
                let after = q.iter().next().map(|j| (j.queued_at, j.job.id));
                for after in [None, after] {
                    let got: Vec<u64> = q
                        .candidates_fitting_either(wide, wide_est, narrow, after)
                        .map(|k| k.id)
                        .collect();
                    let want = filtered_scan(&q, wide, wide_est, narrow, after);
                    proptest::prop_assert_eq!(&got, &want);
                    // The lazy scan (without tightening) yields the same
                    // sequence as the eager gather.
                    let mut scan = q.backfill_scan(wide, wide_est, narrow, after);
                    let mut lazy = Vec::new();
                    while let Some(k) = scan.next() {
                        lazy.push(k.id);
                    }
                    proptest::prop_assert_eq!(&lazy, &want);
                }
                // The single-budget query is the narrow = 0 special case.
                let got: Vec<u64> = q.candidates_fitting(wide, wide_est).map(|k| k.id).collect();
                let want = filtered_scan(&q, wide, wide_est, 0, None);
                proptest::prop_assert_eq!(got, want);
            }
        }
    }
}
