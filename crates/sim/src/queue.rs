//! The engine's wait queue: arrival-ordered, with cheap mutation and
//! contiguous, already-sorted iteration.
//!
//! Scheduling policies overwhelmingly consume the queue in arrival order
//! (`(queued_at, job id)` — requeued jobs keep their original `queued_at`, so a
//! preempted job returns to its original position). The seed engine stored a
//! plain `Vec` and every policy re-sorted it on every react, which turns
//! quadratic on archive-scale traces with deep queues. [`JobQueue`] maintains
//! the order structurally instead, exploiting the engine's access pattern:
//!
//! * **arrivals append**: `queued_at` is the simulation clock, which never goes
//!   backwards, so a new arrival's key is almost always the largest yet and the
//!   job is pushed at the tail in O(1);
//! * **removals tombstone**: starting a job marks its slot dead in O(1) via an
//!   id→slot map (slots never shift), with the dead prefix skipped eagerly and
//!   the whole vector compacted amortized-O(1) once tombstones outnumber live
//!   jobs;
//! * **requeues re-insert**: an outage kill or preemption puts a job back at
//!   its original `(queued_at, id)` position — the rare O(n) path;
//! * **iteration is a contiguous scan** over the slot vector, skipping
//!   tombstones: policies consume the queue in sorted order at slice speed, no
//!   sort, no per-react allocation, and head-of-queue policies can stop early.

use crate::job::QueuedJob;
use std::collections::HashMap;

/// The compact per-job scheduling key carried alongside each queue slot: the
/// fields every queue-scanning policy (FCFS, backfilling, gang admission)
/// tests before deciding anything. Scanning these 24-byte entries instead of
/// full [`QueuedJob`]s keeps deep-queue reacts cache-resident; fetch the full
/// job via [`JobQueue::get`] once a key passes the cheap tests.
///
/// `procs == 0` never occurs for a live entry (`SimJob` clamps requests to
/// ≥ 1), so the key array uses it as its tombstone marker internally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueKey {
    /// Job id (the handle for `get` and for decisions).
    pub id: u64,
    /// The user's runtime estimate in seconds.
    pub estimate: f64,
    /// Requested processors (≥ 1).
    pub procs: u32,
}

impl QueueKey {
    fn of(q: &QueuedJob) -> Self {
        QueueKey {
            id: q.job.id,
            estimate: q.job.estimate,
            procs: q.job.procs,
        }
    }

    const TOMBSTONE: QueueKey = QueueKey {
        id: 0,
        estimate: 0.0,
        procs: 0,
    };
}

/// Map a (non-NaN) time to bits whose unsigned order matches `f64::total_cmp`,
/// so queue keys order exactly like the float sort the policies used to do.
fn order_bits(t: f64) -> u64 {
    let b = t.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

fn key_of(q: &QueuedJob) -> (u64, u64) {
    (order_bits(q.queued_at), q.job.id)
}

/// The wait queue, iterated in `(queued_at, job id)` order.
#[derive(Debug, Clone, Default)]
pub struct JobQueue {
    /// Live jobs in key order, with tombstones left by removals.
    slots: Vec<Option<QueuedJob>>,
    /// Compact scheduling keys, mirroring `slots` tombstone-for-tombstone
    /// (`procs == 0` marks a dead entry).
    keys: Vec<QueueKey>,
    /// Job id → slot position (stable until a compaction).
    index: HashMap<u64, usize>,
    /// First slot that may be live (everything before it is dead).
    head: usize,
    /// Largest key ever appended; new keys above it may use the O(1) tail path.
    max_key: Option<(u64, u64)>,
}

impl JobQueue {
    /// An empty queue.
    pub fn new() -> Self {
        JobQueue::default()
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The queued jobs in `(queued_at, job id)` order — arrival order, with
    /// requeued (preempted / outage-killed) jobs back at their original
    /// position. Head-of-queue policies can stop iterating early.
    pub fn iter(&self) -> impl Iterator<Item = &QueuedJob> {
        self.slots[self.head..].iter().filter_map(Option::as_ref)
    }

    /// The queued jobs' compact [`QueueKey`]s, in the same `(queued_at, id)`
    /// order as [`Self::iter`]. This is the fast path for policies that scan
    /// deep queues: ~3× less memory traffic than iterating full jobs.
    pub fn iter_keys(&self) -> impl Iterator<Item = &QueueKey> {
        self.keys[self.head..].iter().filter(|k| k.procs != 0)
    }

    /// Look up a queued job by id, O(1).
    pub fn get(&self, id: u64) -> Option<&QueuedJob> {
        self.index.get(&id).and_then(|&i| self.slots[i].as_ref())
    }

    /// Insert a job (ids must be unique within the queue). O(1) for keys in
    /// arrival order (the overwhelmingly common case); a requeue below the
    /// high-water key pays a compacting sorted insert.
    pub(crate) fn push(&mut self, q: QueuedJob) {
        let key = key_of(&q);
        if self.max_key.is_none_or(|m| key > m) {
            self.max_key = Some(key);
            self.index.insert(q.job.id, self.slots.len());
            self.keys.push(QueueKey::of(&q));
            self.slots.push(Some(q));
        } else {
            self.insert_sorted(q, key);
        }
    }

    /// Remove a job by id. O(1) amortized (tombstone plus occasional compaction).
    pub(crate) fn remove(&mut self, id: u64) -> Option<QueuedJob> {
        let i = self.index.remove(&id)?;
        let q = self.slots[i].take();
        self.keys[i] = QueueKey::TOMBSTONE;
        while self.head < self.slots.len() && self.slots[self.head].is_none() {
            self.head += 1;
        }
        // Keep scans tight: iteration cost is proportional to live + dead, so
        // compact once tombstones reach a quarter of the live population.
        if self.slots.len() - self.head > self.index.len() + self.index.len() / 4 + 32 {
            self.compact();
        }
        q
    }

    /// Drop tombstones and rebuild the id→slot map.
    fn compact(&mut self) {
        self.slots.retain(Option::is_some);
        self.keys.retain(|k| k.procs != 0);
        self.head = 0;
        self.index.clear();
        for (i, s) in self.slots.iter().enumerate() {
            self.index
                .insert(s.as_ref().expect("retained Some").job.id, i);
        }
    }

    /// The rare path: place a requeued job back at its sorted position.
    fn insert_sorted(&mut self, q: QueuedJob, key: (u64, u64)) {
        // Densify first (binary search needs hole-free slots), but skip
        // compact(): its index rebuild would be thrown away below anyway.
        self.slots.retain(Option::is_some);
        self.keys.retain(|k| k.procs != 0);
        self.head = 0;
        let pos = self
            .slots
            .partition_point(|s| key_of(s.as_ref().expect("densified")) < key);
        self.keys.insert(pos, QueueKey::of(&q));
        self.slots.insert(pos, Some(q));
        self.index.clear();
        for (i, s) in self.slots.iter().enumerate() {
            self.index
                .insert(s.as_ref().expect("just inserted").job.id, i);
        }
    }

    #[cfg(debug_assertions)]
    pub(crate) fn check_invariants(&self) {
        debug_assert!(self.slots[..self.head].iter().all(Option::is_none));
        debug_assert_eq!(self.slots.len(), self.keys.len());
        let live: Vec<&QueuedJob> = self.iter().collect();
        debug_assert_eq!(live.len(), self.index.len());
        for w in live.windows(2) {
            debug_assert!(key_of(w[0]) < key_of(w[1]), "queue out of order");
        }
        for (id, &i) in &self.index {
            debug_assert_eq!(self.slots[i].as_ref().map(|q| q.job.id), Some(*id));
        }
        for (s, k) in self.slots.iter().zip(self.keys.iter()) {
            debug_assert_eq!(
                s.as_ref().map(QueueKey::of).unwrap_or(QueueKey::TOMBSTONE),
                *k,
                "keys out of sync with slots"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::SimJob;

    fn queued(id: u64, queued_at: f64) -> QueuedJob {
        QueuedJob {
            job: SimJob::rigid(id, queued_at, 100.0, 4),
            queued_at,
            restarts: 0,
            first_started_at: None,
        }
    }

    fn ids(q: &JobQueue) -> Vec<u64> {
        q.iter().map(|j| j.job.id).collect()
    }

    #[test]
    fn iterates_in_queued_at_then_id_order() {
        let mut q = JobQueue::new();
        q.push(queued(5, 10.0));
        q.push(queued(2, 10.0)); // same time, lower id: takes the slow path
        q.push(queued(9, 0.5)); // earlier time: slow path
        q.push(queued(1, 20.0));
        assert_eq!(ids(&q), vec![9, 2, 5, 1]);
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn requeued_job_returns_to_original_position() {
        let mut q = JobQueue::new();
        q.push(queued(1, 0.0));
        q.push(queued(2, 5.0));
        q.push(queued(3, 10.0));
        // Job 1 starts, runs, and is preempted: it re-enters with its original
        // queued_at and must come back to the head.
        let j1 = q.remove(1).unwrap();
        assert_eq!(q.iter().next().unwrap().job.id, 2);
        q.push(j1);
        assert_eq!(ids(&q), vec![1, 2, 3]);
    }

    #[test]
    fn get_and_remove_by_id() {
        let mut q = JobQueue::new();
        q.push(queued(7, 3.0));
        assert_eq!(q.get(7).unwrap().queued_at, 3.0);
        assert!(q.get(8).is_none());
        assert!(q.remove(8).is_none());
        let j = q.remove(7).unwrap();
        assert_eq!(j.job.id, 7);
        assert!(q.is_empty());
    }

    #[test]
    fn tombstones_compact_and_order_survives() {
        let mut q = JobQueue::new();
        for i in 0..200u64 {
            q.push(queued(i + 1, i as f64));
        }
        // Remove most of the middle, triggering compactions along the way.
        for i in (10..190u64).rev() {
            assert!(q.remove(i + 1).is_some());
        }
        q.check_invariants();
        let got = ids(&q);
        let want: Vec<u64> = (1..=10).chain(191..=200).collect();
        assert_eq!(got, want);
        // A requeue lands back in the middle of the survivors.
        q.push(queued(100, 99.0));
        assert_eq!(q.iter().nth(10).unwrap().job.id, 100);
        q.check_invariants();
    }

    #[test]
    fn order_bits_matches_total_cmp() {
        let vals = [0.0, -0.0, 0.5, 1.0, -1.0, 1e9, f64::INFINITY, -3.25];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    order_bits(a).cmp(&order_bits(b)),
                    a.total_cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
    }
}
