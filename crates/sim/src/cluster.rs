//! The machine model: capacity, outages, and the advance-reservation calendar.
//!
//! The cluster tracks how many processors exist, how many are currently lost to
//! outages, and which future intervals are promised to advance reservations (the
//! mechanism Section 3.1 says metacomputing needs from local schedulers). The
//! simulator enforces the capacity constraint `Σ procs·share ≤ available`.

use serde::{Deserialize, Serialize};

/// An advance reservation: `procs` processors promised for `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reservation {
    /// Reservation identifier.
    pub id: u64,
    /// Start of the reserved window, seconds.
    pub start: f64,
    /// End of the reserved window, seconds.
    pub end: f64,
    /// Number of processors reserved.
    pub procs: u32,
}

impl Reservation {
    /// True if the reservation overlaps the interval `[from, to)`.
    pub fn overlaps(&self, from: f64, to: f64) -> bool {
        self.start < to && from < self.end
    }

    /// True if the reservation is active at time `t`.
    pub fn active_at(&self, t: f64) -> bool {
        t >= self.start && t < self.end
    }
}

/// The cluster's time-varying capacity state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Total number of processors in the machine.
    pub total_procs: u32,
    /// Processors currently unavailable due to outages.
    pub down_procs: u32,
    /// Outstanding advance reservations (kept sorted by start time).
    pub reservations: Vec<Reservation>,
    next_reservation_id: u64,
}

impl Cluster {
    /// A healthy cluster with the given number of processors.
    pub fn new(total_procs: u32) -> Self {
        assert!(total_procs > 0, "cluster must have at least one processor");
        Cluster {
            total_procs,
            down_procs: 0,
            reservations: Vec::new(),
            next_reservation_id: 1,
        }
    }

    /// Processors currently available for scheduling (total minus down), ignoring
    /// reservations.
    pub fn available_procs(&self) -> u32 {
        self.total_procs.saturating_sub(self.down_procs)
    }

    /// Processors promised to reservations active at time `t`.
    pub fn reserved_at(&self, t: f64) -> u32 {
        self.reservations
            .iter()
            .filter(|r| r.active_at(t))
            .map(|r| r.procs)
            .sum()
    }

    /// The largest number of processors promised to reservations at any instant of
    /// the interval `[from, to)`. Because reservations are step functions this is
    /// evaluated at interval edges.
    pub fn max_reserved_during(&self, from: f64, to: f64) -> u32 {
        let mut points: Vec<f64> = vec![from];
        for r in &self.reservations {
            if r.overlaps(from, to) {
                if r.start > from {
                    points.push(r.start);
                }
                if r.end < to {
                    points.push(r.end);
                }
            }
        }
        points
            .into_iter()
            .map(|p| self.reserved_at(p))
            .max()
            .unwrap_or(0)
    }

    /// Record an outage taking down `procs` processors (clamped to what is still up).
    /// Returns the number actually taken down.
    pub fn take_down(&mut self, procs: u32) -> u32 {
        let actually = procs.min(self.available_procs());
        self.down_procs += actually;
        actually
    }

    /// Restore `procs` processors after an outage ends (clamped to what is down).
    pub fn bring_up(&mut self, procs: u32) -> u32 {
        let actually = procs.min(self.down_procs);
        self.down_procs -= actually;
        actually
    }

    /// Try to book an advance reservation. The booking succeeds if, at every instant
    /// of the window, the newly reserved processors plus already-reserved processors
    /// fit within the *total* machine (outages are not predictable, so the promise
    /// is made against nominal capacity). Returns the reservation id on success.
    pub fn try_reserve(&mut self, start: f64, end: f64, procs: u32) -> Option<u64> {
        if end <= start || procs == 0 || procs > self.total_procs {
            return None;
        }
        let already = self.max_reserved_during(start, end);
        if already + procs > self.total_procs {
            return None;
        }
        let id = self.next_reservation_id;
        self.next_reservation_id += 1;
        self.reservations.push(Reservation {
            id,
            start,
            end,
            procs,
        });
        self.reservations
            .sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        Some(id)
    }

    /// Cancel a reservation by id. Returns true if it existed.
    pub fn cancel_reservation(&mut self, id: u64) -> bool {
        let before = self.reservations.len();
        self.reservations.retain(|r| r.id != id);
        before != self.reservations.len()
    }

    /// Drop reservations whose window has entirely passed.
    pub fn expire_reservations(&mut self, now: f64) {
        self.reservations.retain(|r| r.end > now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_accounting() {
        let mut c = Cluster::new(128);
        assert_eq!(c.available_procs(), 128);
        assert_eq!(c.take_down(32), 32);
        assert_eq!(c.available_procs(), 96);
        // taking down more than exists is clamped
        assert_eq!(c.take_down(500), 96);
        assert_eq!(c.available_procs(), 0);
        assert_eq!(c.bring_up(64), 64);
        assert_eq!(c.available_procs(), 64);
        assert_eq!(c.bring_up(1000), 64);
        assert_eq!(c.available_procs(), 128);
    }

    #[test]
    #[should_panic]
    fn zero_size_cluster_rejected() {
        Cluster::new(0);
    }

    #[test]
    fn reservation_overlap_and_active() {
        let r = Reservation {
            id: 1,
            start: 100.0,
            end: 200.0,
            procs: 16,
        };
        assert!(r.overlaps(150.0, 160.0));
        assert!(r.overlaps(0.0, 101.0));
        assert!(!r.overlaps(200.0, 300.0));
        assert!(!r.overlaps(0.0, 100.0));
        assert!(r.active_at(100.0));
        assert!(!r.active_at(200.0));
    }

    #[test]
    fn booking_respects_total_capacity() {
        let mut c = Cluster::new(64);
        let a = c.try_reserve(100.0, 200.0, 40).unwrap();
        // A second overlapping reservation that would exceed the machine fails...
        assert!(c.try_reserve(150.0, 250.0, 30).is_none());
        // ...but a non-overlapping one succeeds.
        let b = c.try_reserve(200.0, 300.0, 60).unwrap();
        assert_ne!(a, b);
        assert_eq!(c.reserved_at(150.0), 40);
        assert_eq!(c.reserved_at(250.0), 60);
        assert_eq!(c.reserved_at(350.0), 0);
        assert_eq!(c.max_reserved_during(0.0, 400.0), 60);
        assert_eq!(c.max_reserved_during(100.0, 200.0), 40);
    }

    #[test]
    fn booking_rejects_degenerate_requests() {
        let mut c = Cluster::new(64);
        assert!(c.try_reserve(100.0, 100.0, 8).is_none());
        assert!(c.try_reserve(100.0, 50.0, 8).is_none());
        assert!(c.try_reserve(100.0, 200.0, 0).is_none());
        assert!(c.try_reserve(100.0, 200.0, 65).is_none());
    }

    #[test]
    fn cancel_and_expire() {
        let mut c = Cluster::new(32);
        let id = c.try_reserve(10.0, 20.0, 8).unwrap();
        let id2 = c.try_reserve(30.0, 40.0, 8).unwrap();
        assert!(c.cancel_reservation(id));
        assert!(!c.cancel_reservation(id));
        assert_eq!(c.reservations.len(), 1);
        c.expire_reservations(45.0);
        assert!(c.reservations.is_empty());
        let _ = id2;
    }

    #[test]
    fn reservation_ids_are_unique_and_increasing() {
        let mut c = Cluster::new(32);
        let a = c.try_reserve(0.0, 10.0, 1).unwrap();
        let b = c.try_reserve(0.0, 10.0, 1).unwrap();
        assert!(b > a);
    }
}
