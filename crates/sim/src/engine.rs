//! The discrete-event simulation engine.
//!
//! The engine owns the clock, the event queue, the job queue, the running set and
//! the cluster. Running jobs progress at a *rate* (time share × speedup), so both
//! space sharing (dedicated processors) and time sharing (gang scheduling) are
//! simulated by the same loop: the next event is either the earliest external event
//! (arrival, outage, timer) or the earliest completion at current rates.
//!
//! The engine also realizes the paper's two workload-realism extensions:
//!
//! * **feedback** (Section 2.2): jobs with a preceding-job dependency are released
//!   into the queue only after their predecessor terminates plus the think time;
//! * **outages** (Section 2.2): the standard outage log drives capacity changes;
//!   announced outages generate advance-notice events, surprise failures kill the
//!   most recently started jobs, which restart from scratch.
//!
//! # The hot path: rate-epoch virtual time and the completion calendar
//!
//! Archive-scale traces put millions of events through this loop, so the engine
//! must not do O(running) work per event. Instead of decrementing every running
//! job's remaining work at every event, each job's execution state is anchored to
//! its current *rate epoch* ([`RunningJob::anchor_time`] / `remaining_work`), and
//! its completion instant — exact while the rate is constant, which is the common
//! case for every space-sharing scheduler — is cached as
//! [`RunningJob::predicted_end`] and tracked in a *completion calendar*: a min-heap
//! of `(predicted_end, start_seq)` entries. The per-event cost of finding the next
//! completion is then O(log running) amortized, independent of the running-set
//! size; jobs are re-materialized only when their rate actually changes (a
//! `SetShare`, a gang repack, a preemption, an outage kill).
//!
//! ## Invariants the calendar relies on
//!
//! * **Lazy invalidation.** Calendar entries are never deleted in place. Every
//!   entry records the `(job id, start_seq, epoch)` of the dispatch and rate epoch
//!   that produced it; a rate change bumps the job's epoch and pushes a fresh
//!   entry, a completion/kill/preemption removes the job from the running index.
//!   An entry is *stale* — and silently discarded when it reaches the top of the
//!   heap — unless the id still maps to a running job whose `start_seq` **and**
//!   `epoch` both match. Consequently every running job has exactly one live
//!   entry, and the heap top (after discarding stale entries) is exactly
//!   `min(predicted_end)` over the running set.
//! * **The clock never passes an entry.** `predicted_end` is clamped to the push
//!   instant, and the main loop advances to `min(next external event, calendar
//!   top)`, so a live entry's time is never in the past: the due set at any
//!   instant is exactly the entries whose time equals `now`.
//! * **Deterministic tie-break.** Completions due at the same instant fire in
//!   `start_seq` order (a per-dispatch monotonic counter) — the order the jobs
//!   started — regardless of heap internals or the swap-removal layout of the
//!   running vector. Together with the structurally ordered wait queue, this
//!   makes results independent of container layout.
//!
//! Capacity accounting is incremental for the same reason: the engine maintains
//! `used_procs` (Σ procs·share over running jobs) as a ledger updated at
//! start/completion/share changes, plus an id→index map for the running set, so
//! validating and applying a decision is O(1) instead of a linear rescan.
//! Integrals (busy, idle-while-queued, lost node-seconds) are advanced from the
//! ledger in O(1) per event. The wait queue is a [`JobQueue`]: structurally
//! ordered by `(queued_at, id)` with O(log n) insert/remove and a secondary
//! **backlog index** over `(procs, estimate)`, so policies consume it in
//! arrival order without sorting — head-of-queue policies do sublinear work
//! per react, and backfilling replans enumerate only the jobs that can
//! possibly fit the freed capacity even when thousands are waiting.
//! Completions are consulted in **batches**: every job due at one instant is
//! finished before the scheduler reacts once (a single
//! [`SchedulerEvent::JobCompleted`], or one
//! [`SchedulerEvent::CompletionBatch`] for a simultaneous group), so a mass
//! completion costs one replan instead of one per job.
//!
//! ## The reference engine
//!
//! [`Simulation::new_reference`] builds the same simulation with the calendar
//! replaced by the seed implementation's linear rescans (O(running) per event):
//! the next completion is found by scanning every running job and the due set by
//! filtering the running set. Both engines share every other code path — the
//! ledger, the decision application, the event loop — and all completion times
//! are reads of the same cached `predicted_end` values, so their results are
//! **bit-identical**; the property tests in `tests/proptest_engine.rs` assert
//! exactly that over randomized workloads, and `benches/sim.rs` uses the
//! reference engine as the per-event-linear baseline the calendar is measured
//! against.

use crate::cluster::Cluster;
use crate::job::{FinishedJob, QueuedJob, RunningJob, SimJob};
use crate::queue::JobQueue;
use crate::result::SimulationResult;
use crate::scheduler::{Decision, Scheduler, SchedulerContext, SchedulerEvent};
use psbench_swf::outage::OutageLog;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// What to do with jobs killed by an outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum OutagePolicy {
    /// Requeue the killed job; it restarts from the beginning (the paper: "any job
    /// running on that node would have to be restarted").
    #[default]
    KillAndRequeue,
    /// The killed job is lost (counted, not requeued).
    KillAndDiscard,
}

/// Which completion-tracking implementation the engine runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EngineKind {
    /// The O(log n) completion calendar (the default production engine).
    #[default]
    Calendar,
    /// The seed engine's O(running)-per-event linear rescans, kept as a
    /// differential-testing oracle and performance baseline. Produces
    /// bit-identical [`SimulationResult`]s to [`EngineKind::Calendar`].
    Reference,
}

/// Simulation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Machine size in processors.
    pub machine_size: u32,
    /// Outage log driving capacity changes, if any.
    pub outages: Option<OutageLog>,
    /// Policy for jobs killed by outages.
    pub outage_policy: OutagePolicy,
    /// If true, preceding-job / think-time dependencies are honoured (closed loop);
    /// if false they are ignored and the recorded submit times are replayed (open loop).
    pub closed_loop: bool,
    /// Hard stop: events after this time are not processed (None = run to completion).
    pub max_time: Option<f64>,
}

impl SimConfig {
    /// A simple configuration: the given machine, no outages, open loop.
    pub fn new(machine_size: u32) -> Self {
        SimConfig {
            machine_size,
            outages: None,
            outage_policy: OutagePolicy::default(),
            closed_loop: false,
            max_time: None,
        }
    }

    /// Enable closed-loop (feedback) submission.
    pub fn closed_loop(mut self) -> Self {
        self.closed_loop = true;
        self
    }

    /// Attach an outage log.
    pub fn with_outages(mut self, outages: OutageLog) -> Self {
        self.outages = Some(outages);
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    Arrival(usize),
    OutageAnnounce(usize),
    OutageStart(usize),
    OutageEnd(usize),
    Wakeup,
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for the max-heap: earliest time (then lowest seq) pops first.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

/// A completion-calendar entry: "the dispatch identified by `(job_id, start_seq)`
/// completes at `eta`, assuming its rate epoch is still `epoch`".
#[derive(Debug, Clone, Copy)]
struct CalEntry {
    eta: f64,
    start_seq: u64,
    job_id: u64,
    epoch: u64,
}

impl PartialEq for CalEntry {
    fn eq(&self, other: &Self) -> bool {
        self.eta == other.eta && self.start_seq == other.start_seq
    }
}
impl Eq for CalEntry {}
impl PartialOrd for CalEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CalEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for the max-heap: earliest (eta, start_seq) pops first.
        other
            .eta
            .total_cmp(&self.eta)
            .then(other.start_seq.cmp(&self.start_seq))
    }
}

/// Engine-private per-dispatch metadata, kept parallel to the running vector.
#[derive(Debug, Clone, Copy)]
struct RunMeta {
    /// Monotonic dispatch counter: the deterministic tie-break for simultaneous
    /// completions and outage-kill victim selection.
    start_seq: u64,
    /// Rate-epoch counter; bumped whenever the job is re-anchored, invalidating
    /// all previously pushed calendar entries for this dispatch.
    epoch: u64,
}

/// Capacity slack used when validating decisions against the machine size.
const EPS: f64 = 1e-6;

/// Sequence band for non-arrival events in an online simulation.
///
/// Offline, `seed_events` numbers the arrival events `0..n-1` in job-vector
/// order before any runtime event (a wakeup) can be pushed, so at equal times
/// arrivals always pop before wakeups. An online session interleaves
/// submissions with runtime wakeups, so arrivals take their sequence numbers
/// from the job index (`0, 1, 2, …`, exactly the offline numbering) while
/// every other event draws from a counter starting in this band — far above
/// any realistic job count — preserving the offline tie-break bit for bit.
const ONLINE_EVENT_BAND: u64 = 1 << 40;

/// Completion time implied by a rate epoch starting at `anchor` with `remaining`
/// work at `rate`: the engine's exact completion instant for the epoch.
fn eta_for(anchor: f64, remaining: f64, rate: f64) -> f64 {
    if rate <= 0.0 {
        return f64::INFINITY;
    }
    let eta = anchor + remaining / rate;
    // Clamp: never in the past (negative remaining after a re-anchor, NaN from
    // degenerate inputs). The main loop relies on live calendar times being ≥ the
    // clock.
    if eta.is_nan() || eta < anchor {
        anchor
    } else {
        eta
    }
}

/// Why an online submission, cancellation or query was refused.
///
/// Returned by the online session API ([`Simulation::submit`],
/// [`Simulation::cancel`]); the offline `run` path never produces one.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineError {
    /// The simulation was not built with [`Simulation::new_online`].
    NotOnline,
    /// A job with this id was already submitted.
    DuplicateId(u64),
    /// The submit time is not a finite, non-negative number.
    BadSubmitTime(f64),
    /// The submit time lies before the released frontier: that part of the
    /// timeline has already been simulated and cannot accept new arrivals.
    PastSubmit {
        /// The offending submit time.
        submitted: f64,
        /// The frontier up to which the session has been released.
        released: f64,
    },
    /// No job with this id was ever submitted.
    UnknownJob(u64),
    /// The job is running; the online API only cancels jobs that have not
    /// started (queued or pending arrival).
    JobRunning(u64),
    /// The job already finished, was discarded, or was already cancelled.
    JobDone(u64),
}

impl std::fmt::Display for OnlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnlineError::NotOnline => write!(f, "not an online simulation"),
            OnlineError::DuplicateId(id) => write!(f, "job {id} already submitted"),
            OnlineError::BadSubmitTime(t) => write!(f, "bad submit time {t}"),
            OnlineError::PastSubmit {
                submitted,
                released,
            } => write!(
                f,
                "submit time {submitted} lies before the released frontier {released}"
            ),
            OnlineError::UnknownJob(id) => write!(f, "unknown job {id}"),
            OnlineError::JobRunning(id) => write!(f, "job {id} is running"),
            OnlineError::JobDone(id) => {
                write!(f, "job {id} already finished or was cancelled")
            }
        }
    }
}

impl std::error::Error for OnlineError {}

/// One mutating operation of an online session, in replayable form.
///
/// This is the deterministic replay surface for durability layers: a service
/// that journals the *resolved* operations it applied (exact frontier
/// instants, fully-built jobs) can rebuild the engine after a crash by
/// feeding the same ops back through [`Simulation::apply`] in order — the
/// engine walks the identical event sequence and lands in the identical
/// state, bit for bit. Wall-clock policy (what instant a request resolved to)
/// stays in the caller; the op carries only its outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineOp {
    /// Release the timeline up to this frontier
    /// ([`Simulation::advance_released`]).
    Advance(f64),
    /// Submit this job ([`Simulation::submit`]). The caller is responsible
    /// for any accompanying frontier advance, exactly as on the live path.
    Submit(SimJob),
    /// Cancel this job ([`Simulation::cancel`]).
    Cancel(u64),
}

/// Where one job currently is in its life cycle, as reported by
/// [`Simulation::job_state`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum JobState {
    /// Submitted, but its arrival time has not been reached yet.
    Pending {
        /// The submit time the arrival is scheduled for.
        submit: f64,
    },
    /// Waiting in the scheduler's queue.
    Queued {
        /// When the job entered the queue.
        queued_at: f64,
    },
    /// Holding processors.
    Running {
        /// When this dispatch started.
        started_at: f64,
        /// Completion time implied by the current rate epoch.
        predicted_end: f64,
        /// Processors allocated.
        procs: u32,
    },
    /// Completed.
    Finished {
        /// When the final dispatch started.
        start: f64,
        /// Completion time.
        end: f64,
    },
    /// Cancelled through the online API before it started.
    Cancelled,
    /// Killed by an outage under [`OutagePolicy::KillAndDiscard`].
    Discarded,
}

/// The simulator.
#[derive(Clone)]
pub struct Simulation {
    config: SimConfig,
    jobs: Vec<SimJob>,
    cluster: Cluster,
    events: BinaryHeap<Event>,
    seq: u64,
    now: f64,
    queue: JobQueue,
    running: Vec<RunningJob>,
    running_index: HashMap<u64, usize>,
    rmeta: Vec<RunMeta>,
    calendar: BinaryHeap<CalEntry>,
    next_start_seq: u64,
    /// Incremental ledger: Σ procs·share over the running set.
    used_procs: f64,
    /// Exact times (as bits) of wakeup events already in the heap, for coalescing.
    pending_wakeups: HashSet<u64>,
    finished: Vec<FinishedJob>,
    discarded: Vec<u64>,
    dependents: HashMap<u64, Vec<usize>>,
    idle_while_queued: f64,
    busy_integral: f64,
    lost_node_seconds: f64,
    kills: usize,
    rejected_decisions: usize,
    coalesced_wakeups: usize,
    events_processed: u64,
    outage_down: Vec<u32>,
    kind: EngineKind,
    /// True for sessions built with [`Simulation::new_online`]: jobs arrive
    /// through [`Simulation::submit`] instead of being seeded up front.
    online: bool,
    /// Ids of every job ever handed to an online session (duplicate check).
    online_ids: HashSet<u64>,
    /// Jobs cancelled before their arrival event popped (tombstones), plus
    /// jobs cancelled out of the queue — consulted by `job_state`.
    cancelled: HashSet<u64>,
    /// The online released frontier: every instant strictly below
    /// `released - EPS` has been simulated; submissions must not land there.
    released: f64,
}

impl Simulation {
    /// Create a simulation of the given jobs under the given configuration, using
    /// the default O(log n) calendar engine. Job ids must be unique.
    pub fn new(config: SimConfig, jobs: Vec<SimJob>) -> Self {
        Simulation::with_engine(config, jobs, EngineKind::default())
    }

    /// Create a simulation running the seed-style reference engine (linear
    /// rescans per event). Same results as [`Simulation::new`], bit for bit;
    /// O(events × running) time. Useful as a differential-testing oracle and as
    /// the baseline in performance comparisons.
    pub fn new_reference(config: SimConfig, jobs: Vec<SimJob>) -> Self {
        Simulation::with_engine(config, jobs, EngineKind::Reference)
    }

    /// Create a simulation with an explicit engine kind.
    pub fn with_engine(config: SimConfig, jobs: Vec<SimJob>, kind: EngineKind) -> Self {
        let cluster = Cluster::new(config.machine_size);
        let mut sim = Simulation {
            cluster,
            events: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
            queue: JobQueue::new(),
            running: Vec::new(),
            running_index: HashMap::new(),
            rmeta: Vec::new(),
            calendar: BinaryHeap::new(),
            next_start_seq: 0,
            used_procs: 0.0,
            pending_wakeups: HashSet::new(),
            finished: Vec::with_capacity(jobs.len()),
            discarded: Vec::new(),
            dependents: HashMap::new(),
            idle_while_queued: 0.0,
            busy_integral: 0.0,
            lost_node_seconds: 0.0,
            kills: 0,
            rejected_decisions: 0,
            coalesced_wakeups: 0,
            events_processed: 0,
            outage_down: Vec::new(),
            kind,
            online: false,
            online_ids: HashSet::new(),
            cancelled: HashSet::new(),
            released: 0.0,
            config,
            jobs,
        };
        sim.seed_events();
        sim
    }

    /// Create an empty **online** simulation: jobs arrive incrementally via
    /// [`Simulation::submit`] while the clock is advanced with
    /// [`Simulation::advance_released`] / [`Simulation::step`].
    ///
    /// An online session driven by monotone submissions is bit-identical to
    /// the offline [`Simulation::run`] over the same jobs: the clock only
    /// ever advances to event/completion instants (so the float integrals
    /// accrue over the same partition of the timeline), and arrivals keep
    /// the offline sequence numbering (see `ONLINE_EVENT_BAND`).
    ///
    /// Outage logs and closed-loop feedback are offline-only features; the
    /// configuration must not request them.
    pub fn new_online(config: SimConfig) -> Self {
        assert!(
            config.outages.is_none(),
            "online simulations do not support outage logs"
        );
        assert!(
            !config.closed_loop,
            "online simulations do not support closed-loop feedback"
        );
        let mut sim = Simulation::with_engine(config, Vec::new(), EngineKind::default());
        sim.online = true;
        sim.seq = ONLINE_EVENT_BAND;
        sim
    }

    /// Convenience: build the job list from an SWF log and simulate it.
    pub fn from_log(config: SimConfig, log: &psbench_swf::SwfLog) -> Self {
        Simulation::new(config, SimJob::from_log(log))
    }

    /// Build the job list by draining a streaming [`psbench_swf::JobSource`]
    /// — an incrementally parsed archive trace, a lazily generated model
    /// workload, or an in-memory log — and simulate it. Equivalent to
    /// [`Simulation::from_log`] over the collected log, but the full SWF
    /// record vector is never materialized.
    pub fn from_source<S: psbench_swf::JobSource>(
        config: SimConfig,
        source: S,
    ) -> Result<Self, psbench_swf::ParseError> {
        Ok(Simulation::new(config, SimJob::from_source(source)?))
    }

    fn push_event(&mut self, time: f64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Event { time, seq, kind });
    }

    fn seed_events(&mut self) {
        let ids: HashSet<u64> = self.jobs.iter().map(|j| j.id).collect();
        // The id->index maps (and the queue's id keys) require unique ids; a
        // duplicate would silently drop one of the jobs, so fail loudly.
        assert!(
            ids.len() == self.jobs.len(),
            "simulation job ids must be unique ({} duplicates)",
            self.jobs.len() - ids.len()
        );
        for i in 0..self.jobs.len() {
            let job = &self.jobs[i];
            let dependent = self.config.closed_loop
                && job
                    .preceding
                    .map(|p| ids.contains(&p) && p != job.id)
                    .unwrap_or(false);
            if dependent {
                let pred = job.preceding.unwrap();
                self.dependents.entry(pred).or_default().push(i);
            } else {
                let t = job.submit.max(0.0);
                self.push_event(t, EventKind::Arrival(i));
            }
        }
        if let Some(outages) = self.config.outages.clone() {
            self.outage_down = vec![0; outages.outages.len()];
            for (i, o) in outages.outages.iter().enumerate() {
                if let Some(a) = o.announced_time {
                    if (a as f64) < o.start_time as f64 {
                        self.push_event(a as f64, EventKind::OutageAnnounce(i));
                    }
                }
                self.push_event(o.start_time as f64, EventKind::OutageStart(i));
                self.push_event(o.end_time as f64, EventKind::OutageEnd(i));
            }
        }
    }

    /// Is this calendar entry still the live entry of a running dispatch?
    fn entry_live(&self, e: &CalEntry) -> bool {
        match self.running_index.get(&e.job_id) {
            Some(&idx) => {
                let m = &self.rmeta[idx];
                m.start_seq == e.start_seq && m.epoch == e.epoch
            }
            None => false,
        }
    }

    /// Earliest completion time over the running set. Calendar: amortized
    /// O(log n) (stale entries are discarded as they surface). Reference: a
    /// linear scan of the cached per-job `predicted_end` values — the same
    /// multiset the calendar holds, hence the same minimum, bit for bit.
    fn next_completion_time(&mut self) -> f64 {
        match self.kind {
            EngineKind::Calendar => {
                while let Some(top) = self.calendar.peek() {
                    if self.entry_live(top) {
                        return top.eta;
                    }
                    self.calendar.pop();
                }
                f64::INFINITY
            }
            EngineKind::Reference => self
                .running
                .iter()
                .map(|r| r.predicted_end)
                .fold(f64::INFINITY, f64::min),
        }
    }

    /// Advance the clock to `t`, accruing the busy/idle/lost integrals from the
    /// incremental ledger in O(1).
    fn advance_to(&mut self, t: f64) {
        let dt = (t - self.now).max(0.0);
        if dt > 0.0 {
            let used = self.used_procs;
            self.busy_integral += used * dt;
            self.lost_node_seconds += self.cluster.down_procs as f64 * dt;
            if !self.queue.is_empty() {
                let idle = (self.cluster.available_procs() as f64 - used).max(0.0);
                self.idle_while_queued += idle * dt;
            }
        }
        self.now = t;
    }

    /// Remove the running job at `idx` (swap-removal; O(1)), keeping the index
    /// map and the used-capacity ledger consistent. Calendar entries for the
    /// removed dispatch become stale implicitly.
    fn remove_running(&mut self, idx: usize) -> RunningJob {
        let r = self.running.swap_remove(idx);
        self.rmeta.swap_remove(idx);
        self.running_index.remove(&r.job.id);
        if idx < self.running.len() {
            self.running_index.insert(self.running[idx].job.id, idx);
        }
        self.used_procs -= r.proc_share();
        if self.running.is_empty() {
            // Exact resync: the ledger cannot drift while nothing runs.
            self.used_procs = 0.0;
        }
        r
    }

    /// Dispatch a queued job onto `procs` processors at `share`, opening its
    /// first rate epoch and registering it in the calendar.
    fn start_job(&mut self, q: QueuedJob, procs: u32, share: f64) {
        let mut r = RunningJob {
            remaining_work: q.job.work,
            anchor_time: self.now,
            predicted_end: 0.0,
            queued_at: q.queued_at,
            procs,
            share,
            started_at: self.now,
            first_started_at: q.first_started_at.unwrap_or(self.now),
            restarts: q.restarts,
            job: q.job,
        };
        r.predicted_end = eta_for(self.now, r.remaining_work, r.progress_rate());
        let start_seq = self.next_start_seq;
        self.next_start_seq += 1;
        let entry = CalEntry {
            eta: r.predicted_end,
            start_seq,
            job_id: r.job.id,
            epoch: 0,
        };
        self.used_procs += r.proc_share();
        self.running_index.insert(r.job.id, self.running.len());
        self.running.push(r);
        self.rmeta.push(RunMeta {
            start_seq,
            epoch: 0,
        });
        if self.kind == EngineKind::Calendar {
            self.calendar.push(entry);
        }
    }

    /// Re-anchor the running job at `idx` to the current instant with a new
    /// share: materialize its remaining work, update the ledger, open a new rate
    /// epoch and push the fresh calendar entry.
    fn set_share(&mut self, idx: usize, share: f64) {
        let now = self.now;
        let r = &mut self.running[idx];
        r.remaining_work = r.remaining_at(now);
        r.anchor_time = now;
        self.used_procs -= r.proc_share();
        r.share = share;
        self.used_procs += r.proc_share();
        r.predicted_end = eta_for(now, r.remaining_work, r.progress_rate());
        let m = &mut self.rmeta[idx];
        m.epoch += 1;
        let entry = CalEntry {
            eta: self.running[idx].predicted_end,
            start_seq: self.rmeta[idx].start_seq,
            job_id: self.running[idx].job.id,
            epoch: self.rmeta[idx].epoch,
        };
        if self.kind == EngineKind::Calendar {
            self.calendar.push(entry);
        }
    }

    /// Finish the running job at `idx` now, releasing dependents (closed loop).
    fn finish_running(&mut self, idx: usize, completed: &mut Vec<u64>) {
        let r = self.remove_running(idx);
        let finished = FinishedJob {
            id: r.job.id,
            submit: r.queued_at,
            start: r.started_at,
            first_start: r.first_started_at,
            end: self.now,
            procs: r.procs,
            restarts: r.restarts,
            user: r.job.user,
        };
        completed.push(r.job.id);
        if let Some(deps) = self.dependents.remove(&r.job.id) {
            for idx in deps {
                let think = self.jobs[idx].think_time.max(0.0);
                self.push_event(self.now + think, EventKind::Arrival(idx));
            }
        }
        self.finished.push(finished);
    }

    /// Complete every job due at the current instant, in `start_seq` order.
    fn collect_completions(&mut self) -> Vec<u64> {
        let mut completed = Vec::new();
        match self.kind {
            EngineKind::Calendar => {
                // Entries surface in (eta, start_seq) order; live entries are
                // never in the past, so the due set is exactly eta == now and the
                // pops already come out in start order.
                while let Some(top) = self.calendar.peek() {
                    if !self.entry_live(top) {
                        self.calendar.pop();
                        continue;
                    }
                    if top.eta > self.now {
                        break;
                    }
                    let e = self.calendar.pop().unwrap();
                    let idx = self.running_index[&e.job_id];
                    self.finish_running(idx, &mut completed);
                }
            }
            EngineKind::Reference => {
                let mut due: Vec<(u64, u64)> = self
                    .running
                    .iter()
                    .zip(self.rmeta.iter())
                    .filter(|(r, _)| r.predicted_end <= self.now)
                    .map(|(r, m)| (m.start_seq, r.job.id))
                    .collect();
                due.sort_unstable();
                for (_, id) in due {
                    let idx = self.running_index[&id];
                    self.finish_running(idx, &mut completed);
                }
            }
        }
        self.events_processed += completed.len() as u64;
        completed
    }

    /// Kill running jobs (most recently started first; ties by start order)
    /// until the survivors fit the post-outage capacity.
    fn kill_excess_jobs(&mut self) -> usize {
        let mut killed = 0;
        loop {
            if self.used_procs <= self.cluster.available_procs() as f64 + EPS {
                break;
            }
            let victim_idx = (0..self.running.len()).max_by(|&a, &b| {
                self.running[a]
                    .started_at
                    .total_cmp(&self.running[b].started_at)
                    .then(self.rmeta[a].start_seq.cmp(&self.rmeta[b].start_seq))
            });
            match victim_idx {
                Some(i) => {
                    let r = self.remove_running(i);
                    killed += 1;
                    self.kills += 1;
                    match self.config.outage_policy {
                        OutagePolicy::KillAndRequeue => {
                            self.queue.push(QueuedJob {
                                queued_at: r.queued_at,
                                restarts: r.restarts + 1,
                                first_started_at: Some(r.first_started_at),
                                job: r.job,
                            });
                        }
                        OutagePolicy::KillAndDiscard => {
                            self.discarded.push(r.job.id);
                        }
                    }
                }
                None => break,
            }
        }
        killed
    }

    fn context(&self) -> SchedulerContext<'_> {
        SchedulerContext {
            now: self.now,
            cluster: &self.cluster,
            queue: &self.queue,
            running: &self.running,
            used_procs: self.used_procs,
        }
    }

    fn apply_decisions(&mut self, decisions: Vec<Decision>) {
        for d in decisions {
            match d {
                Decision::Start {
                    job_id,
                    procs,
                    share,
                } => {
                    let share = if share.is_finite() {
                        share.clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    let ok = match self.queue.get(job_id) {
                        Some(q) => {
                            let procs = procs.unwrap_or(q.job.procs).max(1);
                            let free = self.cluster.available_procs() as f64
                                - self.used_procs
                                - self.cluster.reserved_at(self.now) as f64;
                            let fits = share > 0.0 && procs as f64 * share <= free + EPS;
                            fits.then_some(procs)
                        }
                        None => None,
                    };
                    match ok {
                        Some(procs) => {
                            let q = self.queue.remove(job_id).unwrap();
                            self.start_job(q, procs, share);
                        }
                        None => self.rejected_decisions += 1,
                    }
                }
                Decision::SetShare { job_id, share } => {
                    let share = if share.is_finite() {
                        share.clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    let ok = match self.running_index.get(&job_id).copied() {
                        Some(idx) => {
                            let r = &self.running[idx];
                            let used_others = self.used_procs - r.proc_share();
                            let fits = share > 0.0
                                && used_others + r.procs as f64 * share
                                    <= self.cluster.available_procs() as f64 + EPS;
                            fits.then_some(idx)
                        }
                        None => None,
                    };
                    match ok {
                        Some(idx) => self.set_share(idx, share),
                        None => self.rejected_decisions += 1,
                    }
                }
                Decision::Preempt { job_id } => {
                    match self.running_index.get(&job_id).copied() {
                        Some(idx) => {
                            // Remaining work is preserved (preemption, not a kill).
                            let now = self.now;
                            let remaining = self.running[idx].remaining_at(now).max(0.0);
                            let mut r = self.remove_running(idx);
                            r.job.work = remaining;
                            self.queue.push(QueuedJob {
                                queued_at: r.queued_at,
                                restarts: r.restarts,
                                first_started_at: Some(r.first_started_at),
                                job: r.job,
                            });
                        }
                        None => self.rejected_decisions += 1,
                    }
                }
                Decision::Wakeup { at } => {
                    if at.is_finite() && at >= self.now {
                        // Coalesce: a timer is already scheduled for this exact
                        // instant, so a second heap entry would only produce a
                        // redundant consult. Quantum-based policies re-request
                        // the same expiry from every react, which used to grow
                        // the event heap without bound.
                        if self.pending_wakeups.insert(at.to_bits()) {
                            self.push_event(at, EventKind::Wakeup);
                        } else {
                            self.coalesced_wakeups += 1;
                        }
                    } else {
                        self.rejected_decisions += 1;
                    }
                }
            }
        }
    }

    fn consult(&mut self, scheduler: &mut dyn Scheduler, event: SchedulerEvent) {
        let decisions = scheduler.react(&self.context(), event);
        self.apply_decisions(decisions);
    }

    /// Debug-build paranoia: the incremental structures must agree with a fresh
    /// linear recomputation. Kept cheap enough to run inside the test suite.
    #[cfg(debug_assertions)]
    fn check_invariants(&self) {
        debug_assert_eq!(self.running.len(), self.rmeta.len());
        debug_assert_eq!(self.running.len(), self.running_index.len());
        if self.running.len() + self.queue.len() <= 512 {
            self.queue.check_invariants();
            let scan: f64 = self.running.iter().map(|r| r.proc_share()).sum();
            debug_assert!(
                (scan - self.used_procs).abs() <= 1e-6 * scan.abs().max(1.0),
                "used_procs ledger drifted: ledger {} vs scan {}",
                self.used_procs,
                scan
            );
            for (i, r) in self.running.iter().enumerate() {
                debug_assert_eq!(self.running_index[&r.job.id], i);
            }
        }
    }

    /// The next instant anything can happen: the earlier of the next external
    /// event and the next completion at current rates.
    fn next_instant(&mut self) -> f64 {
        let next_event = self.events.peek().map(|e| e.time).unwrap_or(f64::INFINITY);
        next_event.min(self.next_completion_time())
    }

    /// One iteration of the event loop, bounded by `bound`: advance to the next
    /// instant **strictly below** `bound` and process everything due there.
    /// Returns `false` (without advancing) when no such instant exists or the
    /// configured `max_time` was reached.
    fn step_bounded(&mut self, scheduler: &mut dyn Scheduler, bound: f64) -> bool {
        if let Some(limit) = self.config.max_time {
            if self.now >= limit {
                return false;
            }
        }
        let t = self.next_instant();
        if !t.is_finite() || t >= bound {
            return false;
        }
        let t = match self.config.max_time {
            Some(limit) => t.min(limit),
            None => t,
        };
        self.step_at(t, scheduler);
        true
    }

    /// Process everything due at instant `t`: advance the clock, complete due
    /// jobs (batched consult), then pop and handle all external events within
    /// the EPS fuzz of `t`.
    fn step_at(&mut self, t: f64, scheduler: &mut dyn Scheduler) {
        self.advance_to(t);

        // Completions first (they free capacity for decisions triggered
        // below). All completions due at this instant are collected before
        // the scheduler sees any of them, so the consult is batched: one
        // `JobCompleted` for a lone completion, one `CompletionBatch` for
        // a simultaneous group — a mass completion under saturation costs
        // a single replan instead of N.
        let completed = self.collect_completions();
        match completed.as_slice() {
            [] => {}
            [job_id] => self.consult(scheduler, SchedulerEvent::JobCompleted { job_id: *job_id }),
            batch => self.consult(
                scheduler,
                SchedulerEvent::CompletionBatch { count: batch.len() },
            ),
        }

        // External events due now.
        while let Some(e) = self.events.peek() {
            if e.time > self.now + EPS {
                break;
            }
            let e = self.events.pop().unwrap();
            self.events_processed += 1;
            match e.kind {
                EventKind::Arrival(idx) => {
                    let job = self.jobs[idx].clone();
                    let id = job.id;
                    if self.cancelled.contains(&id) {
                        // Cancelled before release (online API): the arrival
                        // is consumed without ever entering the queue.
                        continue;
                    }
                    // The effective submission time is "now" (for dependent
                    // jobs it is the release time).
                    self.queue.push(QueuedJob {
                        queued_at: self.now,
                        job,
                        restarts: 0,
                        first_started_at: None,
                    });
                    self.consult(scheduler, SchedulerEvent::JobArrived { job_id: id });
                }
                EventKind::OutageAnnounce(i) => {
                    let (start, end, procs) = {
                        let o = &self.config.outages.as_ref().unwrap().outages[i];
                        (
                            o.start_time as f64,
                            o.end_time as f64,
                            o.effective_nodes_affected(),
                        )
                    };
                    self.consult(
                        scheduler,
                        SchedulerEvent::OutageAnnounced { start, end, procs },
                    );
                }
                EventKind::OutageStart(i) => {
                    let procs =
                        self.config.outages.as_ref().unwrap().outages[i].effective_nodes_affected();
                    let taken = self.cluster.take_down(procs);
                    self.outage_down[i] = taken;
                    let killed = self.kill_excess_jobs();
                    if killed > 0 {
                        self.consult(scheduler, SchedulerEvent::JobsKilled { count: killed });
                    }
                    self.consult(scheduler, SchedulerEvent::OutageStarted { procs: taken });
                }
                EventKind::OutageEnd(i) => {
                    let taken = self.outage_down[i];
                    let restored = self.cluster.bring_up(taken);
                    self.outage_down[i] = 0;
                    self.consult(scheduler, SchedulerEvent::OutageEnded { procs: restored });
                }
                EventKind::Wakeup => {
                    self.pending_wakeups.remove(&e.time.to_bits());
                    // A timer armed for a strictly future instant must not
                    // consult the scheduler early. The instant-batch pop
                    // above fuzzes by EPS, so a wakeup armed within EPS of
                    // `now` (schedulers tracking sub-EPS reservation times
                    // arm such timers) would otherwise fire with the clock
                    // still behind it — the scheduler sees nothing due,
                    // re-arms the same instant, and the batch loop re-pops
                    // it forever. Advancing to the requested time keeps
                    // the consult exact and the re-arm cycle convergent.
                    self.advance_to(e.time);
                    self.consult(scheduler, SchedulerEvent::Timer);
                }
            }
        }

        #[cfg(debug_assertions)]
        self.check_invariants();
    }

    /// Consume the simulation state into its result.
    fn into_result(self, scheduler_name: &str) -> SimulationResult {
        SimulationResult {
            scheduler: scheduler_name.to_string(),
            machine_size: self.config.machine_size,
            finished: self.finished,
            unfinished: self.queue.len() + self.running.len(),
            discarded: self.discarded.len(),
            idle_while_queued: self.idle_while_queued,
            busy_integral: self.busy_integral,
            lost_node_seconds: self.lost_node_seconds,
            kills: self.kills,
            rejected_decisions: self.rejected_decisions,
            coalesced_wakeups: self.coalesced_wakeups,
            events_processed: self.events_processed,
            end_time: self.now,
        }
    }

    /// Run the simulation to completion under the given scheduler and return the
    /// results.
    pub fn run(mut self, scheduler: &mut dyn Scheduler) -> SimulationResult {
        self.consult(scheduler, SchedulerEvent::Start);
        while self.step(scheduler) {}
        self.into_result(scheduler.name())
    }

    // ------------------------------------------------------------------
    // The online session API.
    //
    // `run` above is exactly `begin` + `step`-until-exhausted + the result
    // conversion, so an online session that performs the same step sequence
    // (interleaved with monotone submissions that never land inside the
    // already-released timeline) reproduces the offline result bit for bit.
    // ------------------------------------------------------------------

    /// Consult the scheduler with the initial [`SchedulerEvent::Start`].
    /// Call once, before the first [`Simulation::step`] /
    /// [`Simulation::advance_released`] of an online session; the offline
    /// [`Simulation::run`] does the equivalent consult itself.
    pub fn begin(&mut self, scheduler: &mut dyn Scheduler) {
        self.consult(scheduler, SchedulerEvent::Start);
    }

    /// One iteration of the event loop: advance to the next event/completion
    /// instant and process everything due there. Returns `false` (leaving the
    /// clock untouched) once nothing is left to happen or `max_time` was hit.
    pub fn step(&mut self, scheduler: &mut dyn Scheduler) -> bool {
        self.step_bounded(scheduler, f64::INFINITY)
    }

    /// Advance through every instant **strictly below** `frontier − EPS` and
    /// mark the timeline up to `frontier` as released.
    ///
    /// The EPS margin keeps the batch-pop exact: a step anchored at `t`
    /// consumes every event within `t + EPS`, so stopping before
    /// `frontier − EPS` guarantees no event within the fuzz radius of a
    /// yet-to-be-submitted arrival at `frontier` is consumed early — the
    /// arrival joins its same-instant batch exactly as it would offline.
    pub fn advance_released(&mut self, scheduler: &mut dyn Scheduler, frontier: f64) {
        if frontier > self.released {
            self.released = frontier;
        }
        let bound = frontier - EPS;
        while self.step_bounded(scheduler, bound) {}
    }

    /// Submit a job into an online session. The arrival fires once the clock
    /// reaches `job.submit`; until then the job is [`JobState::Pending`].
    ///
    /// Fails if the session was not built with [`Simulation::new_online`],
    /// the id was already used, or the submit time lies inside the released
    /// timeline (before the largest `frontier` passed to
    /// [`Simulation::advance_released`]).
    pub fn submit(&mut self, job: SimJob) -> Result<(), OnlineError> {
        if !self.online {
            return Err(OnlineError::NotOnline);
        }
        if !job.submit.is_finite() {
            return Err(OnlineError::BadSubmitTime(job.submit));
        }
        let t = job.submit.max(0.0);
        if t < self.released {
            return Err(OnlineError::PastSubmit {
                submitted: t,
                released: self.released,
            });
        }
        if !self.online_ids.insert(job.id) {
            return Err(OnlineError::DuplicateId(job.id));
        }
        // Arrivals use the job index as their sequence number — the exact
        // numbering `seed_events` gives an offline run over the same vector —
        // while wakeups draw from the high [`ONLINE_EVENT_BAND`] counter, so
        // equal-time ties break identically online and offline.
        let idx = self.jobs.len();
        self.jobs.push(job);
        self.events.push(Event {
            time: t,
            seq: idx as u64,
            kind: EventKind::Arrival(idx),
        });
        Ok(())
    }

    /// Cancel a job that has not started yet: a queued job leaves the queue
    /// (the scheduler is consulted with [`SchedulerEvent::JobCancelled`]), a
    /// pending arrival is tombstoned and never enters the queue. Running or
    /// finished jobs cannot be cancelled.
    ///
    /// Cancellation is an online-only operation with no offline counterpart:
    /// a session that cancels jobs no longer replays as an offline trace.
    pub fn cancel(
        &mut self,
        scheduler: &mut dyn Scheduler,
        job_id: u64,
    ) -> Result<(), OnlineError> {
        if !self.online {
            return Err(OnlineError::NotOnline);
        }
        if !self.online_ids.contains(&job_id) {
            return Err(OnlineError::UnknownJob(job_id));
        }
        if self.running_index.contains_key(&job_id) {
            return Err(OnlineError::JobRunning(job_id));
        }
        if self.queue.get(job_id).is_some() {
            self.queue.remove(job_id);
            self.cancelled.insert(job_id);
            self.consult(scheduler, SchedulerEvent::JobCancelled { job_id });
            return Ok(());
        }
        if self.cancelled.contains(&job_id)
            || self.discarded.contains(&job_id)
            || self.finished.iter().any(|f| f.id == job_id)
        {
            return Err(OnlineError::JobDone(job_id));
        }
        // Pending arrival: tombstone it; the arrival event is consumed
        // silently when it pops.
        self.cancelled.insert(job_id);
        Ok(())
    }

    /// Apply one [`OnlineOp`] — the single entry point deterministic replay
    /// goes through. Dispatches to [`Simulation::advance_released`],
    /// [`Simulation::submit`] or [`Simulation::cancel`]; errors are the same
    /// deterministic [`OnlineError`]s the live call sites produce, so a
    /// journaled op that failed when first applied fails identically when
    /// replayed.
    pub fn apply(
        &mut self,
        scheduler: &mut dyn Scheduler,
        op: OnlineOp,
    ) -> Result<(), OnlineError> {
        if !self.online {
            return Err(OnlineError::NotOnline);
        }
        match op {
            OnlineOp::Advance(frontier) => {
                self.advance_released(scheduler, frontier);
                Ok(())
            }
            OnlineOp::Submit(job) => self.submit(job),
            OnlineOp::Cancel(job_id) => self.cancel(scheduler, job_id),
        }
    }

    /// Run the remaining timeline to completion and return the results — the
    /// online session's equivalent of the tail of [`Simulation::run`].
    pub fn finish(mut self, scheduler: &mut dyn Scheduler) -> SimulationResult {
        while self.step(scheduler) {}
        self.into_result(scheduler.name())
    }

    /// Consult the scheduler with a bare [`SchedulerEvent::Timer`] at the
    /// current instant. Intended for **probe clones**: a freshly constructed
    /// policy knows nothing about the inherited backlog until it is consulted
    /// once, so a probe pokes its scheduler before stepping.
    pub fn poke(&mut self, scheduler: &mut dyn Scheduler) {
        self.consult(scheduler, SchedulerEvent::Timer);
    }

    /// The current simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The released frontier of an online session (0 until the first
    /// [`Simulation::advance_released`]).
    pub fn released(&self) -> f64 {
        self.released
    }

    /// The next instant anything can happen, if any event or completion is
    /// outstanding. Needs `&mut` to discard stale calendar entries.
    pub fn peek_next_instant(&mut self) -> Option<f64> {
        let t = self.next_instant();
        t.is_finite().then_some(t)
    }

    /// Number of jobs waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The wait queue itself, exposing the backlog index's O(1)/O(widths)
    /// aggregates ([`JobQueue::demanded_procs`], [`JobQueue::width_histogram`])
    /// that load-adaptive metaschedulers route by.
    pub fn queue(&self) -> &crate::queue::JobQueue {
        &self.queue
    }

    /// The jobs completed so far, in completion order. An online shard
    /// harvests the suffix it has not yet seen after each `advance`.
    pub fn finished_jobs(&self) -> &[FinishedJob] {
        &self.finished
    }

    /// Number of jobs currently holding processors.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Number of jobs that have completed.
    pub fn finished_len(&self) -> usize {
        self.finished.len()
    }

    /// Processor·share capacity currently in use.
    pub fn used_capacity(&self) -> f64 {
        self.used_procs
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Where `job_id` currently is in its life cycle, or `None` if the id was
    /// never handed to this simulation. Finished/discarded lookups scan their
    /// vectors, so this is a query-path helper, not a hot-path one.
    pub fn job_state(&self, job_id: u64) -> Option<JobState> {
        if let Some(&idx) = self.running_index.get(&job_id) {
            let r = &self.running[idx];
            return Some(JobState::Running {
                started_at: r.started_at,
                predicted_end: r.predicted_end,
                procs: r.procs,
            });
        }
        if let Some(q) = self.queue.get(job_id) {
            return Some(JobState::Queued {
                queued_at: q.queued_at,
            });
        }
        if self.cancelled.contains(&job_id) {
            return Some(JobState::Cancelled);
        }
        if let Some(f) = self.finished.iter().find(|f| f.id == job_id) {
            return Some(JobState::Finished {
                start: f.start,
                end: f.end,
            });
        }
        if self.discarded.contains(&job_id) {
            return Some(JobState::Discarded);
        }
        self.jobs
            .iter()
            .find(|j| j.id == job_id)
            .map(|j| JobState::Pending {
                submit: j.submit.max(0.0),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbench_swf::outage::{OutageKind, OutageRecord};

    /// A minimal first-come-first-served policy used to exercise the engine.
    /// The queue view is already in `(queued_at, id)` order, so FCFS is a plain
    /// prefix walk.
    struct TestFcfs;
    impl Scheduler for TestFcfs {
        fn name(&self) -> &str {
            "test-fcfs"
        }
        fn react(&mut self, ctx: &SchedulerContext<'_>, _event: SchedulerEvent) -> Vec<Decision> {
            let mut free = ctx.free_capacity();
            let mut out = Vec::new();
            for q in ctx.queue.iter() {
                if (q.job.procs as f64) <= free + 1e-9 {
                    free -= q.job.procs as f64;
                    out.push(Decision::start(q.job.id));
                } else {
                    break;
                }
            }
            out
        }
    }

    fn rigid_jobs(specs: &[(u64, f64, f64, u32)]) -> Vec<SimJob> {
        specs
            .iter()
            .map(|&(id, submit, runtime, procs)| SimJob::rigid(id, submit, runtime, procs))
            .collect()
    }

    #[test]
    fn single_job_runs_immediately() {
        let jobs = rigid_jobs(&[(1, 0.0, 100.0, 16)]);
        let result = Simulation::new(SimConfig::new(64), jobs).run(&mut TestFcfs);
        assert_eq!(result.finished.len(), 1);
        let f = &result.finished[0];
        assert_eq!(f.submit, 0.0);
        assert_eq!(f.start, 0.0);
        assert_eq!(f.end, 100.0);
        assert_eq!(result.unfinished, 0);
        assert_eq!(result.kills, 0);
        assert_eq!(result.rejected_decisions, 0);
    }

    #[test]
    fn jobs_queue_when_machine_full() {
        // Two 64-proc jobs on a 64-proc machine: the second waits for the first.
        let jobs = rigid_jobs(&[(1, 0.0, 100.0, 64), (2, 10.0, 50.0, 64)]);
        let result = Simulation::new(SimConfig::new(64), jobs).run(&mut TestFcfs);
        assert_eq!(result.finished.len(), 2);
        let second = result.finished.iter().find(|f| f.id == 2).unwrap();
        assert_eq!(second.start, 100.0);
        assert_eq!(second.end, 150.0);
        assert!((second.wait() - 90.0).abs() < 1e-9);
        // While job 2 waited (10..100), the whole machine was busy: no idle-while-queued.
        assert!(result.idle_while_queued.abs() < 1e-6);
    }

    #[test]
    fn fcfs_blocks_small_jobs_behind_wide_job() {
        // A wide job at the head blocks a narrow one even though it would fit: the
        // engine leaves that choice to the policy, so FCFS shows loss of capacity.
        let jobs = rigid_jobs(&[(1, 0.0, 100.0, 48), (2, 1.0, 100.0, 32), (3, 2.0, 10.0, 8)]);
        let result = Simulation::new(SimConfig::new(64), jobs).run(&mut TestFcfs);
        let third = result.finished.iter().find(|f| f.id == 3).unwrap();
        assert!(third.start >= 100.0);
        assert!(result.idle_while_queued > 0.0);
    }

    #[test]
    fn parallel_execution_when_capacity_allows() {
        let jobs = rigid_jobs(&[
            (1, 0.0, 100.0, 16),
            (2, 0.0, 100.0, 16),
            (3, 0.0, 100.0, 16),
        ]);
        let result = Simulation::new(SimConfig::new(64), jobs).run(&mut TestFcfs);
        assert!(result.finished.iter().all(|f| f.start == 0.0));
        assert!(result.finished.iter().all(|f| f.end == 100.0));
        assert_eq!(result.end_time, 100.0);
    }

    #[test]
    fn simultaneous_completions_fire_in_start_order() {
        // Three identical jobs complete at the same instant; the completion
        // events (and hence the finished order) must follow dispatch order even
        // though the running set uses swap-removal internally.
        let jobs = rigid_jobs(&[
            (3, 0.0, 100.0, 16),
            (1, 0.0, 100.0, 16),
            (2, 0.0, 100.0, 16),
        ]);
        let result = Simulation::new(SimConfig::new(64), jobs).run(&mut TestFcfs);
        let order: Vec<u64> = result.finished.iter().map(|f| f.id).collect();
        // Each job is dispatched from its own arrival consult, so dispatch order
        // is the arrival-event order (the jobs-vector order for equal submit
        // times), and simultaneous completions must replay exactly it.
        assert_eq!(order, vec![3, 1, 2]);
    }

    #[test]
    fn results_invariant_under_job_permutation() {
        // Distinct submit times: the same workload handed to the engine in a
        // different vector order must produce the identical result, including
        // the completion order (swap-removal layout must not leak).
        let jobs: Vec<SimJob> = (0..60)
            .map(|i| {
                SimJob::rigid(
                    i as u64 + 1,
                    (i * 37 % 113) as f64 + i as f64 * 1e-3,
                    30.0 + (i % 5) as f64 * 90.0,
                    1 + (i % 48) as u32,
                )
            })
            .collect();
        let mut permuted = jobs.clone();
        permuted.reverse();
        permuted.swap(0, 30);
        let a = Simulation::new(SimConfig::new(64), jobs).run(&mut TestFcfs);
        let b = Simulation::new(SimConfig::new(64), permuted).run(&mut TestFcfs);
        assert_eq!(a, b);
    }

    #[test]
    fn closed_loop_releases_dependents_after_completion() {
        let mut jobs = rigid_jobs(&[(1, 0.0, 100.0, 8)]);
        let mut dependent = SimJob::rigid(2, 5.0, 50.0, 8);
        dependent.preceding = Some(1);
        dependent.think_time = 30.0;
        jobs.push(dependent);
        let result =
            Simulation::new(SimConfig::new(64).closed_loop(), jobs.clone()).run(&mut TestFcfs);
        let dep = result.finished.iter().find(|f| f.id == 2).unwrap();
        // released at 100 + 30 = 130, starts immediately
        assert_eq!(dep.submit, 130.0);
        assert_eq!(dep.start, 130.0);
        // Open loop ignores the dependency and uses the recorded submit time.
        let open = Simulation::new(SimConfig::new(64), jobs).run(&mut TestFcfs);
        let dep_open = open.finished.iter().find(|f| f.id == 2).unwrap();
        assert_eq!(dep_open.submit, 5.0);
    }

    #[test]
    fn dependency_on_missing_job_is_ignored() {
        let mut job = SimJob::rigid(1, 10.0, 20.0, 4);
        job.preceding = Some(999);
        let result = Simulation::new(SimConfig::new(8).closed_loop(), vec![job]).run(&mut TestFcfs);
        assert_eq!(result.finished.len(), 1);
        assert_eq!(result.finished[0].submit, 10.0);
    }

    #[test]
    fn outage_kills_and_requeues_running_job() {
        let outages = OutageLog::from_records(vec![OutageRecord {
            outage_id: 0,
            announced_time: None,
            start_time: 50,
            end_time: 150,
            kind: OutageKind::CpuFailure,
            nodes_affected: Some(64),
            components: vec![],
        }]);
        let jobs = rigid_jobs(&[(1, 0.0, 100.0, 64)]);
        let config = SimConfig::new(64).with_outages(outages);
        let result = Simulation::new(config, jobs).run(&mut TestFcfs);
        assert_eq!(result.kills, 1);
        assert_eq!(result.finished.len(), 1);
        let f = &result.finished[0];
        // Job restarted after the outage ended and ran its full 100 s again.
        assert_eq!(f.start, 150.0);
        assert_eq!(f.end, 250.0);
        assert_eq!(f.restarts, 1);
        // The first start survives the requeue: restart statistics are intact.
        assert_eq!(f.first_start, 0.0);
        assert!(result.lost_node_seconds >= 64.0 * 100.0 - 1.0);
    }

    #[test]
    fn first_start_survives_repeated_outage_restarts() {
        // Two surprise failures in a row: the job is killed twice, restarts
        // twice, and the eventual record still points at the very first start.
        let outages = OutageLog::from_records(vec![
            OutageRecord {
                outage_id: 0,
                announced_time: None,
                start_time: 40,
                end_time: 60,
                kind: OutageKind::CpuFailure,
                nodes_affected: Some(64),
                components: vec![],
            },
            OutageRecord {
                outage_id: 1,
                announced_time: None,
                start_time: 100,
                end_time: 120,
                kind: OutageKind::CpuFailure,
                nodes_affected: Some(64),
                components: vec![],
            },
        ]);
        let jobs = rigid_jobs(&[(1, 10.0, 80.0, 64)]);
        let config = SimConfig::new(64).with_outages(outages);
        let result = Simulation::new(config, jobs).run(&mut TestFcfs);
        assert_eq!(result.kills, 2);
        let f = &result.finished[0];
        assert_eq!(f.restarts, 2);
        assert_eq!(f.first_start, 10.0);
        assert_eq!(f.start, 120.0);
        assert_eq!(f.end, 200.0);
    }

    #[test]
    fn outage_discard_policy_drops_jobs() {
        let outages = OutageLog::from_records(vec![OutageRecord {
            outage_id: 0,
            announced_time: None,
            start_time: 50,
            end_time: 60,
            kind: OutageKind::CpuFailure,
            nodes_affected: Some(64),
            components: vec![],
        }]);
        let mut config = SimConfig::new(64).with_outages(outages);
        config.outage_policy = OutagePolicy::KillAndDiscard;
        let jobs = rigid_jobs(&[(1, 0.0, 100.0, 64)]);
        let result = Simulation::new(config, jobs).run(&mut TestFcfs);
        assert_eq!(result.finished.len(), 0);
        assert_eq!(result.discarded, 1);
    }

    #[test]
    fn partial_outage_only_kills_what_does_not_fit() {
        let outages = OutageLog::from_records(vec![OutageRecord {
            outage_id: 0,
            announced_time: Some(0),
            start_time: 50,
            end_time: 1000,
            kind: OutageKind::Maintenance,
            nodes_affected: Some(32),
            components: vec![],
        }]);
        // Two 16-proc jobs: after losing 32 of 64 processors both still fit.
        let jobs = rigid_jobs(&[(1, 0.0, 100.0, 16), (2, 0.0, 100.0, 16)]);
        let config = SimConfig::new(64).with_outages(outages);
        let result = Simulation::new(config, jobs).run(&mut TestFcfs);
        assert_eq!(result.kills, 0);
        assert!(result.finished.iter().all(|f| f.end == 100.0));
    }

    #[test]
    fn oversubscribing_decision_is_rejected() {
        struct Greedy;
        impl Scheduler for Greedy {
            fn name(&self) -> &str {
                "greedy"
            }
            fn react(&mut self, ctx: &SchedulerContext<'_>, _e: SchedulerEvent) -> Vec<Decision> {
                // Try to start everything regardless of capacity.
                ctx.queue
                    .iter()
                    .map(|q| Decision::start(q.job.id))
                    .collect()
            }
        }
        let jobs = rigid_jobs(&[(1, 0.0, 100.0, 64), (2, 0.0, 100.0, 64)]);
        let result = Simulation::new(SimConfig::new(64), jobs).run(&mut Greedy);
        assert_eq!(result.finished.len(), 2);
        assert!(result.rejected_decisions > 0);
        // The engine still made progress correctly: second job ran after the first.
        let ends: Vec<f64> = result.finished.iter().map(|f| f.end).collect();
        assert!(ends.contains(&100.0) && ends.contains(&200.0));
    }

    #[test]
    fn time_sharing_two_jobs_on_same_processors() {
        struct TimeShare;
        impl Scheduler for TimeShare {
            fn name(&self) -> &str {
                "timeshare"
            }
            fn react(&mut self, ctx: &SchedulerContext<'_>, _e: SchedulerEvent) -> Vec<Decision> {
                // Give every queued job the whole machine at share 1/(k+1).
                let total = ctx.queue.len() + ctx.running.len();
                if total == 0 {
                    return Vec::new();
                }
                let share = 1.0 / total as f64;
                let mut running: Vec<u64> = ctx.running.iter().map(|r| r.job.id).collect();
                running.sort_unstable();
                let mut out: Vec<Decision> = running
                    .into_iter()
                    .map(|job_id| Decision::SetShare { job_id, share })
                    .collect();
                let mut queued: Vec<u64> = ctx.queue.iter().map(|q| q.job.id).collect();
                queued.sort_unstable();
                for job_id in queued {
                    out.push(Decision::Start {
                        job_id,
                        procs: None,
                        share,
                    });
                }
                out
            }
        }
        // Two identical 100-second full-machine jobs, time shared: both finish at ~200.
        let jobs = rigid_jobs(&[(1, 0.0, 100.0, 64), (2, 0.0, 100.0, 64)]);
        let result = Simulation::new(SimConfig::new(64), jobs).run(&mut TimeShare);
        assert_eq!(result.finished.len(), 2);
        for f in &result.finished {
            assert!((f.end - 200.0).abs() < 1.0, "end {}", f.end);
            assert_eq!(f.start, 0.0);
        }
    }

    #[test]
    fn preemption_preserves_remaining_work() {
        struct PreemptOnce {
            preempted: bool,
        }
        impl Scheduler for PreemptOnce {
            fn name(&self) -> &str {
                "preempt-once"
            }
            fn react(
                &mut self,
                ctx: &SchedulerContext<'_>,
                event: SchedulerEvent,
            ) -> Vec<Decision> {
                match event {
                    SchedulerEvent::Timer if !self.preempted => {
                        self.preempted = true;
                        let id = ctx.running[0].job.id;
                        vec![
                            Decision::Preempt { job_id: id },
                            Decision::Wakeup { at: ctx.now + 50.0 },
                        ]
                    }
                    SchedulerEvent::Timer => {
                        // restart whatever is queued
                        ctx.queue
                            .iter()
                            .map(|q| Decision::start(q.job.id))
                            .collect()
                    }
                    SchedulerEvent::JobArrived { job_id } => {
                        vec![
                            Decision::start(job_id),
                            Decision::Wakeup { at: ctx.now + 40.0 },
                        ]
                    }
                    _ => Vec::new(),
                }
            }
        }
        let jobs = rigid_jobs(&[(1, 0.0, 100.0, 32)]);
        let result =
            Simulation::new(SimConfig::new(64), jobs).run(&mut PreemptOnce { preempted: false });
        assert_eq!(result.finished.len(), 1);
        let f = &result.finished[0];
        // Ran 0..40 (40 s of work), preempted 40..90, resumed at 90 for the remaining 60 s.
        assert!((f.end - 150.0).abs() < 1.0, "end {}", f.end);
        // A preemption is not a restart, but the first start is still the original.
        assert_eq!(f.first_start, 0.0);
        assert_eq!(f.start, 90.0);
    }

    #[test]
    fn duplicate_wakeups_are_coalesced() {
        // A policy that re-requests the same quantum expiry from every react, the
        // way a quantum-based gang scheduler would: without coalescing the event
        // heap grows by one timer per react; with it, one timer per distinct
        // instant fires exactly once.
        struct SpamWakeups {
            timers_seen: usize,
        }
        impl Scheduler for SpamWakeups {
            fn name(&self) -> &str {
                "spam-wakeups"
            }
            fn react(
                &mut self,
                ctx: &SchedulerContext<'_>,
                event: SchedulerEvent,
            ) -> Vec<Decision> {
                if matches!(event, SchedulerEvent::Timer) {
                    self.timers_seen += 1;
                }
                let mut out: Vec<Decision> = ctx
                    .queue
                    .iter()
                    .map(|q| Decision::start(q.job.id))
                    .collect();
                // Same absolute expiry requested many times over (but only while
                // it is still in the future — re-requesting the current instant
                // from inside its own timer would loop forever, in any engine).
                if ctx.now < 500.0 {
                    for _ in 0..10 {
                        out.push(Decision::Wakeup { at: 500.0 });
                    }
                }
                out
            }
        }
        let jobs = rigid_jobs(&[(1, 0.0, 100.0, 8), (2, 10.0, 100.0, 8)]);
        let mut sched = SpamWakeups { timers_seen: 0 };
        let result = Simulation::new(SimConfig::new(64), jobs).run(&mut sched);
        assert_eq!(result.finished.len(), 2);
        // Every react requested the same instant 10 times; exactly one fired.
        assert_eq!(sched.timers_seen, 1);
        assert!(result.coalesced_wakeups > 0);
        assert_eq!(result.rejected_decisions, 0);
    }

    #[test]
    fn moldable_job_speedup_respected() {
        use psbench_workload::flexible::DowneySpeedup;
        struct GiveAll;
        impl Scheduler for GiveAll {
            fn name(&self) -> &str {
                "give-all"
            }
            fn react(&mut self, ctx: &SchedulerContext<'_>, _e: SchedulerEvent) -> Vec<Decision> {
                ctx.queue
                    .iter()
                    .map(|q| Decision::start_on(q.job.id, 32))
                    .collect()
            }
        }
        let job = SimJob::rigid(1, 0.0, 3200.0, 1).moldable(DowneySpeedup {
            a: 64.0,
            sigma: 0.0,
        });
        let result = Simulation::new(SimConfig::new(64), vec![job]).run(&mut GiveAll);
        // 3200 s of sequential work on 32 ideal processors -> 100 s.
        assert!((result.finished[0].end - 100.0).abs() < 1e-6);
    }

    #[test]
    fn max_time_stops_the_simulation() {
        let jobs = rigid_jobs(&[(1, 0.0, 1000.0, 8), (2, 5000.0, 10.0, 8)]);
        let mut config = SimConfig::new(64);
        config.max_time = Some(500.0);
        let result = Simulation::new(config, jobs).run(&mut TestFcfs);
        assert_eq!(result.finished.len(), 0);
        assert!(result.unfinished >= 1);
        assert!(result.end_time <= 500.0 + 1e-9);
    }

    #[test]
    fn deterministic_results() {
        let jobs: Vec<SimJob> = (0..200)
            .map(|i| {
                SimJob::rigid(
                    i as u64 + 1,
                    (i * 13 % 997) as f64,
                    50.0 + (i % 7) as f64 * 100.0,
                    1 + (i % 32) as u32,
                )
            })
            .collect();
        let a = Simulation::new(SimConfig::new(64), jobs.clone()).run(&mut TestFcfs);
        let b = Simulation::new(SimConfig::new(64), jobs).run(&mut TestFcfs);
        assert_eq!(a.finished, b.finished);
        assert_eq!(a.idle_while_queued, b.idle_while_queued);
    }

    #[test]
    fn reference_engine_is_bit_identical() {
        // A quick inline check of the property the proptest suite verifies at
        // scale: both engines produce the same SimulationResult, bit for bit.
        let jobs: Vec<SimJob> = (0..300)
            .map(|i| {
                SimJob::rigid(
                    i as u64 + 1,
                    (i * 29 % 777) as f64 / 8.0,
                    20.0 + (i % 11) as f64 * 333.0 / 7.0,
                    1 + (i % 61) as u32,
                )
            })
            .collect();
        let calendar = Simulation::new(SimConfig::new(64), jobs.clone()).run(&mut TestFcfs);
        let reference = Simulation::new_reference(SimConfig::new(64), jobs).run(&mut TestFcfs);
        assert_eq!(calendar, reference);
        assert!(calendar.events_processed > 0);
    }

    /// Drive an online session the way a serve shard would: submit each job
    /// once the clock frontier reaches its submit time, releasing the
    /// timeline behind it, then drain.
    fn online_replay(jobs: &[SimJob], scheduler: &mut dyn Scheduler) -> SimulationResult {
        let mut sim = Simulation::new_online(SimConfig::new(64));
        sim.begin(scheduler);
        let mut sorted: Vec<SimJob> = jobs.to_vec();
        sorted.sort_by(|a, b| a.submit.total_cmp(&b.submit).then(a.id.cmp(&b.id)));
        for job in sorted {
            let t = job.submit.max(0.0);
            sim.advance_released(scheduler, t);
            sim.submit(job).unwrap();
        }
        sim.finish(scheduler)
    }

    #[test]
    fn online_session_matches_offline_run_bit_for_bit() {
        // The cornerstone invariant of `psbench serve`: a scripted online
        // session in as-fast-as-possible mode reproduces the offline run
        // exactly, including every float integral.
        let jobs: Vec<SimJob> = (0..300)
            .map(|i| {
                SimJob::rigid(
                    i as u64 + 1,
                    (i * 41 % 631) as f64,
                    15.0 + (i % 13) as f64 * 77.0,
                    1 + (i % 48) as u32,
                )
            })
            .collect();
        let mut sorted = jobs.clone();
        sorted.sort_by(|a, b| a.submit.total_cmp(&b.submit).then(a.id.cmp(&b.id)));
        let offline = Simulation::new(SimConfig::new(64), sorted).run(&mut TestFcfs);
        let online = online_replay(&jobs, &mut TestFcfs);
        assert_eq!(offline, online);
    }

    #[test]
    fn online_equal_submit_times_batch_like_offline() {
        // Several jobs sharing one submit instant must enter the queue in one
        // arrival batch even though they are submitted one call at a time:
        // the strict `frontier - EPS` advance must not let the first arrival
        // (or a wakeup within the fuzz radius) fire before its siblings land.
        struct WakeupFcfs;
        impl Scheduler for WakeupFcfs {
            fn name(&self) -> &str {
                "wakeup-fcfs"
            }
            fn react(&mut self, ctx: &SchedulerContext<'_>, _e: SchedulerEvent) -> Vec<Decision> {
                let mut free = ctx.free_capacity();
                let mut out = Vec::new();
                for q in ctx.queue.iter() {
                    if (q.job.procs as f64) <= free + 1e-9 {
                        free -= q.job.procs as f64;
                        out.push(Decision::start(q.job.id));
                    } else {
                        break;
                    }
                }
                // Arm a timer at every instant an arrival could share — but
                // only while work remains, or the self-re-arming chain would
                // keep the event heap non-empty forever and the run would
                // never terminate. Both runs see identical contexts, so the
                // re-arm pattern is identical on both sides.
                if !ctx.queue.is_empty() || ctx.used_procs > 0.0 {
                    out.push(Decision::Wakeup { at: ctx.now + 10.0 });
                }
                out
            }
        }
        let jobs = rigid_jobs(&[
            (1, 0.0, 100.0, 40),
            (2, 10.0, 50.0, 40),
            (3, 10.0, 50.0, 40),
            (4, 10.0, 25.0, 8),
            (5, 20.0, 25.0, 8),
        ]);
        let offline = Simulation::new(SimConfig::new(64), jobs.clone()).run(&mut WakeupFcfs);
        let online = online_replay(&jobs, &mut WakeupFcfs);
        assert_eq!(offline, online);
    }

    #[test]
    fn online_submit_validation() {
        let mut sim = Simulation::new_online(SimConfig::new(64));
        sim.begin(&mut TestFcfs);
        sim.submit(SimJob::rigid(1, 5.0, 10.0, 4)).unwrap();
        assert_eq!(
            sim.submit(SimJob::rigid(1, 6.0, 10.0, 4)),
            Err(OnlineError::DuplicateId(1))
        );
        assert!(matches!(
            sim.submit(SimJob::rigid(2, f64::NAN, 10.0, 4)),
            Err(OnlineError::BadSubmitTime(_))
        ));
        sim.advance_released(&mut TestFcfs, 100.0);
        assert_eq!(
            sim.submit(SimJob::rigid(3, 50.0, 10.0, 4)),
            Err(OnlineError::PastSubmit {
                submitted: 50.0,
                released: 100.0
            })
        );
        // Offline simulations refuse the online API outright.
        let mut offline = Simulation::new(SimConfig::new(64), Vec::new());
        assert_eq!(
            offline.submit(SimJob::rigid(9, 0.0, 1.0, 1)),
            Err(OnlineError::NotOnline)
        );
    }

    #[test]
    fn online_cancel_queued_and_pending_jobs() {
        let mut sim = Simulation::new_online(SimConfig::new(64));
        let s = &mut TestFcfs;
        sim.begin(s);
        // Fill the machine so later jobs queue rather than start.
        sim.submit(SimJob::rigid(1, 0.0, 100.0, 64)).unwrap();
        sim.submit(SimJob::rigid(2, 10.0, 50.0, 32)).unwrap();
        sim.submit(SimJob::rigid(3, 500.0, 50.0, 32)).unwrap();
        sim.advance_released(s, 20.0);
        assert!(matches!(sim.job_state(2), Some(JobState::Queued { .. })));
        assert!(matches!(sim.job_state(3), Some(JobState::Pending { .. })));
        // Cancel one queued job and one pending arrival.
        sim.cancel(s, 2).unwrap();
        sim.cancel(s, 3).unwrap();
        assert_eq!(sim.job_state(2), Some(JobState::Cancelled));
        assert_eq!(sim.job_state(3), Some(JobState::Cancelled));
        // Running and unknown jobs are refused; double-cancel is refused.
        assert_eq!(sim.cancel(s, 1), Err(OnlineError::JobRunning(1)));
        assert_eq!(sim.cancel(s, 99), Err(OnlineError::UnknownJob(99)));
        assert_eq!(sim.cancel(s, 2), Err(OnlineError::JobDone(2)));
        let result = sim.finish(s);
        // Only job 1 ever ran; the cancelled jobs left no residue.
        assert_eq!(result.finished.len(), 1);
        assert_eq!(result.finished[0].id, 1);
        assert_eq!(result.unfinished, 0);
    }

    #[test]
    fn probe_clone_does_not_perturb_the_live_session() {
        let mut sim = Simulation::new_online(SimConfig::new(64));
        let s = &mut TestFcfs;
        sim.begin(s);
        sim.submit(SimJob::rigid(1, 0.0, 100.0, 64)).unwrap();
        sim.submit(SimJob::rigid(2, 5.0, 30.0, 16)).unwrap();
        sim.advance_released(s, 10.0);
        let before_now = sim.now();
        let before_queue = sim.queue_len();
        // A what-if probe: clone, run the clone to completion.
        let clone = sim.clone();
        let probed = clone.finish(&mut TestFcfs);
        assert_eq!(probed.finished.len(), 2);
        // The live session is untouched.
        assert_eq!(sim.now(), before_now);
        assert_eq!(sim.queue_len(), before_queue);
        let live = sim.finish(s);
        assert_eq!(live.finished.len(), 2);
    }

    #[test]
    fn zero_runtime_jobs_complete_immediately() {
        let jobs = rigid_jobs(&[(1, 5.0, 0.0, 8), (2, 5.0, 10.0, 8)]);
        let result = Simulation::new(SimConfig::new(64), jobs).run(&mut TestFcfs);
        assert_eq!(result.finished.len(), 2);
        let f = result.finished.iter().find(|f| f.id == 1).unwrap();
        assert_eq!(f.start, 5.0);
        assert_eq!(f.end, 5.0);
    }
}
