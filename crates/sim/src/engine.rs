//! The discrete-event simulation engine.
//!
//! The engine owns the clock, the event queue, the job queue, the running set and
//! the cluster. Running jobs progress at a *rate* (time share × speedup), so both
//! space sharing (dedicated processors) and time sharing (gang scheduling) are
//! simulated by the same loop: the next event is either the earliest external event
//! (arrival, outage, timer) or the earliest completion at current rates.
//!
//! The engine also realizes the paper's two workload-realism extensions:
//!
//! * **feedback** (Section 2.2): jobs with a preceding-job dependency are released
//!   into the queue only after their predecessor terminates plus the think time;
//! * **outages** (Section 2.2): the standard outage log drives capacity changes;
//!   announced outages generate advance-notice events, surprise failures kill the
//!   most recently started jobs, which restart from scratch.

use crate::cluster::Cluster;
use crate::job::{FinishedJob, QueuedJob, RunningJob, SimJob};
use crate::result::SimulationResult;
use crate::scheduler::{Decision, Scheduler, SchedulerContext, SchedulerEvent};
use psbench_swf::outage::OutageLog;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// What to do with jobs killed by an outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum OutagePolicy {
    /// Requeue the killed job; it restarts from the beginning (the paper: "any job
    /// running on that node would have to be restarted").
    #[default]
    KillAndRequeue,
    /// The killed job is lost (counted, not requeued).
    KillAndDiscard,
}

/// Simulation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Machine size in processors.
    pub machine_size: u32,
    /// Outage log driving capacity changes, if any.
    pub outages: Option<OutageLog>,
    /// Policy for jobs killed by outages.
    pub outage_policy: OutagePolicy,
    /// If true, preceding-job / think-time dependencies are honoured (closed loop);
    /// if false they are ignored and the recorded submit times are replayed (open loop).
    pub closed_loop: bool,
    /// Hard stop: events after this time are not processed (None = run to completion).
    pub max_time: Option<f64>,
}

impl SimConfig {
    /// A simple configuration: the given machine, no outages, open loop.
    pub fn new(machine_size: u32) -> Self {
        SimConfig {
            machine_size,
            outages: None,
            outage_policy: OutagePolicy::default(),
            closed_loop: false,
            max_time: None,
        }
    }

    /// Enable closed-loop (feedback) submission.
    pub fn closed_loop(mut self) -> Self {
        self.closed_loop = true;
        self
    }

    /// Attach an outage log.
    pub fn with_outages(mut self, outages: OutageLog) -> Self {
        self.outages = Some(outages);
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    Arrival(usize),
    OutageAnnounce(usize),
    OutageStart(usize),
    OutageEnd(usize),
    Wakeup,
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for the max-heap: earliest time (then lowest seq) pops first.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

const EPS: f64 = 1e-6;

/// The simulator.
pub struct Simulation {
    config: SimConfig,
    jobs: Vec<SimJob>,
    cluster: Cluster,
    events: BinaryHeap<Event>,
    seq: u64,
    now: f64,
    queue: Vec<QueuedJob>,
    running: Vec<RunningJob>,
    finished: Vec<FinishedJob>,
    discarded: Vec<u64>,
    dependents: HashMap<u64, Vec<usize>>,
    idle_while_queued: f64,
    busy_integral: f64,
    lost_node_seconds: f64,
    kills: usize,
    rejected_decisions: usize,
    outage_down: Vec<u32>,
}

impl Simulation {
    /// Create a simulation of the given jobs under the given configuration.
    pub fn new(config: SimConfig, jobs: Vec<SimJob>) -> Self {
        let cluster = Cluster::new(config.machine_size);
        let mut sim = Simulation {
            cluster,
            events: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
            queue: Vec::new(),
            running: Vec::new(),
            finished: Vec::with_capacity(jobs.len()),
            discarded: Vec::new(),
            dependents: HashMap::new(),
            idle_while_queued: 0.0,
            busy_integral: 0.0,
            lost_node_seconds: 0.0,
            kills: 0,
            rejected_decisions: 0,
            outage_down: Vec::new(),
            config,
            jobs,
        };
        sim.seed_events();
        sim
    }

    /// Convenience: build the job list from an SWF log and simulate it.
    pub fn from_log(config: SimConfig, log: &psbench_swf::SwfLog) -> Self {
        Simulation::new(config, SimJob::from_log(log))
    }

    /// Build the job list by draining a streaming [`psbench_swf::JobSource`]
    /// — an incrementally parsed archive trace, a lazily generated model
    /// workload, or an in-memory log — and simulate it. Equivalent to
    /// [`Simulation::from_log`] over the collected log, but the full SWF
    /// record vector is never materialized.
    pub fn from_source<S: psbench_swf::JobSource>(
        config: SimConfig,
        source: S,
    ) -> Result<Self, psbench_swf::ParseError> {
        Ok(Simulation::new(config, SimJob::from_source(source)?))
    }

    fn push_event(&mut self, time: f64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Event { time, seq, kind });
    }

    fn seed_events(&mut self) {
        let ids: std::collections::HashSet<u64> = self.jobs.iter().map(|j| j.id).collect();
        for i in 0..self.jobs.len() {
            let job = &self.jobs[i];
            let dependent = self.config.closed_loop
                && job
                    .preceding
                    .map(|p| ids.contains(&p) && p != job.id)
                    .unwrap_or(false);
            if dependent {
                let pred = job.preceding.unwrap();
                self.dependents.entry(pred).or_default().push(i);
            } else {
                let t = job.submit.max(0.0);
                self.push_event(t, EventKind::Arrival(i));
            }
        }
        if let Some(outages) = self.config.outages.clone() {
            self.outage_down = vec![0; outages.outages.len()];
            for (i, o) in outages.outages.iter().enumerate() {
                if let Some(a) = o.announced_time {
                    if (a as f64) < o.start_time as f64 {
                        self.push_event(a as f64, EventKind::OutageAnnounce(i));
                    }
                }
                self.push_event(o.start_time as f64, EventKind::OutageStart(i));
                self.push_event(o.end_time as f64, EventKind::OutageEnd(i));
            }
        }
    }

    fn next_completion_time(&self) -> f64 {
        self.running
            .iter()
            .map(|r| self.now + r.time_to_completion())
            .fold(f64::INFINITY, f64::min)
    }

    fn advance_to(&mut self, t: f64) {
        let dt = (t - self.now).max(0.0);
        if dt > 0.0 {
            let used: f64 = self.running.iter().map(|r| r.proc_share()).sum();
            self.busy_integral += used * dt;
            self.lost_node_seconds += self.cluster.down_procs as f64 * dt;
            if !self.queue.is_empty() {
                let idle = (self.cluster.available_procs() as f64 - used).max(0.0);
                self.idle_while_queued += idle * dt;
            }
            for r in &mut self.running {
                r.remaining_work -= r.progress_rate() * dt;
            }
        }
        self.now = t;
    }

    fn complete_finished_jobs(&mut self) -> Vec<u64> {
        let mut completed = Vec::new();
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].remaining_work <= EPS {
                let r = self.running.remove(i);
                let finished = FinishedJob {
                    id: r.job.id,
                    submit: r.queued_at,
                    start: r.started_at,
                    first_start: r.first_started_at,
                    end: self.now,
                    procs: r.procs,
                    restarts: r.restarts,
                    user: r.job.user,
                };
                completed.push(r.job.id);
                // Release dependents (closed loop).
                if let Some(deps) = self.dependents.remove(&r.job.id) {
                    for idx in deps {
                        let think = self.jobs[idx].think_time.max(0.0);
                        self.push_event(self.now + think, EventKind::Arrival(idx));
                    }
                }
                self.finished.push(finished);
            } else {
                i += 1;
            }
        }
        completed
    }

    fn kill_excess_jobs(&mut self) -> usize {
        let mut killed = 0;
        loop {
            let used: f64 = self.running.iter().map(|r| r.proc_share()).sum();
            if used <= self.cluster.available_procs() as f64 + EPS {
                break;
            }
            // Kill the most recently started job (it has lost the least work).
            let victim_idx = self
                .running
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.started_at.total_cmp(&b.1.started_at))
                .map(|(i, _)| i);
            match victim_idx {
                Some(i) => {
                    let r = self.running.remove(i);
                    killed += 1;
                    self.kills += 1;
                    match self.config.outage_policy {
                        OutagePolicy::KillAndRequeue => {
                            self.queue.push(QueuedJob {
                                job: r.job.clone(),
                                queued_at: r.queued_at,
                                restarts: r.restarts + 1,
                            });
                        }
                        OutagePolicy::KillAndDiscard => {
                            self.discarded.push(r.job.id);
                        }
                    }
                }
                None => break,
            }
        }
        killed
    }

    fn context(&self) -> SchedulerContext<'_> {
        SchedulerContext {
            now: self.now,
            cluster: &self.cluster,
            queue: &self.queue,
            running: &self.running,
        }
    }

    fn apply_decisions(&mut self, decisions: Vec<Decision>) {
        for d in decisions {
            match d {
                Decision::Start {
                    job_id,
                    procs,
                    share,
                } => {
                    let share = if share.is_finite() {
                        share.clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    let pos = self.queue.iter().position(|q| q.job.id == job_id);
                    let (pos, ok) = match pos {
                        Some(p) => {
                            let job = &self.queue[p].job;
                            let procs = procs.unwrap_or(job.procs).max(1);
                            let used: f64 = self.running.iter().map(|r| r.proc_share()).sum();
                            let free = self.cluster.available_procs() as f64
                                - used
                                - self.cluster.reserved_at(self.now) as f64;
                            let fits = share > 0.0 && procs as f64 * share <= free + EPS;
                            (p, fits.then_some(procs))
                        }
                        None => (0, None),
                    };
                    match ok {
                        Some(procs) => {
                            let q = self.queue.remove(pos);
                            self.running.push(RunningJob {
                                remaining_work: q.job.work,
                                queued_at: q.queued_at,
                                procs,
                                share,
                                started_at: self.now,
                                first_started_at: if q.restarts == 0 {
                                    self.now
                                } else {
                                    // Keep the original first start if known; the queue does
                                    // not track it, so approximate with the current time.
                                    self.now
                                },
                                restarts: q.restarts,
                                job: q.job,
                            });
                        }
                        None => self.rejected_decisions += 1,
                    }
                }
                Decision::SetShare { job_id, share } => {
                    let share = if share.is_finite() {
                        share.clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    let used_others: f64 = self
                        .running
                        .iter()
                        .filter(|r| r.job.id != job_id)
                        .map(|r| r.proc_share())
                        .sum();
                    match self.running.iter_mut().find(|r| r.job.id == job_id) {
                        Some(r)
                            if share > 0.0
                                && used_others + r.procs as f64 * share
                                    <= self.cluster.available_procs() as f64 + EPS =>
                        {
                            r.share = share;
                        }
                        _ => self.rejected_decisions += 1,
                    }
                }
                Decision::Preempt { job_id } => {
                    match self.running.iter().position(|r| r.job.id == job_id) {
                        Some(i) => {
                            let mut r = self.running.remove(i);
                            // Remaining work is preserved (preemption, not a kill).
                            r.job.work = r.remaining_work.max(0.0);
                            self.queue.push(QueuedJob {
                                job: r.job,
                                queued_at: r.queued_at,
                                restarts: r.restarts,
                            });
                        }
                        None => self.rejected_decisions += 1,
                    }
                }
                Decision::Wakeup { at } => {
                    if at.is_finite() && at >= self.now {
                        self.push_event(at, EventKind::Wakeup);
                    } else {
                        self.rejected_decisions += 1;
                    }
                }
            }
        }
    }

    fn consult(&mut self, scheduler: &mut dyn Scheduler, event: SchedulerEvent) {
        let decisions = scheduler.react(&self.context(), event);
        self.apply_decisions(decisions);
    }

    /// Run the simulation to completion under the given scheduler and return the
    /// results.
    pub fn run(mut self, scheduler: &mut dyn Scheduler) -> SimulationResult {
        self.consult(scheduler, SchedulerEvent::Start);
        loop {
            if let Some(limit) = self.config.max_time {
                if self.now >= limit {
                    break;
                }
            }
            let next_event = self.events.peek().map(|e| e.time).unwrap_or(f64::INFINITY);
            let next_completion = self.next_completion_time();
            let t = next_event.min(next_completion);
            if !t.is_finite() {
                break; // nothing left that can happen
            }
            let t = match self.config.max_time {
                Some(limit) => t.min(limit),
                None => t,
            };
            self.advance_to(t);

            // Completions first (they free capacity for decisions triggered below).
            let completed = self.complete_finished_jobs();
            for id in completed {
                self.consult(scheduler, SchedulerEvent::JobCompleted { job_id: id });
            }

            // External events due now.
            while let Some(e) = self.events.peek() {
                if e.time > self.now + EPS {
                    break;
                }
                let e = self.events.pop().unwrap();
                match e.kind {
                    EventKind::Arrival(idx) => {
                        let job = self.jobs[idx].clone();
                        self.queue.push(QueuedJob {
                            queued_at: self.now.max(job.submit.min(self.now)),
                            job,
                            restarts: 0,
                        });
                        // The effective submission time is "now" (for dependent jobs it
                        // is the release time); keep it in queued_at.
                        let id = self.queue.last().unwrap().job.id;
                        if let Some(q) = self.queue.last_mut() {
                            q.queued_at = self.now;
                        }
                        self.consult(scheduler, SchedulerEvent::JobArrived { job_id: id });
                    }
                    EventKind::OutageAnnounce(i) => {
                        let (start, end, procs) = {
                            let o = &self.config.outages.as_ref().unwrap().outages[i];
                            (
                                o.start_time as f64,
                                o.end_time as f64,
                                o.effective_nodes_affected(),
                            )
                        };
                        self.consult(
                            scheduler,
                            SchedulerEvent::OutageAnnounced { start, end, procs },
                        );
                    }
                    EventKind::OutageStart(i) => {
                        let procs = self.config.outages.as_ref().unwrap().outages[i]
                            .effective_nodes_affected();
                        let taken = self.cluster.take_down(procs);
                        self.outage_down[i] = taken;
                        let killed = self.kill_excess_jobs();
                        if killed > 0 {
                            self.consult(scheduler, SchedulerEvent::JobsKilled { count: killed });
                        }
                        self.consult(scheduler, SchedulerEvent::OutageStarted { procs: taken });
                    }
                    EventKind::OutageEnd(i) => {
                        let taken = self.outage_down[i];
                        let restored = self.cluster.bring_up(taken);
                        self.outage_down[i] = 0;
                        self.consult(scheduler, SchedulerEvent::OutageEnded { procs: restored });
                    }
                    EventKind::Wakeup => {
                        self.consult(scheduler, SchedulerEvent::Timer);
                    }
                }
            }
        }

        SimulationResult {
            scheduler: scheduler.name().to_string(),
            machine_size: self.config.machine_size,
            finished: self.finished,
            unfinished: self.queue.len() + self.running.len(),
            discarded: self.discarded.len(),
            idle_while_queued: self.idle_while_queued,
            busy_integral: self.busy_integral,
            lost_node_seconds: self.lost_node_seconds,
            kills: self.kills,
            rejected_decisions: self.rejected_decisions,
            end_time: self.now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbench_swf::outage::{OutageKind, OutageRecord};

    /// A minimal first-come-first-served policy used to exercise the engine.
    struct TestFcfs;
    impl Scheduler for TestFcfs {
        fn name(&self) -> &str {
            "test-fcfs"
        }
        fn react(&mut self, ctx: &SchedulerContext<'_>, _event: SchedulerEvent) -> Vec<Decision> {
            let mut free = ctx.free_capacity();
            let mut out = Vec::new();
            for q in ctx.queue {
                if (q.job.procs as f64) <= free + 1e-9 {
                    free -= q.job.procs as f64;
                    out.push(Decision::start(q.job.id));
                } else {
                    break;
                }
            }
            out
        }
    }

    fn rigid_jobs(specs: &[(u64, f64, f64, u32)]) -> Vec<SimJob> {
        specs
            .iter()
            .map(|&(id, submit, runtime, procs)| SimJob::rigid(id, submit, runtime, procs))
            .collect()
    }

    #[test]
    fn single_job_runs_immediately() {
        let jobs = rigid_jobs(&[(1, 0.0, 100.0, 16)]);
        let result = Simulation::new(SimConfig::new(64), jobs).run(&mut TestFcfs);
        assert_eq!(result.finished.len(), 1);
        let f = &result.finished[0];
        assert_eq!(f.submit, 0.0);
        assert_eq!(f.start, 0.0);
        assert_eq!(f.end, 100.0);
        assert_eq!(result.unfinished, 0);
        assert_eq!(result.kills, 0);
        assert_eq!(result.rejected_decisions, 0);
    }

    #[test]
    fn jobs_queue_when_machine_full() {
        // Two 64-proc jobs on a 64-proc machine: the second waits for the first.
        let jobs = rigid_jobs(&[(1, 0.0, 100.0, 64), (2, 10.0, 50.0, 64)]);
        let result = Simulation::new(SimConfig::new(64), jobs).run(&mut TestFcfs);
        assert_eq!(result.finished.len(), 2);
        let second = result.finished.iter().find(|f| f.id == 2).unwrap();
        assert_eq!(second.start, 100.0);
        assert_eq!(second.end, 150.0);
        assert!((second.wait() - 90.0).abs() < 1e-9);
        // While job 2 waited (10..100), the whole machine was busy: no idle-while-queued.
        assert!(result.idle_while_queued.abs() < 1e-6);
    }

    #[test]
    fn fcfs_blocks_small_jobs_behind_wide_job() {
        // A wide job at the head blocks a narrow one even though it would fit: the
        // engine leaves that choice to the policy, so FCFS shows loss of capacity.
        let jobs = rigid_jobs(&[(1, 0.0, 100.0, 48), (2, 1.0, 100.0, 32), (3, 2.0, 10.0, 8)]);
        let result = Simulation::new(SimConfig::new(64), jobs).run(&mut TestFcfs);
        let third = result.finished.iter().find(|f| f.id == 3).unwrap();
        assert!(third.start >= 100.0);
        assert!(result.idle_while_queued > 0.0);
    }

    #[test]
    fn parallel_execution_when_capacity_allows() {
        let jobs = rigid_jobs(&[
            (1, 0.0, 100.0, 16),
            (2, 0.0, 100.0, 16),
            (3, 0.0, 100.0, 16),
        ]);
        let result = Simulation::new(SimConfig::new(64), jobs).run(&mut TestFcfs);
        assert!(result.finished.iter().all(|f| f.start == 0.0));
        assert!(result.finished.iter().all(|f| f.end == 100.0));
        assert_eq!(result.end_time, 100.0);
    }

    #[test]
    fn closed_loop_releases_dependents_after_completion() {
        let mut jobs = rigid_jobs(&[(1, 0.0, 100.0, 8)]);
        let mut dependent = SimJob::rigid(2, 5.0, 50.0, 8);
        dependent.preceding = Some(1);
        dependent.think_time = 30.0;
        jobs.push(dependent);
        let result =
            Simulation::new(SimConfig::new(64).closed_loop(), jobs.clone()).run(&mut TestFcfs);
        let dep = result.finished.iter().find(|f| f.id == 2).unwrap();
        // released at 100 + 30 = 130, starts immediately
        assert_eq!(dep.submit, 130.0);
        assert_eq!(dep.start, 130.0);
        // Open loop ignores the dependency and uses the recorded submit time.
        let open = Simulation::new(SimConfig::new(64), jobs).run(&mut TestFcfs);
        let dep_open = open.finished.iter().find(|f| f.id == 2).unwrap();
        assert_eq!(dep_open.submit, 5.0);
    }

    #[test]
    fn dependency_on_missing_job_is_ignored() {
        let mut job = SimJob::rigid(1, 10.0, 20.0, 4);
        job.preceding = Some(999);
        let result = Simulation::new(SimConfig::new(8).closed_loop(), vec![job]).run(&mut TestFcfs);
        assert_eq!(result.finished.len(), 1);
        assert_eq!(result.finished[0].submit, 10.0);
    }

    #[test]
    fn outage_kills_and_requeues_running_job() {
        let outages = OutageLog::from_records(vec![OutageRecord {
            outage_id: 0,
            announced_time: None,
            start_time: 50,
            end_time: 150,
            kind: OutageKind::CpuFailure,
            nodes_affected: Some(64),
            components: vec![],
        }]);
        let jobs = rigid_jobs(&[(1, 0.0, 100.0, 64)]);
        let config = SimConfig::new(64).with_outages(outages);
        let result = Simulation::new(config, jobs).run(&mut TestFcfs);
        assert_eq!(result.kills, 1);
        assert_eq!(result.finished.len(), 1);
        let f = &result.finished[0];
        // Job restarted after the outage ended and ran its full 100 s again.
        assert_eq!(f.start, 150.0);
        assert_eq!(f.end, 250.0);
        assert_eq!(f.restarts, 1);
        assert!(result.lost_node_seconds >= 64.0 * 100.0 - 1.0);
    }

    #[test]
    fn outage_discard_policy_drops_jobs() {
        let outages = OutageLog::from_records(vec![OutageRecord {
            outage_id: 0,
            announced_time: None,
            start_time: 50,
            end_time: 60,
            kind: OutageKind::CpuFailure,
            nodes_affected: Some(64),
            components: vec![],
        }]);
        let mut config = SimConfig::new(64).with_outages(outages);
        config.outage_policy = OutagePolicy::KillAndDiscard;
        let jobs = rigid_jobs(&[(1, 0.0, 100.0, 64)]);
        let result = Simulation::new(config, jobs).run(&mut TestFcfs);
        assert_eq!(result.finished.len(), 0);
        assert_eq!(result.discarded, 1);
    }

    #[test]
    fn partial_outage_only_kills_what_does_not_fit() {
        let outages = OutageLog::from_records(vec![OutageRecord {
            outage_id: 0,
            announced_time: Some(0),
            start_time: 50,
            end_time: 1000,
            kind: OutageKind::Maintenance,
            nodes_affected: Some(32),
            components: vec![],
        }]);
        // Two 16-proc jobs: after losing 32 of 64 processors both still fit.
        let jobs = rigid_jobs(&[(1, 0.0, 100.0, 16), (2, 0.0, 100.0, 16)]);
        let config = SimConfig::new(64).with_outages(outages);
        let result = Simulation::new(config, jobs).run(&mut TestFcfs);
        assert_eq!(result.kills, 0);
        assert!(result.finished.iter().all(|f| f.end == 100.0));
    }

    #[test]
    fn oversubscribing_decision_is_rejected() {
        struct Greedy;
        impl Scheduler for Greedy {
            fn name(&self) -> &str {
                "greedy"
            }
            fn react(&mut self, ctx: &SchedulerContext<'_>, _e: SchedulerEvent) -> Vec<Decision> {
                // Try to start everything regardless of capacity.
                ctx.queue
                    .iter()
                    .map(|q| Decision::start(q.job.id))
                    .collect()
            }
        }
        let jobs = rigid_jobs(&[(1, 0.0, 100.0, 64), (2, 0.0, 100.0, 64)]);
        let result = Simulation::new(SimConfig::new(64), jobs).run(&mut Greedy);
        assert_eq!(result.finished.len(), 2);
        assert!(result.rejected_decisions > 0);
        // The engine still made progress correctly: second job ran after the first.
        let ends: Vec<f64> = result.finished.iter().map(|f| f.end).collect();
        assert!(ends.contains(&100.0) && ends.contains(&200.0));
    }

    #[test]
    fn time_sharing_two_jobs_on_same_processors() {
        struct TimeShare;
        impl Scheduler for TimeShare {
            fn name(&self) -> &str {
                "timeshare"
            }
            fn react(&mut self, ctx: &SchedulerContext<'_>, _e: SchedulerEvent) -> Vec<Decision> {
                // Give every queued job the whole machine at share 1/(k+1).
                let total = ctx.queue.len() + ctx.running.len();
                if total == 0 {
                    return Vec::new();
                }
                let share = 1.0 / total as f64;
                let mut out: Vec<Decision> = ctx
                    .running
                    .iter()
                    .map(|r| Decision::SetShare {
                        job_id: r.job.id,
                        share,
                    })
                    .collect();
                for q in ctx.queue {
                    out.push(Decision::Start {
                        job_id: q.job.id,
                        procs: None,
                        share,
                    });
                }
                out
            }
        }
        // Two identical 100-second full-machine jobs, time shared: both finish at ~200.
        let jobs = rigid_jobs(&[(1, 0.0, 100.0, 64), (2, 0.0, 100.0, 64)]);
        let result = Simulation::new(SimConfig::new(64), jobs).run(&mut TimeShare);
        assert_eq!(result.finished.len(), 2);
        for f in &result.finished {
            assert!((f.end - 200.0).abs() < 1.0, "end {}", f.end);
            assert_eq!(f.start, 0.0);
        }
    }

    #[test]
    fn preemption_preserves_remaining_work() {
        struct PreemptOnce {
            preempted: bool,
        }
        impl Scheduler for PreemptOnce {
            fn name(&self) -> &str {
                "preempt-once"
            }
            fn react(
                &mut self,
                ctx: &SchedulerContext<'_>,
                event: SchedulerEvent,
            ) -> Vec<Decision> {
                match event {
                    SchedulerEvent::Timer if !self.preempted => {
                        self.preempted = true;
                        let id = ctx.running[0].job.id;
                        vec![
                            Decision::Preempt { job_id: id },
                            Decision::Wakeup { at: ctx.now + 50.0 },
                        ]
                    }
                    SchedulerEvent::Timer => {
                        // restart whatever is queued
                        ctx.queue
                            .iter()
                            .map(|q| Decision::start(q.job.id))
                            .collect()
                    }
                    SchedulerEvent::JobArrived { job_id } => {
                        vec![
                            Decision::start(job_id),
                            Decision::Wakeup { at: ctx.now + 40.0 },
                        ]
                    }
                    _ => Vec::new(),
                }
            }
        }
        let jobs = rigid_jobs(&[(1, 0.0, 100.0, 32)]);
        let result =
            Simulation::new(SimConfig::new(64), jobs).run(&mut PreemptOnce { preempted: false });
        assert_eq!(result.finished.len(), 1);
        let f = &result.finished[0];
        // Ran 0..40 (40 s of work), preempted 40..90, resumed at 90 for the remaining 60 s.
        assert!((f.end - 150.0).abs() < 1.0, "end {}", f.end);
    }

    #[test]
    fn moldable_job_speedup_respected() {
        use psbench_workload::flexible::DowneySpeedup;
        struct GiveAll;
        impl Scheduler for GiveAll {
            fn name(&self) -> &str {
                "give-all"
            }
            fn react(&mut self, ctx: &SchedulerContext<'_>, _e: SchedulerEvent) -> Vec<Decision> {
                ctx.queue
                    .iter()
                    .map(|q| Decision::start_on(q.job.id, 32))
                    .collect()
            }
        }
        let job = SimJob::rigid(1, 0.0, 3200.0, 1).moldable(DowneySpeedup {
            a: 64.0,
            sigma: 0.0,
        });
        let result = Simulation::new(SimConfig::new(64), vec![job]).run(&mut GiveAll);
        // 3200 s of sequential work on 32 ideal processors -> 100 s.
        assert!((result.finished[0].end - 100.0).abs() < 1e-6);
    }

    #[test]
    fn max_time_stops_the_simulation() {
        let jobs = rigid_jobs(&[(1, 0.0, 1000.0, 8), (2, 5000.0, 10.0, 8)]);
        let mut config = SimConfig::new(64);
        config.max_time = Some(500.0);
        let result = Simulation::new(config, jobs).run(&mut TestFcfs);
        assert_eq!(result.finished.len(), 0);
        assert!(result.unfinished >= 1);
        assert!(result.end_time <= 500.0 + 1e-9);
    }

    #[test]
    fn deterministic_results() {
        let jobs: Vec<SimJob> = (0..200)
            .map(|i| {
                SimJob::rigid(
                    i as u64 + 1,
                    (i * 13 % 997) as f64,
                    50.0 + (i % 7) as f64 * 100.0,
                    1 + (i % 32) as u32,
                )
            })
            .collect();
        let a = Simulation::new(SimConfig::new(64), jobs.clone()).run(&mut TestFcfs);
        let b = Simulation::new(SimConfig::new(64), jobs).run(&mut TestFcfs);
        assert_eq!(a.finished, b.finished);
        assert_eq!(a.idle_while_queued, b.idle_while_queued);
    }
}
