//! # psbench-sim — a discrete-event simulator for parallel job scheduling
//!
//! The evaluation methodology the paper standardizes — replaying standard workloads
//! (real or synthetic) through candidate schedulers and comparing standard metrics —
//! needs a simulator. This crate provides it:
//!
//! * [`job`] — job descriptions (rigid and moldable), queue / running / finished state.
//! * [`cluster`] — machine capacity, outages, and the advance-reservation calendar.
//! * [`scheduler`] — the policy interface: the simulator asks, the policy decides.
//! * [`engine`] — the event loop, with rate-based execution (space *and* time
//!   sharing), closed-loop feedback submission, and outage handling.
//! * [`result`] — per-run results, metric extraction, and SWF export of the executed
//!   schedule.
//!
//! Scheduling policies themselves live in the companion `psbench-sched` crate.

#![warn(missing_docs)]

pub mod cluster;
pub mod engine;
pub mod job;
pub mod queue;
pub mod result;
pub mod scheduler;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::cluster::{Cluster, Reservation};
    pub use crate::engine::{
        EngineKind, JobState, OnlineError, OnlineOp, OutagePolicy, SimConfig, Simulation,
    };
    pub use crate::job::{FinishedJob, QueuedJob, RunningJob, SimJob};
    pub use crate::queue::{BackfillScan, Candidates, JobQueue, QueueKey, StaircaseScan};
    pub use crate::result::SimulationResult;
    pub use crate::scheduler::{Decision, Scheduler, SchedulerContext, SchedulerEvent};
}

pub use prelude::*;
