//! Simulation results: per-job outcomes, aggregate metrics, and SWF export.

use crate::job::FinishedJob;
use psbench_metrics::{
    system_metrics, AggregateMetrics, JobOutcome, SystemMetrics, SystemObservation,
};
use psbench_swf::{CompletionStatus, SwfHeader, SwfLog, SwfRecord};
use serde::{Deserialize, Serialize};

/// Everything the simulator measured in one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationResult {
    /// Name of the scheduler that produced this run.
    pub scheduler: String,
    /// Machine size in processors.
    pub machine_size: u32,
    /// Jobs that completed, in completion order.
    pub finished: Vec<FinishedJob>,
    /// Jobs still queued or running when the simulation stopped.
    pub unfinished: usize,
    /// Jobs discarded by the outage policy.
    pub discarded: usize,
    /// Integral of idle processors × seconds accumulated while the queue was
    /// non-empty (the raw material of the loss-of-capacity metric).
    pub idle_while_queued: f64,
    /// Integral of busy processors × seconds (work actually performed).
    pub busy_integral: f64,
    /// Integral of down processors × seconds (capacity lost to outages).
    pub lost_node_seconds: f64,
    /// Number of outage-induced job kills.
    pub kills: usize,
    /// Scheduler decisions the engine rejected as infeasible.
    pub rejected_decisions: usize,
    /// Duplicate same-time wakeup requests merged into an already-scheduled
    /// timer instead of flooding the event heap.
    pub coalesced_wakeups: usize,
    /// Engine events processed: external events (arrivals, outages, timers)
    /// plus job completions. The denominator of the events/sec benchmarks.
    pub events_processed: u64,
    /// Simulation clock when the run ended.
    pub end_time: f64,
}

impl SimulationResult {
    /// Per-job outcomes in the metrics crate's format.
    pub fn outcomes(&self) -> Vec<JobOutcome> {
        self.finished.iter().map(|f| f.to_outcome()).collect()
    }

    /// User-centric aggregate metrics (wait, response, slowdown, ...).
    pub fn aggregate(&self) -> AggregateMetrics {
        AggregateMetrics::from_outcomes(&self.outcomes())
    }

    /// System-centric metrics (utilization, throughput, loss of capacity, ...).
    pub fn system(&self) -> SystemMetrics {
        let outcomes = self.outcomes();
        system_metrics(&SystemObservation {
            outcomes: &outcomes,
            machine_size: self.machine_size,
            lost_node_seconds: self.lost_node_seconds,
            idle_while_queued: Some(self.idle_while_queued),
        })
    }

    /// Both metric families packaged for the ranking utilities of experiments E1/E2.
    pub fn scheduler_result(&self) -> psbench_metrics::SchedulerResult {
        psbench_metrics::SchedulerResult {
            name: self.scheduler.clone(),
            aggregate: self.aggregate(),
            system: self.system(),
        }
    }

    /// Mean response time in seconds (shortcut used by many experiments).
    pub fn mean_response_time(&self) -> f64 {
        self.aggregate().response_time.mean
    }

    /// Mean bounded slowdown (shortcut used by many experiments).
    pub fn mean_bounded_slowdown(&self) -> f64 {
        self.aggregate().bounded_slowdown.mean
    }

    /// Export the executed schedule as an SWF log, so a simulated run can itself be
    /// archived, validated, and re-analyzed with the same tools as a real trace.
    pub fn to_swf(&self) -> SwfLog {
        let mut header = SwfHeader {
            computer: Some(format!("psbench simulation ({})", self.scheduler)),
            version: Some(psbench_swf::FORMAT_VERSION),
            max_nodes: Some(self.machine_size),
            ..SwfHeader::default()
        };
        header
            .notes
            .push("Exported from a psbench simulation run".to_string());
        let mut jobs: Vec<&FinishedJob> = self.finished.iter().collect();
        jobs.sort_by(|a, b| a.submit.total_cmp(&b.submit).then(a.id.cmp(&b.id)));
        let records: Vec<SwfRecord> = jobs
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let mut r = SwfRecord::rigid(
                    i as u64 + 1,
                    f.submit.round() as i64,
                    (f.end - f.start).round().max(0.0) as i64,
                    f.procs,
                );
                r.wait_time = Some(f.wait().round().max(0.0) as i64);
                r.status = CompletionStatus::Completed;
                r.user_id = f.user;
                r
            })
            .collect();
        let mut log = SwfLog::new(header, records);
        log.rebase_times();
        psbench_swf::clean(&mut log);
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbench_swf::validate;

    fn finished(id: u64, submit: f64, start: f64, end: f64, procs: u32) -> FinishedJob {
        FinishedJob {
            id,
            submit,
            start,
            first_start: start,
            end,
            procs,
            restarts: 0,
            user: Some(1),
        }
    }

    fn sample_result() -> SimulationResult {
        SimulationResult {
            scheduler: "test".to_string(),
            machine_size: 64,
            finished: vec![
                finished(1, 0.0, 0.0, 100.0, 32),
                finished(2, 10.0, 100.0, 160.0, 64),
            ],
            unfinished: 0,
            discarded: 0,
            idle_while_queued: 320.0,
            busy_integral: 32.0 * 100.0 + 64.0 * 60.0,
            lost_node_seconds: 0.0,
            kills: 0,
            rejected_decisions: 0,
            coalesced_wakeups: 0,
            events_processed: 4,
            end_time: 160.0,
        }
    }

    #[test]
    fn outcomes_and_aggregates() {
        let r = sample_result();
        let outcomes = r.outcomes();
        assert_eq!(outcomes.len(), 2);
        let agg = r.aggregate();
        assert_eq!(agg.jobs, 2);
        // waits: 0 and 90 -> mean 45
        assert!((agg.wait_time.mean - 45.0).abs() < 1e-9);
        assert!((r.mean_response_time() - (100.0 + 150.0) / 2.0).abs() < 1e-9);
        assert!(r.mean_bounded_slowdown() >= 1.0);
    }

    #[test]
    fn system_metrics_from_result() {
        let r = sample_result();
        let sys = r.system();
        assert_eq!(sys.jobs_finished, 2);
        assert!((sys.makespan - 160.0).abs() < 1e-9);
        let expected_util = (32.0 * 100.0 + 64.0 * 60.0) / (64.0 * 160.0);
        assert!((sys.utilization - expected_util).abs() < 1e-9);
        assert!(sys.loss_of_capacity > 0.0);
        let sr = r.scheduler_result();
        assert_eq!(sr.name, "test");
    }

    #[test]
    fn swf_export_is_valid_and_preserves_schedule() {
        let r = sample_result();
        let log = r.to_swf();
        assert_eq!(log.len(), 2);
        assert!(validate(&log).is_clean(), "{:?}", validate(&log).violations);
        assert_eq!(log.header.max_nodes, Some(64));
        assert_eq!(log.jobs[0].run_time, Some(100));
        assert_eq!(log.jobs[1].wait_time, Some(90));
        // Round-trips through the textual format.
        let text = psbench_swf::write_string(&log);
        let back = psbench_swf::parse(&text).unwrap();
        assert_eq!(back.jobs, log.jobs);
    }

    #[test]
    fn empty_result_edge_cases() {
        let r = SimulationResult {
            scheduler: "empty".to_string(),
            machine_size: 16,
            finished: vec![],
            unfinished: 0,
            discarded: 0,
            idle_while_queued: 0.0,
            busy_integral: 0.0,
            lost_node_seconds: 0.0,
            kills: 0,
            rejected_decisions: 0,
            coalesced_wakeups: 0,
            events_processed: 0,
            end_time: 0.0,
        };
        assert_eq!(r.aggregate().jobs, 0);
        assert_eq!(r.system(), SystemMetrics::default());
        assert!(r.to_swf().is_empty());
    }
}
