//! Job descriptions and runtime job state used by the simulator.

use psbench_swf::{JobSource, ParseError, SwfLog, SwfRecord};
use psbench_workload::flexible::{DowneySpeedup, SpeedupModel};
use serde::{Deserialize, Serialize};

/// The static description of a job handed to the simulator.
///
/// For rigid jobs `work` is simply the runtime and `procs` the (fixed) allocation.
/// For moldable jobs `speedup` is present, `work` is the *sequential* runtime, and
/// the scheduler may choose the allocation; the execution rate then follows the
/// speedup function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimJob {
    /// Job identifier (unique within one simulation).
    pub id: u64,
    /// Submission time in seconds. For jobs with a `preceding` dependency this is a
    /// lower bound; the actual submission happens after the predecessor terminates
    /// plus the think time (closed-loop behaviour).
    pub submit: f64,
    /// Work in seconds: runtime for rigid jobs, sequential runtime for moldable jobs.
    pub work: f64,
    /// The user's runtime estimate in seconds (≥ actual runtime in practice;
    /// backfilling schedulers rely on it). For moldable jobs it refers to the
    /// runtime at the requested allocation.
    pub estimate: f64,
    /// Requested number of processors (the allocation for rigid jobs).
    pub procs: u32,
    /// User identifier, if known (used by fairness policies and feedback).
    pub user: Option<u32>,
    /// Id of the job that must terminate before this one is submitted, if any.
    pub preceding: Option<u64>,
    /// Think time (seconds) between the predecessor's termination and submission.
    pub think_time: f64,
    /// Speedup profile for moldable jobs; `None` for rigid jobs.
    pub speedup: Option<DowneySpeedup>,
}

impl SimJob {
    /// A rigid job. Processor requests are clamped to at least 1 (the engine
    /// never allocates less), so `procs ≥ 1` is an invariant policies may rely
    /// on — e.g. to stop scanning once free capacity drops below one processor.
    pub fn rigid(id: u64, submit: f64, runtime: f64, procs: u32) -> Self {
        SimJob {
            id,
            submit,
            work: runtime,
            estimate: runtime,
            procs: procs.max(1),
            user: None,
            preceding: None,
            think_time: 0.0,
            speedup: None,
        }
    }

    /// Set the runtime estimate.
    pub fn with_estimate(mut self, estimate: f64) -> Self {
        self.estimate = estimate.max(0.0);
        self
    }

    /// Set the user.
    pub fn with_user(mut self, user: u32) -> Self {
        self.user = Some(user);
        self
    }

    /// Make the job moldable with the given speedup profile. `work` is reinterpreted
    /// as the sequential runtime.
    pub fn moldable(mut self, speedup: DowneySpeedup) -> Self {
        self.speedup = Some(speedup);
        self
    }

    /// The factor by which execution is accelerated when running on `procs`
    /// processors: 1 for rigid jobs (their work is already expressed at their fixed
    /// allocation), the speedup function for moldable jobs.
    pub fn speedup_factor(&self, procs: u32) -> f64 {
        match &self.speedup {
            Some(s) => s.speedup(procs).max(f64::MIN_POSITIVE),
            None => 1.0,
        }
    }

    /// The runtime this job would take on `procs` processors at full (share = 1) speed.
    pub fn runtime_on(&self, procs: u32) -> f64 {
        self.work / self.speedup_factor(procs)
    }

    /// Build a [`SimJob`] from an SWF record (the usual path for trace-driven
    /// simulation). Records with unknown runtime or processors are rejected.
    pub fn from_swf(record: &SwfRecord) -> Option<Self> {
        let runtime = record.run_time? as f64;
        let procs = record.procs()?.max(1);
        Some(SimJob {
            id: record.job_id,
            submit: record.submit_time as f64,
            work: runtime,
            estimate: record
                .requested_time
                .map(|t| t as f64)
                .unwrap_or(runtime)
                .max(runtime.min(1.0)),
            procs,
            user: record.user_id,
            preceding: record.preceding_job,
            think_time: record.think_time.unwrap_or(0) as f64,
            speedup: None,
        })
    }

    /// Build the simulator's job list from an SWF log (summary records only).
    /// Dirty archive logs can repeat job numbers; the simulator requires
    /// unique ids, so only the first record of each id is kept.
    pub fn from_log(log: &SwfLog) -> Vec<SimJob> {
        let mut seen = std::collections::HashSet::new();
        log.summaries()
            .filter_map(SimJob::from_swf)
            .filter(|j| seen.insert(j.id))
            .collect()
    }

    /// Build the simulator's job list from any streaming [`JobSource`]
    /// (summary records only), without materializing an intermediate
    /// [`SwfLog`]. The job list is identical to [`SimJob::from_log`] over the
    /// collected log, including its duplicate-id policy (first record kept).
    pub fn from_source<S: JobSource>(mut source: S) -> Result<Vec<SimJob>, ParseError> {
        let mut jobs = Vec::new();
        let mut seen = std::collections::HashSet::new();
        while let Some(rec) = source.next_record() {
            let rec = rec?;
            if rec.is_summary() {
                if let Some(job) = SimJob::from_swf(&rec) {
                    if seen.insert(job.id) {
                        jobs.push(job);
                    }
                }
            }
        }
        Ok(jobs)
    }
}

/// A job waiting in the scheduler's queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueuedJob {
    /// The job description.
    pub job: SimJob,
    /// The time the job entered the queue (its effective submission time).
    pub queued_at: f64,
    /// Number of times the job was killed by an outage and requeued.
    pub restarts: u32,
    /// When the job first started, if it has run before. Carried across
    /// outage-induced restarts and preemptions so restart statistics (the
    /// `first_start` of the eventual [`FinishedJob`]) survive a requeue.
    pub first_started_at: Option<f64>,
}

/// A job currently holding processors.
///
/// Execution state follows the engine's *rate-epoch* model: `remaining_work` is
/// the remaining work **at `anchor_time`**, not at the current clock. While the
/// job's rate is constant (the common case — every space-sharing scheduler) the
/// pair never changes; the engine re-materializes it only when the rate actually
/// changes (a `SetShare`, a preemption, an outage kill). The remaining work at
/// any later instant is [`RunningJob::remaining_at`], and `predicted_end` caches
/// the completion time implied by the current epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningJob {
    /// The job description.
    pub job: SimJob,
    /// The time the job entered the queue (carried over from [`QueuedJob`]).
    pub queued_at: f64,
    /// Number of processors allocated.
    pub procs: u32,
    /// Time share in `(0, 1]`: 1 for dedicated (space-shared) execution, `1/k` when
    /// the processors are time-shared between `k` jobs (gang scheduling).
    pub share: f64,
    /// Remaining work in seconds (at the job's reference rate), measured at
    /// [`anchor_time`](Self::anchor_time) — *not* at the current simulation time.
    pub remaining_work: f64,
    /// The time at which `remaining_work` was last materialized: the start of the
    /// job's current rate epoch (its start time, or its latest rate change).
    pub anchor_time: f64,
    /// Completion time implied by the current rate epoch:
    /// `anchor_time + remaining_work / progress_rate()`, clamped to be no earlier
    /// than the epoch start. The engine treats this cached value as the job's
    /// exact completion instant; it is recomputed only when the rate changes.
    pub predicted_end: f64,
    /// When this dispatch started.
    pub started_at: f64,
    /// When the job first started (differs from `started_at` after a restart).
    pub first_started_at: f64,
    /// Number of times the job was killed by an outage and requeued.
    pub restarts: u32,
}

impl RunningJob {
    /// The job's current progress rate in work-seconds per second.
    pub fn progress_rate(&self) -> f64 {
        self.share * self.job.speedup_factor(self.procs)
    }

    /// Remaining work at time `t` (≥ `anchor_time`) under the current rate epoch.
    pub fn remaining_at(&self, t: f64) -> f64 {
        self.remaining_work - self.progress_rate() * (t - self.anchor_time).max(0.0)
    }

    /// Processor-share product, the quantity conserved by the cluster capacity
    /// constraint (`Σ procs·share ≤ available processors`).
    pub fn proc_share(&self) -> f64 {
        self.procs as f64 * self.share
    }
}

/// The final record of one job's passage through the simulated system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FinishedJob {
    /// Job identifier.
    pub id: u64,
    /// The time the job was (effectively) submitted.
    pub submit: f64,
    /// The time the job last started (after any restarts).
    pub start: f64,
    /// The time the job first started.
    pub first_start: f64,
    /// Completion time.
    pub end: f64,
    /// Processors allocated in the final dispatch.
    pub procs: u32,
    /// Number of outage-induced restarts.
    pub restarts: u32,
    /// User identifier, if known.
    pub user: Option<u32>,
}

impl FinishedJob {
    /// Wait time of the final dispatch (start − submit).
    pub fn wait(&self) -> f64 {
        self.start - self.submit
    }

    /// Response time (end − submit).
    pub fn response(&self) -> f64 {
        self.end - self.submit
    }

    /// Convert to the metrics crate's job outcome.
    pub fn to_outcome(&self) -> psbench_metrics::JobOutcome {
        psbench_metrics::JobOutcome {
            job_id: self.id,
            submit_time: self.submit,
            start_time: self.start,
            end_time: self.end,
            procs: self.procs,
            completed: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbench_swf::SwfRecordBuilder;

    #[test]
    fn rigid_job_runtime_is_its_work() {
        let j = SimJob::rigid(1, 0.0, 600.0, 16);
        assert_eq!(j.speedup_factor(16), 1.0);
        assert_eq!(j.speedup_factor(1), 1.0);
        assert_eq!(j.runtime_on(16), 600.0);
        assert_eq!(j.estimate, 600.0);
    }

    #[test]
    fn moldable_job_runtime_follows_speedup() {
        let j = SimJob::rigid(1, 0.0, 6400.0, 32).moldable(DowneySpeedup {
            a: 32.0,
            sigma: 0.0,
        });
        assert_eq!(j.runtime_on(1), 6400.0);
        assert_eq!(j.runtime_on(32), 200.0);
        assert_eq!(j.runtime_on(64), 200.0); // saturates at A
    }

    #[test]
    fn builder_methods() {
        let j = SimJob::rigid(2, 10.0, 100.0, 4)
            .with_estimate(500.0)
            .with_user(7);
        assert_eq!(j.estimate, 500.0);
        assert_eq!(j.user, Some(7));
    }

    #[test]
    fn from_swf_maps_fields() {
        let rec = SwfRecordBuilder::new(5, 100)
            .wait_time(10)
            .run_time(300)
            .allocated_procs(8)
            .requested_time(900)
            .user_id(3)
            .depends_on(4, 60)
            .build();
        let j = SimJob::from_swf(&rec).unwrap();
        assert_eq!(j.id, 5);
        assert_eq!(j.submit, 100.0);
        assert_eq!(j.work, 300.0);
        assert_eq!(j.estimate, 900.0);
        assert_eq!(j.procs, 8);
        assert_eq!(j.user, Some(3));
        assert_eq!(j.preceding, Some(4));
        assert_eq!(j.think_time, 60.0);
        // missing runtime or procs -> rejected
        assert!(SimJob::from_swf(&SwfRecordBuilder::new(6, 0).build()).is_none());
    }

    #[test]
    fn from_source_matches_from_log() {
        use psbench_swf::SwfLog;
        let mut log = SwfLog::default();
        log.jobs.push(
            SwfRecordBuilder::new(1, 0)
                .run_time(100)
                .allocated_procs(4)
                .build(),
        );
        log.jobs.push(SwfRecordBuilder::new(2, 5).build()); // rejected: no runtime
        let mut partial = SwfRecordBuilder::new(3, 9)
            .run_time(10)
            .allocated_procs(1)
            .build();
        partial.status = psbench_swf::CompletionStatus::PartialContinued;
        log.jobs.push(partial); // rejected: not a summary
        let streamed = SimJob::from_source(log.as_source("s")).unwrap();
        assert_eq!(streamed, SimJob::from_log(&log));
        assert_eq!(streamed.len(), 1);
    }

    #[test]
    fn duplicate_job_ids_keep_first_record() {
        // Dirty archive logs repeat job numbers; the simulator needs unique
        // ids, so both constructors keep the first record of each id.
        let mut log = SwfLog::default();
        for (submit, runtime) in [(0i64, 100i64), (5, 50), (9, 10)] {
            log.jobs.push(
                SwfRecordBuilder::new(7, submit)
                    .run_time(runtime)
                    .allocated_procs(4)
                    .build(),
            );
        }
        let from_log = SimJob::from_log(&log);
        assert_eq!(from_log.len(), 1);
        assert_eq!(from_log[0].work, 100.0);
        assert_eq!(from_log, SimJob::from_source(log.as_source("dup")).unwrap());
    }

    #[test]
    fn running_job_rates() {
        let j = SimJob::rigid(1, 0.0, 100.0, 8);
        let r = RunningJob {
            job: j,
            queued_at: 0.0,
            procs: 8,
            share: 0.5,
            remaining_work: 100.0,
            anchor_time: 0.0,
            predicted_end: 200.0,
            started_at: 0.0,
            first_started_at: 0.0,
            restarts: 0,
        };
        assert_eq!(r.progress_rate(), 0.5);
        assert_eq!(r.proc_share(), 4.0);
        assert_eq!(r.remaining_at(0.0), 100.0);
        assert_eq!(r.remaining_at(100.0), 50.0);
        assert_eq!(r.remaining_at(200.0), 0.0);
        // Before the anchor the epoch has accrued no progress.
        assert_eq!(r.remaining_at(-10.0), 100.0);
        let stopped = RunningJob { share: 0.0, ..r };
        assert_eq!(stopped.progress_rate(), 0.0);
        assert_eq!(stopped.remaining_at(1e9), 100.0);
    }

    #[test]
    fn finished_job_metrics() {
        let f = FinishedJob {
            id: 1,
            submit: 100.0,
            start: 150.0,
            first_start: 150.0,
            end: 400.0,
            procs: 16,
            restarts: 0,
            user: Some(1),
        };
        assert_eq!(f.wait(), 50.0);
        assert_eq!(f.response(), 300.0);
        let o = f.to_outcome();
        assert_eq!(o.response_time(), 300.0);
        assert_eq!(o.procs, 16);
        assert!(o.completed);
    }
}
