//! Differential property tests for the completion-calendar engine.
//!
//! The calendar engine ([`EngineKind::Calendar`]) and the seed-style reference
//! engine ([`EngineKind::Reference`]) share every code path except completion
//! tracking (lazy min-heap vs linear rescans), and both read the same cached
//! per-epoch completion times — so their [`SimulationResult`]s must be equal
//! **bit for bit**, over any workload and any policy. These tests assert exactly
//! that across randomized workloads exercising every engine feature: rigid and
//! malleable shares (`SetShare` re-anchoring), closed-loop feedback release,
//! surprise and announced outages (kills, requeues, capacity changes),
//! preemption, timer wakeups (including the coalescing path), zero-length jobs,
//! and fractional submit/runtime values that stress the float paths.

use proptest::prelude::*;
use psbench_sim::{
    Decision, Scheduler, SchedulerContext, SchedulerEvent, SimConfig, SimJob, Simulation,
    SimulationResult,
};
use psbench_swf::outage::{OutageKind, OutageLog, OutageRecord};

/// Strict FCFS — the queue view iterates in `(queued_at, id)` order already,
/// so this is a prefix walk.
struct PropFcfs;
impl Scheduler for PropFcfs {
    fn name(&self) -> &str {
        "prop-fcfs"
    }
    fn react(&mut self, ctx: &SchedulerContext<'_>, _event: SchedulerEvent) -> Vec<Decision> {
        let mut free = ctx.free_capacity();
        let mut out = Vec::new();
        for q in ctx.queue.iter() {
            if (q.job.procs as f64) <= free + 1e-9 {
                free -= q.job.procs as f64;
                out.push(Decision::start(q.job.id));
            } else {
                break;
            }
        }
        out
    }
}

/// Malleable equal-share policy: every job (running or queued) gets share
/// `1/k`. Exercises `SetShare` re-anchoring and calendar invalidation on every
/// single event.
struct PropEquiShare;
impl Scheduler for PropEquiShare {
    fn name(&self) -> &str {
        "prop-equishare"
    }
    fn react(&mut self, ctx: &SchedulerContext<'_>, _event: SchedulerEvent) -> Vec<Decision> {
        let total = ctx.queue.len() + ctx.running.len();
        if total == 0 {
            return Vec::new();
        }
        let share = 1.0 / total as f64;
        let mut running: Vec<u64> = ctx.running.iter().map(|r| r.job.id).collect();
        running.sort_unstable();
        let mut out: Vec<Decision> = running
            .into_iter()
            .map(|job_id| Decision::SetShare { job_id, share })
            .collect();
        let mut queued: Vec<u64> = ctx.queue.iter().map(|q| q.job.id).collect();
        queued.sort_unstable();
        for job_id in queued {
            out.push(Decision::Start {
                job_id,
                procs: None,
                share,
            });
        }
        out
    }
}

/// A quantum-timer policy: greedy starts, plus on every timer it preempts the
/// lowest-id running job and re-requests the (often duplicate) next quantum
/// expiry. Exercises preemption materialization and wakeup coalescing.
struct PropPreemptor {
    quantum: f64,
}
impl Scheduler for PropPreemptor {
    fn name(&self) -> &str {
        "prop-preemptor"
    }
    fn react(&mut self, ctx: &SchedulerContext<'_>, event: SchedulerEvent) -> Vec<Decision> {
        let mut out = Vec::new();
        if matches!(event, SchedulerEvent::Timer) {
            if let Some(id) = ctx.running.iter().map(|r| r.job.id).min() {
                out.push(Decision::Preempt { job_id: id });
            }
        }
        let mut free = ctx.free_capacity();
        for q in ctx.queue.iter() {
            // On a Timer consult the preempt above has not landed yet; starts
            // are validated by the engine either way.
            if (q.job.procs as f64) <= free + 1e-9 {
                free -= q.job.procs as f64;
                out.push(Decision::start(q.job.id));
            }
        }
        if !ctx.running.is_empty() || !ctx.queue.is_empty() {
            // Quantum expiries land on a fixed grid, so many reacts request the
            // same instant — the coalescing path.
            let next = (ctx.now / self.quantum).floor() * self.quantum + self.quantum;
            out.push(Decision::Wakeup { at: next });
        }
        out
    }
}

#[derive(Debug, Clone, Copy)]
enum Policy {
    Fcfs,
    EquiShare,
    Preemptor,
}

fn run_with(
    policy: Policy,
    config: &SimConfig,
    jobs: &[SimJob],
    reference: bool,
) -> SimulationResult {
    let sim = if reference {
        Simulation::new_reference(config.clone(), jobs.to_vec())
    } else {
        Simulation::new(config.clone(), jobs.to_vec())
    };
    match policy {
        Policy::Fcfs => sim.run(&mut PropFcfs),
        Policy::EquiShare => sim.run(&mut PropEquiShare),
        Policy::Preemptor => sim.run(&mut PropPreemptor { quantum: 75.0 }),
    }
}

/// Strategy for one job: fractional submit/runtime values (sevenths and
/// eighths) deliberately stress the non-exact float paths; runtime 0 and
/// single-processor jobs cover the degenerate corners.
fn job_strategy(machine: u32) -> impl Strategy<Value = (u32, u32, u32, u32, u8)> {
    (
        0u32..2_000, // submit numerator
        0u32..1_200, // runtime numerator
        1u32..=64,   // procs (clamped to machine later)
        1u32..4,     // estimate factor
        0u8..4,      // dependency tag: 1 => depends on previous job
    )
        .prop_map(move |(s, r, p, e, d)| (s, r, p.min(machine), e, d))
}

fn build_jobs(specs: &[(u32, u32, u32, u32, u8)]) -> Vec<SimJob> {
    specs
        .iter()
        .enumerate()
        .map(|(i, &(s, r, p, e, d))| {
            let submit = s as f64 / 8.0;
            let runtime = r as f64 / 7.0;
            let mut job = SimJob::rigid(i as u64 + 1, submit, runtime, p)
                .with_estimate(runtime * e as f64 + 1.0)
                .with_user((i % 5) as u32);
            if d == 1 && i > 0 {
                job.preceding = Some(i as u64); // the previous job
                job.think_time = (s % 97) as f64 / 4.0;
            }
            job
        })
        .collect()
}

fn outage_log(specs: &[(u32, u32, u32, u8)]) -> Option<OutageLog> {
    if specs.is_empty() {
        return None;
    }
    let records: Vec<OutageRecord> = specs
        .iter()
        .enumerate()
        .map(|(i, &(start, len, procs, announced))| OutageRecord {
            outage_id: i as u64,
            announced_time: (announced == 1).then_some(start as i64 / 2),
            start_time: start as i64,
            end_time: start as i64 + len as i64 + 1,
            kind: if announced == 1 {
                OutageKind::Maintenance
            } else {
                OutageKind::CpuFailure
            },
            nodes_affected: Some(procs),
            components: vec![],
        })
        .collect();
    Some(OutageLog::from_records(records))
}

fn policy_strategy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Fcfs),
        Just(Policy::EquiShare),
        Just(Policy::Preemptor),
    ]
}

proptest! {
    /// The headline property: calendar and reference engines agree bit for bit
    /// on randomized workloads across policies, loop modes, and outages.
    #[test]
    fn calendar_engine_matches_reference_bit_for_bit(
        specs in prop::collection::vec(job_strategy(64), 1..40),
        outages in prop::collection::vec((0u32..1_500, 1u32..400, 1u32..64, 0u8..2), 0..3),
        closed_loop in 0u8..2,
        discard in 0u8..2,
        policy in policy_strategy(),
    ) {
        let jobs = build_jobs(&specs);
        let mut config = SimConfig::new(64);
        config.closed_loop = closed_loop == 1;
        config.outages = outage_log(&outages);
        config.outage_policy = if discard == 1 {
            psbench_sim::OutagePolicy::KillAndDiscard
        } else {
            psbench_sim::OutagePolicy::KillAndRequeue
        };
        // Bound pathological preemption loops; both engines see the same bound.
        config.max_time = Some(100_000.0);
        let calendar = run_with(policy, &config, &jobs, false);
        let reference = run_with(policy, &config, &jobs, true);
        prop_assert_eq!(calendar, reference);
    }

    /// Results do not depend on the order the job vector is handed over when
    /// submit times are distinct (the engine's containers are swap-removal
    /// based; layout must not leak into results).
    #[test]
    fn results_invariant_under_permutation_of_distinct_submits(
        seed in 0u64..500,
        policy in policy_strategy(),
    ) {
        let n = 30usize;
        let jobs: Vec<SimJob> = (0..n)
            .map(|i| {
                let x = (seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((i as u64).wrapping_mul(1442695040888963407)))
                    >> 11;
                SimJob::rigid(
                    i as u64 + 1,
                    // Distinct: a pseudo-random integer part plus an i-specific fraction.
                    (x % 701) as f64 + i as f64 / 64.0,
                    (x % 977) as f64 / 3.0,
                    1 + (x % 61) as u32,
                )
                .with_estimate((x % 977) as f64 / 3.0 + 10.0)
            })
            .collect();
        let mut permuted = jobs.clone();
        permuted.reverse();
        permuted.swap(2, 17);
        permuted.swap(9, 28);
        let config = SimConfig::new(64);
        let a = run_with(policy, &config, &jobs, false);
        let b = run_with(policy, &config, &permuted, false);
        prop_assert_eq!(a, b);
    }
}
