//! Property-based tests for the SWF format: round-trip fidelity, validator/cleaner
//! behaviour, and outage format invariants on arbitrary inputs.

use proptest::prelude::*;
use psbench_swf::prelude::*;

/// Strategy for an arbitrary optional non-negative i64 within a sane range.
fn opt_secs() -> impl Strategy<Value = Option<i64>> {
    prop_oneof![Just(None), (0i64..2_000_000).prop_map(Some)]
}

fn opt_procs() -> impl Strategy<Value = Option<u32>> {
    prop_oneof![Just(None), (1u32..2048).prop_map(Some)]
}

fn opt_small() -> impl Strategy<Value = Option<u32>> {
    prop_oneof![Just(None), (1u32..100).prop_map(Some)]
}

prop_compose! {
    /// An arbitrary (summary) SWF record with a given job id and submit time.
    fn arb_record(job_id: u64, submit: i64)(
        wait in opt_secs(),
        run in opt_secs(),
        procs in opt_procs(),
        cpu in opt_secs(),
        mem in opt_secs(),
        req_procs in opt_procs(),
        req_time in opt_secs(),
        req_mem in opt_secs(),
        status in prop_oneof![
            Just(CompletionStatus::Completed),
            Just(CompletionStatus::Failed),
            Just(CompletionStatus::Cancelled),
            Just(CompletionStatus::Unknown)
        ],
        user in opt_small(),
        group in opt_small(),
        exe in opt_small(),
        queue in prop_oneof![Just(None), (0u32..10).prop_map(Some)],
        partition in opt_small(),
    ) -> SwfRecord {
        SwfRecord {
            job_id,
            submit_time: submit,
            wait_time: wait,
            run_time: run,
            allocated_procs: procs,
            avg_cpu_time: cpu,
            used_memory_kb: mem,
            requested_procs: req_procs,
            requested_time: req_time,
            requested_memory_kb: req_mem,
            status,
            user_id: user,
            group_id: group,
            executable_id: exe,
            queue_id: queue,
            partition_id: partition,
            preceding_job: None,
            think_time: None,
        }
    }
}

/// A log with sorted submit times, consecutive job ids, and first submit at zero.
fn arb_log(max_jobs: usize) -> impl Strategy<Value = SwfLog> {
    prop::collection::vec(0i64..3600, 1..max_jobs).prop_flat_map(|gaps| {
        let mut submits = Vec::with_capacity(gaps.len());
        let mut t = 0i64;
        for (i, g) in gaps.iter().enumerate() {
            if i > 0 {
                t += g;
            }
            submits.push(t);
        }
        let records: Vec<_> = submits
            .into_iter()
            .enumerate()
            .map(|(i, s)| arb_record(i as u64 + 1, s))
            .collect();
        records.prop_map(|jobs| {
            let header = SwfHeader {
                version: Some(FORMAT_VERSION),
                max_nodes: Some(4096),
                ..SwfHeader::default()
            };
            SwfLog::new(header, jobs)
        })
    })
}

/// Characters safe inside header values, notes, and free comments: no newlines
/// (line structure), no `:` (a free comment containing `word: text` would
/// reparse as a labelled line), no `;`, and no leading/trailing whitespace
/// issues (values are trimmed by the parser).
const HEADER_ALPHABET: &[char] = &[
    'a', 'b', 'c', 'x', 'y', 'z', 'A', 'M', 'Z', '0', '1', '9', '.', '_', '-', '/', '(', ')', '#',
];

fn arb_header_text() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..HEADER_ALPHABET.len(), 1..16)
        .prop_map(|ix| ix.into_iter().map(|i| HEADER_ALPHABET[i]).collect())
}

fn opt_text() -> impl Strategy<Value = Option<String>> {
    prop_oneof![Just(None), arb_header_text().prop_map(Some)]
}

prop_compose! {
    /// A header exercising typed labels, notes, unknown labelled lines, and
    /// free comments — everything the writer has to carry through a round trip.
    fn arb_header()(
        computer in opt_text(),
        installation in opt_text(),
        version in prop_oneof![Just(None), (1u32..10).prop_map(Some)],
        max_nodes in opt_procs(),
        max_runtime in opt_secs(),
        allow_overuse in prop_oneof![Just(None), Just(Some(true)), Just(Some(false))],
        queues in opt_text(),
        notes in prop::collection::vec(arb_header_text(), 0..4),
        unknown_values in prop::collection::vec(arb_header_text(), 0..3),
        comments in prop::collection::vec(arb_header_text(), 0..4),
    ) -> SwfHeader {
        let mut header = SwfHeader {
            computer,
            installation,
            version,
            max_nodes,
            max_runtime,
            allow_overuse,
            queues,
            notes,
            ..SwfHeader::default()
        };
        for (i, value) in unknown_values.into_iter().enumerate() {
            // Unknown labels are preserved verbatim in raw_lines.
            header.apply(&format!("X-Custom{i}"), &value);
        }
        for text in comments {
            header.add_free_comment(&text);
        }
        header
    }
}

/// A log combining an arbitrary rich header with arbitrary records.
fn arb_rich_log() -> impl Strategy<Value = SwfLog> {
    (arb_header(), arb_log(20)).prop_map(|(header, log)| SwfLog::new(header, log.jobs))
}

/// One arbitrary input line for the streaming-equivalence property: valid
/// record lines, dirty near-records (floats, wrong field counts, junk
/// tokens), header comments, free comments, and blanks — the mix found in
/// real archive logs.
fn arb_swf_line() -> impl Strategy<Value = String> {
    prop_oneof![
        // A well-formed record line.
        (1u64..1000, 0i64..100_000)
            .prop_flat_map(|(id, submit)| arb_record(id, submit))
            .prop_map(|r| record_line(&r)),
        // A record line with a fractional runtime (lenient-tolerated).
        (1u64..1000, 0i64..100_000, 0u32..1000).prop_map(|(id, s, frac)| format!(
            "{id} {s} -1 100.{frac} 4 -1 -1 4 -1 -1 1 1 1 1 1 1 -1 -1"
        )),
        // Too few / too many fields.
        (1u64..1000).prop_map(|id| format!("{id} 0 1 2 3")),
        (1u64..1000).prop_map(|id| format!("{id} 0 -1 10 1 -1 -1 1 -1 -1 1 1 1 1 1 1 -1 -1 99 98")),
        // Junk tokens.
        Just("what even is this line".to_string()),
        // Header labels (known and unknown), free comments, blanks.
        arb_header_text().prop_map(|v| format!(";MaxNodes: {v}")),
        arb_header_text().prop_map(|v| format!(";Weather: {v}")),
        arb_header_text().prop_map(|v| format!("; {v}")),
        Just(String::new()),
    ]
}

proptest! {
    /// The streaming parser and the one-shot parser are a single code path in
    /// two shapes: on ANY input — valid or dirty, lenient or strict — they
    /// agree record for record, header for header, error for error.
    #[test]
    fn record_iter_matches_parse_str_on_arbitrary_input(
        lines in prop::collection::vec(arb_swf_line(), 0..40),
        strict in prop_oneof![Just(false), Just(true)],
        require_jobs in prop_oneof![Just(false), Just(true)],
    ) {
        let text = lines.join("\n");
        let opts = ParseOptions {
            strict,
            require_jobs,
            ..if strict { ParseOptions::strict() } else { ParseOptions::default() }
        };
        let oneshot = parse_str(&text, &opts);
        // Record-for-record comparison against the one-shot job list.
        let mut iter = RecordIter::new(text.as_bytes(), opts);
        let mut streamed: Vec<SwfRecord> = Vec::new();
        let mut stream_err = None;
        for item in &mut iter {
            match item {
                Ok(rec) => streamed.push(rec),
                Err(e) => {
                    stream_err = Some(e);
                    break;
                }
            }
        }
        match oneshot {
            Ok(log) => {
                prop_assert_eq!(stream_err, None);
                prop_assert_eq!(&streamed, &log.jobs);
                prop_assert_eq!(&iter.meta().header, &log.header);
            }
            Err(e) => {
                prop_assert_eq!(stream_err, Some(e));
                // Everything before the failure point still streamed out.
                prop_assert!(streamed.len() <= lines.len());
            }
        }
    }

    /// Collecting the stream is exactly `parse_str` — `SwfLog` is just one
    /// sink for the record stream.
    #[test]
    fn collect_log_is_parse_str(log in arb_rich_log()) {
        let text = write_string(&log);
        let collected = RecordIter::new(text.as_bytes(), ParseOptions::default())
            .collect_log()
            .unwrap();
        prop_assert_eq!(collected, parse(&text).unwrap());
    }

    #[test]
    fn parse_write_parse_is_idempotent(log in arb_rich_log()) {
        // One write→parse pass normalizes a log; after that, parse∘write must be
        // the identity on both the text and the parsed structure — records,
        // typed header fields, notes, unknown labels, and free comments alike.
        let text1 = write_string(&log);
        let once = parse(&text1).unwrap();
        let text2 = write_string(&once);
        prop_assert_eq!(&text2, &text1, "writer not stable under reparse");
        let twice = parse(&text2).unwrap();
        prop_assert_eq!(&twice, &once, "parse∘write not idempotent");
        // The first trip already preserves the data exactly.
        prop_assert_eq!(&once.jobs, &log.jobs);
        prop_assert_eq!(&once.header.computer, &log.header.computer);
        prop_assert_eq!(&once.header.notes, &log.header.notes);
        prop_assert_eq!(&once.header.version, &log.header.version);
        prop_assert_eq!(&once.header.allow_overuse, &log.header.allow_overuse);
    }

    #[test]
    fn record_raw_round_trip(rec in arb_record(7, 123)) {
        let raw = rec.to_raw();
        let back = SwfRecord::from_raw(&raw);
        prop_assert_eq!(back, rec);
    }

    #[test]
    fn log_text_round_trip(log in arb_log(40)) {
        let text = write_string(&log);
        let parsed = parse(&text).unwrap();
        prop_assert_eq!(&parsed.jobs, &log.jobs);
        prop_assert_eq!(parsed.header.max_nodes, log.header.max_nodes);
        // And the writer output always parses strictly.
        parse_str(&text, &ParseOptions::strict()).unwrap();
    }

    #[test]
    fn clean_always_produces_valid_log(log in arb_log(40)) {
        let mut log = log;
        // Perturb the log arbitrarily badly: shift times, scramble ids.
        for (i, j) in log.jobs.iter_mut().enumerate() {
            j.submit_time += 10_000;
            if i % 3 == 0 {
                j.job_id = j.job_id * 7 + 5;
            }
        }
        let (_cleaning, report) = clean_and_validate(&mut log);
        prop_assert!(report.is_clean(), "violations: {:?}", report.violations);
    }

    #[test]
    fn clean_never_increases_job_count(log in arb_log(30)) {
        let mut log = log;
        let before = log.len();
        clean(&mut log);
        prop_assert!(log.len() <= before);
    }

    #[test]
    fn clean_is_idempotent(log in arb_log(30)) {
        let mut log = log;
        clean(&mut log);
        let snapshot = log.clone();
        let second = clean(&mut log);
        prop_assert_eq!(second, CleaningReport::default());
        prop_assert_eq!(log, snapshot);
    }

    #[test]
    fn offered_load_nonnegative(log in arb_log(30)) {
        if let Some(load) = log.offered_load() {
            prop_assert!(load >= 0.0);
        }
    }

    #[test]
    fn scale_interarrivals_preserves_job_count_and_order(log in arb_log(30), factor in 0.1f64..10.0) {
        let mut scaled = log.clone();
        scaled.scale_interarrivals(factor);
        prop_assert_eq!(scaled.len(), log.len());
        prop_assert!(scaled.jobs.windows(2).all(|w| w[0].submit_time <= w[1].submit_time));
        prop_assert_eq!(scaled.first_submit(), log.first_submit());
    }

    #[test]
    fn densify_produces_dense_ids(log in arb_log(40)) {
        let mut log = log;
        let key = densify_ids(&mut log);
        let users: Vec<u32> = log.jobs.iter().filter_map(|j| j.user_id).collect();
        if !users.is_empty() {
            let max = *users.iter().max().unwrap();
            prop_assert_eq!(max as usize, key.users.len());
            for u in users {
                prop_assert!(u >= 1 && u as usize <= key.users.len());
            }
        }
    }

    #[test]
    fn outage_line_round_trip(
        announced in prop_oneof![Just(-1i64), 0i64..10_000],
        start in 0i64..100_000,
        dur in 0i64..50_000,
        kind_code in -1i64..6,
        nodes in prop_oneof![Just(-1i64), 0i64..512],
        comps in prop::collection::vec(0u32..512, 0..8),
    ) {
        let rec = OutageRecord {
            outage_id: 1,
            announced_time: if announced < 0 { None } else { Some(announced) },
            start_time: start,
            end_time: start + dur,
            kind: OutageKind::from_code(kind_code),
            nodes_affected: if nodes < 0 { None } else { Some(nodes as u32) },
            components: comps,
        };
        let line = rec.to_line();
        let back = OutageRecord::from_line(&line, 1).unwrap();
        prop_assert_eq!(back, rec);
    }

    #[test]
    fn outage_log_lost_capacity_monotone_in_horizon(
        starts in prop::collection::vec(0i64..10_000, 1..10),
        dur in 1i64..1000,
    ) {
        let records: Vec<OutageRecord> = starts.iter().map(|&s| OutageRecord {
            outage_id: 0,
            announced_time: None,
            start_time: s,
            end_time: s + dur,
            kind: OutageKind::CpuFailure,
            nodes_affected: Some(1),
            components: vec![],
        }).collect();
        let log = OutageLog::from_records(records);
        let a = log.lost_node_seconds(5_000);
        let b = log.lost_node_seconds(20_000);
        prop_assert!(b >= a);
    }

    #[test]
    fn checkpoint_assemble_expand_round_trip(
        n_bursts in 1usize..5,
        burst_len in 1i64..500,
        waits in prop::collection::vec(0i64..100, 5),
    ) {
        let mut bursts = Vec::new();
        for i in 0..n_bursts {
            bursts.push(Burst {
                wait_time: waits[i % waits.len()],
                run_time: burst_len + i as i64,
                outcome: if i + 1 == n_bursts { BurstOutcome::Completed } else { BurstOutcome::Continued },
            });
        }
        let template = SwfRecordBuilder::new(1, 0).allocated_procs(8).build();
        let summary = psbench_swf::checkpoint::summarize_bursts(&template, &bursts);
        let job = CheckpointedJob { summary, bursts };
        let flat = expand(std::slice::from_ref(&job));
        let log = SwfLog::new(SwfHeader::default(), flat);
        let again = assemble(&log).unwrap();
        prop_assert_eq!(again.len(), 1);
        prop_assert_eq!(&again[0], &job);
        prop_assert_eq!(again[0].total_burst_runtime(), job.summary.run_time.unwrap());
    }
}
