//! The standard outage format proposed in Section 2.2 of the paper.
//!
//! For every outage that removes any portion of the system from operation the paper
//! proposes recording: the announced time (when the scheduler learned of it), the
//! start and end times, the type of outage, the number of nodes affected, and the
//! specific affected components. Outage files complement SWF job traces and are
//! keyed to them by sharing the same time base (seconds since the start of the log).
//!
//! The textual format mirrors SWF: `;`-comments, one outage per line with seven
//! whitespace separated fields, `-1` for unknown:
//!
//! ```text
//! <outage-id> <announced> <start> <end> <type> <nodes-affected> <components>
//! ```
//!
//! `components` is either `-1` (unspecified) or a comma separated list of node
//! numbers (no spaces), e.g. `4,5,6,17`.

use crate::error::OutageParseError;
use serde::{Deserialize, Serialize};

/// Kinds of outages the standard enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OutageKind {
    /// A CPU / node hardware failure (`0`).
    CpuFailure,
    /// A network failure (`1`).
    NetworkFailure,
    /// A facility problem, e.g. power or cooling (`2`).
    Facility,
    /// Scheduled maintenance (`3`).
    Maintenance,
    /// Dedicated time taken away from normal production (`4`).
    DedicatedTime,
    /// A storage / scratch filesystem failure (`5`).
    StorageFailure,
    /// Unknown (`-1`).
    Unknown,
}

impl OutageKind {
    /// Encode as the integer code used in the textual format.
    pub fn to_code(self) -> i64 {
        match self {
            OutageKind::CpuFailure => 0,
            OutageKind::NetworkFailure => 1,
            OutageKind::Facility => 2,
            OutageKind::Maintenance => 3,
            OutageKind::DedicatedTime => 4,
            OutageKind::StorageFailure => 5,
            OutageKind::Unknown => -1,
        }
    }

    /// Decode the integer code; unknown codes map to `Unknown`.
    pub fn from_code(code: i64) -> Self {
        match code {
            0 => OutageKind::CpuFailure,
            1 => OutageKind::NetworkFailure,
            2 => OutageKind::Facility,
            3 => OutageKind::Maintenance,
            4 => OutageKind::DedicatedTime,
            5 => OutageKind::StorageFailure,
            _ => OutageKind::Unknown,
        }
    }

    /// Whether this outage kind is normally announced ahead of time.
    pub fn is_scheduled(self) -> bool {
        matches!(self, OutageKind::Maintenance | OutageKind::DedicatedTime)
    }
}

/// A single outage record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageRecord {
    /// Outage number, a counter starting from 1.
    pub outage_id: u64,
    /// When the outage information became available to the scheduler, in seconds.
    /// Equal to `start` (or unknown) for surprise failures; earlier for scheduled
    /// maintenance.
    pub announced_time: Option<i64>,
    /// When the outage actually occurred, in seconds.
    pub start_time: i64,
    /// When the affected resources were again schedulable, in seconds.
    pub end_time: i64,
    /// Kind of outage.
    pub kind: OutageKind,
    /// Number of nodes affected, if known.
    pub nodes_affected: Option<u32>,
    /// Specific affected node numbers, if known (0-based node indices).
    pub components: Vec<u32>,
}

impl OutageRecord {
    /// Duration of the outage in seconds.
    pub fn duration(&self) -> i64 {
        self.end_time - self.start_time
    }

    /// How far in advance the outage was announced (0 for surprise failures).
    pub fn warning_time(&self) -> i64 {
        match self.announced_time {
            Some(a) if a < self.start_time => self.start_time - a,
            _ => 0,
        }
    }

    /// True if the scheduler knew about this outage before it started.
    pub fn was_announced_in_advance(&self) -> bool {
        self.warning_time() > 0
    }

    /// Number of nodes affected, falling back to the component list length.
    pub fn effective_nodes_affected(&self) -> u32 {
        self.nodes_affected.unwrap_or(self.components.len() as u32)
    }

    /// True if the outage is in effect at time `t`.
    pub fn active_at(&self, t: i64) -> bool {
        t >= self.start_time && t < self.end_time
    }

    /// Render as a canonical data line.
    pub fn to_line(&self) -> String {
        let comps = if self.components.is_empty() {
            "-1".to_string()
        } else {
            self.components
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "{} {} {} {} {} {} {}",
            self.outage_id,
            self.announced_time.unwrap_or(-1),
            self.start_time,
            self.end_time,
            self.kind.to_code(),
            self.nodes_affected.map(|n| n as i64).unwrap_or(-1),
            comps
        )
    }

    /// Parse a single data line.
    pub fn from_line(line: &str, line_no: usize) -> Result<Self, OutageParseError> {
        let fields =
            crate::parse::split_exact::<7>(line.split_ascii_whitespace()).map_err(|found| {
                OutageParseError::WrongFieldCount {
                    line: line_no,
                    found,
                    expected: 7,
                }
            })?;
        let parse_int = |idx: usize| -> Result<i64, OutageParseError> {
            fields[idx]
                .parse::<i64>()
                .map_err(|_| OutageParseError::InvalidField {
                    line: line_no,
                    field: idx,
                    token: fields[idx].to_string(),
                })
        };
        let outage_id = parse_int(0)? as u64;
        let announced = parse_int(1)?;
        let start = parse_int(2)?;
        let end = parse_int(3)?;
        if end < start {
            return Err(OutageParseError::InvertedInterval { line: line_no });
        }
        let kind = OutageKind::from_code(parse_int(4)?);
        let nodes = parse_int(5)?;
        let components = if fields[6] == "-1" {
            Vec::new()
        } else {
            let mut comps = Vec::new();
            for tok in fields[6].split(',') {
                let c: u32 = tok.parse().map_err(|_| OutageParseError::InvalidField {
                    line: line_no,
                    field: 6,
                    token: tok.to_string(),
                })?;
                comps.push(c);
            }
            comps
        };
        Ok(OutageRecord {
            outage_id,
            announced_time: if announced < 0 { None } else { Some(announced) },
            start_time: start,
            end_time: end,
            kind,
            nodes_affected: if nodes < 0 { None } else { Some(nodes as u32) },
            components,
        })
    }
}

/// A complete outage log: comments plus outage records.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageLog {
    /// Free-form comments (without the leading `;`).
    pub comments: Vec<String>,
    /// Outage records, in start-time order for a conforming log.
    pub outages: Vec<OutageRecord>,
}

impl OutageLog {
    /// Create an outage log from records, sorting them by start time and numbering
    /// them 1..n.
    pub fn from_records(mut records: Vec<OutageRecord>) -> Self {
        records.sort_by_key(|o| (o.start_time, o.end_time));
        for (i, o) in records.iter_mut().enumerate() {
            o.outage_id = i as u64 + 1;
        }
        OutageLog {
            comments: Vec::new(),
            outages: records,
        }
    }

    /// Number of outage records.
    pub fn len(&self) -> usize {
        self.outages.len()
    }

    /// True if there are no outage records.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
    }

    /// All outages active at time `t`.
    pub fn active_at(&self, t: i64) -> impl Iterator<Item = &OutageRecord> {
        self.outages.iter().filter(move |o| o.active_at(t))
    }

    /// Total node-seconds lost to outages over `[0, horizon)`, counting each
    /// outage's affected nodes over its clipped duration.
    pub fn lost_node_seconds(&self, horizon: i64) -> i64 {
        self.outages
            .iter()
            .map(|o| {
                let start = o.start_time.max(0);
                let end = o.end_time.min(horizon);
                if end <= start {
                    0
                } else {
                    (end - start) * o.effective_nodes_affected() as i64
                }
            })
            .sum()
    }

    /// Render the log to a string.
    pub fn write_string(&self) -> String {
        let mut out = String::new();
        out.push_str("; Standard outage log (psbench); fields: id announced start end type nodes components\n");
        for c in &self.comments {
            out.push_str("; ");
            out.push_str(c);
            out.push('\n');
        }
        for o in &self.outages {
            out.push_str(&o.to_line());
            out.push('\n');
        }
        out
    }

    /// Parse a log from a string.
    pub fn parse(input: &str) -> Result<Self, OutageParseError> {
        let mut log = OutageLog::default();
        for (i, line) in input.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if let Some(rest) = trimmed.strip_prefix(';') {
                log.comments.push(rest.trim().to_string());
                continue;
            }
            log.outages.push(OutageRecord::from_line(trimmed, i + 1)?);
        }
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_outage() -> OutageRecord {
        OutageRecord {
            outage_id: 1,
            announced_time: Some(100),
            start_time: 500,
            end_time: 800,
            kind: OutageKind::Maintenance,
            nodes_affected: Some(16),
            components: vec![0, 1, 2, 3],
        }
    }

    #[test]
    fn kind_codes_round_trip() {
        for k in [
            OutageKind::CpuFailure,
            OutageKind::NetworkFailure,
            OutageKind::Facility,
            OutageKind::Maintenance,
            OutageKind::DedicatedTime,
            OutageKind::StorageFailure,
            OutageKind::Unknown,
        ] {
            assert_eq!(OutageKind::from_code(k.to_code()), k);
        }
        assert_eq!(OutageKind::from_code(99), OutageKind::Unknown);
    }

    #[test]
    fn scheduled_kinds() {
        assert!(OutageKind::Maintenance.is_scheduled());
        assert!(OutageKind::DedicatedTime.is_scheduled());
        assert!(!OutageKind::CpuFailure.is_scheduled());
    }

    #[test]
    fn record_derived_quantities() {
        let o = sample_outage();
        assert_eq!(o.duration(), 300);
        assert_eq!(o.warning_time(), 400);
        assert!(o.was_announced_in_advance());
        assert_eq!(o.effective_nodes_affected(), 16);
        assert!(o.active_at(500));
        assert!(o.active_at(799));
        assert!(!o.active_at(800));
        assert!(!o.active_at(499));
    }

    #[test]
    fn surprise_failure_has_no_warning() {
        let mut o = sample_outage();
        o.announced_time = None;
        assert_eq!(o.warning_time(), 0);
        assert!(!o.was_announced_in_advance());
        o.announced_time = Some(600); // announced after the fact
        assert_eq!(o.warning_time(), 0);
    }

    #[test]
    fn effective_nodes_falls_back_to_components() {
        let mut o = sample_outage();
        o.nodes_affected = None;
        assert_eq!(o.effective_nodes_affected(), 4);
    }

    #[test]
    fn line_round_trip() {
        let o = sample_outage();
        let line = o.to_line();
        assert_eq!(line, "1 100 500 800 3 16 0,1,2,3");
        let back = OutageRecord::from_line(&line, 1).unwrap();
        assert_eq!(back, o);
    }

    #[test]
    fn line_round_trip_with_unknowns() {
        let o = OutageRecord {
            outage_id: 2,
            announced_time: None,
            start_time: 10,
            end_time: 20,
            kind: OutageKind::CpuFailure,
            nodes_affected: None,
            components: vec![],
        };
        let line = o.to_line();
        assert_eq!(line, "2 -1 10 20 0 -1 -1");
        assert_eq!(OutageRecord::from_line(&line, 1).unwrap(), o);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(matches!(
            OutageRecord::from_line("1 2 3", 4),
            Err(OutageParseError::WrongFieldCount {
                line: 4,
                found: 3,
                ..
            })
        ));
        assert!(matches!(
            OutageRecord::from_line("1 x 10 20 0 -1 -1", 1),
            Err(OutageParseError::InvalidField { field: 1, .. })
        ));
        assert!(matches!(
            OutageRecord::from_line("1 -1 30 20 0 -1 -1", 1),
            Err(OutageParseError::InvertedInterval { line: 1 })
        ));
        assert!(matches!(
            OutageRecord::from_line("1 -1 10 20 0 -1 1,x", 1),
            Err(OutageParseError::InvalidField { field: 6, .. })
        ));
    }

    #[test]
    fn log_round_trip_and_queries() {
        let log = OutageLog::from_records(vec![
            OutageRecord {
                outage_id: 0,
                announced_time: None,
                start_time: 1000,
                end_time: 1100,
                kind: OutageKind::CpuFailure,
                nodes_affected: Some(1),
                components: vec![7],
            },
            OutageRecord {
                outage_id: 0,
                announced_time: Some(0),
                start_time: 200,
                end_time: 400,
                kind: OutageKind::Maintenance,
                nodes_affected: Some(32),
                components: vec![],
            },
        ]);
        // sorted by start time & renumbered
        assert_eq!(log.outages[0].start_time, 200);
        assert_eq!(log.outages[0].outage_id, 1);
        assert_eq!(log.outages[1].outage_id, 2);
        assert_eq!(log.active_at(250).count(), 1);
        assert_eq!(log.active_at(999).count(), 0);
        assert_eq!(log.lost_node_seconds(10_000), 200 * 32 + 100);
        assert_eq!(log.lost_node_seconds(300), 100 * 32);

        let text = log.write_string();
        let back = OutageLog::parse(&text).unwrap();
        assert_eq!(back.outages, log.outages);
        assert!(!back.comments.is_empty());
    }

    #[test]
    fn empty_log() {
        let log = OutageLog::default();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        assert_eq!(log.lost_node_seconds(1000), 0);
    }
}
