//! The streaming job-source abstraction that unifies every workload input.
//!
//! The paper's benchmarking methodology treats archived traces and synthetic
//! workloads as interchangeable inputs to the same evaluation pipeline. The
//! [`JobSource`] trait is that interchangeability as an API: a source yields
//! [`SwfRecord`]s one at a time together with a [`SourceMeta`] header, so
//! consumers (profilers, validators, simulators) can process multi-million-job
//! traces without ever materializing a full [`SwfLog`] record vector.
//!
//! Implementations in the workspace:
//!
//! * [`crate::parse::RecordIter`] — bounded-memory incremental parsing of an
//!   SWF file from any [`std::io::BufRead`].
//! * [`LogSource`] — an in-memory [`SwfLog`] replayed record by record.
//! * `psbench_workload::GeneratedStream` — lazy generation from any workload
//!   model.
//!
//! An [`SwfLog`] is just one *collectable sink* for a source
//! ([`JobSource::collect_log`]); streaming consumers such as
//! `psbench_analyze::WorkloadProfile::of_source` never need it.

use crate::error::ParseError;
use crate::header::SwfHeader;
use crate::log::SwfLog;
use crate::record::SwfRecord;

/// Metadata travelling with a job stream: a display name and the typed header.
///
/// For incremental sources (a file being parsed, a model not yet realized) the
/// header fills in as the stream is consumed and is **complete once the stream
/// has been drained**; for in-memory sources it is complete from the start.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SourceMeta {
    /// Display name of the source, used in reports.
    pub name: String,
    /// The typed SWF header of the stream, as known so far.
    pub header: SwfHeader,
}

impl SourceMeta {
    /// Metadata with a name and an empty header.
    pub fn named(name: impl Into<String>) -> Self {
        SourceMeta {
            name: name.into(),
            header: SwfHeader::default(),
        }
    }
}

/// A stream of SWF job records with a header: the common input interface of
/// the whole evaluation pipeline.
///
/// Sources are fallible (an archive file can be malformed mid-stream), so
/// records arrive as `Result`s; infallible sources simply never yield `Err`.
/// Records are yielded in file/generation order — for a conforming workload
/// that is ascending submit order, which is exactly what the streaming
/// profiler requires.
pub trait JobSource {
    /// The stream's metadata. The header portion is complete once the stream
    /// has been drained (see [`SourceMeta`]).
    fn meta(&self) -> &SourceMeta;

    /// Pull the next record. `None` means the stream is exhausted; an `Err`
    /// is terminal (implementations yield nothing after an error).
    fn next_record(&mut self) -> Option<Result<SwfRecord, ParseError>>;

    /// Drain the stream into an [`SwfLog`] — the materializing sink, kept for
    /// consumers that genuinely need random access to the whole record list.
    fn collect_log(mut self) -> Result<SwfLog, ParseError>
    where
        Self: Sized,
    {
        let mut jobs = Vec::new();
        while let Some(rec) = self.next_record() {
            jobs.push(rec?);
        }
        Ok(SwfLog::new(self.meta().header.clone(), jobs))
    }
}

impl<S: JobSource + ?Sized> JobSource for &mut S {
    fn meta(&self) -> &SourceMeta {
        (**self).meta()
    }

    fn next_record(&mut self) -> Option<Result<SwfRecord, ParseError>> {
        (**self).next_record()
    }
}

impl<S: JobSource + ?Sized> JobSource for Box<S> {
    fn meta(&self) -> &SourceMeta {
        (**self).meta()
    }

    fn next_record(&mut self) -> Option<Result<SwfRecord, ParseError>> {
        (**self).next_record()
    }
}

/// An in-memory [`SwfLog`] replayed as a [`JobSource`].
///
/// Built with [`SwfLog::as_source`]; records are cloned out one at a time, so
/// the log itself is untouched and can be reused.
#[derive(Debug, Clone)]
pub struct LogSource<'a> {
    meta: SourceMeta,
    jobs: std::slice::Iter<'a, SwfRecord>,
}

impl<'a> LogSource<'a> {
    /// Replay `log` under the given display name.
    pub fn new(name: impl Into<String>, log: &'a SwfLog) -> Self {
        LogSource {
            meta: SourceMeta {
                name: name.into(),
                header: log.header.clone(),
            },
            jobs: log.jobs.iter(),
        }
    }
}

impl JobSource for LogSource<'_> {
    fn meta(&self) -> &SourceMeta {
        &self.meta
    }

    fn next_record(&mut self) -> Option<Result<SwfRecord, ParseError>> {
        self.jobs.next().map(|r| Ok(r.clone()))
    }
}

impl Iterator for LogSource<'_> {
    type Item = Result<SwfRecord, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    const SAMPLE: &str = "\
;Computer: test
;MaxNodes: 64
1 0 5 100 16 -1 -1 16 200 -1 1 1 1 1 1 1 -1 -1
2 30 0 50 8 -1 -1 8 60 -1 1 2 1 2 1 1 -1 -1
";

    #[test]
    fn log_source_replays_records_and_header() {
        let log = parse(SAMPLE).unwrap();
        let mut src = log.as_source("sample");
        assert_eq!(src.meta().name, "sample");
        assert_eq!(src.meta().header.max_nodes, Some(64));
        let first = src.next_record().unwrap().unwrap();
        assert_eq!(first.job_id, 1);
        let second = src.next_record().unwrap().unwrap();
        assert_eq!(second.job_id, 2);
        assert!(src.next_record().is_none());
        assert!(src.next_record().is_none());
    }

    #[test]
    fn collect_log_round_trips_an_in_memory_log() {
        let log = parse(SAMPLE).unwrap();
        let back = log.as_source("sample").collect_log().unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn sources_compose_through_mut_and_box() {
        let log = parse(SAMPLE).unwrap();
        let mut src = log.as_source("sample");
        // &mut S is a JobSource too, so adapters can borrow a source.
        fn drain(mut s: impl JobSource) -> usize {
            let mut n = 0;
            while let Some(r) = s.next_record() {
                r.unwrap();
                n += 1;
            }
            n
        }
        assert_eq!(drain(&mut src), 2);
        let boxed: Box<dyn JobSource> = Box::new(log.as_source("boxed"));
        assert_eq!(boxed.meta().name, "boxed");
        assert_eq!(drain(boxed), 2);
    }

    #[test]
    fn log_source_is_an_iterator() {
        let log = parse(SAMPLE).unwrap();
        let ids: Vec<u64> = log.as_source("it").map(|r| r.unwrap().job_id).collect();
        assert_eq!(ids, vec![1, 2]);
    }
}
