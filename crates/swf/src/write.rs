//! Canonical serialization of standard workload files.
//!
//! The writer emits the typed header (in the order the paper lists the labels),
//! followed by one data line per record with the 18 integer fields separated by
//! single spaces. Writing then re-parsing a log yields an identical `SwfLog`
//! (up to header free-comment placement), which is verified by property tests.

use crate::log::SwfLog;
use crate::record::SwfRecord;
use std::fmt::Write as _;
use std::io::{self, Write};

/// Render a single record as a canonical data line (no trailing newline).
pub fn record_line(record: &SwfRecord) -> String {
    let raw = record.to_raw();
    let mut out = String::with_capacity(raw.len() * 6);
    for (i, v) in raw.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let _ = write!(out, "{v}");
    }
    out
}

/// Render a complete log (header plus data lines) to a string.
pub fn write_string(log: &SwfLog) -> String {
    let mut out = String::new();
    for line in log.header.render() {
        out.push_str(&line);
        out.push('\n');
    }
    for job in &log.jobs {
        out.push_str(&record_line(job));
        out.push('\n');
    }
    out
}

/// Write a complete log to any `io::Write` sink, one line at a time (the log
/// is never serialized into a single in-memory string).
pub fn write_to<W: Write>(log: &SwfLog, mut sink: W) -> io::Result<()> {
    for line in log.header.render() {
        writeln!(sink, "{line}")?;
    }
    for job in &log.jobs {
        writeln!(sink, "{}", record_line(job))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::SwfHeader;
    use crate::parse::{parse, parse_str, ParseOptions};
    use crate::record::{CompletionStatus, SwfRecordBuilder};

    fn sample_log() -> SwfLog {
        let mut header = SwfHeader {
            computer: Some("Test Machine".to_string()),
            version: Some(2),
            max_nodes: Some(64),
            ..SwfHeader::default()
        };
        header.notes.push("synthetic".to_string());
        let jobs = vec![
            SwfRecordBuilder::new(1, 0)
                .wait_time(5)
                .run_time(120)
                .allocated_procs(16)
                .requested_procs(16)
                .requested_time(300)
                .status(CompletionStatus::Completed)
                .user_id(1)
                .group_id(1)
                .executable_id(1)
                .queue_id(1)
                .partition_id(1)
                .build(),
            SwfRecordBuilder::new(2, 60)
                .run_time(30)
                .allocated_procs(1)
                .status(CompletionStatus::Failed)
                .depends_on(1, 15)
                .build(),
        ];
        SwfLog::new(header, jobs)
    }

    #[test]
    fn record_line_has_18_fields() {
        let log = sample_log();
        let line = record_line(&log.jobs[0]);
        assert_eq!(line.split_whitespace().count(), 18);
        assert!(line.starts_with("1 0 5 120 16"));
    }

    #[test]
    fn round_trip_preserves_jobs_and_typed_header() {
        let log = sample_log();
        let text = write_string(&log);
        let back = parse(&text).unwrap();
        assert_eq!(back.jobs, log.jobs);
        assert_eq!(back.header.computer, log.header.computer);
        assert_eq!(back.header.version, log.header.version);
        assert_eq!(back.header.max_nodes, log.header.max_nodes);
        assert_eq!(back.header.notes, log.header.notes);
    }

    #[test]
    fn round_trip_is_stable_after_one_pass() {
        // write -> parse -> write must be a fixed point.
        let log = sample_log();
        let once = write_string(&log);
        let reparsed = parse(&once).unwrap();
        let twice = write_string(&reparsed);
        assert_eq!(once, twice);
    }

    #[test]
    fn writer_output_parses_strictly() {
        let log = sample_log();
        let text = write_string(&log);
        parse_str(&text, &ParseOptions::strict()).unwrap();
    }

    #[test]
    fn write_to_sink() {
        let log = sample_log();
        let mut buf = Vec::new();
        write_to(&log, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), write_string(&log));
    }

    #[test]
    fn unknown_values_serialize_as_minus_one() {
        let log = SwfLog::new(
            SwfHeader::default(),
            vec![SwfRecordBuilder::new(3, 7).build()],
        );
        let text = write_string(&log);
        assert_eq!(
            text.trim(),
            "3 7 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1"
        );
    }
}
