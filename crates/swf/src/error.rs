//! Error types for SWF parsing, validation, and conversion.

use std::fmt;

/// An error produced while parsing an SWF file or a single SWF line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A data line did not contain the expected number of whitespace-separated fields.
    WrongFieldCount {
        /// 1-based line number in the input.
        line: usize,
        /// Number of fields found on the line.
        found: usize,
        /// Number of fields expected (always [`crate::record::FIELD_COUNT`]).
        expected: usize,
    },
    /// A field could not be parsed as an integer.
    InvalidInteger {
        /// 1-based line number in the input.
        line: usize,
        /// 0-based field index within the line.
        field: usize,
        /// The offending token.
        token: String,
    },
    /// A field held an integer that is out of the legal range for that field
    /// (e.g. a negative value other than the `-1` "unknown" sentinel).
    OutOfRange {
        /// 1-based line number in the input.
        line: usize,
        /// 0-based field index within the line.
        field: usize,
        /// The offending value.
        value: i64,
        /// Human readable description of the legal range.
        legal: &'static str,
    },
    /// A header comment used the `;Label: value` form but the label is not known and
    /// strict parsing was requested.
    UnknownHeaderLabel {
        /// 1-based line number in the input.
        line: usize,
        /// The unrecognized label.
        label: String,
    },
    /// A header comment value could not be interpreted (e.g. `MaxNodes` not an integer).
    InvalidHeaderValue {
        /// 1-based line number in the input.
        line: usize,
        /// The header label whose value was malformed.
        label: String,
        /// The offending value.
        value: String,
    },
    /// The input was empty (no data lines at all) and the parser was asked to require jobs.
    EmptyLog,
    /// An I/O error occurred while reading the input.
    Io(String),
    /// A raw accounting-log dialect failed to convert (streaming conversion
    /// surfaces [`ConvertError`]s through the [`crate::source::JobSource`]
    /// error channel).
    Convert(ConvertError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::WrongFieldCount {
                line,
                found,
                expected,
            } => write!(
                f,
                "line {line}: expected {expected} fields but found {found}"
            ),
            ParseError::InvalidInteger { line, field, token } => {
                write!(f, "line {line}: field {field} is not an integer: {token:?}")
            }
            ParseError::OutOfRange {
                line,
                field,
                value,
                legal,
            } => write!(
                f,
                "line {line}: field {field} value {value} out of range ({legal})"
            ),
            ParseError::UnknownHeaderLabel { line, label } => {
                write!(f, "line {line}: unknown header label {label:?}")
            }
            ParseError::InvalidHeaderValue { line, label, value } => {
                write!(
                    f,
                    "line {line}: invalid value for header {label:?}: {value:?}"
                )
            }
            ParseError::EmptyLog => write!(f, "log contains no job records"),
            ParseError::Io(msg) => write!(f, "i/o error: {msg}"),
            ParseError::Convert(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e.to_string())
    }
}

impl From<ConvertError> for ParseError {
    fn from(e: ConvertError) -> Self {
        ParseError::Convert(e)
    }
}

/// An error produced while converting a raw accounting log to SWF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvertError {
    /// A raw record was malformed for the selected dialect.
    MalformedRecord {
        /// 1-based line number in the raw input.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// A timestamp could not be interpreted.
    BadTimestamp {
        /// 1-based line number in the raw input.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// The raw log declared one dialect but the converter was invoked with another.
    DialectMismatch {
        /// Dialect the data appears to be in.
        found: String,
        /// Dialect requested by the caller.
        requested: String,
    },
    /// The resulting log would be empty.
    EmptyLog,
    /// The streaming converter's bounded reorder window was smaller than the
    /// input's submit-time disorder; the output could not be kept sorted.
    WindowExceeded {
        /// The reorder window size, in records.
        window: usize,
    },
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertError::MalformedRecord { line, reason } => {
                write!(f, "raw line {line}: {reason}")
            }
            ConvertError::BadTimestamp { line, token } => {
                write!(f, "raw line {line}: bad timestamp {token:?}")
            }
            ConvertError::DialectMismatch { found, requested } => {
                write!(
                    f,
                    "dialect mismatch: data looks like {found}, requested {requested}"
                )
            }
            ConvertError::EmptyLog => write!(f, "conversion produced no job records"),
            ConvertError::WindowExceeded { window } => write!(
                f,
                "raw input is more unsorted than the {window}-record reorder window; \
                 enlarge the window or convert materialized"
            ),
        }
    }
}

impl std::error::Error for ConvertError {}

/// An error produced while parsing the standard outage format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutageParseError {
    /// A data line did not contain the expected number of fields.
    WrongFieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        found: usize,
        /// Fields expected.
        expected: usize,
    },
    /// A field could not be parsed.
    InvalidField {
        /// 1-based line number.
        line: usize,
        /// 0-based field index.
        field: usize,
        /// Offending token.
        token: String,
    },
    /// Outage interval is inverted (end before start).
    InvertedInterval {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for OutageParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OutageParseError::WrongFieldCount {
                line,
                found,
                expected,
            } => write!(
                f,
                "outage line {line}: expected {expected} fields but found {found}"
            ),
            OutageParseError::InvalidField { line, field, token } => {
                write!(f, "outage line {line}: field {field} invalid: {token:?}")
            }
            OutageParseError::InvertedInterval { line } => {
                write!(f, "outage line {line}: end time precedes start time")
            }
        }
    }
}

impl std::error::Error for OutageParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_display_mentions_line() {
        let e = ParseError::WrongFieldCount {
            line: 7,
            found: 3,
            expected: 18,
        };
        let msg = e.to_string();
        assert!(msg.contains("line 7"));
        assert!(msg.contains("18"));
        assert!(msg.contains('3'));
    }

    #[test]
    fn invalid_integer_display() {
        let e = ParseError::InvalidInteger {
            line: 2,
            field: 5,
            token: "abc".to_string(),
        };
        assert!(e.to_string().contains("abc"));
        assert!(e.to_string().contains("field 5"));
    }

    #[test]
    fn out_of_range_display() {
        let e = ParseError::OutOfRange {
            line: 4,
            field: 1,
            value: -7,
            legal: ">= -1",
        };
        assert!(e.to_string().contains("-7"));
        assert!(e.to_string().contains(">= -1"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: ParseError = io.into();
        assert!(matches!(e, ParseError::Io(_)));
        assert!(e.to_string().contains("missing"));
    }

    #[test]
    fn convert_error_display() {
        let e = ConvertError::DialectMismatch {
            found: "sp2".into(),
            requested: "cm5".into(),
        };
        assert!(e.to_string().contains("sp2"));
        assert!(e.to_string().contains("cm5"));
    }

    #[test]
    fn outage_error_display() {
        let e = OutageParseError::InvertedInterval { line: 3 };
        assert!(e.to_string().contains("line 3"));
    }
}
