//! A complete standard workload: header plus job records.

use crate::header::SwfHeader;
use crate::record::{CompletionStatus, SwfRecord};
use crate::source::LogSource;
use serde::{Deserialize, Serialize};

/// A workload in the standard format: a typed header and a list of job records in
/// file order (ascending submit time for a conforming log).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SwfLog {
    /// The header comments of the log.
    pub header: SwfHeader,
    /// The job records, in file order.
    pub jobs: Vec<SwfRecord>,
}

impl SwfLog {
    /// Create a log from a header and records.
    pub fn new(header: SwfHeader, jobs: Vec<SwfRecord>) -> Self {
        SwfLog { header, jobs }
    }

    /// Number of job records (including partial-execution lines of checkpointed jobs).
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if the log has no job records.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Iterate over whole-job summary records only, skipping partial-execution lines
    /// (completion codes 2/3/4). Workload studies should use exactly these records.
    pub fn summaries(&self) -> impl Iterator<Item = &SwfRecord> {
        self.jobs.iter().filter(|j| j.is_summary())
    }

    /// Iterate over the partial-execution lines (codes 2/3/4) only.
    pub fn partials(&self) -> impl Iterator<Item = &SwfRecord> {
        self.jobs.iter().filter(|j| !j.is_summary())
    }

    /// Replay this in-memory log as a streaming [`crate::source::JobSource`],
    /// so materialized and streamed workloads share one consumer API.
    pub fn as_source(&self, name: impl Into<String>) -> LogSource<'_> {
        LogSource::new(name, self)
    }

    /// The submit time of the first job, or 0 for an empty log.
    pub fn first_submit(&self) -> i64 {
        self.jobs.iter().map(|j| j.submit_time).min().unwrap_or(0)
    }

    /// The latest known event time in the log (maximum of end times and submit times).
    pub fn last_event(&self) -> i64 {
        self.jobs
            .iter()
            .map(|j| j.end_time().unwrap_or(j.submit_time))
            .max()
            .unwrap_or(0)
    }

    /// Log duration in seconds: last event minus first submit.
    pub fn duration(&self) -> i64 {
        (self.last_event() - self.first_submit()).max(0)
    }

    /// Total processor-seconds of work in the summary records (where known).
    pub fn total_area(&self) -> i64 {
        self.summaries().filter_map(|j| j.area()).sum()
    }

    /// The largest processor count requested or allocated by any job.
    pub fn max_job_procs(&self) -> u32 {
        self.jobs
            .iter()
            .filter_map(|j| j.procs())
            .max()
            .unwrap_or(0)
    }

    /// The machine size to use for utilization computations: the header's `MaxNodes`
    /// if present, otherwise the largest job size observed.
    pub fn machine_size(&self) -> u32 {
        self.header
            .max_nodes
            .unwrap_or_else(|| self.max_job_procs())
    }

    /// Offered load of the log: total work area divided by machine capacity over the
    /// log duration. Returns `None` for an empty or zero-duration log.
    pub fn offered_load(&self) -> Option<f64> {
        let dur = self.duration();
        let size = self.machine_size();
        if dur <= 0 || size == 0 {
            return None;
        }
        Some(self.total_area() as f64 / (dur as f64 * size as f64))
    }

    /// Number of distinct users appearing in the log.
    pub fn user_count(&self) -> usize {
        let mut users: Vec<u32> = self.jobs.iter().filter_map(|j| j.user_id).collect();
        users.sort_unstable();
        users.dedup();
        users.len()
    }

    /// Sort records by ascending submit time, breaking ties by job id. A conforming
    /// log is already sorted; this restores the invariant after edits.
    pub fn sort_by_submit(&mut self) {
        self.jobs.sort_by_key(|j| (j.submit_time, j.job_id));
    }

    /// Shift all submit times so the earliest submit becomes zero, as the standard
    /// requires. Start/end times move implicitly since they are stored as offsets.
    pub fn rebase_times(&mut self) {
        let base = self.first_submit();
        if base != 0 {
            for j in &mut self.jobs {
                j.submit_time -= base;
            }
        }
    }

    /// Renumber jobs 1..n in current record order, remapping `preceding_job`
    /// references accordingly. Partial-execution lines keep the id of their summary
    /// line (identified by sharing the old id).
    pub fn renumber(&mut self) {
        use std::collections::HashMap;
        let mut mapping: HashMap<u64, u64> = HashMap::new();
        let mut next = 1u64;
        for j in &mut self.jobs {
            let new_id = *mapping.entry(j.job_id).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            j.job_id = new_id;
        }
        for j in &mut self.jobs {
            if let Some(p) = j.preceding_job {
                j.preceding_job = mapping.get(&p).copied();
                if j.preceding_job.is_none() {
                    j.think_time = None;
                }
            }
        }
    }

    /// Retain only summary records (drop checkpoint/swap partial lines).
    pub fn drop_partials(&mut self) {
        self.jobs.retain(|j| j.is_summary());
    }

    /// Retain only jobs that completed successfully (code 1).
    pub fn completed_only(&self) -> SwfLog {
        SwfLog {
            header: self.header.clone(),
            jobs: self
                .jobs
                .iter()
                .filter(|j| j.status == CompletionStatus::Completed)
                .cloned()
                .collect(),
        }
    }

    /// Return a copy containing only the first `n` summary jobs (partials dropped).
    pub fn truncate_jobs(&self, n: usize) -> SwfLog {
        SwfLog {
            header: self.header.clone(),
            jobs: self.summaries().take(n).cloned().collect(),
        }
    }

    /// Scale all interarrival gaps by `factor` (>1 stretches the log, lowering load;
    /// <1 compresses it, raising load). Wait/run times are unchanged; the first
    /// submit time is preserved.
    pub fn scale_interarrivals(&mut self, factor: f64) {
        assert!(factor > 0.0, "interarrival scale factor must be positive");
        if self.jobs.is_empty() {
            return;
        }
        let mut sorted_idx: Vec<usize> = (0..self.jobs.len()).collect();
        sorted_idx.sort_by_key(|&i| (self.jobs[i].submit_time, self.jobs[i].job_id));
        let base = self.jobs[sorted_idx[0]].submit_time;
        let mut prev_orig = base;
        let mut prev_new = base as f64;
        for &i in &sorted_idx {
            let orig = self.jobs[i].submit_time;
            let gap = (orig - prev_orig) as f64;
            let new = prev_new + gap * factor;
            prev_orig = orig;
            prev_new = new;
            self.jobs[i].submit_time = new.round() as i64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SwfRecordBuilder;

    fn sample_log() -> SwfLog {
        let header = SwfHeader {
            max_nodes: Some(8),
            ..SwfHeader::default()
        };
        let jobs = vec![
            SwfRecordBuilder::new(1, 0)
                .wait_time(0)
                .run_time(100)
                .allocated_procs(4)
                .status(CompletionStatus::Completed)
                .user_id(1)
                .build(),
            SwfRecordBuilder::new(2, 50)
                .wait_time(10)
                .run_time(200)
                .allocated_procs(8)
                .status(CompletionStatus::Completed)
                .user_id(2)
                .build(),
            SwfRecordBuilder::new(3, 120)
                .wait_time(5)
                .run_time(10)
                .allocated_procs(1)
                .status(CompletionStatus::Failed)
                .user_id(1)
                .build(),
        ];
        SwfLog::new(header, jobs)
    }

    #[test]
    fn basic_accessors() {
        let log = sample_log();
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
        assert_eq!(log.first_submit(), 0);
        assert_eq!(log.last_event(), 260);
        assert_eq!(log.duration(), 260);
        assert_eq!(log.max_job_procs(), 8);
        assert_eq!(log.machine_size(), 8);
        assert_eq!(log.user_count(), 2);
    }

    #[test]
    fn total_area_and_load() {
        let log = sample_log();
        // 100*4 + 200*8 + 10*1 = 2010 processor-seconds
        assert_eq!(log.total_area(), 2010);
        let load = log.offered_load().unwrap();
        assert!((load - 2010.0 / (260.0 * 8.0)).abs() < 1e-12);
    }

    #[test]
    fn machine_size_falls_back_to_max_job() {
        let mut log = sample_log();
        log.header.max_nodes = None;
        assert_eq!(log.machine_size(), 8);
    }

    #[test]
    fn empty_log_edge_cases() {
        let log = SwfLog::default();
        assert!(log.is_empty());
        assert_eq!(log.duration(), 0);
        assert_eq!(log.offered_load(), None);
        assert_eq!(log.total_area(), 0);
    }

    #[test]
    fn sort_and_rebase() {
        let mut log = sample_log();
        log.jobs.reverse();
        log.jobs[0].submit_time += 30; // perturb
        log.sort_by_submit();
        assert!(log
            .jobs
            .windows(2)
            .all(|w| w[0].submit_time <= w[1].submit_time));
        for j in &mut log.jobs {
            j.submit_time += 1000;
        }
        log.rebase_times();
        assert_eq!(log.first_submit(), 0);
    }

    #[test]
    fn renumber_remaps_dependencies() {
        let mut log = SwfLog::default();
        log.jobs.push(SwfRecordBuilder::new(10, 0).build());
        log.jobs
            .push(SwfRecordBuilder::new(20, 5).depends_on(10, 60).build());
        log.jobs
            .push(SwfRecordBuilder::new(30, 9).depends_on(99, 5).build());
        log.renumber();
        assert_eq!(log.jobs[0].job_id, 1);
        assert_eq!(log.jobs[1].job_id, 2);
        assert_eq!(log.jobs[1].preceding_job, Some(1));
        assert_eq!(log.jobs[1].think_time, Some(60));
        // dangling dependency is dropped along with its think time
        assert_eq!(log.jobs[2].preceding_job, None);
        assert_eq!(log.jobs[2].think_time, None);
    }

    #[test]
    fn renumber_keeps_checkpoint_lines_together() {
        let mut log = SwfLog::default();
        let mut summary = SwfRecordBuilder::new(7, 0).run_time(100).build();
        summary.status = CompletionStatus::Completed;
        let mut part = SwfRecordBuilder::new(7, 0).run_time(40).build();
        part.status = CompletionStatus::PartialContinued;
        log.jobs.push(summary);
        log.jobs.push(part);
        log.renumber();
        assert_eq!(log.jobs[0].job_id, 1);
        assert_eq!(log.jobs[1].job_id, 1);
    }

    #[test]
    fn completed_only_filters() {
        let log = sample_log();
        let done = log.completed_only();
        assert_eq!(done.len(), 2);
        assert!(done
            .jobs
            .iter()
            .all(|j| j.status == CompletionStatus::Completed));
    }

    #[test]
    fn truncate_jobs_takes_prefix() {
        let log = sample_log();
        let t = log.truncate_jobs(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.jobs[0].job_id, 1);
        assert_eq!(t.jobs[1].job_id, 2);
    }

    #[test]
    fn scale_interarrivals_stretches() {
        let mut log = sample_log();
        log.scale_interarrivals(2.0);
        let submits: Vec<i64> = log.jobs.iter().map(|j| j.submit_time).collect();
        assert_eq!(submits, vec![0, 100, 240]);
        let mut log2 = sample_log();
        log2.scale_interarrivals(0.5);
        let submits2: Vec<i64> = log2.jobs.iter().map(|j| j.submit_time).collect();
        assert_eq!(submits2, vec![0, 25, 60]);
    }

    #[test]
    #[should_panic]
    fn scale_interarrivals_rejects_nonpositive() {
        let mut log = sample_log();
        log.scale_interarrivals(0.0);
    }

    #[test]
    fn partials_iterator() {
        let mut log = sample_log();
        let mut part = SwfRecordBuilder::new(4, 200).run_time(5).build();
        part.status = CompletionStatus::PartialContinued;
        log.jobs.push(part);
        assert_eq!(log.partials().count(), 1);
        assert_eq!(log.summaries().count(), 3);
    }
}
