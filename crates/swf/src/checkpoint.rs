//! Multi-line records for checkpointed / swapped-out jobs.
//!
//! The standard proposes that a job which was swapped out appears twice: once as a
//! single summary line (completion code 0 or 1, runtime = sum of partial runtimes),
//! and once per partial execution burst (code 2 = "to be continued", the last burst
//! carrying code 3 on completion or 4 when killed). All lines share the job id; only
//! the first burst carries the submit time, later bursts carry only a wait time
//! since the previous burst.
//!
//! This module assembles structured [`CheckpointedJob`] values from the flat record
//! list of a log, and expands them back into the flat multi-line representation.

use crate::log::SwfLog;
use crate::record::{CompletionStatus, SwfRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One execution burst of a checkpointed job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Burst {
    /// Wait time before this burst: for the first burst this is the wait since
    /// submission; for later bursts, the time since the previous burst ended.
    pub wait_time: i64,
    /// Duration of the burst in seconds.
    pub run_time: i64,
    /// Whether this burst ended by being swapped out (continued), by completing, or
    /// by being killed.
    pub outcome: BurstOutcome,
}

/// How an execution burst ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BurstOutcome {
    /// Swapped out; the job continues in a later burst (code 2).
    Continued,
    /// The job completed at the end of this burst (code 3).
    Completed,
    /// The job was killed at the end of this burst (code 4).
    Killed,
}

impl BurstOutcome {
    fn to_status(self) -> CompletionStatus {
        match self {
            BurstOutcome::Continued => CompletionStatus::PartialContinued,
            BurstOutcome::Completed => CompletionStatus::PartialCompleted,
            BurstOutcome::Killed => CompletionStatus::PartialFailed,
        }
    }
}

/// A job together with its execution bursts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointedJob {
    /// The whole-job summary record (codes 0/1).
    pub summary: SwfRecord,
    /// The partial-execution bursts, in order. Empty for jobs that ran in one piece.
    pub bursts: Vec<Burst>,
}

impl CheckpointedJob {
    /// Total runtime over all bursts (equals the summary runtime for a consistent job).
    pub fn total_burst_runtime(&self) -> i64 {
        self.bursts.iter().map(|b| b.run_time).sum()
    }

    /// Number of times the job was preempted / swapped out.
    pub fn preemption_count(&self) -> usize {
        self.bursts
            .iter()
            .filter(|b| b.outcome == BurstOutcome::Continued)
            .count()
    }
}

/// Error produced when a log's multi-line structure is inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// A partial line appeared for a job with no summary line.
    MissingSummary {
        /// The job id.
        job: u64,
    },
    /// Partial lines continue after a terminal (code 3/4) burst.
    BurstAfterTerminal {
        /// The job id.
        job: u64,
    },
    /// The last burst of a job is marked "to be continued".
    UnterminatedBursts {
        /// The job id.
        job: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::MissingSummary { job } => {
                write!(
                    f,
                    "job {job}: partial execution lines without a summary line"
                )
            }
            CheckpointError::BurstAfterTerminal { job } => {
                write!(f, "job {job}: burst after a terminal burst")
            }
            CheckpointError::UnterminatedBursts { job } => {
                write!(f, "job {job}: last burst is marked to-be-continued")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Group the records of a log into [`CheckpointedJob`]s.
///
/// Jobs without partial lines come back with an empty burst list. Record order of the
/// partial lines within one job id is preserved (file order).
pub fn assemble(log: &SwfLog) -> Result<Vec<CheckpointedJob>, CheckpointError> {
    let mut summaries: BTreeMap<u64, SwfRecord> = BTreeMap::new();
    let mut bursts: BTreeMap<u64, Vec<&SwfRecord>> = BTreeMap::new();
    for rec in &log.jobs {
        if rec.is_summary() {
            summaries.insert(rec.job_id, rec.clone());
        } else {
            bursts.entry(rec.job_id).or_default().push(rec);
        }
    }
    let mut out = Vec::with_capacity(summaries.len());
    for (id, summary) in summaries {
        let mut job = CheckpointedJob {
            summary,
            bursts: Vec::new(),
        };
        if let Some(parts) = bursts.remove(&id) {
            let mut terminal_seen = false;
            for p in parts {
                if terminal_seen {
                    return Err(CheckpointError::BurstAfterTerminal { job: id });
                }
                let outcome = match p.status {
                    CompletionStatus::PartialContinued => BurstOutcome::Continued,
                    CompletionStatus::PartialCompleted => BurstOutcome::Completed,
                    CompletionStatus::PartialFailed => BurstOutcome::Killed,
                    _ => unreachable!("non-partial status filtered above"),
                };
                if outcome != BurstOutcome::Continued {
                    terminal_seen = true;
                }
                job.bursts.push(Burst {
                    wait_time: p.wait_time.unwrap_or(0),
                    run_time: p.run_time.unwrap_or(0),
                    outcome,
                });
            }
            if !terminal_seen && !job.bursts.is_empty() {
                return Err(CheckpointError::UnterminatedBursts { job: id });
            }
        }
        out.push(job);
    }
    if let Some((&job, _)) = bursts.iter().next() {
        return Err(CheckpointError::MissingSummary { job });
    }
    Ok(out)
}

/// Expand structured jobs back into the flat multi-line representation.
///
/// The summary line is emitted first (as the standard proposes), followed by one line
/// per burst. Burst lines carry the summary's identity fields but their own wait and
/// run times; only the first burst carries the submit time, later ones carry the
/// submit time of the summary as required for sortability but leave CPU/memory unknown.
pub fn expand(jobs: &[CheckpointedJob]) -> Vec<SwfRecord> {
    let mut out = Vec::new();
    for job in jobs {
        out.push(job.summary.clone());
        for burst in &job.bursts {
            let mut rec = job.summary.clone();
            rec.status = burst.outcome.to_status();
            rec.wait_time = Some(burst.wait_time);
            rec.run_time = Some(burst.run_time);
            rec.avg_cpu_time = None;
            rec.used_memory_kb = None;
            out.push(rec);
        }
    }
    out
}

/// Convenience: summarize a sequence of bursts into the summary fields the standard
/// expects (total runtime, completion status), given the job's submit time and the
/// wait before the first burst.
pub fn summarize_bursts(template: &SwfRecord, bursts: &[Burst]) -> SwfRecord {
    let mut summary = template.clone();
    summary.run_time = Some(bursts.iter().map(|b| b.run_time).sum());
    summary.wait_time = bursts.first().map(|b| b.wait_time);
    summary.status = match bursts.last().map(|b| b.outcome) {
        Some(BurstOutcome::Completed) | None => CompletionStatus::Completed,
        Some(BurstOutcome::Killed) => CompletionStatus::Failed,
        Some(BurstOutcome::Continued) => CompletionStatus::Failed,
    };
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::SwfHeader;
    use crate::record::SwfRecordBuilder;

    fn burst_record(id: u64, wait: i64, run: i64, status: CompletionStatus) -> SwfRecord {
        let mut r = SwfRecordBuilder::new(id, 0)
            .wait_time(wait)
            .run_time(run)
            .allocated_procs(4)
            .build();
        r.status = status;
        r
    }

    fn checkpointed_log() -> SwfLog {
        let summary = SwfRecordBuilder::new(1, 0)
            .wait_time(10)
            .run_time(100)
            .allocated_procs(4)
            .status(CompletionStatus::Completed)
            .build();
        let plain = SwfRecordBuilder::new(2, 5)
            .wait_time(0)
            .run_time(50)
            .allocated_procs(2)
            .status(CompletionStatus::Completed)
            .build();
        let jobs = vec![
            summary,
            burst_record(1, 10, 60, CompletionStatus::PartialContinued),
            burst_record(1, 20, 40, CompletionStatus::PartialCompleted),
            plain,
        ];
        SwfLog::new(SwfHeader::default(), jobs)
    }

    #[test]
    fn assemble_groups_bursts() {
        let jobs = assemble(&checkpointed_log()).unwrap();
        assert_eq!(jobs.len(), 2);
        let cp = jobs.iter().find(|j| j.summary.job_id == 1).unwrap();
        assert_eq!(cp.bursts.len(), 2);
        assert_eq!(cp.total_burst_runtime(), 100);
        assert_eq!(cp.preemption_count(), 1);
        assert_eq!(cp.bursts[1].outcome, BurstOutcome::Completed);
        let plain = jobs.iter().find(|j| j.summary.job_id == 2).unwrap();
        assert!(plain.bursts.is_empty());
    }

    #[test]
    fn assemble_rejects_orphan_partials() {
        let mut log = checkpointed_log();
        log.jobs
            .push(burst_record(9, 0, 5, CompletionStatus::PartialContinued));
        // Add a terminal burst so the error we hit is the missing summary.
        log.jobs
            .push(burst_record(9, 0, 5, CompletionStatus::PartialCompleted));
        assert_eq!(
            assemble(&log).unwrap_err(),
            CheckpointError::MissingSummary { job: 9 }
        );
    }

    #[test]
    fn assemble_rejects_burst_after_terminal() {
        let mut log = checkpointed_log();
        log.jobs
            .push(burst_record(1, 1, 5, CompletionStatus::PartialContinued));
        assert_eq!(
            assemble(&log).unwrap_err(),
            CheckpointError::BurstAfterTerminal { job: 1 }
        );
    }

    #[test]
    fn assemble_rejects_unterminated_chain() {
        let summary = SwfRecordBuilder::new(1, 0)
            .wait_time(0)
            .run_time(10)
            .allocated_procs(1)
            .status(CompletionStatus::Completed)
            .build();
        let jobs = vec![
            summary,
            burst_record(1, 0, 10, CompletionStatus::PartialContinued),
        ];
        let log = SwfLog::new(SwfHeader::default(), jobs);
        assert_eq!(
            assemble(&log).unwrap_err(),
            CheckpointError::UnterminatedBursts { job: 1 }
        );
    }

    #[test]
    fn expand_round_trips() {
        let log = checkpointed_log();
        let structured = assemble(&log).unwrap();
        let flat = expand(&structured);
        // Reassembling the expanded records gives the same structure.
        let relog = SwfLog::new(SwfHeader::default(), flat);
        let again = assemble(&relog).unwrap();
        assert_eq!(again, structured);
    }

    #[test]
    fn summarize_bursts_computes_totals() {
        let template = SwfRecordBuilder::new(7, 100).allocated_procs(8).build();
        let bursts = vec![
            Burst {
                wait_time: 5,
                run_time: 30,
                outcome: BurstOutcome::Continued,
            },
            Burst {
                wait_time: 12,
                run_time: 20,
                outcome: BurstOutcome::Completed,
            },
        ];
        let s = summarize_bursts(&template, &bursts);
        assert_eq!(s.run_time, Some(50));
        assert_eq!(s.wait_time, Some(5));
        assert_eq!(s.status, CompletionStatus::Completed);

        let killed = vec![Burst {
            wait_time: 0,
            run_time: 9,
            outcome: BurstOutcome::Killed,
        }];
        let s2 = summarize_bursts(&template, &killed);
        assert_eq!(s2.status, CompletionStatus::Failed);
    }

    #[test]
    fn checkpoint_error_display() {
        let e = CheckpointError::MissingSummary { job: 3 };
        assert!(e.to_string().contains("job 3"));
    }
}
