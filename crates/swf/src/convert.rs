//! Conversion of raw accounting-log dialects into the standard workload format.
//!
//! Section 2.1 of the paper observes that "most parallel supercomputers maintain
//! accounting logs" whose fields "appear in different orders and formats", and the
//! standard format exists exactly so such logs can be used interchangeably. This
//! module implements converters for four raw dialects modelled on the systems the
//! paper cites (NASA Ames iPSC/860, SDSC Paragon, CTC SP2, LANL CM-5). The dialects
//! themselves are synthetic — we do not ship archive data — but they exercise the
//! conversion pipeline the standard requires: heterogeneous field orders, separators
//! and units in, one clean anonymized SWF out.

use crate::anonymize::{densify_ids, AnonymizationKey};
use crate::error::ConvertError;
use crate::header::{SwfHeader, FORMAT_VERSION};
use crate::log::SwfLog;
use crate::record::{CompletionStatus, SwfRecord};
use crate::validate::{clean, CleaningReport};
use serde::{Deserialize, Serialize};

/// The raw accounting-log dialects understood by the converter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dialect {
    /// NASA Ames iPSC/860 style: whitespace separated
    /// `jobid user exe nodes submit_epoch start_epoch runtime status`.
    NasaIpsc,
    /// SDSC Paragon style: pipe separated
    /// `jobid|user|group|queue|partition|submit|start|end|nodes|cpu_secs|mem_kb|status`.
    SdscParagon,
    /// CTC SP2 / LoadLeveler style: `key=value` pairs, one job per line, e.g.
    /// `job=12 user=u4 group=g1 class=batch submit=100 start=160 end=400 procs=16 wall_req=3600 mem_req=65536 completion=ok`.
    CtcSp2,
    /// LANL CM-5 style: comma separated
    /// `jobid,user,group,exe,partition_size,submit,start,end,avg_cpu,mem_kb,outcome`.
    LanlCm5,
}

impl Dialect {
    /// All dialects, for iteration in tests and benchmarks.
    pub fn all() -> &'static [Dialect] {
        &[
            Dialect::NasaIpsc,
            Dialect::SdscParagon,
            Dialect::CtcSp2,
            Dialect::LanlCm5,
        ]
    }

    /// A short human readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Dialect::NasaIpsc => "nasa-ipsc860",
            Dialect::SdscParagon => "sdsc-paragon",
            Dialect::CtcSp2 => "ctc-sp2",
            Dialect::LanlCm5 => "lanl-cm5",
        }
    }

    /// The machine description recorded in the converted header.
    pub fn computer(&self) -> &'static str {
        match self {
            Dialect::NasaIpsc => "Intel iPSC/860",
            Dialect::SdscParagon => "Intel Paragon",
            Dialect::CtcSp2 => "IBM SP2",
            Dialect::LanlCm5 => "Thinking Machines CM-5",
        }
    }
}

/// Result of converting a raw log: the SWF log, the anonymization key, and the
/// report of any cleaning that was needed to make the output conforming.
#[derive(Debug, Clone)]
pub struct Conversion {
    /// The converted, cleaned, anonymized log.
    pub log: SwfLog,
    /// Mapping from original identifiers to the dense ids in the log.
    pub key: AnonymizationKey,
    /// What the cleaning pass had to fix.
    pub cleaning: CleaningReport,
    /// Number of raw lines that were skipped as unparseable (lenient mode only).
    pub skipped: usize,
}

/// Options for conversion.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConvertOptions {
    /// If true, any malformed raw record aborts conversion; otherwise it is skipped
    /// and counted.
    pub strict: bool,
}

/// An intermediate, dialect-independent raw job used internally by the converters.
#[derive(Debug, Clone, Default)]
struct RawJob {
    user: Option<String>,
    group: Option<String>,
    executable: Option<String>,
    queue: Option<String>,
    partition: Option<String>,
    submit: i64,
    start: Option<i64>,
    end: Option<i64>,
    runtime: Option<i64>,
    procs: Option<u32>,
    cpu_secs: Option<i64>,
    mem_kb: Option<i64>,
    req_procs: Option<u32>,
    req_time: Option<i64>,
    req_mem_kb: Option<i64>,
    completed: Option<bool>,
    interactive: bool,
}

impl RawJob {
    fn into_record(self, job_id: u64) -> SwfRecord {
        let wait = match (self.start, Some(self.submit)) {
            (Some(s), Some(sub)) if s >= sub => Some(s - sub),
            _ => None,
        };
        let run = match (self.runtime, self.start, self.end) {
            (Some(r), _, _) => Some(r),
            (None, Some(s), Some(e)) if e >= s => Some(e - s),
            _ => None,
        };
        SwfRecord {
            job_id,
            submit_time: self.submit,
            wait_time: wait,
            run_time: run,
            allocated_procs: self.procs,
            avg_cpu_time: self.cpu_secs,
            used_memory_kb: self.mem_kb,
            requested_procs: self.req_procs.or(self.procs),
            requested_time: self.req_time,
            requested_memory_kb: self.req_mem_kb,
            status: match self.completed {
                Some(true) => CompletionStatus::Completed,
                Some(false) => CompletionStatus::Failed,
                None => CompletionStatus::Unknown,
            },
            // Identifier fields hold placeholder hashes here; densify_ids() rewrites
            // them to 1..n. We stash indexes via a string table in convert() instead,
            // so these stay None until then.
            user_id: None,
            group_id: None,
            executable_id: None,
            queue_id: if self.interactive { Some(0) } else { None },
            partition_id: None,
            preceding_job: None,
            think_time: None,
        }
    }
}

fn parse_i64(tok: &str, line: usize) -> Result<i64, ConvertError> {
    tok.trim()
        .parse::<i64>()
        .or_else(|_| tok.trim().parse::<f64>().map(|f| f.trunc() as i64))
        .map_err(|_| ConvertError::BadTimestamp {
            line,
            token: tok.to_string(),
        })
}

fn parse_u32(tok: &str, line: usize) -> Result<u32, ConvertError> {
    parse_i64(tok, line).map(|v| v.max(0) as u32)
}

fn parse_nasa(line: &str, line_no: usize) -> Result<RawJob, ConvertError> {
    // jobid user exe nodes submit_epoch start_epoch runtime status
    let f = crate::parse::split_exact::<8>(line.split_ascii_whitespace()).map_err(|found| {
        ConvertError::MalformedRecord {
            line: line_no,
            reason: format!("expected 8 fields, found {found}"),
        }
    })?;
    Ok(RawJob {
        user: Some(f[1].to_string()),
        executable: Some(f[2].to_string()),
        procs: Some(parse_u32(f[3], line_no)?),
        submit: parse_i64(f[4], line_no)?,
        start: Some(parse_i64(f[5], line_no)?),
        runtime: Some(parse_i64(f[6], line_no)?),
        completed: Some(f[7] == "ok" || f[7] == "0"),
        ..RawJob::default()
    })
}

fn parse_paragon(line: &str, line_no: usize) -> Result<RawJob, ConvertError> {
    // jobid|user|group|queue|partition|submit|start|end|nodes|cpu_secs|mem_kb|status
    let f = crate::parse::split_exact::<12>(line.split('|')).map_err(|found| {
        ConvertError::MalformedRecord {
            line: line_no,
            reason: format!("expected 12 pipe-separated fields, found {found}"),
        }
    })?;
    let queue = f[3].trim().to_string();
    Ok(RawJob {
        user: Some(f[1].trim().to_string()),
        group: Some(f[2].trim().to_string()),
        interactive: queue.eq_ignore_ascii_case("interactive"),
        queue: Some(queue),
        partition: Some(f[4].trim().to_string()),
        submit: parse_i64(f[5], line_no)?,
        start: Some(parse_i64(f[6], line_no)?),
        end: Some(parse_i64(f[7], line_no)?),
        procs: Some(parse_u32(f[8], line_no)?),
        cpu_secs: Some(parse_i64(f[9], line_no)?),
        mem_kb: Some(parse_i64(f[10], line_no)?),
        completed: Some(f[11].trim() == "C"),
        ..RawJob::default()
    })
}

fn parse_sp2(line: &str, line_no: usize) -> Result<RawJob, ConvertError> {
    // key=value pairs
    let mut job = RawJob::default();
    let mut saw_submit = false;
    for pair in line.split_whitespace() {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| ConvertError::MalformedRecord {
                line: line_no,
                reason: format!("token {pair:?} is not key=value"),
            })?;
        match key {
            "job" => {}
            "user" => job.user = Some(value.to_string()),
            "group" => job.group = Some(value.to_string()),
            "class" => {
                job.interactive = value.eq_ignore_ascii_case("interactive");
                job.queue = Some(value.to_string());
            }
            "submit" => {
                job.submit = parse_i64(value, line_no)?;
                saw_submit = true;
            }
            "start" => job.start = Some(parse_i64(value, line_no)?),
            "end" => job.end = Some(parse_i64(value, line_no)?),
            "procs" => job.procs = Some(parse_u32(value, line_no)?),
            "req_procs" => job.req_procs = Some(parse_u32(value, line_no)?),
            "wall_req" => job.req_time = Some(parse_i64(value, line_no)?),
            "mem_req" => job.req_mem_kb = Some(parse_i64(value, line_no)?),
            "mem_used" => job.mem_kb = Some(parse_i64(value, line_no)?),
            "cpu" => job.cpu_secs = Some(parse_i64(value, line_no)?),
            "completion" => job.completed = Some(value == "ok"),
            "exe" => job.executable = Some(value.to_string()),
            _ => {
                // Unknown keys are tolerated: raw logs have "other less-standard fields".
            }
        }
    }
    if !saw_submit {
        return Err(ConvertError::MalformedRecord {
            line: line_no,
            reason: "missing submit= field".to_string(),
        });
    }
    Ok(job)
}

fn parse_cm5(line: &str, line_no: usize) -> Result<RawJob, ConvertError> {
    // jobid,user,group,exe,partition_size,submit,start,end,avg_cpu,mem_kb,outcome
    let f = crate::parse::split_exact::<11>(line.split(',')).map_err(|found| {
        ConvertError::MalformedRecord {
            line: line_no,
            reason: format!("expected 11 comma-separated fields, found {found}"),
        }
    })?;
    // The CM-5 allocated fixed power-of-two partitions; the partition size doubles as
    // the processor count and the partition identity.
    let psize = parse_u32(f[4], line_no)?;
    Ok(RawJob {
        user: Some(f[1].trim().to_string()),
        group: Some(f[2].trim().to_string()),
        executable: Some(f[3].trim().to_string()),
        partition: Some(format!("p{psize}")),
        procs: Some(psize),
        submit: parse_i64(f[5], line_no)?,
        start: Some(parse_i64(f[6], line_no)?),
        end: Some(parse_i64(f[7], line_no)?),
        cpu_secs: Some(parse_i64(f[8], line_no)?),
        mem_kb: Some(parse_i64(f[9], line_no)?),
        completed: Some(f[10].trim() == "success"),
        ..RawJob::default()
    })
}

/// Convert raw accounting-log text in the given dialect to a clean SWF log.
pub fn convert(
    raw: &str,
    dialect: Dialect,
    max_nodes: Option<u32>,
    opts: &ConvertOptions,
) -> Result<Conversion, ConvertError> {
    let mut raw_jobs: Vec<RawJob> = Vec::new();
    let mut skipped = 0usize;
    for (i, line) in raw.lines().enumerate() {
        let line_no = i + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with(';') {
            continue;
        }
        let parsed = match dialect {
            Dialect::NasaIpsc => parse_nasa(trimmed, line_no),
            Dialect::SdscParagon => parse_paragon(trimmed, line_no),
            Dialect::CtcSp2 => parse_sp2(trimmed, line_no),
            Dialect::LanlCm5 => parse_cm5(trimmed, line_no),
        };
        match parsed {
            Ok(j) => raw_jobs.push(j),
            Err(e) => {
                if opts.strict {
                    return Err(e);
                }
                skipped += 1;
            }
        }
    }
    if raw_jobs.is_empty() {
        return Err(ConvertError::EmptyLog);
    }

    // Sort by submit time (raw logs are often in end-time order) and rebase to zero.
    raw_jobs.sort_by_key(|j| j.submit);
    let base = raw_jobs.first().map(|j| j.submit).unwrap_or(0);

    // Build SWF records with dense string-keyed identifiers.
    let mut key = AnonymizationKey::default();
    let mut jobs: Vec<SwfRecord> = Vec::with_capacity(raw_jobs.len());
    for (idx, mut rj) in raw_jobs.into_iter().enumerate() {
        rj.submit -= base;
        if let Some(s) = rj.start.as_mut() {
            *s -= base;
        }
        if let Some(e) = rj.end.as_mut() {
            *e -= base;
        }
        let user = rj.user.clone();
        let group = rj.group.clone();
        let exe = rj.executable.clone();
        let queue = rj.queue.clone();
        let partition = rj.partition.clone();
        let interactive = rj.interactive;
        let mut rec = rj.into_record(idx as u64 + 1);
        rec.user_id = user.map(|u| key.users.map(&u));
        rec.group_id = group.map(|g| key.groups.map(&g));
        rec.executable_id = exe.map(|e| key.executables.map(&e));
        rec.queue_id = if interactive {
            Some(0)
        } else {
            queue.map(|q| key.queues.map(&q))
        };
        rec.partition_id = partition.map(|p| key.partitions.map(&p));
        jobs.push(rec);
    }

    let mut header = SwfHeader {
        computer: Some(dialect.computer().to_string()),
        conversion: Some("psbench raw-log converter".to_string()),
        version: Some(FORMAT_VERSION),
        max_nodes,
        ..SwfHeader::default()
    };
    header.notes.push(format!(
        "Converted from synthetic {} dialect",
        dialect.name()
    ));

    let mut log = SwfLog::new(header, jobs);
    // densify_ids is idempotent here (ids are already dense) but shields against
    // dialect parsers that might leave gaps in the future.
    let _ = densify_ids(&mut log);
    let cleaning = clean(&mut log);
    Ok(Conversion {
        log,
        key,
        cleaning,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    const NASA: &str = "\
# jobid user exe nodes submit start runtime status
1 alice cfd_solver 32 1000 1010 600 ok
2 bob qcd 64 1100 1200 1200 ok
3 alice cfd_solver 32 1300 2410 30 failed
";

    const PARAGON: &str = "\
101|u12|g3|batch|main|5000|5100|5700|16|550|32768|C
102|u13|g3|interactive|main|5050|5055|5075|1|18|4096|C
103|u12|g4|batch|io|5200|5900|6900|64|980|65536|F
";

    const SP2: &str = "\
job=1 user=u1 group=g1 class=batch submit=100 start=160 end=400 procs=16 req_procs=16 wall_req=3600 mem_req=65536 completion=ok
job=2 user=u2 group=g1 class=interactive submit=150 start=152 end=200 procs=1 wall_req=600 completion=ok
job=3 user=u1 group=g2 class=batch submit=300 start=500 end=5500 procs=128 wall_req=7200 completion=removed
";

    const CM5: &str = "\
1,u_a,grp1,shallow_water,32,0,5,905,880,120000,success
2,u_b,grp1,qcd,512,60,1000,5000,3900,800000,success
3,u_a,grp2,shallow_water,32,100,905,1000,90,100000,failure
";

    #[test]
    fn converts_nasa_dialect() {
        let c = convert(
            NASA,
            Dialect::NasaIpsc,
            Some(128),
            &ConvertOptions::default(),
        )
        .unwrap();
        assert_eq!(c.log.len(), 3);
        assert_eq!(c.skipped, 0);
        assert!(validate(&c.log).is_clean());
        assert_eq!(c.log.jobs[0].submit_time, 0);
        assert_eq!(c.log.jobs[0].wait_time, Some(10));
        assert_eq!(c.log.jobs[0].run_time, Some(600));
        assert_eq!(c.log.jobs[0].allocated_procs, Some(32));
        assert_eq!(c.log.jobs[0].status, CompletionStatus::Completed);
        assert_eq!(c.log.jobs[2].status, CompletionStatus::Failed);
        // alice and bob are two users, in order of first appearance
        assert_eq!(c.key.users.len(), 2);
        assert_eq!(c.key.users.original(1), Some("alice"));
        assert_eq!(c.log.jobs[0].user_id, Some(1));
        assert_eq!(c.log.jobs[1].user_id, Some(2));
        assert_eq!(c.log.header.computer.as_deref(), Some("Intel iPSC/860"));
    }

    #[test]
    fn converts_paragon_dialect() {
        let c = convert(
            PARAGON,
            Dialect::SdscParagon,
            Some(416),
            &ConvertOptions::default(),
        )
        .unwrap();
        assert_eq!(c.log.len(), 3);
        assert!(validate(&c.log).is_clean());
        // interactive job mapped to queue 0
        assert_eq!(c.log.jobs[1].queue_id, Some(0));
        assert_eq!(c.log.jobs[0].queue_id, Some(1));
        // runtime derived from end-start
        assert_eq!(c.log.jobs[0].run_time, Some(600));
        assert_eq!(c.log.jobs[0].used_memory_kb, Some(32768));
        assert_eq!(c.log.jobs[2].status, CompletionStatus::Failed);
        assert_eq!(c.key.partitions.len(), 2);
    }

    #[test]
    fn converts_sp2_dialect() {
        let c = convert(SP2, Dialect::CtcSp2, Some(430), &ConvertOptions::default()).unwrap();
        assert_eq!(c.log.len(), 3);
        assert!(validate(&c.log).is_clean());
        assert_eq!(c.log.jobs[0].requested_time, Some(3600));
        assert_eq!(c.log.jobs[0].requested_memory_kb, Some(65536));
        assert_eq!(c.log.jobs[1].queue_id, Some(0));
        assert_eq!(c.log.jobs[2].status, CompletionStatus::Failed);
    }

    #[test]
    fn converts_cm5_dialect() {
        let c = convert(
            CM5,
            Dialect::LanlCm5,
            Some(1024),
            &ConvertOptions::default(),
        )
        .unwrap();
        assert_eq!(c.log.len(), 3);
        assert!(validate(&c.log).is_clean());
        assert_eq!(c.log.jobs[0].allocated_procs, Some(32));
        assert_eq!(c.log.jobs[1].allocated_procs, Some(512));
        // cpu time clamped to runtime by the cleaner when necessary; here 880 <= 900
        assert_eq!(c.log.jobs[0].avg_cpu_time, Some(880));
        assert_eq!(c.key.executables.len(), 2);
        // partitions named after their size
        assert_eq!(c.key.partitions.original(1), Some("p32"));
    }

    #[test]
    fn lenient_skips_garbage_strict_rejects() {
        let noisy = format!("{NASA}\nthis line is garbage\n");
        let c = convert(
            &noisy,
            Dialect::NasaIpsc,
            Some(128),
            &ConvertOptions::default(),
        )
        .unwrap();
        assert_eq!(c.log.len(), 3);
        assert_eq!(c.skipped, 1);
        let err = convert(
            &noisy,
            Dialect::NasaIpsc,
            Some(128),
            &ConvertOptions { strict: true },
        )
        .unwrap_err();
        assert!(matches!(err, ConvertError::MalformedRecord { .. }));
    }

    #[test]
    fn empty_input_is_an_error() {
        let err = convert(
            "# nothing\n",
            Dialect::NasaIpsc,
            None,
            &ConvertOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, ConvertError::EmptyLog);
    }

    #[test]
    fn conversion_output_round_trips_through_swf_text() {
        let c = convert(
            PARAGON,
            Dialect::SdscParagon,
            Some(416),
            &ConvertOptions::default(),
        )
        .unwrap();
        let text = crate::write::write_string(&c.log);
        let back = crate::parse::parse(&text).unwrap();
        assert_eq!(back.jobs, c.log.jobs);
    }

    #[test]
    fn unsorted_raw_logs_are_sorted_by_submit() {
        let shuffled = "\
2 bob qcd 64 1100 1200 1200 ok
1 alice cfd 32 1000 1010 600 ok
";
        let c = convert(
            shuffled,
            Dialect::NasaIpsc,
            Some(128),
            &ConvertOptions::default(),
        )
        .unwrap();
        assert!(c
            .log
            .jobs
            .windows(2)
            .all(|w| w[0].submit_time <= w[1].submit_time));
        assert_eq!(c.log.jobs[0].job_id, 1);
    }

    #[test]
    fn dialect_metadata() {
        assert_eq!(Dialect::all().len(), 4);
        for d in Dialect::all() {
            assert!(!d.name().is_empty());
            assert!(!d.computer().is_empty());
        }
    }
}
