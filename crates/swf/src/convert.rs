//! Conversion of raw accounting-log dialects into the standard workload format.
//!
//! Section 2.1 of the paper observes that "most parallel supercomputers maintain
//! accounting logs" whose fields "appear in different orders and formats", and the
//! standard format exists exactly so such logs can be used interchangeably. This
//! module implements converters for four raw dialects modelled on the systems the
//! paper cites (NASA Ames iPSC/860, SDSC Paragon, CTC SP2, LANL CM-5). The dialects
//! themselves are synthetic — we do not ship archive data — but they exercise the
//! conversion pipeline the standard requires: heterogeneous field orders, separators
//! and units in, one clean anonymized SWF out.

use crate::anonymize::{densify_ids, AnonymizationKey};
use crate::error::ConvertError;
use crate::header::{SwfHeader, FORMAT_VERSION};
use crate::log::SwfLog;
use crate::record::{CompletionStatus, SwfRecord};
use crate::validate::{clean, CleaningReport};
use serde::{Deserialize, Serialize};

/// The raw accounting-log dialects understood by the converter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dialect {
    /// NASA Ames iPSC/860 style: whitespace separated
    /// `jobid user exe nodes submit_epoch start_epoch runtime status`.
    NasaIpsc,
    /// SDSC Paragon style: pipe separated
    /// `jobid|user|group|queue|partition|submit|start|end|nodes|cpu_secs|mem_kb|status`.
    SdscParagon,
    /// CTC SP2 / LoadLeveler style: `key=value` pairs, one job per line, e.g.
    /// `job=12 user=u4 group=g1 class=batch submit=100 start=160 end=400 procs=16 wall_req=3600 mem_req=65536 completion=ok`.
    CtcSp2,
    /// LANL CM-5 style: comma separated
    /// `jobid,user,group,exe,partition_size,submit,start,end,avg_cpu,mem_kb,outcome`.
    LanlCm5,
}

impl Dialect {
    /// All dialects, for iteration in tests and benchmarks.
    pub fn all() -> &'static [Dialect] {
        &[
            Dialect::NasaIpsc,
            Dialect::SdscParagon,
            Dialect::CtcSp2,
            Dialect::LanlCm5,
        ]
    }

    /// A short human readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Dialect::NasaIpsc => "nasa-ipsc860",
            Dialect::SdscParagon => "sdsc-paragon",
            Dialect::CtcSp2 => "ctc-sp2",
            Dialect::LanlCm5 => "lanl-cm5",
        }
    }

    /// The machine description recorded in the converted header.
    pub fn computer(&self) -> &'static str {
        match self {
            Dialect::NasaIpsc => "Intel iPSC/860",
            Dialect::SdscParagon => "Intel Paragon",
            Dialect::CtcSp2 => "IBM SP2",
            Dialect::LanlCm5 => "Thinking Machines CM-5",
        }
    }
}

/// Result of converting a raw log: the SWF log, the anonymization key, and the
/// report of any cleaning that was needed to make the output conforming.
#[derive(Debug, Clone)]
pub struct Conversion {
    /// The converted, cleaned, anonymized log.
    pub log: SwfLog,
    /// Mapping from original identifiers to the dense ids in the log.
    pub key: AnonymizationKey,
    /// What the cleaning pass had to fix.
    pub cleaning: CleaningReport,
    /// Number of raw lines that were skipped as unparseable (lenient mode only).
    pub skipped: usize,
}

/// Options for conversion.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConvertOptions {
    /// If true, any malformed raw record aborts conversion; otherwise it is skipped
    /// and counted.
    pub strict: bool,
}

/// An intermediate, dialect-independent raw job used internally by the converters.
#[derive(Debug, Clone, Default)]
struct RawJob {
    user: Option<String>,
    group: Option<String>,
    executable: Option<String>,
    queue: Option<String>,
    partition: Option<String>,
    submit: i64,
    start: Option<i64>,
    end: Option<i64>,
    runtime: Option<i64>,
    procs: Option<u32>,
    cpu_secs: Option<i64>,
    mem_kb: Option<i64>,
    req_procs: Option<u32>,
    req_time: Option<i64>,
    req_mem_kb: Option<i64>,
    completed: Option<bool>,
    interactive: bool,
}

impl RawJob {
    fn into_record(self, job_id: u64) -> SwfRecord {
        let wait = match (self.start, Some(self.submit)) {
            (Some(s), Some(sub)) if s >= sub => Some(s - sub),
            _ => None,
        };
        let run = match (self.runtime, self.start, self.end) {
            (Some(r), _, _) => Some(r),
            (None, Some(s), Some(e)) if e >= s => Some(e - s),
            _ => None,
        };
        SwfRecord {
            job_id,
            submit_time: self.submit,
            wait_time: wait,
            run_time: run,
            allocated_procs: self.procs,
            avg_cpu_time: self.cpu_secs,
            used_memory_kb: self.mem_kb,
            requested_procs: self.req_procs.or(self.procs),
            requested_time: self.req_time,
            requested_memory_kb: self.req_mem_kb,
            status: match self.completed {
                Some(true) => CompletionStatus::Completed,
                Some(false) => CompletionStatus::Failed,
                None => CompletionStatus::Unknown,
            },
            // Identifier fields hold placeholder hashes here; densify_ids() rewrites
            // them to 1..n. We stash indexes via a string table in convert() instead,
            // so these stay None until then.
            user_id: None,
            group_id: None,
            executable_id: None,
            queue_id: if self.interactive { Some(0) } else { None },
            partition_id: None,
            preceding_job: None,
            think_time: None,
        }
    }
}

fn parse_i64(tok: &str, line: usize) -> Result<i64, ConvertError> {
    tok.trim()
        .parse::<i64>()
        .or_else(|_| tok.trim().parse::<f64>().map(|f| f.trunc() as i64))
        .map_err(|_| ConvertError::BadTimestamp {
            line,
            token: tok.to_string(),
        })
}

fn parse_u32(tok: &str, line: usize) -> Result<u32, ConvertError> {
    parse_i64(tok, line).map(|v| v.max(0) as u32)
}

fn parse_nasa(line: &str, line_no: usize) -> Result<RawJob, ConvertError> {
    // jobid user exe nodes submit_epoch start_epoch runtime status
    let f = crate::parse::split_exact::<8>(line.split_ascii_whitespace()).map_err(|found| {
        ConvertError::MalformedRecord {
            line: line_no,
            reason: format!("expected 8 fields, found {found}"),
        }
    })?;
    Ok(RawJob {
        user: Some(f[1].to_string()),
        executable: Some(f[2].to_string()),
        procs: Some(parse_u32(f[3], line_no)?),
        submit: parse_i64(f[4], line_no)?,
        start: Some(parse_i64(f[5], line_no)?),
        runtime: Some(parse_i64(f[6], line_no)?),
        completed: Some(f[7] == "ok" || f[7] == "0"),
        ..RawJob::default()
    })
}

fn parse_paragon(line: &str, line_no: usize) -> Result<RawJob, ConvertError> {
    // jobid|user|group|queue|partition|submit|start|end|nodes|cpu_secs|mem_kb|status
    let f = crate::parse::split_exact::<12>(line.split('|')).map_err(|found| {
        ConvertError::MalformedRecord {
            line: line_no,
            reason: format!("expected 12 pipe-separated fields, found {found}"),
        }
    })?;
    let queue = f[3].trim().to_string();
    Ok(RawJob {
        user: Some(f[1].trim().to_string()),
        group: Some(f[2].trim().to_string()),
        interactive: queue.eq_ignore_ascii_case("interactive"),
        queue: Some(queue),
        partition: Some(f[4].trim().to_string()),
        submit: parse_i64(f[5], line_no)?,
        start: Some(parse_i64(f[6], line_no)?),
        end: Some(parse_i64(f[7], line_no)?),
        procs: Some(parse_u32(f[8], line_no)?),
        cpu_secs: Some(parse_i64(f[9], line_no)?),
        mem_kb: Some(parse_i64(f[10], line_no)?),
        completed: Some(f[11].trim() == "C"),
        ..RawJob::default()
    })
}

fn parse_sp2(line: &str, line_no: usize) -> Result<RawJob, ConvertError> {
    // key=value pairs
    let mut job = RawJob::default();
    let mut saw_submit = false;
    for pair in line.split_whitespace() {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| ConvertError::MalformedRecord {
                line: line_no,
                reason: format!("token {pair:?} is not key=value"),
            })?;
        match key {
            "job" => {}
            "user" => job.user = Some(value.to_string()),
            "group" => job.group = Some(value.to_string()),
            "class" => {
                job.interactive = value.eq_ignore_ascii_case("interactive");
                job.queue = Some(value.to_string());
            }
            "submit" => {
                job.submit = parse_i64(value, line_no)?;
                saw_submit = true;
            }
            "start" => job.start = Some(parse_i64(value, line_no)?),
            "end" => job.end = Some(parse_i64(value, line_no)?),
            "procs" => job.procs = Some(parse_u32(value, line_no)?),
            "req_procs" => job.req_procs = Some(parse_u32(value, line_no)?),
            "wall_req" => job.req_time = Some(parse_i64(value, line_no)?),
            "mem_req" => job.req_mem_kb = Some(parse_i64(value, line_no)?),
            "mem_used" => job.mem_kb = Some(parse_i64(value, line_no)?),
            "cpu" => job.cpu_secs = Some(parse_i64(value, line_no)?),
            "completion" => job.completed = Some(value == "ok"),
            "exe" => job.executable = Some(value.to_string()),
            _ => {
                // Unknown keys are tolerated: raw logs have "other less-standard fields".
            }
        }
    }
    if !saw_submit {
        return Err(ConvertError::MalformedRecord {
            line: line_no,
            reason: "missing submit= field".to_string(),
        });
    }
    Ok(job)
}

fn parse_cm5(line: &str, line_no: usize) -> Result<RawJob, ConvertError> {
    // jobid,user,group,exe,partition_size,submit,start,end,avg_cpu,mem_kb,outcome
    let f = crate::parse::split_exact::<11>(line.split(',')).map_err(|found| {
        ConvertError::MalformedRecord {
            line: line_no,
            reason: format!("expected 11 comma-separated fields, found {found}"),
        }
    })?;
    // The CM-5 allocated fixed power-of-two partitions; the partition size doubles as
    // the processor count and the partition identity.
    let psize = parse_u32(f[4], line_no)?;
    Ok(RawJob {
        user: Some(f[1].trim().to_string()),
        group: Some(f[2].trim().to_string()),
        executable: Some(f[3].trim().to_string()),
        partition: Some(format!("p{psize}")),
        procs: Some(psize),
        submit: parse_i64(f[5], line_no)?,
        start: Some(parse_i64(f[6], line_no)?),
        end: Some(parse_i64(f[7], line_no)?),
        cpu_secs: Some(parse_i64(f[8], line_no)?),
        mem_kb: Some(parse_i64(f[9], line_no)?),
        completed: Some(f[10].trim() == "success"),
        ..RawJob::default()
    })
}

/// Parse one (trimmed, non-comment) raw line in the given dialect.
fn parse_raw_line(line: &str, dialect: Dialect, line_no: usize) -> Result<RawJob, ConvertError> {
    match dialect {
        Dialect::NasaIpsc => parse_nasa(line, line_no),
        Dialect::SdscParagon => parse_paragon(line, line_no),
        Dialect::CtcSp2 => parse_sp2(line, line_no),
        Dialect::LanlCm5 => parse_cm5(line, line_no),
    }
}

/// True for lines the converter ignores entirely: blanks and comments.
fn is_raw_comment(trimmed: &str) -> bool {
    trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with(';')
}

/// Build the converted log's header, known in full before any record.
fn converted_header(dialect: Dialect, max_nodes: Option<u32>) -> SwfHeader {
    let mut header = SwfHeader {
        computer: Some(dialect.computer().to_string()),
        conversion: Some("psbench raw-log converter".to_string()),
        version: Some(FORMAT_VERSION),
        max_nodes,
        ..SwfHeader::default()
    };
    header.notes.push(format!(
        "Converted from synthetic {} dialect",
        dialect.name()
    ));
    header
}

/// Convert raw accounting-log text in the given dialect to a clean SWF log.
pub fn convert(
    raw: &str,
    dialect: Dialect,
    max_nodes: Option<u32>,
    opts: &ConvertOptions,
) -> Result<Conversion, ConvertError> {
    let mut raw_jobs: Vec<RawJob> = Vec::new();
    let mut skipped = 0usize;
    for (i, line) in raw.lines().enumerate() {
        let line_no = i + 1;
        let trimmed = line.trim();
        if is_raw_comment(trimmed) {
            continue;
        }
        match parse_raw_line(trimmed, dialect, line_no) {
            Ok(j) => raw_jobs.push(j),
            Err(e) => {
                if opts.strict {
                    return Err(e);
                }
                skipped += 1;
            }
        }
    }
    if raw_jobs.is_empty() {
        return Err(ConvertError::EmptyLog);
    }

    // Sort by submit time (raw logs are often in end-time order) and rebase to zero.
    raw_jobs.sort_by_key(|j| j.submit);
    let base = raw_jobs.first().map(|j| j.submit).unwrap_or(0);

    // Build SWF records with dense string-keyed identifiers.
    let mut key = AnonymizationKey::default();
    let mut jobs: Vec<SwfRecord> = Vec::with_capacity(raw_jobs.len());
    for (idx, mut rj) in raw_jobs.into_iter().enumerate() {
        rj.submit -= base;
        if let Some(s) = rj.start.as_mut() {
            *s -= base;
        }
        if let Some(e) = rj.end.as_mut() {
            *e -= base;
        }
        let user = rj.user.clone();
        let group = rj.group.clone();
        let exe = rj.executable.clone();
        let queue = rj.queue.clone();
        let partition = rj.partition.clone();
        let interactive = rj.interactive;
        let mut rec = rj.into_record(idx as u64 + 1);
        rec.user_id = user.map(|u| key.users.map(&u));
        rec.group_id = group.map(|g| key.groups.map(&g));
        rec.executable_id = exe.map(|e| key.executables.map(&e));
        rec.queue_id = if interactive {
            Some(0)
        } else {
            queue.map(|q| key.queues.map(&q))
        };
        rec.partition_id = partition.map(|p| key.partitions.map(&p));
        jobs.push(rec);
    }

    let header = converted_header(dialect, max_nodes);

    let mut log = SwfLog::new(header, jobs);
    // densify_ids is idempotent here (ids are already dense) but shields against
    // dialect parsers that might leave gaps in the future.
    let _ = densify_ids(&mut log);
    let cleaning = clean(&mut log);
    Ok(Conversion {
        log,
        key,
        cleaning,
        skipped,
    })
}

/// Default reorder window of [`RawStream`]: how many records of submit-time
/// disorder the streaming converter absorbs (raw logs are commonly in
/// end-time order, where local disorder is bounded by queue depth).
pub const DEFAULT_REORDER_WINDOW: usize = 8_192;

/// Per-record queued entry of the reorder window, min-ordered by
/// `(submit, input sequence)` — exactly the stable `sort_by_key(submit)`
/// order of the materialized converter.
struct Pending {
    submit: i64,
    seq: u64,
    job: RawJob,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        (self.submit, self.seq) == (other.submit, other.seq)
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.submit, self.seq).cmp(&(other.submit, other.seq))
    }
}

/// Cleaning counters of a streaming conversion — the subset of
/// [`CleaningReport`] a record-at-a-time pass can observe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamReport {
    /// Raw lines skipped as unparseable (lenient mode only).
    pub skipped: usize,
    /// Hopeless records dropped (no processor count at all).
    pub dropped: usize,
    /// Processor fields clamped to `MaxNodes`.
    pub clamped_procs: usize,
    /// CPU times clamped to the wall-clock runtime.
    pub clamped_cpu: usize,
    /// Missing runtimes filled in from CPU time.
    pub filled_runtimes: usize,
}

/// A streaming raw-dialect converter: a [`JobSource`](crate::source::JobSource)
/// that reads raw accounting-log lines from any [`BufRead`](std::io::BufRead)
/// and yields clean, anonymized,
/// renumbered SWF records in bounded memory.
///
/// Memory is bounded by the reorder window (a min-heap of at most
/// `window` + 1 raw jobs) plus one line buffer — never the whole log. Within
/// that window the stream is **record-for-record identical** to the
/// materialized [`convert`] pipeline (stable sort by submit, rebase to the
/// first kept submit, anonymization ids assigned in sorted order over *all*
/// records including later-dropped ones, job ids `1..m` over kept records,
/// per-record cleaning): property tests assert the equivalence per dialect.
/// Input more disordered than the window fails with
/// [`ConvertError::WindowExceeded`] rather than yielding an unsorted log.
///
/// Unlike [`convert`], the header must be fully known up front (the whole
/// point is emitting it before the records), so `max_nodes` is required.
pub struct RawStream<R: std::io::BufRead> {
    reader: Option<R>,
    dialect: Dialect,
    strict: bool,
    window: usize,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<Pending>>,
    meta: crate::source::SourceMeta,
    key: AnonymizationKey,
    report: StreamReport,
    max_nodes: u32,
    /// 1-based raw line number, for error messages.
    line_no: usize,
    /// Input-order tiebreak counter.
    seq: u64,
    /// Raw records successfully parsed (incl. later-dropped ones).
    parsed: u64,
    /// Submit time of the first *kept* record: the rebase origin.
    base: Option<i64>,
    /// Next SWF job id (kept records only, so ids are 1..m).
    next_id: u64,
    /// Submit of the previously emitted record, to detect window overflow.
    last_submit: Option<i64>,
    /// Set after a terminal error or the EmptyLog report.
    failed: bool,
    line: String,
}

impl<R: std::io::BufRead> RawStream<R> {
    /// Stream-convert `reader` with the [`DEFAULT_REORDER_WINDOW`].
    pub fn new(
        name: impl Into<String>,
        reader: R,
        dialect: Dialect,
        max_nodes: u32,
        opts: &ConvertOptions,
    ) -> Self {
        Self::with_window(
            name,
            reader,
            dialect,
            max_nodes,
            opts,
            DEFAULT_REORDER_WINDOW,
        )
    }

    /// Stream-convert with an explicit reorder window (in records).
    pub fn with_window(
        name: impl Into<String>,
        reader: R,
        dialect: Dialect,
        max_nodes: u32,
        opts: &ConvertOptions,
        window: usize,
    ) -> Self {
        RawStream {
            reader: Some(reader),
            dialect,
            strict: opts.strict,
            window: window.max(1),
            heap: std::collections::BinaryHeap::new(),
            meta: crate::source::SourceMeta {
                name: name.into(),
                header: converted_header(dialect, Some(max_nodes)),
            },
            key: AnonymizationKey::default(),
            report: StreamReport::default(),
            max_nodes,
            line_no: 0,
            seq: 0,
            parsed: 0,
            base: None,
            next_id: 1,
            last_submit: None,
            failed: false,
            line: String::new(),
        }
    }

    /// The anonymization key accumulated so far (complete once the stream is
    /// drained).
    pub fn key(&self) -> &AnonymizationKey {
        &self.key
    }

    /// Cleaning counters so far (complete once the stream is drained).
    pub fn report(&self) -> StreamReport {
        self.report
    }

    /// Pull raw lines until the reorder window is full or input is exhausted.
    fn fill(&mut self) -> Result<(), ConvertError> {
        while self.heap.len() < self.window {
            let Some(reader) = self.reader.as_mut() else {
                return Ok(());
            };
            self.line.clear();
            let n =
                reader
                    .read_line(&mut self.line)
                    .map_err(|e| ConvertError::MalformedRecord {
                        line: self.line_no + 1,
                        reason: format!("i/o error: {e}"),
                    })?;
            if n == 0 {
                self.reader = None;
                return Ok(());
            }
            self.line_no += 1;
            let trimmed = self.line.trim();
            if is_raw_comment(trimmed) {
                continue;
            }
            match parse_raw_line(trimmed, self.dialect, self.line_no) {
                Ok(job) => {
                    self.parsed += 1;
                    self.heap.push(std::cmp::Reverse(Pending {
                        submit: job.submit,
                        seq: self.seq,
                        job,
                    }));
                    self.seq += 1;
                }
                Err(e) => {
                    if self.strict {
                        return Err(e);
                    }
                    self.report.skipped += 1;
                }
            }
        }
        Ok(())
    }

    /// Turn the next pending raw job into a clean SWF record; `None` when it
    /// is dropped as hopeless.
    fn emit(&mut self, mut rj: RawJob) -> Result<Option<SwfRecord>, ConvertError> {
        // Anonymize *before* the hopeless check: the materialized pipeline
        // maps identifiers over every sorted record and only then cleans, so
        // skipping dropped records here would shift every later id.
        let user = rj.user.take().map(|u| self.key.users.map(&u));
        let group = rj.group.take().map(|g| self.key.groups.map(&g));
        let exe = rj.executable.take().map(|e| self.key.executables.map(&e));
        let interactive = rj.interactive;
        let queue = if interactive {
            rj.queue = None;
            Some(0)
        } else {
            rj.queue.take().map(|q| self.key.queues.map(&q))
        };
        let partition = rj.partition.take().map(|p| self.key.partitions.map(&p));

        if rj.procs.is_none() && rj.req_procs.is_none() {
            // A summary record with no processor count: clean() drops these.
            self.report.dropped += 1;
            return Ok(None);
        }
        if self.last_submit.is_some_and(|prev| rj.submit < prev) {
            return Err(ConvertError::WindowExceeded {
                window: self.window,
            });
        }
        self.last_submit = Some(rj.submit);
        let base = *self.base.get_or_insert(rj.submit);
        rj.submit -= base;
        if let Some(s) = rj.start.as_mut() {
            *s -= base;
        }
        if let Some(e) = rj.end.as_mut() {
            *e -= base;
        }
        let mut rec = rj.into_record(self.next_id);
        self.next_id += 1;
        rec.user_id = user;
        rec.group_id = group;
        rec.executable_id = exe;
        rec.queue_id = queue;
        rec.partition_id = partition;

        // The per-record half of validate::clean(), verbatim.
        if let Some(p) = rec.requested_procs {
            if p > self.max_nodes {
                rec.requested_procs = Some(self.max_nodes);
                self.report.clamped_procs += 1;
            }
        }
        if let Some(p) = rec.allocated_procs {
            if p > self.max_nodes {
                rec.allocated_procs = Some(self.max_nodes);
                self.report.clamped_procs += 1;
            }
        }
        if let (Some(c), Some(r)) = (rec.avg_cpu_time, rec.run_time) {
            if c > r {
                rec.avg_cpu_time = Some(r);
                self.report.clamped_cpu += 1;
            }
        }
        if rec.run_time.is_none()
            && rec.status != CompletionStatus::Cancelled
            && rec.status != CompletionStatus::Unknown
        {
            rec.run_time = Some(rec.avg_cpu_time.unwrap_or(0));
            self.report.filled_runtimes += 1;
        }
        Ok(Some(rec))
    }
}

impl<R: std::io::BufRead> crate::source::JobSource for RawStream<R> {
    fn meta(&self) -> &crate::source::SourceMeta {
        &self.meta
    }

    fn next_record(&mut self) -> Option<Result<SwfRecord, crate::error::ParseError>> {
        if self.failed {
            return None;
        }
        loop {
            if let Err(e) = self.fill() {
                self.failed = true;
                return Some(Err(e.into()));
            }
            let Some(std::cmp::Reverse(pending)) = self.heap.pop() else {
                if self.parsed == 0 {
                    // Materialized convert() rejects inputs with no parseable
                    // records; so does the stream, once.
                    self.failed = true;
                    return Some(Err(ConvertError::EmptyLog.into()));
                }
                return None;
            };
            match self.emit(pending.job) {
                Ok(Some(rec)) => return Some(Ok(rec)),
                Ok(None) => continue,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e.into()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    const NASA: &str = "\
# jobid user exe nodes submit start runtime status
1 alice cfd_solver 32 1000 1010 600 ok
2 bob qcd 64 1100 1200 1200 ok
3 alice cfd_solver 32 1300 2410 30 failed
";

    const PARAGON: &str = "\
101|u12|g3|batch|main|5000|5100|5700|16|550|32768|C
102|u13|g3|interactive|main|5050|5055|5075|1|18|4096|C
103|u12|g4|batch|io|5200|5900|6900|64|980|65536|F
";

    const SP2: &str = "\
job=1 user=u1 group=g1 class=batch submit=100 start=160 end=400 procs=16 req_procs=16 wall_req=3600 mem_req=65536 completion=ok
job=2 user=u2 group=g1 class=interactive submit=150 start=152 end=200 procs=1 wall_req=600 completion=ok
job=3 user=u1 group=g2 class=batch submit=300 start=500 end=5500 procs=128 wall_req=7200 completion=removed
";

    const CM5: &str = "\
1,u_a,grp1,shallow_water,32,0,5,905,880,120000,success
2,u_b,grp1,qcd,512,60,1000,5000,3900,800000,success
3,u_a,grp2,shallow_water,32,100,905,1000,90,100000,failure
";

    #[test]
    fn converts_nasa_dialect() {
        let c = convert(
            NASA,
            Dialect::NasaIpsc,
            Some(128),
            &ConvertOptions::default(),
        )
        .unwrap();
        assert_eq!(c.log.len(), 3);
        assert_eq!(c.skipped, 0);
        assert!(validate(&c.log).is_clean());
        assert_eq!(c.log.jobs[0].submit_time, 0);
        assert_eq!(c.log.jobs[0].wait_time, Some(10));
        assert_eq!(c.log.jobs[0].run_time, Some(600));
        assert_eq!(c.log.jobs[0].allocated_procs, Some(32));
        assert_eq!(c.log.jobs[0].status, CompletionStatus::Completed);
        assert_eq!(c.log.jobs[2].status, CompletionStatus::Failed);
        // alice and bob are two users, in order of first appearance
        assert_eq!(c.key.users.len(), 2);
        assert_eq!(c.key.users.original(1), Some("alice"));
        assert_eq!(c.log.jobs[0].user_id, Some(1));
        assert_eq!(c.log.jobs[1].user_id, Some(2));
        assert_eq!(c.log.header.computer.as_deref(), Some("Intel iPSC/860"));
    }

    #[test]
    fn converts_paragon_dialect() {
        let c = convert(
            PARAGON,
            Dialect::SdscParagon,
            Some(416),
            &ConvertOptions::default(),
        )
        .unwrap();
        assert_eq!(c.log.len(), 3);
        assert!(validate(&c.log).is_clean());
        // interactive job mapped to queue 0
        assert_eq!(c.log.jobs[1].queue_id, Some(0));
        assert_eq!(c.log.jobs[0].queue_id, Some(1));
        // runtime derived from end-start
        assert_eq!(c.log.jobs[0].run_time, Some(600));
        assert_eq!(c.log.jobs[0].used_memory_kb, Some(32768));
        assert_eq!(c.log.jobs[2].status, CompletionStatus::Failed);
        assert_eq!(c.key.partitions.len(), 2);
    }

    #[test]
    fn converts_sp2_dialect() {
        let c = convert(SP2, Dialect::CtcSp2, Some(430), &ConvertOptions::default()).unwrap();
        assert_eq!(c.log.len(), 3);
        assert!(validate(&c.log).is_clean());
        assert_eq!(c.log.jobs[0].requested_time, Some(3600));
        assert_eq!(c.log.jobs[0].requested_memory_kb, Some(65536));
        assert_eq!(c.log.jobs[1].queue_id, Some(0));
        assert_eq!(c.log.jobs[2].status, CompletionStatus::Failed);
    }

    #[test]
    fn converts_cm5_dialect() {
        let c = convert(
            CM5,
            Dialect::LanlCm5,
            Some(1024),
            &ConvertOptions::default(),
        )
        .unwrap();
        assert_eq!(c.log.len(), 3);
        assert!(validate(&c.log).is_clean());
        assert_eq!(c.log.jobs[0].allocated_procs, Some(32));
        assert_eq!(c.log.jobs[1].allocated_procs, Some(512));
        // cpu time clamped to runtime by the cleaner when necessary; here 880 <= 900
        assert_eq!(c.log.jobs[0].avg_cpu_time, Some(880));
        assert_eq!(c.key.executables.len(), 2);
        // partitions named after their size
        assert_eq!(c.key.partitions.original(1), Some("p32"));
    }

    #[test]
    fn lenient_skips_garbage_strict_rejects() {
        let noisy = format!("{NASA}\nthis line is garbage\n");
        let c = convert(
            &noisy,
            Dialect::NasaIpsc,
            Some(128),
            &ConvertOptions::default(),
        )
        .unwrap();
        assert_eq!(c.log.len(), 3);
        assert_eq!(c.skipped, 1);
        let err = convert(
            &noisy,
            Dialect::NasaIpsc,
            Some(128),
            &ConvertOptions { strict: true },
        )
        .unwrap_err();
        assert!(matches!(err, ConvertError::MalformedRecord { .. }));
    }

    #[test]
    fn empty_input_is_an_error() {
        let err = convert(
            "# nothing\n",
            Dialect::NasaIpsc,
            None,
            &ConvertOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, ConvertError::EmptyLog);
    }

    #[test]
    fn conversion_output_round_trips_through_swf_text() {
        let c = convert(
            PARAGON,
            Dialect::SdscParagon,
            Some(416),
            &ConvertOptions::default(),
        )
        .unwrap();
        let text = crate::write::write_string(&c.log);
        let back = crate::parse::parse(&text).unwrap();
        assert_eq!(back.jobs, c.log.jobs);
    }

    #[test]
    fn unsorted_raw_logs_are_sorted_by_submit() {
        let shuffled = "\
2 bob qcd 64 1100 1200 1200 ok
1 alice cfd 32 1000 1010 600 ok
";
        let c = convert(
            shuffled,
            Dialect::NasaIpsc,
            Some(128),
            &ConvertOptions::default(),
        )
        .unwrap();
        assert!(c
            .log
            .jobs
            .windows(2)
            .all(|w| w[0].submit_time <= w[1].submit_time));
        assert_eq!(c.log.jobs[0].job_id, 1);
    }

    #[test]
    fn streaming_matches_materialized_for_every_dialect() {
        use crate::source::JobSource;
        let fixtures: &[(&str, Dialect, u32)] = &[
            (NASA, Dialect::NasaIpsc, 128),
            (PARAGON, Dialect::SdscParagon, 416),
            (SP2, Dialect::CtcSp2, 430),
            (CM5, Dialect::LanlCm5, 1024),
        ];
        for &(raw, dialect, max_nodes) in fixtures {
            let materialized =
                convert(raw, dialect, Some(max_nodes), &ConvertOptions::default()).unwrap();
            let stream = RawStream::new(
                "s",
                raw.as_bytes(),
                dialect,
                max_nodes,
                &ConvertOptions::default(),
            );
            let streamed = stream.collect_log().unwrap();
            assert_eq!(streamed.jobs, materialized.log.jobs, "{}", dialect.name());
            assert_eq!(
                streamed.header.render(),
                materialized.log.header.render(),
                "{}",
                dialect.name()
            );
            assert_eq!(
                crate::write::write_string(&streamed),
                crate::write::write_string(&materialized.log),
                "byte-identical output for {}",
                dialect.name()
            );
        }
    }

    #[test]
    fn streaming_replicates_anonymization_and_skip_counts() {
        use crate::source::JobSource;
        let noisy = format!("{NASA}\nthis line is garbage\n");
        let materialized = convert(
            &noisy,
            Dialect::NasaIpsc,
            Some(128),
            &ConvertOptions::default(),
        )
        .unwrap();
        let mut stream = RawStream::new(
            "s",
            noisy.as_bytes(),
            Dialect::NasaIpsc,
            128,
            &ConvertOptions::default(),
        );
        let mut jobs = Vec::new();
        while let Some(r) = stream.next_record() {
            jobs.push(r.unwrap());
        }
        assert_eq!(jobs, materialized.log.jobs);
        assert_eq!(stream.report().skipped, materialized.skipped);
        assert_eq!(stream.key().users.len(), materialized.key.users.len());
        assert_eq!(stream.key().users.original(1), Some("alice"));
        // Strict mode surfaces the garbage line as an error instead.
        let mut strict = RawStream::new(
            "s",
            noisy.as_bytes(),
            Dialect::NasaIpsc,
            128,
            &ConvertOptions { strict: true },
        );
        let err = loop {
            match strict.next_record() {
                Some(Ok(_)) => continue,
                Some(Err(e)) => break e,
                None => panic!("strict stream should fail"),
            }
        };
        assert!(matches!(
            err,
            crate::error::ParseError::Convert(ConvertError::MalformedRecord { .. })
        ));
        assert!(strict.next_record().is_none(), "errors are terminal");
    }

    #[test]
    fn streaming_handles_unsorted_input_within_window() {
        use crate::source::JobSource;
        let shuffled = "\
2 bob qcd 64 1100 1200 1200 ok
1 alice cfd 32 1000 1010 600 ok
";
        let materialized = convert(
            shuffled,
            Dialect::NasaIpsc,
            Some(128),
            &ConvertOptions::default(),
        )
        .unwrap();
        let streamed = RawStream::with_window(
            "s",
            shuffled.as_bytes(),
            Dialect::NasaIpsc,
            128,
            &ConvertOptions::default(),
            4,
        )
        .collect_log()
        .unwrap();
        assert_eq!(streamed.jobs, materialized.log.jobs);

        // A window of 1 cannot absorb the swap: hard error, not silent disorder.
        let err = RawStream::with_window(
            "s",
            shuffled.as_bytes(),
            Dialect::NasaIpsc,
            128,
            &ConvertOptions::default(),
            1,
        )
        .collect_log()
        .unwrap_err();
        assert!(matches!(
            err,
            crate::error::ParseError::Convert(ConvertError::WindowExceeded { window: 1 })
        ));
    }

    #[test]
    fn streaming_drops_hopeless_records_like_clean() {
        use crate::source::JobSource;
        // Middle SP2 job has no procs at all: clean() drops it and renumbers.
        let raw = "\
job=1 user=u1 group=g1 class=batch submit=100 start=160 end=400 procs=16 completion=ok
job=2 user=u2 group=g1 class=batch submit=150 start=152 end=200 completion=ok
job=3 user=u3 group=g2 class=batch submit=300 start=500 end=5500 procs=128 completion=ok
";
        let materialized =
            convert(raw, Dialect::CtcSp2, Some(430), &ConvertOptions::default()).unwrap();
        assert_eq!(materialized.log.len(), 2);
        let mut stream = RawStream::new(
            "s",
            raw.as_bytes(),
            Dialect::CtcSp2,
            430,
            &ConvertOptions::default(),
        );
        let mut jobs = Vec::new();
        while let Some(r) = stream.next_record() {
            jobs.push(r.unwrap());
        }
        assert_eq!(jobs, materialized.log.jobs);
        assert_eq!(stream.report().dropped, 1);
        // The dropped record's user u2 still consumed an anonymization id,
        // exactly like the materialized pipeline.
        assert_eq!(stream.key().users.original(2), Some("u2"));
        assert_eq!(jobs[1].user_id, Some(3));
        assert_eq!(jobs[0].job_id, 1);
        assert_eq!(jobs[1].job_id, 2);
    }

    #[test]
    fn streaming_rejects_empty_input() {
        use crate::source::JobSource;
        let mut stream = RawStream::new(
            "s",
            "# nothing\n".as_bytes(),
            Dialect::NasaIpsc,
            128,
            &ConvertOptions::default(),
        );
        assert!(matches!(
            stream.next_record(),
            Some(Err(crate::error::ParseError::Convert(
                ConvertError::EmptyLog
            )))
        ));
        assert!(stream.next_record().is_none());
    }

    #[test]
    fn dialect_metadata() {
        assert_eq!(Dialect::all().len(), 4);
        for d in Dialect::all() {
            assert!(!d.name().is_empty());
            assert!(!d.computer().is_empty());
        }
    }
}
