//! # psbench-swf — the Standard Workload Format
//!
//! This crate implements the workload-trace standard proposed in *"Benchmarks and
//! Standards for the Evaluation of Parallel Job Schedulers"* (Chapin et al., JSSPP
//! 1999): the Standard Workload Format (SWF) version 2 for parallel job traces, and
//! the companion standard outage format.
//!
//! The format is a plain text file with `;` comment lines (some of which are typed
//! header comments such as `;MaxNodes: 128`) and one line per job holding 18 space
//! separated integers, with `-1` marking unknown values. See [`record::SwfRecord`]
//! for the field-by-field definition.
//!
//! ## What this crate provides
//!
//! * [`record`] — the typed job record and completion codes.
//! * [`header`] — typed header comments.
//! * [`log`] — a whole workload (header + records) and workload-level utilities.
//! * [`source`] — the streaming [`source::JobSource`] abstraction unifying traces,
//!   in-memory logs, and generated workloads behind one record-stream interface.
//! * [`mod@parse`] / [`mod@write`] — lenient and strict parsing (one-shot or
//!   incremental via [`parse::RecordIter`]), canonical serialization.
//! * [`mod@validate`] — the standard's consistency rules, plus a cleaner that repairs logs.
//! * [`anonymize`] — densification of user/group/executable identifiers.
//! * [`checkpoint`] — multi-line records for checkpointed / swapped jobs.
//! * [`mod@convert`] — converters from raw accounting-log dialects to SWF.
//! * [`outage`] — the standard outage format (announced/start/end, type, nodes).
//!
//! ## Quick example
//!
//! ```
//! use psbench_swf::prelude::*;
//!
//! let text = "\
//! ;MaxNodes: 64
//! 1 0 5 100 16 -1 -1 16 200 -1 1 1 1 1 1 1 -1 -1
//! 2 30 0 50 8 -1 -1 8 60 -1 1 2 1 2 1 1 -1 -1
//! ";
//! let log = parse(text).unwrap();
//! assert_eq!(log.len(), 2);
//! assert!(validate(&log).is_clean());
//! let round = write_string(&log);
//! assert_eq!(parse(&round).unwrap().jobs, log.jobs);
//! ```

#![warn(missing_docs)]

pub mod anonymize;
pub mod checkpoint;
pub mod convert;
pub mod error;
pub mod header;
pub mod log;
pub mod outage;
pub mod parse;
pub mod record;
pub mod source;
pub mod validate;
pub mod write;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::anonymize::{densify_ids, AnonymizationKey, IdMap};
    pub use crate::checkpoint::{assemble, expand, Burst, BurstOutcome, CheckpointedJob};
    pub use crate::convert::{
        convert, Conversion, ConvertOptions, Dialect, RawStream, StreamReport,
        DEFAULT_REORDER_WINDOW,
    };
    pub use crate::error::{ConvertError, OutageParseError, ParseError};
    pub use crate::header::{RequestedTimeKind, SwfHeader, FORMAT_VERSION};
    pub use crate::log::SwfLog;
    pub use crate::outage::{OutageKind, OutageLog, OutageRecord};
    pub use crate::parse::{parse, parse_reader, parse_str, ParseOptions, RecordIter};
    pub use crate::record::{CompletionStatus, SwfRecord, SwfRecordBuilder, FIELD_COUNT, UNKNOWN};
    pub use crate::source::{JobSource, LogSource, SourceMeta};
    pub use crate::validate::{
        clean, clean_and_validate, validate, validate_source, CleaningReport, StreamingValidator,
        ValidationReport, Violation,
    };
    pub use crate::write::{record_line, write_string, write_to};
}

pub use prelude::*;
