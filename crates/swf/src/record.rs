//! The Standard Workload Format job record.
//!
//! A standard workload file contains one line per job, with 18 space separated
//! integer fields (Section 2.3 of the paper). Missing values are denoted by `-1`.
//! This module defines [`SwfRecord`], a fully typed representation of one such
//! line, together with the raw 18-integer view used by the parser and writer.

use serde::{Deserialize, Serialize};

/// Number of data fields in an SWF version 2 record.
pub const FIELD_COUNT: usize = 18;

/// Sentinel used in the textual format for an unknown / missing value.
pub const UNKNOWN: i64 = -1;

/// Completion status of a job (field 11, "Completed?").
///
/// The paper defines codes 0/1 for whole jobs and 2/3/4 for partial executions of
/// checkpointed or swapped jobs. `-1` (unknown) is used by synthetic workloads
/// produced by models, where completion is meaningless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompletionStatus {
    /// The job was killed / failed (`0`).
    Failed,
    /// The job completed normally (`1`).
    Completed,
    /// A partial execution that was swapped out and will be continued (`2`).
    PartialContinued,
    /// The last partial execution of a job that completed (`3`).
    PartialCompleted,
    /// The last partial execution of a job that was killed (`4`).
    PartialFailed,
    /// The job was cancelled before it started (`5`, later addition kept for
    /// compatibility with archive logs).
    Cancelled,
    /// Status unknown (`-1`), e.g. for model-generated workloads.
    Unknown,
}

impl CompletionStatus {
    /// Encode the status as the integer used in the textual format.
    pub fn to_code(self) -> i64 {
        match self {
            CompletionStatus::Failed => 0,
            CompletionStatus::Completed => 1,
            CompletionStatus::PartialContinued => 2,
            CompletionStatus::PartialCompleted => 3,
            CompletionStatus::PartialFailed => 4,
            CompletionStatus::Cancelled => 5,
            CompletionStatus::Unknown => UNKNOWN,
        }
    }

    /// Decode an integer code. Codes outside the defined set map to `None`.
    pub fn from_code(code: i64) -> Option<Self> {
        match code {
            0 => Some(CompletionStatus::Failed),
            1 => Some(CompletionStatus::Completed),
            2 => Some(CompletionStatus::PartialContinued),
            3 => Some(CompletionStatus::PartialCompleted),
            4 => Some(CompletionStatus::PartialFailed),
            5 => Some(CompletionStatus::Cancelled),
            UNKNOWN => Some(CompletionStatus::Unknown),
            _ => None,
        }
    }

    /// True if this code describes a whole-job summary line (0, 1, 5, or unknown),
    /// as opposed to a partial-execution line of a checkpointed job (2, 3, 4).
    pub fn is_summary(self) -> bool {
        !matches!(
            self,
            CompletionStatus::PartialContinued
                | CompletionStatus::PartialCompleted
                | CompletionStatus::PartialFailed
        )
    }

    /// True if the job (or segment) ultimately finished all its work.
    pub fn is_successful(self) -> bool {
        matches!(
            self,
            CompletionStatus::Completed | CompletionStatus::PartialCompleted
        )
    }
}

/// One job record of a standard workload file.
///
/// Field numbering follows the paper (1-based in the text; the doc comment of every
/// member states its field number). Times are in seconds, memory in kilobytes.
/// Optional members are `None` when the file holds the `-1` sentinel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwfRecord {
    /// Field 1: job number, a counter starting from 1.
    pub job_id: u64,
    /// Field 2: submit time in seconds since the start of the log.
    pub submit_time: i64,
    /// Field 3: wait time in seconds (start time minus submit time).
    pub wait_time: Option<i64>,
    /// Field 4: wall-clock run time in seconds.
    pub run_time: Option<i64>,
    /// Field 5: number of allocated processors.
    pub allocated_procs: Option<u32>,
    /// Field 6: average CPU time used per processor, in seconds.
    pub avg_cpu_time: Option<i64>,
    /// Field 7: average used memory per processor, in kilobytes.
    pub used_memory_kb: Option<i64>,
    /// Field 8: requested number of processors.
    pub requested_procs: Option<u32>,
    /// Field 9: requested time (wallclock or average CPU, per the header), in seconds.
    pub requested_time: Option<i64>,
    /// Field 10: requested memory per processor, in kilobytes.
    pub requested_memory_kb: Option<i64>,
    /// Field 11: completion status.
    pub status: CompletionStatus,
    /// Field 12: user ID, a natural number from 1 to the number of users.
    pub user_id: Option<u32>,
    /// Field 13: group ID, a natural number from 1 to the number of groups.
    pub group_id: Option<u32>,
    /// Field 14: executable (application) number.
    pub executable_id: Option<u32>,
    /// Field 15: queue number; by convention 0 denotes interactive jobs.
    pub queue_id: Option<u32>,
    /// Field 16: partition number.
    pub partition_id: Option<u32>,
    /// Field 17: preceding job number (feedback dependency), if any.
    pub preceding_job: Option<u64>,
    /// Field 18: think time in seconds from the termination of the preceding job.
    pub think_time: Option<i64>,
}

impl Default for SwfRecord {
    fn default() -> Self {
        SwfRecord {
            job_id: 1,
            submit_time: 0,
            wait_time: None,
            run_time: None,
            allocated_procs: None,
            avg_cpu_time: None,
            used_memory_kb: None,
            requested_procs: None,
            requested_time: None,
            requested_memory_kb: None,
            status: CompletionStatus::Unknown,
            user_id: None,
            group_id: None,
            executable_id: None,
            queue_id: None,
            partition_id: None,
            preceding_job: None,
            think_time: None,
        }
    }
}

fn opt_to_raw_i64(v: Option<i64>) -> i64 {
    v.unwrap_or(UNKNOWN)
}

fn opt_to_raw_u32(v: Option<u32>) -> i64 {
    v.map(|x| x as i64).unwrap_or(UNKNOWN)
}

fn opt_to_raw_u64(v: Option<u64>) -> i64 {
    v.map(|x| x as i64).unwrap_or(UNKNOWN)
}

fn raw_to_opt_i64(v: i64) -> Option<i64> {
    if v < 0 {
        None
    } else {
        Some(v)
    }
}

fn raw_to_opt_u32(v: i64) -> Option<u32> {
    if v < 0 {
        None
    } else {
        Some(v as u32)
    }
}

fn raw_to_opt_u64(v: i64) -> Option<u64> {
    if v < 0 {
        None
    } else {
        Some(v as u64)
    }
}

impl SwfRecord {
    /// Construct a minimal rigid-job record of the kind produced by workload models:
    /// submit time, run time and number of processors, with all else unknown.
    pub fn rigid(job_id: u64, submit_time: i64, run_time: i64, procs: u32) -> Self {
        SwfRecord {
            job_id,
            submit_time,
            run_time: Some(run_time),
            allocated_procs: Some(procs),
            requested_procs: Some(procs),
            ..SwfRecord::default()
        }
    }

    /// The job's start time (submit + wait), if the wait time is known.
    pub fn start_time(&self) -> Option<i64> {
        self.wait_time.map(|w| self.submit_time + w)
    }

    /// The job's end time (submit + wait + run), if both are known.
    pub fn end_time(&self) -> Option<i64> {
        match (self.wait_time, self.run_time) {
            (Some(w), Some(r)) => Some(self.submit_time + w + r),
            _ => None,
        }
    }

    /// Area of the job in processor-seconds, if both run time and processors are known.
    pub fn area(&self) -> Option<i64> {
        match (self.run_time, self.allocated_procs.or(self.requested_procs)) {
            (Some(r), Some(p)) => Some(r * p as i64),
            _ => None,
        }
    }

    /// The number of processors most relevant for scheduling studies: the request
    /// if present, otherwise the allocation.
    pub fn procs(&self) -> Option<u32> {
        self.requested_procs.or(self.allocated_procs)
    }

    /// The user's runtime estimate if present, otherwise the actual runtime.
    pub fn estimate_or_runtime(&self) -> Option<i64> {
        self.requested_time.or(self.run_time)
    }

    /// True if the record is a whole-job summary line (completion code 0/1/5/unknown).
    pub fn is_summary(&self) -> bool {
        self.status.is_summary()
    }

    /// Convert to the raw 18-integer representation used by the textual format.
    pub fn to_raw(&self) -> [i64; FIELD_COUNT] {
        [
            self.job_id as i64,
            self.submit_time,
            opt_to_raw_i64(self.wait_time),
            opt_to_raw_i64(self.run_time),
            opt_to_raw_u32(self.allocated_procs),
            opt_to_raw_i64(self.avg_cpu_time),
            opt_to_raw_i64(self.used_memory_kb),
            opt_to_raw_u32(self.requested_procs),
            opt_to_raw_i64(self.requested_time),
            opt_to_raw_i64(self.requested_memory_kb),
            self.status.to_code(),
            opt_to_raw_u32(self.user_id),
            opt_to_raw_u32(self.group_id),
            opt_to_raw_u32(self.executable_id),
            opt_to_raw_u32(self.queue_id),
            opt_to_raw_u32(self.partition_id),
            opt_to_raw_u64(self.preceding_job),
            opt_to_raw_i64(self.think_time),
        ]
    }

    /// Build a record from the raw 18-integer representation.
    ///
    /// Any negative value is treated as unknown. Completion codes outside the defined
    /// set are mapped to [`CompletionStatus::Unknown`]; the stricter treatment lives in
    /// the parser, which can reject them.
    pub fn from_raw(raw: &[i64; FIELD_COUNT]) -> Self {
        SwfRecord {
            job_id: if raw[0] < 0 { 0 } else { raw[0] as u64 },
            submit_time: raw[1],
            wait_time: raw_to_opt_i64(raw[2]),
            run_time: raw_to_opt_i64(raw[3]),
            allocated_procs: raw_to_opt_u32(raw[4]),
            avg_cpu_time: raw_to_opt_i64(raw[5]),
            used_memory_kb: raw_to_opt_i64(raw[6]),
            requested_procs: raw_to_opt_u32(raw[7]),
            requested_time: raw_to_opt_i64(raw[8]),
            requested_memory_kb: raw_to_opt_i64(raw[9]),
            status: CompletionStatus::from_code(raw[10]).unwrap_or(CompletionStatus::Unknown),
            user_id: raw_to_opt_u32(raw[11]),
            group_id: raw_to_opt_u32(raw[12]),
            executable_id: raw_to_opt_u32(raw[13]),
            queue_id: raw_to_opt_u32(raw[14]),
            partition_id: raw_to_opt_u32(raw[15]),
            preceding_job: raw_to_opt_u64(raw[16]),
            think_time: raw_to_opt_i64(raw[17]),
        }
    }
}

/// Builder for [`SwfRecord`], convenient for tests and for converters that fill in
/// fields incrementally.
#[derive(Debug, Clone, Default)]
pub struct SwfRecordBuilder {
    record: SwfRecord,
}

impl SwfRecordBuilder {
    /// Start building a record with the given job id and submit time.
    pub fn new(job_id: u64, submit_time: i64) -> Self {
        SwfRecordBuilder {
            record: SwfRecord {
                job_id,
                submit_time,
                ..SwfRecord::default()
            },
        }
    }

    /// Set the wait time (seconds).
    pub fn wait_time(mut self, v: i64) -> Self {
        self.record.wait_time = Some(v);
        self
    }

    /// Set the run time (seconds).
    pub fn run_time(mut self, v: i64) -> Self {
        self.record.run_time = Some(v);
        self
    }

    /// Set the number of allocated processors.
    pub fn allocated_procs(mut self, v: u32) -> Self {
        self.record.allocated_procs = Some(v);
        self
    }

    /// Set the average CPU time per processor (seconds).
    pub fn avg_cpu_time(mut self, v: i64) -> Self {
        self.record.avg_cpu_time = Some(v);
        self
    }

    /// Set the average used memory per processor (kilobytes).
    pub fn used_memory_kb(mut self, v: i64) -> Self {
        self.record.used_memory_kb = Some(v);
        self
    }

    /// Set the requested number of processors.
    pub fn requested_procs(mut self, v: u32) -> Self {
        self.record.requested_procs = Some(v);
        self
    }

    /// Set the requested time (seconds).
    pub fn requested_time(mut self, v: i64) -> Self {
        self.record.requested_time = Some(v);
        self
    }

    /// Set the requested memory per processor (kilobytes).
    pub fn requested_memory_kb(mut self, v: i64) -> Self {
        self.record.requested_memory_kb = Some(v);
        self
    }

    /// Set the completion status.
    pub fn status(mut self, v: CompletionStatus) -> Self {
        self.record.status = v;
        self
    }

    /// Set the user id.
    pub fn user_id(mut self, v: u32) -> Self {
        self.record.user_id = Some(v);
        self
    }

    /// Set the group id.
    pub fn group_id(mut self, v: u32) -> Self {
        self.record.group_id = Some(v);
        self
    }

    /// Set the executable (application) id.
    pub fn executable_id(mut self, v: u32) -> Self {
        self.record.executable_id = Some(v);
        self
    }

    /// Set the queue id (0 denotes interactive by convention).
    pub fn queue_id(mut self, v: u32) -> Self {
        self.record.queue_id = Some(v);
        self
    }

    /// Set the partition id.
    pub fn partition_id(mut self, v: u32) -> Self {
        self.record.partition_id = Some(v);
        self
    }

    /// Set the feedback dependency: preceding job number and think time.
    pub fn depends_on(mut self, preceding_job: u64, think_time: i64) -> Self {
        self.record.preceding_job = Some(preceding_job);
        self.record.think_time = Some(think_time);
        self
    }

    /// Finish and return the record.
    pub fn build(self) -> SwfRecord {
        self.record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_status_round_trips() {
        for code in [-1i64, 0, 1, 2, 3, 4, 5] {
            let st = CompletionStatus::from_code(code).unwrap();
            assert_eq!(st.to_code(), code);
        }
        assert_eq!(CompletionStatus::from_code(17), None);
        assert_eq!(CompletionStatus::from_code(-3), None);
    }

    #[test]
    fn summary_classification() {
        assert!(CompletionStatus::Completed.is_summary());
        assert!(CompletionStatus::Failed.is_summary());
        assert!(CompletionStatus::Unknown.is_summary());
        assert!(CompletionStatus::Cancelled.is_summary());
        assert!(!CompletionStatus::PartialContinued.is_summary());
        assert!(!CompletionStatus::PartialCompleted.is_summary());
        assert!(!CompletionStatus::PartialFailed.is_summary());
    }

    #[test]
    fn successful_classification() {
        assert!(CompletionStatus::Completed.is_successful());
        assert!(CompletionStatus::PartialCompleted.is_successful());
        assert!(!CompletionStatus::Failed.is_successful());
        assert!(!CompletionStatus::Cancelled.is_successful());
    }

    #[test]
    fn default_record_is_all_unknown() {
        let r = SwfRecord::default();
        let raw = r.to_raw();
        assert_eq!(raw[0], 1);
        assert_eq!(raw[1], 0);
        for v in &raw[2..] {
            assert_eq!(*v, UNKNOWN);
        }
    }

    #[test]
    fn raw_round_trip_preserves_fields() {
        let r = SwfRecordBuilder::new(42, 1000)
            .wait_time(30)
            .run_time(600)
            .allocated_procs(16)
            .avg_cpu_time(590)
            .used_memory_kb(2048)
            .requested_procs(16)
            .requested_time(900)
            .requested_memory_kb(4096)
            .status(CompletionStatus::Completed)
            .user_id(3)
            .group_id(2)
            .executable_id(7)
            .queue_id(1)
            .partition_id(1)
            .depends_on(40, 10)
            .build();
        let raw = r.to_raw();
        let back = SwfRecord::from_raw(&raw);
        assert_eq!(back, r);
    }

    #[test]
    fn derived_times() {
        let r = SwfRecordBuilder::new(1, 100)
            .wait_time(20)
            .run_time(80)
            .allocated_procs(4)
            .build();
        assert_eq!(r.start_time(), Some(120));
        assert_eq!(r.end_time(), Some(200));
        assert_eq!(r.area(), Some(320));
        assert_eq!(r.procs(), Some(4));
    }

    #[test]
    fn derived_times_unknown_when_missing() {
        let r = SwfRecord::default();
        assert_eq!(r.start_time(), None);
        assert_eq!(r.end_time(), None);
        assert_eq!(r.area(), None);
        assert_eq!(r.procs(), None);
        assert_eq!(r.estimate_or_runtime(), None);
    }

    #[test]
    fn estimate_falls_back_to_runtime() {
        let r = SwfRecordBuilder::new(1, 0).run_time(55).build();
        assert_eq!(r.estimate_or_runtime(), Some(55));
        let r2 = SwfRecordBuilder::new(1, 0)
            .run_time(55)
            .requested_time(100)
            .build();
        assert_eq!(r2.estimate_or_runtime(), Some(100));
    }

    #[test]
    fn rigid_constructor() {
        let r = SwfRecord::rigid(9, 500, 3600, 64);
        assert_eq!(r.job_id, 9);
        assert_eq!(r.submit_time, 500);
        assert_eq!(r.run_time, Some(3600));
        assert_eq!(r.allocated_procs, Some(64));
        assert_eq!(r.requested_procs, Some(64));
        assert_eq!(r.status, CompletionStatus::Unknown);
    }

    #[test]
    fn procs_prefers_request() {
        let mut r = SwfRecord::rigid(1, 0, 10, 8);
        r.requested_procs = Some(16);
        assert_eq!(r.procs(), Some(16));
    }

    #[test]
    fn from_raw_treats_negatives_as_unknown() {
        let mut raw = [UNKNOWN; FIELD_COUNT];
        raw[0] = 5;
        raw[1] = 77;
        raw[3] = -9; // malformed negative run time: treated as unknown here
        let r = SwfRecord::from_raw(&raw);
        assert_eq!(r.job_id, 5);
        assert_eq!(r.submit_time, 77);
        assert_eq!(r.run_time, None);
    }
}
