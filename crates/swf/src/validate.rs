//! Consistency checking and cleaning of standard workload files.
//!
//! The paper requires that "every datum must abide to strict consistency rules, that
//! when checked ensure that the workload is always clean". This module implements
//! those rules as a validator that reports violations, and a cleaner that repairs
//! the repairable ones (re-sorting, re-numbering, clamping, dropping hopeless
//! records) and reports exactly what it did.

use crate::error::ParseError;
use crate::header::SwfHeader;
use crate::log::SwfLog;
use crate::record::{CompletionStatus, SwfRecord};
use crate::source::JobSource;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// A single consistency violation found in a log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// Submit times are not sorted in ascending order.
    UnsortedSubmitTimes {
        /// Index (0-based, in record order) of the first out-of-order record.
        index: usize,
    },
    /// Job numbers of summary records are not the consecutive sequence 1..n.
    NonConsecutiveJobIds {
        /// Index of the offending record.
        index: usize,
        /// The id found.
        found: u64,
        /// The id expected.
        expected: u64,
    },
    /// The first submit time is not zero.
    NonZeroFirstSubmit {
        /// The first submit time found.
        first_submit: i64,
    },
    /// A job uses more processors than the machine has (`MaxNodes`).
    TooManyProcessors {
        /// Job id.
        job: u64,
        /// Processors requested or allocated.
        procs: u32,
        /// Machine size from the header.
        max_nodes: u32,
    },
    /// A job's runtime exceeds the maximum the system allows (`MaxRuntime`).
    RuntimeExceedsMax {
        /// Job id.
        job: u64,
        /// Observed runtime.
        run_time: i64,
        /// Header maximum.
        max_runtime: i64,
    },
    /// A job's used memory exceeds `MaxMemory`.
    MemoryExceedsMax {
        /// Job id.
        job: u64,
        /// Observed memory (KB).
        memory_kb: i64,
        /// Header maximum (KB).
        max_memory: i64,
    },
    /// Average CPU time is larger than wall-clock runtime (and overuse is not allowed).
    CpuExceedsWallclock {
        /// Job id.
        job: u64,
        /// CPU time per processor.
        cpu: i64,
        /// Wall-clock runtime.
        run_time: i64,
    },
    /// The job references a preceding job that does not exist or is not earlier.
    BadPrecedingJob {
        /// Job id.
        job: u64,
        /// Referenced preceding job id.
        preceding: u64,
    },
    /// A think time is present without a preceding job.
    ThinkTimeWithoutPreceding {
        /// Job id.
        job: u64,
    },
    /// A partial-execution record (code 2/3/4) has no matching summary record.
    OrphanPartial {
        /// Job id of the partial record.
        job: u64,
    },
    /// A checkpointed job's partial runtimes do not sum to the summary runtime.
    PartialRuntimeMismatch {
        /// Job id.
        job: u64,
        /// Sum of partial runtimes.
        partial_sum: i64,
        /// Summary runtime.
        summary: i64,
    },
    /// A record has neither requested nor allocated processors.
    MissingProcessors {
        /// Job id.
        job: u64,
    },
    /// A summary record has an unknown runtime and is not cancelled.
    MissingRuntime {
        /// Job id.
        job: u64,
    },
}

/// Outcome of validating a log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// All violations found, in record order.
    pub violations: Vec<Violation>,
    /// Number of records inspected.
    pub records: usize,
}

impl ValidationReport {
    /// True if no violations were found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Count violations of a given discriminant (by matching closure).
    pub fn count_where<F: Fn(&Violation) -> bool>(&self, f: F) -> usize {
        self.violations.iter().filter(|v| f(v)).count()
    }
}

/// Rank of each per-record rule, used to restore the rule order within one
/// record when a deferred check (a forward preceding-job reference) resolves
/// only at the end of the stream.
mod rule {
    pub const TOO_MANY_PROCS: u8 = 0;
    pub const RUNTIME_MAX: u8 = 1;
    pub const MEMORY_MAX: u8 = 2;
    pub const CPU_WALLCLOCK: u8 = 3;
    pub const BAD_PRECEDING: u8 = 4;
    pub const THINK_TIME: u8 = 5;
    pub const MISSING_PROCS: u8 = 6;
    pub const MISSING_RUNTIME: u8 = 7;
}

/// Incremental validation of a record stream against the standard's
/// consistency rules, retaining only the minimal cross-record state.
///
/// Push every record (in stream order) with [`StreamingValidator::push`], then
/// call [`StreamingValidator::finish`]; the resulting [`ValidationReport`] is
/// identical to running [`validate`] over the collected log, provided the
/// header directives precede the data records — which the standard requires
/// and every conforming writer produces. (A header directive appearing
/// mid-file only affects the checks of the records after it.)
///
/// Cross-record state kept per stream: one `(id → runtime)` entry per summary
/// record (for dependency-existence and checkpoint-chain rules), the partial
/// runtime sums of checkpointed jobs, and the unresolved forward
/// preceding-job references — tens of bytes per job instead of the whole
/// record vector, which is what lets `psbench validate` run over archive-scale
/// logs in bounded memory.
#[derive(Debug)]
pub struct StreamingValidator {
    records: usize,
    /// Submit time of the previous record, for the sortedness rule.
    prev_submit: Option<i64>,
    /// First out-of-order record, if any (the rule reports only the first).
    unsorted_at: Option<usize>,
    /// Smallest submit time seen.
    min_submit: Option<i64>,
    /// Next expected summary job id (ids must be 1..n consecutive).
    expected_id: u64,
    /// NonConsecutiveJobIds violations, in record order.
    id_violations: Vec<Violation>,
    /// Per-record violations as `(record index, rule rank, violation)`;
    /// deferred dependency checks splice back in by this key.
    record_violations: Vec<(usize, u8, Violation)>,
    /// id → runtime of every summary record seen (last record wins for
    /// duplicated ids, matching the collected validator).
    summaries: HashMap<u64, Option<i64>>,
    /// Preceding-job references that pointed at ids not seen yet: `(record
    /// index, job id, preceding id)`. Resolved against `summaries` at finish.
    pending_refs: Vec<(usize, u64, u64)>,
    /// `(record index, job id)` of every partial record, for the orphan rule.
    partials: Vec<(usize, u64)>,
    /// Sum of partial runtimes per job id (deterministically ordered).
    partial_sums: BTreeMap<u64, i64>,
}

impl Default for StreamingValidator {
    fn default() -> Self {
        StreamingValidator::new()
    }
}

impl StreamingValidator {
    /// A validator with no records pushed yet.
    pub fn new() -> Self {
        StreamingValidator {
            records: 0,
            prev_submit: None,
            unsorted_at: None,
            min_submit: None,
            // Summary ids must be the consecutive sequence starting at 1.
            expected_id: 1,
            id_violations: Vec::new(),
            record_violations: Vec::new(),
            summaries: HashMap::new(),
            pending_refs: Vec::new(),
            partials: Vec::new(),
            partial_sums: BTreeMap::new(),
        }
    }

    /// Validate one record against the header as currently known.
    pub fn push(&mut self, j: &SwfRecord, header: &SwfHeader) {
        let i = self.records;
        self.records += 1;

        // Rule: lines sorted by ascending submit time (first offender only).
        if let Some(prev) = self.prev_submit {
            if j.submit_time < prev && self.unsorted_at.is_none() {
                self.unsorted_at = Some(i);
            }
        }
        self.prev_submit = Some(j.submit_time);
        self.min_submit = Some(match self.min_submit {
            Some(m) => m.min(j.submit_time),
            None => j.submit_time,
        });

        // Rule: summary job ids are 1..n consecutive.
        if j.is_summary() {
            if j.job_id != self.expected_id {
                self.id_violations.push(Violation::NonConsecutiveJobIds {
                    index: i,
                    found: j.job_id,
                    expected: self.expected_id,
                });
            }
            self.expected_id += 1;
        }

        // Header-bound rules, against the header as known at this record.
        let allow_overuse = header.allow_overuse.unwrap_or(true);
        if let (Some(p), Some(mn)) = (j.procs(), header.max_nodes) {
            if p > mn {
                self.record_violations.push((
                    i,
                    rule::TOO_MANY_PROCS,
                    Violation::TooManyProcessors {
                        job: j.job_id,
                        procs: p,
                        max_nodes: mn,
                    },
                ));
            }
        }
        if let (Some(r), Some(mr)) = (j.run_time, header.max_runtime) {
            if !allow_overuse && r > mr {
                self.record_violations.push((
                    i,
                    rule::RUNTIME_MAX,
                    Violation::RuntimeExceedsMax {
                        job: j.job_id,
                        run_time: r,
                        max_runtime: mr,
                    },
                ));
            }
        }
        if let (Some(m), Some(mm)) = (j.used_memory_kb, header.max_memory) {
            if !allow_overuse && m > mm {
                self.record_violations.push((
                    i,
                    rule::MEMORY_MAX,
                    Violation::MemoryExceedsMax {
                        job: j.job_id,
                        memory_kb: m,
                        max_memory: mm,
                    },
                ));
            }
        }
        if let (Some(c), Some(r)) = (j.avg_cpu_time, j.run_time) {
            if c > r {
                self.record_violations.push((
                    i,
                    rule::CPU_WALLCLOCK,
                    Violation::CpuExceedsWallclock {
                        job: j.job_id,
                        cpu: c,
                        run_time: r,
                    },
                ));
            }
        }

        // Dependency rules. A summary record's dependency must point at an
        // existing *earlier* summary id; a partial record's must merely exist.
        // References to ids not seen yet are deferred to `finish`.
        if let Some(p) = j.preceding_job {
            let bad_now = j.is_summary() && p >= j.job_id;
            if bad_now {
                self.record_violations.push((
                    i,
                    rule::BAD_PRECEDING,
                    Violation::BadPrecedingJob {
                        job: j.job_id,
                        preceding: p,
                    },
                ));
            } else if self.summaries.contains_key(&p) {
                // exists and (for summaries) is earlier: clean
            } else {
                self.pending_refs.push((i, j.job_id, p));
            }
        }
        if j.think_time.is_some() && j.preceding_job.is_none() {
            self.record_violations.push((
                i,
                rule::THINK_TIME,
                Violation::ThinkTimeWithoutPreceding { job: j.job_id },
            ));
        }

        if j.is_summary() {
            if j.procs().is_none() {
                self.record_violations.push((
                    i,
                    rule::MISSING_PROCS,
                    Violation::MissingProcessors { job: j.job_id },
                ));
            }
            if j.run_time.is_none()
                && j.status != CompletionStatus::Cancelled
                && j.status != CompletionStatus::Unknown
            {
                self.record_violations.push((
                    i,
                    rule::MISSING_RUNTIME,
                    Violation::MissingRuntime { job: j.job_id },
                ));
            }
            self.summaries.insert(j.job_id, j.run_time);
        } else {
            self.partials.push((i, j.job_id));
            if let Some(r) = j.run_time {
                *self.partial_sums.entry(j.job_id).or_insert(0) += r;
            }
        }
    }

    /// Resolve the deferred rules and assemble the report.
    pub fn finish(mut self) -> ValidationReport {
        let mut report = ValidationReport {
            records: self.records,
            ..ValidationReport::default()
        };
        if self.records == 0 {
            return report;
        }
        if let Some(index) = self.unsorted_at {
            report
                .violations
                .push(Violation::UnsortedSubmitTimes { index });
        }
        let first = self.min_submit.unwrap_or(0);
        if first != 0 {
            report.violations.push(Violation::NonZeroFirstSubmit {
                first_submit: first,
            });
        }
        report.violations.append(&mut self.id_violations);

        // Forward references that never resolved are bad dependencies; splice
        // them back at their records' positions in rule order.
        for (i, job, preceding) in self.pending_refs {
            if !self.summaries.contains_key(&preceding) {
                self.record_violations.push((
                    i,
                    rule::BAD_PRECEDING,
                    Violation::BadPrecedingJob { job, preceding },
                ));
            }
        }
        self.record_violations
            .sort_by_key(|&(i, rank, _)| (i, rank));
        report
            .violations
            .extend(self.record_violations.into_iter().map(|(_, _, v)| v));

        // Checkpoint chain rules: every partial record needs a summary, and
        // partial runtimes must sum to the summary runtime.
        for (_, id) in &self.partials {
            if !self.summaries.contains_key(id) {
                report
                    .violations
                    .push(Violation::OrphanPartial { job: *id });
            }
        }
        for (id, sum) in &self.partial_sums {
            if let Some(Some(total)) = self.summaries.get(id) {
                if total != sum {
                    report.violations.push(Violation::PartialRuntimeMismatch {
                        job: *id,
                        partial_sum: *sum,
                        summary: *total,
                    });
                }
            }
        }
        report
    }
}

/// Validate a log against the standard's consistency rules.
pub fn validate(log: &SwfLog) -> ValidationReport {
    let mut v = StreamingValidator::new();
    for j in &log.jobs {
        v.push(j, &log.header);
    }
    v.finish()
}

/// Validate a streaming [`JobSource`] record by record, without collecting the
/// log. The report is identical to [`validate`] over the collected stream for
/// any source whose header directives precede its data records (which the
/// standard requires); only the minimal cross-record state is retained — see
/// [`StreamingValidator`]. Fails only if the source itself fails mid-stream.
pub fn validate_source<S: JobSource>(mut source: S) -> Result<ValidationReport, ParseError> {
    let mut v = StreamingValidator::new();
    while let Some(rec) = source.next_record() {
        let rec = rec?;
        v.push(&rec, &source.meta().header);
    }
    Ok(v.finish())
}

/// Actions a cleaning pass may take, counted in the [`CleaningReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleaningReport {
    /// Records dropped because they could not be repaired.
    pub dropped: usize,
    /// Whether the records were re-sorted by submit time.
    pub resorted: bool,
    /// Whether the submit times were rebased to start at zero.
    pub rebased: bool,
    /// Whether job ids were renumbered to 1..n.
    pub renumbered: bool,
    /// Number of processor counts clamped to `MaxNodes`.
    pub clamped_procs: usize,
    /// Number of CPU times clamped to the wall-clock runtime.
    pub clamped_cpu: usize,
    /// Number of dangling preceding-job references removed.
    pub dropped_dependencies: usize,
    /// Number of summary records whose missing runtime was filled in (from the CPU
    /// time when known, otherwise zero).
    pub filled_runtimes: usize,
}

/// Clean a log in place so that [`validate`] reports no violations, and report what
/// was changed. Records that cannot be repaired (summary records with no processor
/// count at all) are dropped.
pub fn clean(log: &mut SwfLog) -> CleaningReport {
    let mut report = CleaningReport::default();

    // Drop hopeless records first.
    let before = log.jobs.len();
    log.jobs
        .retain(|j| !(j.is_summary() && j.procs().is_none()));
    // Drop orphan partial records.
    let ids: std::collections::HashSet<u64> = log
        .jobs
        .iter()
        .filter(|j| j.is_summary())
        .map(|j| j.job_id)
        .collect();
    log.jobs
        .retain(|j| j.is_summary() || ids.contains(&j.job_id));
    report.dropped = before - log.jobs.len();

    // Sort and rebase.
    let was_sorted = log
        .jobs
        .windows(2)
        .all(|w| w[0].submit_time <= w[1].submit_time);
    if !was_sorted {
        log.sort_by_submit();
        report.resorted = true;
    }
    if log.first_submit() != 0 {
        log.rebase_times();
        report.rebased = true;
    }

    // Renumber if summary ids are not consecutive from 1.
    let needs_renumber = log
        .jobs
        .iter()
        .filter(|j| j.is_summary())
        .zip(1u64..)
        .any(|(j, expected)| j.job_id != expected);
    if needs_renumber {
        // Every summary record gets a fresh sequential id (this also resolves
        // duplicate ids, which SwfLog::renumber would collapse); partial lines take
        // the new id of the summary that carried their old id, and preceding-job
        // references are remapped or dropped.
        let mut next = 1u64;
        let mut old_to_new: HashMap<u64, u64> = HashMap::new();
        let mut new_ids = vec![0u64; log.jobs.len()];
        for (i, j) in log.jobs.iter().enumerate() {
            if j.is_summary() {
                let id = next;
                next += 1;
                old_to_new.insert(j.job_id, id);
                new_ids[i] = id;
            }
        }
        for (i, j) in log.jobs.iter().enumerate() {
            if !j.is_summary() {
                new_ids[i] = old_to_new.get(&j.job_id).copied().unwrap_or(0);
            }
        }
        for (i, j) in log.jobs.iter_mut().enumerate() {
            if let Some(p) = j.preceding_job {
                j.preceding_job = old_to_new.get(&p).copied();
                if j.preceding_job.is_none() {
                    j.think_time = None;
                    report.dropped_dependencies += 1;
                }
            }
            j.job_id = new_ids[i];
        }
        report.renumbered = true;
    }

    // Clamp per-record values.
    let max_nodes = log.header.max_nodes;
    for j in &mut log.jobs {
        if let Some(mn) = max_nodes {
            if let Some(p) = j.requested_procs {
                if p > mn {
                    j.requested_procs = Some(mn);
                    report.clamped_procs += 1;
                }
            }
            if let Some(p) = j.allocated_procs {
                if p > mn {
                    j.allocated_procs = Some(mn);
                    report.clamped_procs += 1;
                }
            }
        }
        if let (Some(c), Some(r)) = (j.avg_cpu_time, j.run_time) {
            if c > r {
                j.avg_cpu_time = Some(r);
                report.clamped_cpu += 1;
            }
        }
        if j.think_time.is_some() && j.preceding_job.is_none() {
            j.think_time = None;
            report.dropped_dependencies += 1;
        }
        if j.is_summary()
            && j.run_time.is_none()
            && j.status != CompletionStatus::Cancelled
            && j.status != CompletionStatus::Unknown
        {
            j.run_time = Some(j.avg_cpu_time.unwrap_or(0));
            report.filled_runtimes += 1;
        }
    }

    // Drop dependencies pointing at later or missing jobs.
    let summary_ids: std::collections::HashSet<u64> = log
        .jobs
        .iter()
        .filter(|j| j.is_summary())
        .map(|j| j.job_id)
        .collect();
    for j in &mut log.jobs {
        if let Some(p) = j.preceding_job {
            let bad = !summary_ids.contains(&p) || (j.is_summary() && p >= j.job_id);
            if bad {
                j.preceding_job = None;
                j.think_time = None;
                report.dropped_dependencies += 1;
            }
        }
    }

    // Re-derive MaxNodes if the header lacks it, so later validations have a bound.
    if log.header.max_nodes.is_none() {
        let max = log.max_job_procs();
        if max > 0 {
            log.header.max_nodes = Some(max);
        }
    }

    // Header hygiene: make sure the version is stamped.
    if log.header.version.is_none() {
        log.header.version = Some(crate::header::FORMAT_VERSION);
    }

    report
}

/// Validate, and if violations are found clean and re-validate; returns the cleaning
/// report together with the final validation report (which is clean for repairable
/// inputs).
pub fn clean_and_validate(log: &mut SwfLog) -> (CleaningReport, ValidationReport) {
    let initial = validate(log);
    if initial.is_clean() {
        return (CleaningReport::default(), initial);
    }
    let cleaning = clean(log);
    let after = validate(log);
    (cleaning, after)
}

/// Convenience: build a minimal conforming header for a machine of `max_nodes` nodes.
pub fn minimal_header(max_nodes: u32) -> SwfHeader {
    SwfHeader {
        version: Some(crate::header::FORMAT_VERSION),
        max_nodes: Some(max_nodes),
        ..SwfHeader::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SwfRecordBuilder;

    fn conforming_log() -> SwfLog {
        let header = minimal_header(64);
        let jobs = vec![
            SwfRecordBuilder::new(1, 0)
                .wait_time(0)
                .run_time(100)
                .allocated_procs(8)
                .status(CompletionStatus::Completed)
                .build(),
            SwfRecordBuilder::new(2, 10)
                .wait_time(5)
                .run_time(20)
                .allocated_procs(4)
                .status(CompletionStatus::Completed)
                .depends_on(1, 3)
                .build(),
        ];
        SwfLog::new(header, jobs)
    }

    #[test]
    fn conforming_log_is_clean() {
        let report = validate(&conforming_log());
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.records, 2);
    }

    #[test]
    fn detects_unsorted_and_nonzero_start() {
        let mut log = conforming_log();
        log.jobs.swap(0, 1);
        for j in &mut log.jobs {
            j.submit_time += 100;
        }
        let report = validate(&log);
        assert!(report.count_where(|v| matches!(v, Violation::UnsortedSubmitTimes { .. })) == 1);
        assert!(report.count_where(|v| matches!(v, Violation::NonZeroFirstSubmit { .. })) == 1);
    }

    #[test]
    fn detects_nonconsecutive_ids() {
        let mut log = conforming_log();
        log.jobs[1].job_id = 7;
        let report = validate(&log);
        assert_eq!(
            report.count_where(|v| matches!(v, Violation::NonConsecutiveJobIds { .. })),
            1
        );
    }

    #[test]
    fn detects_too_many_processors() {
        let mut log = conforming_log();
        log.jobs[0].allocated_procs = Some(1000);
        let report = validate(&log);
        assert_eq!(
            report.count_where(|v| matches!(v, Violation::TooManyProcessors { .. })),
            1
        );
    }

    #[test]
    fn detects_cpu_exceeding_wallclock() {
        let mut log = conforming_log();
        log.jobs[0].avg_cpu_time = Some(500);
        let report = validate(&log);
        assert_eq!(
            report.count_where(|v| matches!(v, Violation::CpuExceedsWallclock { .. })),
            1
        );
    }

    #[test]
    fn detects_runtime_and_memory_overuse_only_when_disallowed() {
        let mut log = conforming_log();
        log.header.max_runtime = Some(50);
        log.header.max_memory = Some(100);
        log.jobs[0].used_memory_kb = Some(200);
        // Overuse allowed by default => no violations for these rules.
        let report = validate(&log);
        assert_eq!(
            report.count_where(|v| matches!(v, Violation::RuntimeExceedsMax { .. })),
            0
        );
        log.header.allow_overuse = Some(false);
        let report = validate(&log);
        assert_eq!(
            report.count_where(|v| matches!(v, Violation::RuntimeExceedsMax { .. })),
            1
        );
        assert_eq!(
            report.count_where(|v| matches!(v, Violation::MemoryExceedsMax { .. })),
            1
        );
    }

    #[test]
    fn detects_bad_dependencies() {
        let mut log = conforming_log();
        log.jobs[1].preceding_job = Some(99);
        let report = validate(&log);
        assert_eq!(
            report.count_where(|v| matches!(v, Violation::BadPrecedingJob { .. })),
            1
        );
        let mut log2 = conforming_log();
        log2.jobs[0].think_time = Some(10);
        let report2 = validate(&log2);
        assert_eq!(
            report2.count_where(|v| matches!(v, Violation::ThinkTimeWithoutPreceding { .. })),
            1
        );
    }

    #[test]
    fn detects_forward_dependency() {
        let mut log = conforming_log();
        // Job 1 depends on job 2 (which comes later) -- illegal.
        log.jobs[0].preceding_job = Some(2);
        log.jobs[0].think_time = Some(1);
        let report = validate(&log);
        assert_eq!(
            report.count_where(|v| matches!(v, Violation::BadPrecedingJob { .. })),
            1
        );
    }

    #[test]
    fn detects_orphan_partials_and_mismatched_sums() {
        let mut log = conforming_log();
        let mut orphan = SwfRecordBuilder::new(9, 20)
            .run_time(5)
            .allocated_procs(1)
            .build();
        orphan.status = CompletionStatus::PartialContinued;
        log.jobs.push(orphan);
        let report = validate(&log);
        assert_eq!(
            report.count_where(|v| matches!(v, Violation::OrphanPartial { .. })),
            1
        );

        // Now a checkpointed job whose partial runtimes do not add up.
        let mut log2 = conforming_log();
        let mut p1 = SwfRecordBuilder::new(1, 0)
            .run_time(30)
            .allocated_procs(8)
            .build();
        p1.status = CompletionStatus::PartialContinued;
        let mut p2 = SwfRecordBuilder::new(1, 0)
            .run_time(30)
            .allocated_procs(8)
            .build();
        p2.status = CompletionStatus::PartialCompleted;
        log2.jobs.push(p1);
        log2.jobs.push(p2);
        let report2 = validate(&log2);
        assert_eq!(
            report2.count_where(|v| matches!(v, Violation::PartialRuntimeMismatch { .. })),
            1
        );
    }

    #[test]
    fn detects_missing_fields() {
        let mut log = conforming_log();
        log.jobs[0].allocated_procs = None;
        log.jobs[0].requested_procs = None;
        log.jobs[1].run_time = None;
        let report = validate(&log);
        assert_eq!(
            report.count_where(|v| matches!(v, Violation::MissingProcessors { .. })),
            1
        );
        assert_eq!(
            report.count_where(|v| matches!(v, Violation::MissingRuntime { .. })),
            1
        );
    }

    #[test]
    fn clean_repairs_messy_log() {
        let mut log = conforming_log();
        // Make a mess: unsorted, shifted, gap in ids, oversized job, bogus dependency.
        log.jobs.swap(0, 1);
        for j in &mut log.jobs {
            j.submit_time += 500;
        }
        log.jobs[0].job_id = 12;
        log.jobs[1].job_id = 3;
        log.jobs[0].allocated_procs = Some(128);
        log.jobs[0].preceding_job = Some(77);
        log.jobs[0].think_time = Some(4);

        let (cleaning, after) = clean_and_validate(&mut log);
        assert!(after.is_clean(), "{:?}", after.violations);
        assert!(cleaning.resorted);
        assert!(cleaning.rebased);
        assert!(cleaning.renumbered);
        assert!(cleaning.clamped_procs >= 1);
    }

    #[test]
    fn clean_counts_dropped_dependencies() {
        let mut log = conforming_log();
        // Dangling dependency on a job that never exists, with ids already consecutive
        // so the renumber pass is not involved.
        log.jobs[1].preceding_job = Some(42);
        let report = clean(&mut log);
        assert!(report.dropped_dependencies >= 1);
        assert!(validate(&log).is_clean());
    }

    #[test]
    fn clean_drops_hopeless_records() {
        let mut log = conforming_log();
        let hopeless = SwfRecordBuilder::new(3, 20).run_time(10).build(); // no procs at all
        log.jobs.push(hopeless);
        let report = clean(&mut log);
        assert_eq!(report.dropped, 1);
        assert!(validate(&log).is_clean());
    }

    #[test]
    fn clean_is_idempotent() {
        let mut log = conforming_log();
        log.jobs[0].allocated_procs = Some(500);
        clean(&mut log);
        let second = clean(&mut log);
        assert_eq!(second, CleaningReport::default());
    }

    #[test]
    fn clean_on_clean_log_reports_nothing() {
        let mut log = conforming_log();
        let (cleaning, after) = clean_and_validate(&mut log);
        assert_eq!(cleaning, CleaningReport::default());
        assert!(after.is_clean());
    }

    /// Every way of making a log dirty that the suite above exercises, to
    /// drive the streaming-vs-collected equivalence check.
    fn messy_logs() -> Vec<SwfLog> {
        let mut logs = vec![conforming_log()];
        let mut l = conforming_log();
        l.jobs.swap(0, 1);
        for j in &mut l.jobs {
            j.submit_time += 100;
        }
        logs.push(l);
        let mut l = conforming_log();
        l.jobs[1].job_id = 7;
        l.jobs[0].allocated_procs = Some(1000);
        l.jobs[0].avg_cpu_time = Some(500);
        logs.push(l);
        let mut l = conforming_log();
        l.header.max_runtime = Some(50);
        l.header.max_memory = Some(100);
        l.header.allow_overuse = Some(false);
        l.jobs[0].used_memory_kb = Some(200);
        l.jobs[1].preceding_job = Some(99);
        l.jobs[0].think_time = Some(10);
        logs.push(l);
        // Forward dependency plus checkpoint-chain trouble: an orphan partial,
        // a mismatched partial sum, and a partial that precedes its summary.
        let mut l = conforming_log();
        l.jobs[0].preceding_job = Some(2);
        l.jobs[0].think_time = Some(1);
        let mut orphan = SwfRecordBuilder::new(9, 20)
            .run_time(5)
            .allocated_procs(1)
            .build();
        orphan.status = CompletionStatus::PartialContinued;
        l.jobs.insert(0, orphan);
        let mut p1 = SwfRecordBuilder::new(1, 0)
            .run_time(30)
            .allocated_procs(8)
            .build();
        p1.status = CompletionStatus::PartialCompleted;
        l.jobs.push(p1);
        logs.push(l);
        let mut l = conforming_log();
        l.jobs[0].allocated_procs = None;
        l.jobs[0].requested_procs = None;
        l.jobs[1].run_time = None;
        logs.push(l);
        logs.push(SwfLog::default());
        logs
    }

    #[test]
    fn streaming_validation_matches_collected() {
        for (i, log) in messy_logs().into_iter().enumerate() {
            let collected = validate(&log);
            let streamed = validate_source(log.as_source("s")).unwrap();
            assert_eq!(streamed, collected, "log #{i}");
        }
    }

    #[test]
    fn streaming_validation_matches_over_a_parsed_file() {
        use crate::parse::{ParseOptions, RecordIter};
        use crate::write::write_string;
        let mut log = conforming_log();
        log.jobs[0].avg_cpu_time = Some(500); // one violation survives writing
        let text = write_string(&log);
        let streamed =
            validate_source(RecordIter::new(text.as_bytes(), ParseOptions::default())).unwrap();
        let collected = validate(&crate::parse::parse(&text).unwrap());
        assert_eq!(streamed, collected);
        assert!(!streamed.is_clean());
    }

    #[test]
    fn default_streaming_validator_behaves_like_new() {
        // `Default` must establish the ids-start-at-1 invariant too.
        let log = conforming_log();
        let mut v = StreamingValidator::default();
        for j in &log.jobs {
            v.push(j, &log.header);
        }
        assert!(v.finish().is_clean());
    }

    #[test]
    fn streaming_validation_surfaces_stream_errors() {
        use crate::parse::{ParseOptions, RecordIter};
        let bad = "1 0 10\n";
        assert!(validate_source(RecordIter::new(bad.as_bytes(), ParseOptions::default())).is_err());
    }
}
