//! Consistency checking and cleaning of standard workload files.
//!
//! The paper requires that "every datum must abide to strict consistency rules, that
//! when checked ensure that the workload is always clean". This module implements
//! those rules as a validator that reports violations, and a cleaner that repairs
//! the repairable ones (re-sorting, re-numbering, clamping, dropping hopeless
//! records) and reports exactly what it did.

use crate::header::SwfHeader;
use crate::log::SwfLog;
use crate::record::{CompletionStatus, SwfRecord};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A single consistency violation found in a log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// Submit times are not sorted in ascending order.
    UnsortedSubmitTimes {
        /// Index (0-based, in record order) of the first out-of-order record.
        index: usize,
    },
    /// Job numbers of summary records are not the consecutive sequence 1..n.
    NonConsecutiveJobIds {
        /// Index of the offending record.
        index: usize,
        /// The id found.
        found: u64,
        /// The id expected.
        expected: u64,
    },
    /// The first submit time is not zero.
    NonZeroFirstSubmit {
        /// The first submit time found.
        first_submit: i64,
    },
    /// A job uses more processors than the machine has (`MaxNodes`).
    TooManyProcessors {
        /// Job id.
        job: u64,
        /// Processors requested or allocated.
        procs: u32,
        /// Machine size from the header.
        max_nodes: u32,
    },
    /// A job's runtime exceeds the maximum the system allows (`MaxRuntime`).
    RuntimeExceedsMax {
        /// Job id.
        job: u64,
        /// Observed runtime.
        run_time: i64,
        /// Header maximum.
        max_runtime: i64,
    },
    /// A job's used memory exceeds `MaxMemory`.
    MemoryExceedsMax {
        /// Job id.
        job: u64,
        /// Observed memory (KB).
        memory_kb: i64,
        /// Header maximum (KB).
        max_memory: i64,
    },
    /// Average CPU time is larger than wall-clock runtime (and overuse is not allowed).
    CpuExceedsWallclock {
        /// Job id.
        job: u64,
        /// CPU time per processor.
        cpu: i64,
        /// Wall-clock runtime.
        run_time: i64,
    },
    /// The job references a preceding job that does not exist or is not earlier.
    BadPrecedingJob {
        /// Job id.
        job: u64,
        /// Referenced preceding job id.
        preceding: u64,
    },
    /// A think time is present without a preceding job.
    ThinkTimeWithoutPreceding {
        /// Job id.
        job: u64,
    },
    /// A partial-execution record (code 2/3/4) has no matching summary record.
    OrphanPartial {
        /// Job id of the partial record.
        job: u64,
    },
    /// A checkpointed job's partial runtimes do not sum to the summary runtime.
    PartialRuntimeMismatch {
        /// Job id.
        job: u64,
        /// Sum of partial runtimes.
        partial_sum: i64,
        /// Summary runtime.
        summary: i64,
    },
    /// A record has neither requested nor allocated processors.
    MissingProcessors {
        /// Job id.
        job: u64,
    },
    /// A summary record has an unknown runtime and is not cancelled.
    MissingRuntime {
        /// Job id.
        job: u64,
    },
}

/// Outcome of validating a log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// All violations found, in record order.
    pub violations: Vec<Violation>,
    /// Number of records inspected.
    pub records: usize,
}

impl ValidationReport {
    /// True if no violations were found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Count violations of a given discriminant (by matching closure).
    pub fn count_where<F: Fn(&Violation) -> bool>(&self, f: F) -> usize {
        self.violations.iter().filter(|v| f(v)).count()
    }
}

/// Validate a log against the standard's consistency rules.
pub fn validate(log: &SwfLog) -> ValidationReport {
    let mut report = ValidationReport {
        records: log.jobs.len(),
        ..ValidationReport::default()
    };
    let jobs = &log.jobs;
    if jobs.is_empty() {
        return report;
    }

    // Rule: lines sorted by ascending submit time.
    for i in 1..jobs.len() {
        if jobs[i].submit_time < jobs[i - 1].submit_time {
            report
                .violations
                .push(Violation::UnsortedSubmitTimes { index: i });
            break;
        }
    }

    // Rule: the earliest submit time is zero.
    let first = jobs.iter().map(|j| j.submit_time).min().unwrap_or(0);
    if first != 0 {
        report.violations.push(Violation::NonZeroFirstSubmit {
            first_submit: first,
        });
    }

    // Rule: summary job ids are 1..n consecutive.
    let mut expected = 1u64;
    for (i, j) in jobs.iter().enumerate() {
        if j.is_summary() {
            if j.job_id != expected {
                report.violations.push(Violation::NonConsecutiveJobIds {
                    index: i,
                    found: j.job_id,
                    expected,
                });
            }
            expected += 1;
        }
    }

    // Header-bound rules.
    let max_nodes = log.header.max_nodes;
    let max_runtime = log.header.max_runtime;
    let max_memory = log.header.max_memory;
    let allow_overuse = log.header.allow_overuse.unwrap_or(true);

    let mut summary_ids: HashMap<u64, &SwfRecord> = HashMap::new();
    for j in jobs.iter().filter(|j| j.is_summary()) {
        summary_ids.insert(j.job_id, j);
    }

    for j in jobs {
        if let (Some(p), Some(mn)) = (j.procs(), max_nodes) {
            if p > mn {
                report.violations.push(Violation::TooManyProcessors {
                    job: j.job_id,
                    procs: p,
                    max_nodes: mn,
                });
            }
        }
        if let (Some(r), Some(mr)) = (j.run_time, max_runtime) {
            if !allow_overuse && r > mr {
                report.violations.push(Violation::RuntimeExceedsMax {
                    job: j.job_id,
                    run_time: r,
                    max_runtime: mr,
                });
            }
        }
        if let (Some(m), Some(mm)) = (j.used_memory_kb, max_memory) {
            if !allow_overuse && m > mm {
                report.violations.push(Violation::MemoryExceedsMax {
                    job: j.job_id,
                    memory_kb: m,
                    max_memory: mm,
                });
            }
        }
        if let (Some(c), Some(r)) = (j.avg_cpu_time, j.run_time) {
            if c > r {
                report.violations.push(Violation::CpuExceedsWallclock {
                    job: j.job_id,
                    cpu: c,
                    run_time: r,
                });
            }
        }
        if let Some(p) = j.preceding_job {
            match summary_ids.get(&p) {
                None => report.violations.push(Violation::BadPrecedingJob {
                    job: j.job_id,
                    preceding: p,
                }),
                Some(prev) if prev.job_id >= j.job_id && j.is_summary() => {
                    report.violations.push(Violation::BadPrecedingJob {
                        job: j.job_id,
                        preceding: p,
                    })
                }
                _ => {}
            }
        }
        if j.think_time.is_some() && j.preceding_job.is_none() {
            report
                .violations
                .push(Violation::ThinkTimeWithoutPreceding { job: j.job_id });
        }
        if j.is_summary() {
            if j.procs().is_none() {
                report
                    .violations
                    .push(Violation::MissingProcessors { job: j.job_id });
            }
            if j.run_time.is_none()
                && j.status != CompletionStatus::Cancelled
                && j.status != CompletionStatus::Unknown
            {
                report
                    .violations
                    .push(Violation::MissingRuntime { job: j.job_id });
            }
        }
    }

    // Checkpoint chain rules: every partial record needs a summary, and partial
    // runtimes must sum to the summary runtime.
    let mut partial_sums: HashMap<u64, i64> = HashMap::new();
    let mut partial_seen: HashMap<u64, bool> = HashMap::new();
    for j in jobs.iter().filter(|j| !j.is_summary()) {
        partial_seen.insert(j.job_id, true);
        if let Some(r) = j.run_time {
            *partial_sums.entry(j.job_id).or_insert(0) += r;
        }
        if !summary_ids.contains_key(&j.job_id) {
            report
                .violations
                .push(Violation::OrphanPartial { job: j.job_id });
        }
    }
    for (id, sum) in &partial_sums {
        if let Some(summary) = summary_ids.get(id) {
            if let Some(total) = summary.run_time {
                if total != *sum {
                    report.violations.push(Violation::PartialRuntimeMismatch {
                        job: *id,
                        partial_sum: *sum,
                        summary: total,
                    });
                }
            }
        }
    }

    report
}

/// Actions a cleaning pass may take, counted in the [`CleaningReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleaningReport {
    /// Records dropped because they could not be repaired.
    pub dropped: usize,
    /// Whether the records were re-sorted by submit time.
    pub resorted: bool,
    /// Whether the submit times were rebased to start at zero.
    pub rebased: bool,
    /// Whether job ids were renumbered to 1..n.
    pub renumbered: bool,
    /// Number of processor counts clamped to `MaxNodes`.
    pub clamped_procs: usize,
    /// Number of CPU times clamped to the wall-clock runtime.
    pub clamped_cpu: usize,
    /// Number of dangling preceding-job references removed.
    pub dropped_dependencies: usize,
    /// Number of summary records whose missing runtime was filled in (from the CPU
    /// time when known, otherwise zero).
    pub filled_runtimes: usize,
}

/// Clean a log in place so that [`validate`] reports no violations, and report what
/// was changed. Records that cannot be repaired (summary records with no processor
/// count at all) are dropped.
pub fn clean(log: &mut SwfLog) -> CleaningReport {
    let mut report = CleaningReport::default();

    // Drop hopeless records first.
    let before = log.jobs.len();
    log.jobs
        .retain(|j| !(j.is_summary() && j.procs().is_none()));
    // Drop orphan partial records.
    let ids: std::collections::HashSet<u64> = log
        .jobs
        .iter()
        .filter(|j| j.is_summary())
        .map(|j| j.job_id)
        .collect();
    log.jobs
        .retain(|j| j.is_summary() || ids.contains(&j.job_id));
    report.dropped = before - log.jobs.len();

    // Sort and rebase.
    let was_sorted = log
        .jobs
        .windows(2)
        .all(|w| w[0].submit_time <= w[1].submit_time);
    if !was_sorted {
        log.sort_by_submit();
        report.resorted = true;
    }
    if log.first_submit() != 0 {
        log.rebase_times();
        report.rebased = true;
    }

    // Renumber if summary ids are not consecutive from 1.
    let needs_renumber = log
        .jobs
        .iter()
        .filter(|j| j.is_summary())
        .zip(1u64..)
        .any(|(j, expected)| j.job_id != expected);
    if needs_renumber {
        // Every summary record gets a fresh sequential id (this also resolves
        // duplicate ids, which SwfLog::renumber would collapse); partial lines take
        // the new id of the summary that carried their old id, and preceding-job
        // references are remapped or dropped.
        let mut next = 1u64;
        let mut old_to_new: HashMap<u64, u64> = HashMap::new();
        let mut new_ids = vec![0u64; log.jobs.len()];
        for (i, j) in log.jobs.iter().enumerate() {
            if j.is_summary() {
                let id = next;
                next += 1;
                old_to_new.insert(j.job_id, id);
                new_ids[i] = id;
            }
        }
        for (i, j) in log.jobs.iter().enumerate() {
            if !j.is_summary() {
                new_ids[i] = old_to_new.get(&j.job_id).copied().unwrap_or(0);
            }
        }
        for (i, j) in log.jobs.iter_mut().enumerate() {
            if let Some(p) = j.preceding_job {
                j.preceding_job = old_to_new.get(&p).copied();
                if j.preceding_job.is_none() {
                    j.think_time = None;
                    report.dropped_dependencies += 1;
                }
            }
            j.job_id = new_ids[i];
        }
        report.renumbered = true;
    }

    // Clamp per-record values.
    let max_nodes = log.header.max_nodes;
    for j in &mut log.jobs {
        if let Some(mn) = max_nodes {
            if let Some(p) = j.requested_procs {
                if p > mn {
                    j.requested_procs = Some(mn);
                    report.clamped_procs += 1;
                }
            }
            if let Some(p) = j.allocated_procs {
                if p > mn {
                    j.allocated_procs = Some(mn);
                    report.clamped_procs += 1;
                }
            }
        }
        if let (Some(c), Some(r)) = (j.avg_cpu_time, j.run_time) {
            if c > r {
                j.avg_cpu_time = Some(r);
                report.clamped_cpu += 1;
            }
        }
        if j.think_time.is_some() && j.preceding_job.is_none() {
            j.think_time = None;
            report.dropped_dependencies += 1;
        }
        if j.is_summary()
            && j.run_time.is_none()
            && j.status != CompletionStatus::Cancelled
            && j.status != CompletionStatus::Unknown
        {
            j.run_time = Some(j.avg_cpu_time.unwrap_or(0));
            report.filled_runtimes += 1;
        }
    }

    // Drop dependencies pointing at later or missing jobs.
    let summary_ids: std::collections::HashSet<u64> = log
        .jobs
        .iter()
        .filter(|j| j.is_summary())
        .map(|j| j.job_id)
        .collect();
    for j in &mut log.jobs {
        if let Some(p) = j.preceding_job {
            let bad = !summary_ids.contains(&p) || (j.is_summary() && p >= j.job_id);
            if bad {
                j.preceding_job = None;
                j.think_time = None;
                report.dropped_dependencies += 1;
            }
        }
    }

    // Re-derive MaxNodes if the header lacks it, so later validations have a bound.
    if log.header.max_nodes.is_none() {
        let max = log.max_job_procs();
        if max > 0 {
            log.header.max_nodes = Some(max);
        }
    }

    // Header hygiene: make sure the version is stamped.
    if log.header.version.is_none() {
        log.header.version = Some(crate::header::FORMAT_VERSION);
    }

    report
}

/// Validate, and if violations are found clean and re-validate; returns the cleaning
/// report together with the final validation report (which is clean for repairable
/// inputs).
pub fn clean_and_validate(log: &mut SwfLog) -> (CleaningReport, ValidationReport) {
    let initial = validate(log);
    if initial.is_clean() {
        return (CleaningReport::default(), initial);
    }
    let cleaning = clean(log);
    let after = validate(log);
    (cleaning, after)
}

/// Convenience: build a minimal conforming header for a machine of `max_nodes` nodes.
pub fn minimal_header(max_nodes: u32) -> SwfHeader {
    SwfHeader {
        version: Some(crate::header::FORMAT_VERSION),
        max_nodes: Some(max_nodes),
        ..SwfHeader::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SwfRecordBuilder;

    fn conforming_log() -> SwfLog {
        let header = minimal_header(64);
        let jobs = vec![
            SwfRecordBuilder::new(1, 0)
                .wait_time(0)
                .run_time(100)
                .allocated_procs(8)
                .status(CompletionStatus::Completed)
                .build(),
            SwfRecordBuilder::new(2, 10)
                .wait_time(5)
                .run_time(20)
                .allocated_procs(4)
                .status(CompletionStatus::Completed)
                .depends_on(1, 3)
                .build(),
        ];
        SwfLog::new(header, jobs)
    }

    #[test]
    fn conforming_log_is_clean() {
        let report = validate(&conforming_log());
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.records, 2);
    }

    #[test]
    fn detects_unsorted_and_nonzero_start() {
        let mut log = conforming_log();
        log.jobs.swap(0, 1);
        for j in &mut log.jobs {
            j.submit_time += 100;
        }
        let report = validate(&log);
        assert!(report.count_where(|v| matches!(v, Violation::UnsortedSubmitTimes { .. })) == 1);
        assert!(report.count_where(|v| matches!(v, Violation::NonZeroFirstSubmit { .. })) == 1);
    }

    #[test]
    fn detects_nonconsecutive_ids() {
        let mut log = conforming_log();
        log.jobs[1].job_id = 7;
        let report = validate(&log);
        assert_eq!(
            report.count_where(|v| matches!(v, Violation::NonConsecutiveJobIds { .. })),
            1
        );
    }

    #[test]
    fn detects_too_many_processors() {
        let mut log = conforming_log();
        log.jobs[0].allocated_procs = Some(1000);
        let report = validate(&log);
        assert_eq!(
            report.count_where(|v| matches!(v, Violation::TooManyProcessors { .. })),
            1
        );
    }

    #[test]
    fn detects_cpu_exceeding_wallclock() {
        let mut log = conforming_log();
        log.jobs[0].avg_cpu_time = Some(500);
        let report = validate(&log);
        assert_eq!(
            report.count_where(|v| matches!(v, Violation::CpuExceedsWallclock { .. })),
            1
        );
    }

    #[test]
    fn detects_runtime_and_memory_overuse_only_when_disallowed() {
        let mut log = conforming_log();
        log.header.max_runtime = Some(50);
        log.header.max_memory = Some(100);
        log.jobs[0].used_memory_kb = Some(200);
        // Overuse allowed by default => no violations for these rules.
        let report = validate(&log);
        assert_eq!(
            report.count_where(|v| matches!(v, Violation::RuntimeExceedsMax { .. })),
            0
        );
        log.header.allow_overuse = Some(false);
        let report = validate(&log);
        assert_eq!(
            report.count_where(|v| matches!(v, Violation::RuntimeExceedsMax { .. })),
            1
        );
        assert_eq!(
            report.count_where(|v| matches!(v, Violation::MemoryExceedsMax { .. })),
            1
        );
    }

    #[test]
    fn detects_bad_dependencies() {
        let mut log = conforming_log();
        log.jobs[1].preceding_job = Some(99);
        let report = validate(&log);
        assert_eq!(
            report.count_where(|v| matches!(v, Violation::BadPrecedingJob { .. })),
            1
        );
        let mut log2 = conforming_log();
        log2.jobs[0].think_time = Some(10);
        let report2 = validate(&log2);
        assert_eq!(
            report2.count_where(|v| matches!(v, Violation::ThinkTimeWithoutPreceding { .. })),
            1
        );
    }

    #[test]
    fn detects_forward_dependency() {
        let mut log = conforming_log();
        // Job 1 depends on job 2 (which comes later) -- illegal.
        log.jobs[0].preceding_job = Some(2);
        log.jobs[0].think_time = Some(1);
        let report = validate(&log);
        assert_eq!(
            report.count_where(|v| matches!(v, Violation::BadPrecedingJob { .. })),
            1
        );
    }

    #[test]
    fn detects_orphan_partials_and_mismatched_sums() {
        let mut log = conforming_log();
        let mut orphan = SwfRecordBuilder::new(9, 20)
            .run_time(5)
            .allocated_procs(1)
            .build();
        orphan.status = CompletionStatus::PartialContinued;
        log.jobs.push(orphan);
        let report = validate(&log);
        assert_eq!(
            report.count_where(|v| matches!(v, Violation::OrphanPartial { .. })),
            1
        );

        // Now a checkpointed job whose partial runtimes do not add up.
        let mut log2 = conforming_log();
        let mut p1 = SwfRecordBuilder::new(1, 0)
            .run_time(30)
            .allocated_procs(8)
            .build();
        p1.status = CompletionStatus::PartialContinued;
        let mut p2 = SwfRecordBuilder::new(1, 0)
            .run_time(30)
            .allocated_procs(8)
            .build();
        p2.status = CompletionStatus::PartialCompleted;
        log2.jobs.push(p1);
        log2.jobs.push(p2);
        let report2 = validate(&log2);
        assert_eq!(
            report2.count_where(|v| matches!(v, Violation::PartialRuntimeMismatch { .. })),
            1
        );
    }

    #[test]
    fn detects_missing_fields() {
        let mut log = conforming_log();
        log.jobs[0].allocated_procs = None;
        log.jobs[0].requested_procs = None;
        log.jobs[1].run_time = None;
        let report = validate(&log);
        assert_eq!(
            report.count_where(|v| matches!(v, Violation::MissingProcessors { .. })),
            1
        );
        assert_eq!(
            report.count_where(|v| matches!(v, Violation::MissingRuntime { .. })),
            1
        );
    }

    #[test]
    fn clean_repairs_messy_log() {
        let mut log = conforming_log();
        // Make a mess: unsorted, shifted, gap in ids, oversized job, bogus dependency.
        log.jobs.swap(0, 1);
        for j in &mut log.jobs {
            j.submit_time += 500;
        }
        log.jobs[0].job_id = 12;
        log.jobs[1].job_id = 3;
        log.jobs[0].allocated_procs = Some(128);
        log.jobs[0].preceding_job = Some(77);
        log.jobs[0].think_time = Some(4);

        let (cleaning, after) = clean_and_validate(&mut log);
        assert!(after.is_clean(), "{:?}", after.violations);
        assert!(cleaning.resorted);
        assert!(cleaning.rebased);
        assert!(cleaning.renumbered);
        assert!(cleaning.clamped_procs >= 1);
    }

    #[test]
    fn clean_counts_dropped_dependencies() {
        let mut log = conforming_log();
        // Dangling dependency on a job that never exists, with ids already consecutive
        // so the renumber pass is not involved.
        log.jobs[1].preceding_job = Some(42);
        let report = clean(&mut log);
        assert!(report.dropped_dependencies >= 1);
        assert!(validate(&log).is_clean());
    }

    #[test]
    fn clean_drops_hopeless_records() {
        let mut log = conforming_log();
        let hopeless = SwfRecordBuilder::new(3, 20).run_time(10).build(); // no procs at all
        log.jobs.push(hopeless);
        let report = clean(&mut log);
        assert_eq!(report.dropped, 1);
        assert!(validate(&log).is_clean());
    }

    #[test]
    fn clean_is_idempotent() {
        let mut log = conforming_log();
        log.jobs[0].allocated_procs = Some(500);
        clean(&mut log);
        let second = clean(&mut log);
        assert_eq!(second, CleaningReport::default());
    }

    #[test]
    fn clean_on_clean_log_reports_nothing() {
        let mut log = conforming_log();
        let (cleaning, after) = clean_and_validate(&mut log);
        assert_eq!(cleaning, CleaningReport::default());
        assert!(after.is_clean());
    }
}
