//! Parsing of standard workload files.
//!
//! The textual format is deliberately simple (Section 2.3): comment lines start with
//! `;`, header comments use `;Label: value`, and every data line holds exactly 18
//! space separated integers with `-1` for unknown values. The parser offers a strict
//! mode that enforces the format exactly, and a lenient mode that tolerates common
//! deviations found in archive logs (extra whitespace, floating point tokens which
//! are truncated, unknown completion codes).

use crate::error::ParseError;
use crate::log::SwfLog;
use crate::record::{CompletionStatus, SwfRecord, FIELD_COUNT};
use crate::source::{JobSource, SourceMeta};
use std::io::BufRead;

/// Options controlling parser behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseOptions {
    /// In strict mode any deviation from the format is an error. In lenient mode the
    /// parser truncates fractional tokens, accepts unknown completion codes (mapping
    /// them to unknown) and clamps other illegal negatives to unknown.
    pub strict: bool,
    /// If true, lines whose job id is 0 or missing get a sequential id assigned.
    pub assign_missing_ids: bool,
    /// If true, an input with zero data lines is an error.
    pub require_jobs: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            strict: false,
            assign_missing_ids: true,
            require_jobs: false,
        }
    }
}

impl ParseOptions {
    /// Strict parsing: enforce the standard exactly.
    pub fn strict() -> Self {
        ParseOptions {
            strict: true,
            assign_missing_ids: false,
            require_jobs: false,
        }
    }
}

/// Split a line into exactly `N` separator-delimited fields without touching
/// the heap: the hot path of every per-line parser in this crate iterates
/// borrowed `&str` slices into a fixed-size array instead of collecting a
/// vector. Returns `Err(found)` with the actual field count on mismatch.
pub(crate) fn split_exact<'a, const N: usize>(
    mut tokens: impl Iterator<Item = &'a str>,
) -> Result<[&'a str; N], usize> {
    let mut out = [""; N];
    let mut count = 0usize;
    for tok in tokens.by_ref() {
        if count == N {
            return Err(N + 1 + tokens.count());
        }
        out[count] = tok;
        count += 1;
    }
    if count == N {
        Ok(out)
    } else {
        Err(count)
    }
}

/// Parse a single data line (without comments) into a record.
///
/// `line_no` is used only for error reporting. In lenient mode fractional values are
/// truncated towards zero and out-of-range values map to unknown.
///
/// This is the parser's hot path: fields are consumed as borrowed `&str`
/// slices from an ASCII whitespace split, with no per-line heap allocation.
pub fn parse_record_line(
    line: &str,
    line_no: usize,
    opts: &ParseOptions,
) -> Result<SwfRecord, ParseError> {
    let mut raw = [crate::record::UNKNOWN; FIELD_COUNT];
    let mut count = 0usize;
    for (idx, tok) in line.split_ascii_whitespace().enumerate() {
        if idx >= FIELD_COUNT {
            count = idx + 1;
            continue;
        }
        let value = match tok.parse::<i64>() {
            Ok(v) => v,
            Err(_) => {
                // Archive logs occasionally contain floating point seconds.
                match tok.parse::<f64>() {
                    Ok(f) if !opts.strict && f.is_finite() => f.trunc() as i64,
                    _ => {
                        return Err(ParseError::InvalidInteger {
                            line: line_no,
                            field: idx,
                            token: tok.to_string(),
                        })
                    }
                }
            }
        };
        raw[idx] = value;
        count = idx + 1;
    }
    if count != FIELD_COUNT {
        return Err(ParseError::WrongFieldCount {
            line: line_no,
            found: count,
            expected: FIELD_COUNT,
        });
    }
    validate_raw(&raw, line_no, opts)?;
    Ok(SwfRecord::from_raw(&raw))
}

fn validate_raw(
    raw: &[i64; FIELD_COUNT],
    line_no: usize,
    opts: &ParseOptions,
) -> Result<(), ParseError> {
    // Field 1 (job id) must be positive in strict mode.
    if opts.strict && raw[0] < 1 {
        return Err(ParseError::OutOfRange {
            line: line_no,
            field: 0,
            value: raw[0],
            legal: "job number >= 1",
        });
    }
    // Field 2 (submit time) must be non-negative in strict mode (the first submit is 0).
    if opts.strict && raw[1] < 0 {
        return Err(ParseError::OutOfRange {
            line: line_no,
            field: 1,
            value: raw[1],
            legal: "submit time >= 0",
        });
    }
    // Other fields: -1 or non-negative. In strict mode, other negatives are errors.
    if opts.strict {
        for (i, &v) in raw.iter().enumerate().skip(2) {
            if v < -1 {
                return Err(ParseError::OutOfRange {
                    line: line_no,
                    field: i,
                    value: v,
                    legal: ">= -1",
                });
            }
        }
        if CompletionStatus::from_code(raw[10]).is_none() {
            return Err(ParseError::OutOfRange {
                line: line_no,
                field: 10,
                value: raw[10],
                legal: "completion code in {-1,0,1,2,3,4,5}",
            });
        }
    }
    Ok(())
}

/// Classify a line of an SWF file.
enum Line<'a> {
    Blank,
    HeaderLabel { label: &'a str, value: &'a str },
    Comment(&'a str),
    Data(&'a str),
}

fn classify(line: &str) -> Line<'_> {
    let trimmed = line.trim_start();
    if trimmed.is_empty() {
        return Line::Blank;
    }
    if let Some(rest) = trimmed.strip_prefix(';') {
        // `;Label: value` header comment?
        if let Some(colon) = rest.find(':') {
            let label = rest[..colon].trim();
            let value = rest[colon + 1..].trim();
            if !label.is_empty() && !label.contains(char::is_whitespace) {
                return Line::HeaderLabel { label, value };
            }
        }
        return Line::Comment(rest.trim());
    }
    Line::Data(line)
}

/// The line-by-line parsing state machine shared by the one-shot parsers and
/// the incremental [`RecordIter`]: classifies each line, folds header comments
/// into the [`crate::header::SwfHeader`] carried by a [`SourceMeta`], and
/// turns data lines into records.
struct LineParser {
    opts: ParseOptions,
    meta: SourceMeta,
    data_lines: usize,
}

impl LineParser {
    fn new(opts: ParseOptions, name: String) -> Self {
        LineParser {
            opts,
            meta: SourceMeta::named(name),
            data_lines: 0,
        }
    }

    /// Feed one input line; `Ok(Some(record))` for data lines, `Ok(None)` for
    /// header/comment/blank lines.
    fn feed(&mut self, line: &str, line_no: usize) -> Result<Option<SwfRecord>, ParseError> {
        match classify(line) {
            Line::Blank => Ok(None),
            Line::HeaderLabel { label, value } => {
                let known = self.meta.header.apply(label, value);
                if !known && self.opts.strict && self.data_lines == 0 {
                    return Err(ParseError::UnknownHeaderLabel {
                        line: line_no,
                        label: label.to_string(),
                    });
                }
                Ok(None)
            }
            Line::Comment(text) => {
                self.meta.header.add_free_comment(text);
                Ok(None)
            }
            Line::Data(text) => {
                self.data_lines += 1;
                let mut rec = parse_record_line(text, line_no, &self.opts)?;
                if rec.job_id == 0 && self.opts.assign_missing_ids {
                    rec.job_id = self.data_lines as u64;
                }
                Ok(Some(rec))
            }
        }
    }

    /// The end-of-input check: an input with zero data lines is an error when
    /// the options require jobs.
    fn finish(&self) -> Result<(), ParseError> {
        if self.opts.require_jobs && self.data_lines == 0 {
            return Err(ParseError::EmptyLog);
        }
        Ok(())
    }
}

/// A bounded-memory incremental SWF parser: reads one line at a time from any
/// [`BufRead`] and yields records as they are parsed, never holding more than
/// the current line in memory.
///
/// `RecordIter` is the streaming half of the parser ([`parse_str`] and
/// [`parse_reader`] are thin collecting wrappers over it) and the file-backed
/// implementation of [`JobSource`]: `psbench stats` profiles multi-million-job
/// archive logs through it in O(chunk) memory. Header comments are folded into
/// [`JobSource::meta`] as they are encountered, so the header is complete once
/// the stream is drained. After the first error the iterator is fused and
/// yields nothing further.
///
/// ```
/// use psbench_swf::prelude::*;
///
/// let text = ";MaxNodes: 64\n1 0 5 100 16 -1 -1 16 200 -1 1 1 1 1 1 1 -1 -1\n";
/// let mut records = RecordIter::new(text.as_bytes(), ParseOptions::default());
/// let first = records.next_record().unwrap().unwrap();
/// assert_eq!(first.job_id, 1);
/// assert_eq!(records.meta().header.max_nodes, Some(64));
/// assert!(records.next_record().is_none());
/// ```
pub struct RecordIter<R> {
    reader: R,
    parser: LineParser,
    line_no: usize,
    buf: String,
    done: bool,
}

impl<R: BufRead> RecordIter<R> {
    /// Incrementally parse `reader` with the given options.
    pub fn new(reader: R, opts: ParseOptions) -> Self {
        RecordIter {
            reader,
            parser: LineParser::new(opts, "swf".to_string()),
            line_no: 0,
            buf: String::new(),
            done: false,
        }
    }

    /// Set the display name carried in the stream's [`SourceMeta`].
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.parser.meta.name = name.into();
        self
    }

    /// 1-based number of the last line read (0 before the first read), for
    /// progress reporting on long streams.
    pub fn line_no(&self) -> usize {
        self.line_no
    }

    fn pull(&mut self) -> Option<Result<SwfRecord, ParseError>> {
        if self.done {
            return None;
        }
        loop {
            self.buf.clear();
            let n = match self.reader.read_line(&mut self.buf) {
                Ok(n) => n,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e.into()));
                }
            };
            if n == 0 {
                self.done = true;
                return match self.parser.finish() {
                    Ok(()) => None,
                    Err(e) => Some(Err(e)),
                };
            }
            self.line_no += 1;
            match self.parser.feed(&self.buf, self.line_no) {
                Ok(Some(rec)) => return Some(Ok(rec)),
                Ok(None) => continue,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

impl<R: BufRead> JobSource for RecordIter<R> {
    fn meta(&self) -> &SourceMeta {
        &self.parser.meta
    }

    fn next_record(&mut self) -> Option<Result<SwfRecord, ParseError>> {
        self.pull()
    }
}

impl<R: BufRead> Iterator for RecordIter<R> {
    type Item = Result<SwfRecord, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.pull()
    }
}

/// Parse a complete SWF file from a string.
///
/// A thin collecting wrapper over the same state machine that drives
/// [`RecordIter`]; the resulting [`SwfLog`] is simply the materialized sink of
/// the record stream.
pub fn parse_str(input: &str, opts: &ParseOptions) -> Result<SwfLog, ParseError> {
    let mut parser = LineParser::new(*opts, String::new());
    let mut jobs: Vec<SwfRecord> = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if let Some(rec) = parser.feed(line, i + 1)? {
            jobs.push(rec);
        }
    }
    parser.finish()?;
    Ok(SwfLog::new(parser.meta.header, jobs))
}

/// Parse a complete SWF file from any buffered reader, streaming line by line
/// through [`RecordIter`] (the input is never buffered whole).
pub fn parse_reader<R: BufRead>(reader: R, opts: &ParseOptions) -> Result<SwfLog, ParseError> {
    RecordIter::new(reader, *opts).collect_log()
}

/// Convenience: parse with default (lenient) options.
pub fn parse(input: &str) -> Result<SwfLog, ParseError> {
    parse_str(input, &ParseOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::UNKNOWN;

    const SAMPLE: &str = "\
;Computer: iPSC/860
;MaxNodes: 128
;Version: 2
;Note: runtimes are wallclock
; free-form comment
1 0 10 100 16 95 -1 16 120 -1 1 1 1 1 1 1 -1 -1
2 30 -1 50 8 -1 -1 8 60 -1 0 2 1 2 0 1 -1 -1
3 60 5 200 32 -1 -1 32 300 -1 1 1 1 1 1 1 1 25
";

    #[test]
    fn parses_sample_log() {
        let log = parse(SAMPLE).unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(log.header.computer.as_deref(), Some("iPSC/860"));
        assert_eq!(log.header.max_nodes, Some(128));
        assert_eq!(log.header.version, Some(2));
        assert_eq!(log.header.notes.len(), 1);
        assert_eq!(log.jobs[0].job_id, 1);
        assert_eq!(log.jobs[0].wait_time, Some(10));
        assert_eq!(log.jobs[0].run_time, Some(100));
        assert_eq!(log.jobs[0].allocated_procs, Some(16));
        assert_eq!(log.jobs[1].wait_time, None);
        assert_eq!(log.jobs[1].queue_id, Some(0));
        assert_eq!(log.jobs[2].preceding_job, Some(1));
        assert_eq!(log.jobs[2].think_time, Some(25));
    }

    #[test]
    fn strict_rejects_wrong_field_count() {
        let bad = "1 0 10 100 16 95 -1 16\n";
        let err = parse_str(bad, &ParseOptions::strict()).unwrap_err();
        assert!(matches!(err, ParseError::WrongFieldCount { found: 8, .. }));
    }

    #[test]
    fn strict_rejects_non_integer() {
        let bad = "1 0 10 1e2 16 95 -1 16 120 -1 1 1 1 1 1 1 -1 -1\n";
        let err = parse_str(bad, &ParseOptions::strict()).unwrap_err();
        assert!(matches!(err, ParseError::InvalidInteger { field: 3, .. }));
    }

    #[test]
    fn lenient_truncates_floats() {
        let line = "1 0 10 100.7 16 95 -1 16 120 -1 1 1 1 1 1 1 -1 -1";
        let rec = parse_record_line(line, 1, &ParseOptions::default()).unwrap();
        assert_eq!(rec.run_time, Some(100));
    }

    #[test]
    fn strict_rejects_bad_completion_code() {
        let bad = "1 0 10 100 16 95 -1 16 120 -1 9 1 1 1 1 1 -1 -1\n";
        let err = parse_str(bad, &ParseOptions::strict()).unwrap_err();
        assert!(matches!(err, ParseError::OutOfRange { field: 10, .. }));
        // lenient maps to unknown
        let log = parse(bad).unwrap();
        assert_eq!(log.jobs[0].status, CompletionStatus::Unknown);
    }

    #[test]
    fn strict_rejects_negative_submit() {
        let bad = "1 -5 10 100 16 95 -1 16 120 -1 1 1 1 1 1 1 -1 -1\n";
        let err = parse_str(bad, &ParseOptions::strict()).unwrap_err();
        assert!(matches!(err, ParseError::OutOfRange { field: 1, .. }));
    }

    #[test]
    fn strict_rejects_zero_job_id() {
        let bad = "0 5 10 100 16 95 -1 16 120 -1 1 1 1 1 1 1 -1 -1\n";
        let err = parse_str(bad, &ParseOptions::strict()).unwrap_err();
        assert!(matches!(err, ParseError::OutOfRange { field: 0, .. }));
    }

    #[test]
    fn lenient_assigns_missing_ids() {
        let input = "0 0 -1 10 1 -1 -1 1 -1 -1 1 1 1 1 1 1 -1 -1\n0 5 -1 10 1 -1 -1 1 -1 -1 1 1 1 1 1 1 -1 -1\n";
        let log = parse(input).unwrap();
        assert_eq!(log.jobs[0].job_id, 1);
        assert_eq!(log.jobs[1].job_id, 2);
    }

    #[test]
    fn strict_rejects_extra_fields() {
        let bad = "1 0 10 100 16 95 -1 16 120 -1 1 1 1 1 1 1 -1 -1 99\n";
        let err = parse_str(bad, &ParseOptions::strict()).unwrap_err();
        assert!(matches!(err, ParseError::WrongFieldCount { found: 19, .. }));
    }

    #[test]
    fn unknown_header_label_lenient_vs_strict() {
        let input = ";Weather: sunny\n1 0 10 100 16 95 -1 16 120 -1 1 1 1 1 1 1 -1 -1\n";
        let log = parse(input).unwrap();
        assert!(log
            .header
            .raw_lines
            .iter()
            .any(|l| l.label.as_deref() == Some("Weather")));
        let err = parse_str(input, &ParseOptions::strict()).unwrap_err();
        assert!(matches!(err, ParseError::UnknownHeaderLabel { .. }));
    }

    #[test]
    fn blank_lines_and_comments_ignored() {
        let input = "\n; a comment\n\n1 0 -1 10 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1\n\n";
        let log = parse(input).unwrap();
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn require_jobs_flags_empty() {
        let opts = ParseOptions {
            require_jobs: true,
            ..ParseOptions::default()
        };
        let err = parse_str(";Computer: x\n", &opts).unwrap_err();
        assert_eq!(err, ParseError::EmptyLog);
    }

    #[test]
    fn parse_reader_matches_parse_str() {
        let from_str = parse(SAMPLE).unwrap();
        let from_reader =
            parse_reader(std::io::Cursor::new(SAMPLE), &ParseOptions::default()).unwrap();
        assert_eq!(from_str, from_reader);
    }

    #[test]
    fn unknown_sentinel_maps_to_none_everywhere() {
        let line = "5 9 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1";
        let rec = parse_record_line(line, 1, &ParseOptions::strict()).unwrap();
        assert_eq!(rec.job_id, 5);
        assert_eq!(rec.submit_time, 9);
        assert_eq!(rec.to_raw()[2..], [UNKNOWN; 16]);
    }

    #[test]
    fn split_exact_counts_fields_without_allocating() {
        assert_eq!(
            split_exact::<3>("a b c".split_ascii_whitespace()),
            Ok(["a", "b", "c"])
        );
        assert_eq!(split_exact::<3>("a b".split_ascii_whitespace()), Err(2));
        assert_eq!(split_exact::<2>("a b c d".split_ascii_whitespace()), Err(4));
        assert_eq!(split_exact::<2>("x|y".split('|')), Ok(["x", "y"]));
    }

    #[test]
    fn record_iter_streams_the_sample_identically_to_parse_str() {
        let log = parse(SAMPLE).unwrap();
        let mut iter = RecordIter::new(SAMPLE.as_bytes(), ParseOptions::default());
        for expected in &log.jobs {
            let got = iter.next_record().unwrap().unwrap();
            assert_eq!(&got, expected);
        }
        assert!(iter.next_record().is_none());
        // The header is complete once the stream is drained.
        assert_eq!(iter.meta().header, log.header);
        assert_eq!(iter.line_no(), SAMPLE.lines().count());
    }

    #[test]
    fn record_iter_collects_into_the_same_log() {
        let collected = RecordIter::new(SAMPLE.as_bytes(), ParseOptions::default())
            .with_name("sample")
            .collect_log()
            .unwrap();
        assert_eq!(collected, parse(SAMPLE).unwrap());
    }

    #[test]
    fn record_iter_is_fused_after_an_error() {
        let bad = "1 0 10 100 16 95 -1 16\n2 0 -1 10 1 -1 -1 1 -1 -1 1 1 1 1 1 1 -1 -1\n";
        let mut iter = RecordIter::new(bad.as_bytes(), ParseOptions::strict());
        let err = iter.next_record().unwrap().unwrap_err();
        assert!(matches!(err, ParseError::WrongFieldCount { line: 1, .. }));
        assert!(iter.next_record().is_none());
        assert!(iter.next_record().is_none());
    }

    #[test]
    fn record_iter_reports_empty_log_when_jobs_required() {
        let opts = ParseOptions {
            require_jobs: true,
            ..ParseOptions::default()
        };
        let mut iter = RecordIter::new(";Computer: x\n".as_bytes(), opts);
        assert_eq!(
            iter.next_record().unwrap().unwrap_err(),
            ParseError::EmptyLog
        );
        assert!(iter.next_record().is_none());
    }

    #[test]
    fn record_iter_handles_crlf_line_endings() {
        let crlf = SAMPLE.replace('\n', "\r\n");
        let a = RecordIter::new(crlf.as_bytes(), ParseOptions::default())
            .collect_log()
            .unwrap();
        let b = parse(SAMPLE).unwrap();
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.header.max_nodes, b.header.max_nodes);
    }

    #[test]
    fn record_iter_assigns_missing_ids_like_parse_str() {
        let input = "0 0 -1 10 1 -1 -1 1 -1 -1 1 1 1 1 1 1 -1 -1\n0 5 -1 10 1 -1 -1 1 -1 -1 1 1 1 1 1 1 -1 -1\n";
        let ids: Vec<u64> = RecordIter::new(input.as_bytes(), ParseOptions::default())
            .map(|r| r.unwrap().job_id)
            .collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn header_comment_without_space_after_colon() {
        let input = ";MaxNodes:64\n1 0 -1 10 1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1\n";
        let log = parse(input).unwrap();
        assert_eq!(log.header.max_nodes, Some(64));
    }
}
