//! Anonymization / densification of identifier fields.
//!
//! The standard requires that "users and executables are given by incremental
//! numbers", which hides sensitive information and makes grouping easy. Raw logs
//! carry arbitrary strings or sparse numeric ids; this module maps them onto dense
//! natural numbers (1..n) in order of first appearance.

use crate::log::SwfLog;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A mapping from original identifiers (as strings) to dense ids, in order of first
/// appearance. The same structure serves users, groups, executables, queues and
/// partitions.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdMap {
    forward: HashMap<String, u32>,
    /// Original identifiers indexed by `dense_id - 1`.
    pub originals: Vec<String>,
}

impl IdMap {
    /// Create an empty mapping.
    pub fn new() -> Self {
        IdMap::default()
    }

    /// Map an original identifier to its dense id, assigning the next id on first sight.
    pub fn map(&mut self, original: &str) -> u32 {
        if let Some(&id) = self.forward.get(original) {
            return id;
        }
        let id = self.originals.len() as u32 + 1;
        self.originals.push(original.to_string());
        self.forward.insert(original.to_string(), id);
        id
    }

    /// Look up an already assigned id without inserting.
    pub fn get(&self, original: &str) -> Option<u32> {
        self.forward.get(original).copied()
    }

    /// The original identifier for a dense id, if assigned.
    pub fn original(&self, dense: u32) -> Option<&str> {
        if dense == 0 {
            return None;
        }
        self.originals.get(dense as usize - 1).map(|s| s.as_str())
    }

    /// Number of distinct identifiers seen.
    pub fn len(&self) -> usize {
        self.originals.len()
    }

    /// True if no identifiers have been mapped yet.
    pub fn is_empty(&self) -> bool {
        self.originals.is_empty()
    }
}

/// The complete set of identifier mappings produced while anonymizing one log.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnonymizationKey {
    /// Mapping for user names / ids.
    pub users: IdMap,
    /// Mapping for group names / ids.
    pub groups: IdMap,
    /// Mapping for executable names.
    pub executables: IdMap,
    /// Mapping for queue names (queue 0 = interactive is preserved as-is).
    pub queues: IdMap,
    /// Mapping for partition names.
    pub partitions: IdMap,
}

/// Densify the numeric identifier fields of an already-parsed SWF log so that users,
/// groups, executables, queues (other than the interactive queue 0) and partitions
/// are numbered 1..n in order of first appearance. Returns the key that allows
/// reversing the mapping.
pub fn densify_ids(log: &mut SwfLog) -> AnonymizationKey {
    let mut key = AnonymizationKey::default();
    for j in &mut log.jobs {
        if let Some(u) = j.user_id {
            j.user_id = Some(key.users.map(&u.to_string()));
        }
        if let Some(g) = j.group_id {
            j.group_id = Some(key.groups.map(&g.to_string()));
        }
        if let Some(e) = j.executable_id {
            j.executable_id = Some(key.executables.map(&e.to_string()));
        }
        if let Some(q) = j.queue_id {
            // Queue 0 denotes interactive jobs by convention and keeps its meaning.
            if q != 0 {
                j.queue_id = Some(key.queues.map(&q.to_string()));
            }
        }
        if let Some(p) = j.partition_id {
            j.partition_id = Some(key.partitions.map(&p.to_string()));
        }
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::SwfHeader;
    use crate::record::SwfRecordBuilder;

    #[test]
    fn idmap_assigns_in_order_of_first_appearance() {
        let mut m = IdMap::new();
        assert_eq!(m.map("walfredo"), 1);
        assert_eq!(m.map("dror"), 2);
        assert_eq!(m.map("walfredo"), 1);
        assert_eq!(m.map("steve"), 3);
        assert_eq!(m.len(), 3);
        assert_eq!(m.original(2), Some("dror"));
        assert_eq!(m.original(0), None);
        assert_eq!(m.original(9), None);
        assert_eq!(m.get("dror"), Some(2));
        assert_eq!(m.get("nobody"), None);
        assert!(!m.is_empty());
    }

    #[test]
    fn densify_renumbers_sparse_ids() {
        let jobs = vec![
            SwfRecordBuilder::new(1, 0)
                .user_id(1034)
                .group_id(55)
                .executable_id(900)
                .queue_id(7)
                .partition_id(3)
                .build(),
            SwfRecordBuilder::new(2, 1)
                .user_id(2001)
                .group_id(55)
                .executable_id(901)
                .queue_id(0)
                .partition_id(3)
                .build(),
            SwfRecordBuilder::new(3, 2).user_id(1034).build(),
        ];
        let mut log = SwfLog::new(SwfHeader::default(), jobs);
        let key = densify_ids(&mut log);
        assert_eq!(log.jobs[0].user_id, Some(1));
        assert_eq!(log.jobs[1].user_id, Some(2));
        assert_eq!(log.jobs[2].user_id, Some(1));
        assert_eq!(log.jobs[0].group_id, Some(1));
        assert_eq!(log.jobs[1].group_id, Some(1));
        assert_eq!(log.jobs[0].executable_id, Some(1));
        assert_eq!(log.jobs[1].executable_id, Some(2));
        // queue 0 (interactive) untouched, queue 7 becomes 1
        assert_eq!(log.jobs[0].queue_id, Some(1));
        assert_eq!(log.jobs[1].queue_id, Some(0));
        assert_eq!(log.jobs[0].partition_id, Some(1));
        assert_eq!(key.users.original(1), Some("1034"));
        assert_eq!(key.users.original(2), Some("2001"));
        assert_eq!(key.users.len(), 2);
        assert_eq!(key.groups.len(), 1);
    }

    #[test]
    fn densify_leaves_unknown_fields_alone() {
        let jobs = vec![SwfRecordBuilder::new(1, 0).build()];
        let mut log = SwfLog::new(SwfHeader::default(), jobs);
        let key = densify_ids(&mut log);
        assert_eq!(log.jobs[0].user_id, None);
        assert!(key.users.is_empty());
    }

    #[test]
    fn densify_is_stable_under_repeat() {
        let jobs = vec![
            SwfRecordBuilder::new(1, 0).user_id(500).build(),
            SwfRecordBuilder::new(2, 1).user_id(600).build(),
        ];
        let mut log = SwfLog::new(SwfHeader::default(), jobs);
        densify_ids(&mut log);
        let snapshot = log.clone();
        densify_ids(&mut log);
        assert_eq!(log, snapshot);
    }
}
