//! # psbench-analyze — workload characterization and model validation
//!
//! The source paper's standards only matter if a workload can be *measured*
//! and a synthetic model can be *validated* against a real log. This crate
//! provides both halves:
//!
//! * [`sketch`] — mergeable streaming accumulators with **integer-exact**
//!   state: moments, fixed-shape logarithmic histograms, and correlation
//!   sums. Merging chunk sketches is associative bit for bit, so an analysis
//!   pass can run chunked in parallel (e.g. via
//!   `psbench_core::harness::parallel_map`) and still produce byte-identical
//!   reports to a sequential single pass.
//! * [`profile`] — the single-pass [`profile::WorkloadProfile`] over an SWF
//!   job stream: marginal distributions of interarrival time, runtime, job
//!   size and runtime-estimate accuracy; diurnal and weekly arrival cycles;
//!   per-user / per-group aggregates; the size–runtime correlation.
//! * [`distance`] — Kolmogorov–Smirnov and earth-mover's distances between
//!   marginal histograms, rolled up into a [`distance::FidelityReport`] that
//!   scores how closely a generated workload matches a reference trace.
//! * [`report`] — deterministic markdown / CSV / JSON rendering of profiles
//!   and fidelity reports.
//!
//! ## Example
//!
//! ```
//! use psbench_analyze::prelude::*;
//! use psbench_workload::{Lublin99, WorkloadModel};
//!
//! let reference = Lublin99::default().generate(1000, 1);
//! let candidate = Lublin99::default().generate(1000, 2);
//! let ref_profile = WorkloadProfile::of_log("reference", &reference);
//! let cand_profile = WorkloadProfile::of_log("candidate", &candidate);
//!
//! // Same model, different seed: the marginals should match closely.
//! let fidelity = FidelityReport::compare(&ref_profile, &cand_profile);
//! assert!(fidelity.mean_ks() < 0.2);
//! println!("{}", render_fidelity(&fidelity, Format::Markdown));
//! ```

#![warn(missing_docs)]

/// Version stamp of the analysis pass.
///
/// Folded into every cached-profile key of the artifact store
/// (`psbench-store`): bump it whenever [`profile::WorkloadProfile`] gains,
/// loses, or re-defines an accumulator, so stale cached profiles are never
/// returned — they simply stop being addressable and are reclaimed by
/// `store gc`.
pub const ANALYZE_VERSION: u32 = 1;

pub mod distance;
pub mod profile;
pub mod report;
pub mod sketch;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::distance::{
        ad_counts, ad_distance, chi_square, chi_square_counts, emd, joint_chi_square, ks_distance,
        FidelityReport, MarginalDistance,
    };
    pub use crate::profile::{profile_chunked, GroupStats, WorkloadProfile, ACCURACY_SCALE};
    pub use crate::report::{
        fmt_num, json_escape, json_num, render_fidelity, render_profile, Format,
    };
    pub use crate::sketch::{
        Correlation, Histogram, Histogram2, MarginalSketch, Moments, HISTOGRAM_BINS, JOINT_BINS,
    };
}

pub use prelude::*;
