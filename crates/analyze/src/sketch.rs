//! Mergeable, exactly-associative streaming sketches.
//!
//! Every accumulator in this module keeps **integer** state only (counts and
//! `i128` power sums), so merging chunk sketches is associative *bit for bit*:
//! integer addition has no rounding, and the floating point summaries (mean,
//! CV, quantiles) are derived from the exact state only when queried. That is
//! what lets a trace analysis pass run chunked in parallel and still produce
//! byte-identical reports to a sequential single pass.

use serde::{Deserialize, Serialize};

/// Exact running moments of an integer-valued sample: count, sum, sum of
/// squares, minimum and maximum.
///
/// All state is integral, so [`Moments::merge`] is associative and commutative
/// with exact equality — not just approximately. `i128` power sums hold
/// 2^63-sized values squared across more jobs than any trace contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Moments {
    /// Number of observations.
    pub count: u64,
    /// Exact sum of observations.
    pub sum: i128,
    /// Exact sum of squared observations.
    pub sum_sq: i128,
    /// Smallest observation (`i64::MAX` when empty).
    pub min: i64,
    /// Largest observation (`i64::MIN` when empty).
    pub max: i64,
}

impl Default for Moments {
    fn default() -> Self {
        Moments {
            count: 0,
            sum: 0,
            sum_sq: 0,
            min: i64::MAX,
            max: i64::MIN,
        }
    }
}

impl Moments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Moments::default()
    }

    /// Record one observation.
    ///
    /// The sum of squares saturates at `i128::MAX` rather than overflowing;
    /// since squared terms are non-negative, saturating addition is still
    /// exactly associative (`min(Σ, MAX)` whatever the grouping).
    pub fn add(&mut self, v: i64) {
        self.count += 1;
        self.sum += v as i128;
        self.sum_sq = self.sum_sq.saturating_add((v as i128) * (v as i128));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another accumulator into this one. Exactly associative.
    pub fn merge(&mut self, other: &Moments) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq = self.sum_sq.saturating_add(other.sum_sq);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Population variance (0 when empty).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean = self.mean();
        (self.sum_sq as f64 / n - mean * mean).max(0.0)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (std dev / mean; 0 when the mean is 0).
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m.abs() > 1e-300 {
            self.std_dev() / m
        } else {
            0.0
        }
    }
}

/// Sub-bins per octave (power of two) of the logarithmic histogram.
const SUBBINS: u64 = 4;
/// Highest octave: positive `i64` values span octaves 0..=62.
const OCTAVES: u64 = 63;
/// Number of bins: one underflow bin for values ≤ 0 plus 4 per octave.
pub const HISTOGRAM_BINS: usize = (1 + OCTAVES * SUBBINS) as usize;

/// A fixed-shape logarithmic histogram over `i64` observations.
///
/// Bin 0 collects values ≤ 0; every octave `[2^k, 2^(k+1))` is split into four
/// sub-bins with boundaries computed purely in integer arithmetic, so the bin
/// index of a value is deterministic across platforms. Because the binning is
/// fixed (no data-dependent splits), merging two histograms is element-wise
/// `u64` addition: exactly associative, ideal for chunked parallel analysis,
/// and two histograms are directly comparable bin by bin for KS/EMD distances.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; HISTOGRAM_BINS],
            total: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bin index of a value. Integer arithmetic only.
    pub fn bin_of(v: i64) -> usize {
        if v <= 0 {
            return 0;
        }
        let v = v as u64;
        let octave = 63 - v.leading_zeros() as u64; // 2^octave <= v < 2^(octave+1)
        let base = 1u64 << octave;
        // Which quarter of the octave the value falls in: ((v-base)*4)/base,
        // computed without overflow since v-base < base <= 2^62.
        let sub = ((v - base) * SUBBINS) >> octave;
        (1 + octave * SUBBINS + sub) as usize
    }

    /// The inclusive lower edge of a bin, as the quantity's value.
    pub fn bin_lower(bin: usize) -> f64 {
        if bin == 0 {
            return 0.0;
        }
        let octave = (bin as u64 - 1) / SUBBINS;
        let sub = (bin as u64 - 1) % SUBBINS;
        let base = 2f64.powi(octave as i32);
        base + base * sub as f64 / SUBBINS as f64
    }

    /// A representative value for a bin: the midpoint of its edges (0 for the
    /// underflow bin).
    pub fn bin_value(bin: usize) -> f64 {
        if bin == 0 {
            0.0
        } else {
            (Self::bin_lower(bin) + Self::bin_lower(bin + 1)) / 2.0
        }
    }

    /// Rebuild a histogram from the exact per-bin counts that [`Histogram::counts`]
    /// exposes. The total is re-derived from the counts (the two are kept in
    /// lock-step by every mutator), so `from_counts(h.counts().to_vec()) == h`
    /// holds bit for bit — this is the persistence constructor used by the
    /// artifact store's exact codec.
    ///
    /// # Panics
    /// Panics if `counts` does not have exactly [`HISTOGRAM_BINS`] entries.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        assert_eq!(counts.len(), HISTOGRAM_BINS, "histogram shape is fixed");
        let total = counts.iter().sum();
        Histogram { counts, total }
    }

    /// Record one observation.
    pub fn add(&mut self, v: i64) {
        self.counts[Self::bin_of(v)] += 1;
        self.total += 1;
    }

    /// Fold another histogram into this one. Exactly associative.
    pub fn merge(&mut self, other: &Histogram) {
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.total += other.total;
    }

    /// Number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// True if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The `q`-quantile (q in `[0,1]`) estimated from the bin representative
    /// values. Returns 0 for an empty histogram. Monotone in `q` by
    /// construction (a cumulative walk over non-negative counts).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (bin, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Self::bin_value(bin);
            }
        }
        Self::bin_value(HISTOGRAM_BINS - 1)
    }
}

/// Octave (power-of-two) bins per axis of the joint histogram: bin 0 for
/// values ≤ 0, one bin per octave of a positive `i64`.
pub const JOINT_BINS: usize = 64;

/// A fixed-shape two-dimensional logarithmic histogram over pairs of `i64`
/// observations — the joint view (e.g. job size × runtime) the per-axis
/// marginals cannot capture: two workloads can match every marginal and still
/// pair sizes with runtimes completely differently.
///
/// Each axis uses whole-octave bins (bin 0 for values ≤ 0, then one bin per
/// power of two), so the `64 × 64` grid stays compact enough to carry in
/// every profile while still resolving the size–runtime structure. Binning is
/// fixed and integer-only, so merging is element-wise `u64` addition: exactly
/// associative, which keeps chunked parallel profiling bit-identical to the
/// sequential pass. Storage is allocated lazily on the first observation, and
/// a never-touched histogram equals a merged-from-empty one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Histogram2 {
    /// Row-major `JOINT_BINS × JOINT_BINS` counts (`x` bin selects the row);
    /// empty until the first observation.
    counts: Vec<u64>,
    total: u64,
}

impl Histogram2 {
    /// An empty joint histogram.
    pub fn new() -> Self {
        Histogram2::default()
    }

    /// The octave bin of one axis value. Integer arithmetic only.
    pub fn axis_bin(v: i64) -> usize {
        if v <= 0 {
            0
        } else {
            64 - (v as u64).leading_zeros() as usize
        }
    }

    /// Rebuild a joint histogram from the exact flattened counts that
    /// [`Histogram2::counts`] exposes. An empty vector reconstructs the
    /// never-allocated state, so the lazily-allocated/never-touched distinction
    /// survives a persistence round trip bit for bit.
    ///
    /// # Panics
    /// Panics if `counts` is neither empty nor exactly
    /// [`JOINT_BINS`]` × `[`JOINT_BINS`] entries long.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        assert!(
            counts.is_empty() || counts.len() == JOINT_BINS * JOINT_BINS,
            "joint histogram shape is fixed"
        );
        let total = counts.iter().sum();
        Histogram2 { counts, total }
    }

    /// Record one `(x, y)` observation.
    pub fn add(&mut self, x: i64, y: i64) {
        if self.counts.is_empty() {
            self.counts = vec![0; JOINT_BINS * JOINT_BINS];
        }
        self.counts[Self::axis_bin(x) * JOINT_BINS + Self::axis_bin(y)] += 1;
        self.total += 1;
    }

    /// Fold another joint histogram into this one. Exactly associative.
    pub fn merge(&mut self, other: &Histogram2) {
        if other.counts.is_empty() {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; JOINT_BINS * JOINT_BINS];
        }
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.total += other.total;
    }

    /// Number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// True if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The flattened cell counts (empty slice until the first observation);
    /// two joint histograms are directly comparable cell by cell.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

/// A marginal distribution sketch: exact moments plus the log-binned histogram
/// of one quantity (interarrival, runtime, ...). Merging is exactly associative
/// because both members are.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MarginalSketch {
    /// Exact moment accumulator.
    pub moments: Moments,
    /// Log-binned histogram for quantiles and distribution distances.
    pub histogram: Histogram,
}

impl MarginalSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        MarginalSketch::default()
    }

    /// Record one observation in both members.
    pub fn add(&mut self, v: i64) {
        self.moments.add(v);
        self.histogram.add(v);
    }

    /// Fold another sketch into this one.
    pub fn merge(&mut self, other: &MarginalSketch) {
        self.moments.merge(&other.moments);
        self.histogram.merge(&other.histogram);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.moments.count
    }
}

/// Exact accumulator for the Pearson correlation of two integer-valued
/// quantities (e.g. job size and runtime). Keeps `i128` cross sums, so merges
/// are exactly associative; the coefficient is derived only when queried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Correlation {
    /// Number of (x, y) pairs.
    pub count: u64,
    sum_x: i128,
    sum_y: i128,
    sum_xx: i128,
    sum_yy: i128,
    sum_xy: i128,
}

impl Correlation {
    /// An empty accumulator.
    pub fn new() -> Self {
        Correlation::default()
    }

    /// The exact internal state `(Σx, Σy, Σx², Σy², Σxy)` alongside the pair
    /// count (in [`Correlation::count`]); the persistence accessor of the
    /// artifact store's exact codec.
    pub fn sums(&self) -> [i128; 5] {
        [
            self.sum_x,
            self.sum_y,
            self.sum_xx,
            self.sum_yy,
            self.sum_xy,
        ]
    }

    /// Rebuild an accumulator from a pair count and the exact sums that
    /// [`Correlation::sums`] exposes; `from_sums(c.count, c.sums()) == c`
    /// holds bit for bit.
    pub fn from_sums(count: u64, sums: [i128; 5]) -> Self {
        Correlation {
            count,
            sum_x: sums[0],
            sum_y: sums[1],
            sum_xx: sums[2],
            sum_yy: sums[3],
            sum_xy: sums[4],
        }
    }

    /// Record one (x, y) pair.
    pub fn add(&mut self, x: i64, y: i64) {
        self.count += 1;
        let (x, y) = (x as i128, y as i128);
        self.sum_x += x;
        self.sum_y += y;
        self.sum_xx += x * x;
        self.sum_yy += y * y;
        self.sum_xy += x * y;
    }

    /// Fold another accumulator into this one. Exactly associative.
    pub fn merge(&mut self, other: &Correlation) {
        self.count += other.count;
        self.sum_x += other.sum_x;
        self.sum_y += other.sum_y;
        self.sum_xx += other.sum_xx;
        self.sum_yy += other.sum_yy;
        self.sum_xy += other.sum_xy;
    }

    /// Pearson correlation coefficient; 0 when either marginal is degenerate.
    pub fn pearson(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let cov = self.sum_xy as f64 / n - (self.sum_x as f64 / n) * (self.sum_y as f64 / n);
        let vx = self.sum_xx as f64 / n - (self.sum_x as f64 / n).powi(2);
        let vy = self.sum_yy as f64 / n - (self.sum_y as f64 / n).powi(2);
        if vx <= 0.0 || vy <= 0.0 {
            return 0.0;
        }
        (cov / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_direct_computation() {
        let data = [3i64, 1, 4, 1, 5, 9, 2, 6];
        let mut m = Moments::new();
        for &v in &data {
            m.add(v);
        }
        assert_eq!(m.count, 8);
        assert_eq!(m.min, 1);
        assert_eq!(m.max, 9);
        let mean = data.iter().sum::<i64>() as f64 / 8.0;
        assert!((m.mean() - mean).abs() < 1e-12);
        let var = data.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / 8.0;
        assert!((m.variance() - var).abs() < 1e-9);
        assert!(m.cv() > 0.0);
    }

    #[test]
    fn moments_merge_is_exact() {
        let data: Vec<i64> = (0..1000).map(|i| (i * 7919) % 4093).collect();
        let mut whole = Moments::new();
        for &v in &data {
            whole.add(v);
        }
        let mut left = Moments::new();
        let mut right = Moments::new();
        for &v in &data[..317] {
            left.add(v);
        }
        for &v in &data[317..] {
            right.add(v);
        }
        left.merge(&right);
        assert_eq!(left, whole); // exact equality, not approximate
    }

    #[test]
    fn empty_moments_are_neutral() {
        let mut m = Moments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.cv(), 0.0);
        let mut other = Moments::new();
        other.add(5);
        m.merge(&other);
        assert_eq!(m, other);
    }

    #[test]
    fn histogram_bins_are_monotone_in_value() {
        let mut prev = 0usize;
        for v in [0i64, 1, 2, 3, 4, 5, 7, 8, 100, 1 << 20, i64::MAX] {
            let b = Histogram::bin_of(v);
            assert!(b >= prev, "bin_of({v}) = {b} < {prev}");
            assert!(b < HISTOGRAM_BINS);
            prev = b;
        }
        assert_eq!(Histogram::bin_of(-5), 0);
        assert_eq!(Histogram::bin_of(1), 1);
    }

    #[test]
    fn bin_edges_bracket_their_values() {
        for v in [1i64, 2, 3, 5, 9, 100, 12345, 1 << 40] {
            let b = Histogram::bin_of(v);
            assert!(Histogram::bin_lower(b) <= v as f64);
            assert!((v as f64) < Histogram::bin_lower(b + 1));
        }
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        let mut h = Histogram::new();
        for i in 1..=1000i64 {
            h.add(i);
        }
        assert_eq!(h.total(), 1000);
        let q50 = h.quantile(0.5);
        let q90 = h.quantile(0.9);
        assert!(q50 <= q90);
        // log-binned: the estimate is within one sub-bin (25%) of the truth
        assert!(q50 > 300.0 && q50 < 700.0, "median estimate {q50}");
        assert_eq!(Histogram::new().quantile(0.5), 0.0);
    }

    #[test]
    fn histogram_merge_equals_single_pass() {
        let data: Vec<i64> = (0..5000).map(|i| (i * 31) % 10_000).collect();
        let mut whole = Histogram::new();
        for &v in &data {
            whole.add(v);
        }
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &v in &data[..1234] {
            a.add(v);
        }
        for &v in &data[1234..] {
            b.add(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn correlation_detects_linear_relation() {
        let mut c = Correlation::new();
        for i in 0..100i64 {
            c.add(i, 3 * i + 7);
        }
        assert!((c.pearson() - 1.0).abs() < 1e-9);
        let mut anti = Correlation::new();
        for i in 0..100i64 {
            anti.add(i, -i);
        }
        assert!((anti.pearson() + 1.0).abs() < 1e-9);
        let mut flat = Correlation::new();
        for i in 0..100i64 {
            flat.add(i, 42);
        }
        assert_eq!(flat.pearson(), 0.0);
        assert_eq!(Correlation::new().pearson(), 0.0);
    }

    #[test]
    fn correlation_merge_is_exact() {
        let mut whole = Correlation::new();
        let mut a = Correlation::new();
        let mut b = Correlation::new();
        for i in 0..500i64 {
            let (x, y) = ((i * 13) % 97, (i * 29) % 89);
            whole.add(x, y);
            if i < 200 {
                a.add(x, y);
            } else {
                b.add(x, y);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }
}
