//! Single-pass streaming characterization of an SWF job stream.
//!
//! A [`WorkloadProfile`] is built in one pass over the summary records of a
//! log (in submit order) and captures the marginal distributions the paper's
//! workload-modelling discussion cares about — interarrival time, runtime, job
//! size, runtime-estimate accuracy — plus diurnal and weekly arrival cycles,
//! per-user and per-group aggregates, and the size–runtime correlation.
//!
//! Profiles are **mergeable**: a trace can be cut into contiguous chunks,
//! each chunk profiled independently, and the chunk profiles folded back
//! together with [`WorkloadProfile::merge`]. All accumulator state is integral
//! (see [`crate::sketch`]), and the interarrival gap that crosses a chunk
//! boundary is reconstructed at merge time from the chunks' first/last submit
//! times, so the chunked (parallel) result is **bit-identical** to the
//! sequential single pass — `chunked == sequential` holds with `==`, not just
//! approximately.

use crate::sketch::{Correlation, Histogram2, MarginalSketch, Moments};
use psbench_swf::{JobSource, ParseError, SwfLog, SwfRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Seconds per hour / day / week, for the arrival-cycle histograms.
const HOUR: i64 = 3600;
const DAY: i64 = 24 * HOUR;
const WEEK: i64 = 7 * DAY;

/// Runtime-estimate accuracy is stored in per-mille (runtime × 1000 /
/// estimate), computed in integer arithmetic so chunked analysis stays exact.
pub const ACCURACY_SCALE: i64 = 1000;

/// The interarrival gap between two submit times, clamped to ≥ 0 without
/// wrapping even for lenient-parsed traces whose submits span the i64 range.
fn gap(prev: i64, next: i64) -> i64 {
    next.saturating_sub(prev).max(0)
}

/// Estimate accuracy in per-mille, in widened arithmetic: `r × 1000 / e`
/// cannot wrap for any `i64` runtime/estimate pair from a parsed trace.
fn accuracy_per_mille(r: i64, e: i64) -> i64 {
    ((r as i128 * ACCURACY_SCALE as i128) / e as i128).clamp(0, i64::MAX as i128) as i64
}

/// Aggregate statistics for one user or group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct GroupStats {
    /// Number of jobs attributed to this user/group.
    pub jobs: u64,
    /// Total consumed area in processor-seconds (where known).
    pub area: i128,
    /// Exact runtime moments of the jobs.
    pub runtime: Moments,
}

impl GroupStats {
    fn add(&mut self, rec: &SwfRecord) {
        self.jobs += 1;
        if let Some(a) = rec.area() {
            self.area += a as i128;
        }
        if let Some(r) = rec.run_time {
            self.runtime.add(r);
        }
    }

    fn merge(&mut self, other: &GroupStats) {
        self.jobs += other.jobs;
        self.area += other.area;
        self.runtime.merge(&other.runtime);
    }
}

/// The streaming characterization of a workload trace.
///
/// Build one with [`WorkloadProfile::of_source`] (streaming, O(1) record
/// memory), [`WorkloadProfile::of_log`] (sequential over an in-memory log),
/// or by merging chunk profiles from [`WorkloadProfile::of_records`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct WorkloadProfile {
    /// Display name of the profiled workload.
    pub name: String,
    /// Number of summary jobs profiled.
    pub jobs: u64,
    /// Marginal distribution of interarrival gaps between consecutive submits, seconds.
    pub interarrival: MarginalSketch,
    /// Marginal distribution of wall-clock runtimes, seconds.
    pub runtime: MarginalSketch,
    /// Marginal distribution of job sizes (requested or allocated processors).
    pub size: MarginalSketch,
    /// Marginal distribution of estimate accuracy: runtime × 1000 / estimate.
    pub accuracy: MarginalSketch,
    /// Submit counts by hour of day (diurnal arrival cycle).
    pub diurnal: [u64; 24],
    /// Submit counts by day of week (weekly arrival cycle).
    pub weekly: [u64; 7],
    /// Per-user aggregates, keyed by SWF user id.
    pub per_user: BTreeMap<u32, GroupStats>,
    /// Per-group aggregates, keyed by SWF group id.
    pub per_group: BTreeMap<u32, GroupStats>,
    /// Exact size–runtime correlation accumulator.
    pub size_runtime: Correlation,
    /// Joint (2-D) size × runtime histogram: octave-binned on both axes, it
    /// captures which sizes pair with which runtimes — structure invisible to
    /// the two marginals alone.
    pub size_runtime_hist: Histogram2,
    /// Submit time of the first profiled job (None when empty).
    pub first_submit: Option<i64>,
    /// Submit time of the last profiled job (None when empty).
    pub last_submit: Option<i64>,
}

impl WorkloadProfile {
    /// An empty profile with a display name.
    pub fn named(name: impl Into<String>) -> Self {
        WorkloadProfile {
            name: name.into(),
            ..WorkloadProfile::default()
        }
    }

    /// Record one summary record. Records must be fed in submit order (the
    /// order of a conforming log); partial-execution lines are ignored.
    pub fn add(&mut self, rec: &SwfRecord) {
        if !rec.is_summary() {
            return;
        }
        self.jobs += 1;
        if let Some(prev) = self.last_submit {
            self.interarrival.add(gap(prev, rec.submit_time));
        } else {
            self.first_submit = Some(rec.submit_time);
        }
        self.last_submit = Some(rec.submit_time);

        if let Some(r) = rec.run_time {
            self.runtime.add(r);
            if let Some(p) = rec.procs() {
                self.size_runtime.add(p as i64, r);
                self.size_runtime_hist.add(p as i64, r);
            }
            if let Some(e) = rec.requested_time {
                if e > 0 {
                    self.accuracy.add(accuracy_per_mille(r, e));
                }
            }
        }
        if let Some(p) = rec.procs() {
            self.size.add(p as i64);
        }
        let tod = rec.submit_time.rem_euclid(DAY);
        self.diurnal[(tod / HOUR) as usize] += 1;
        let dow = rec.submit_time.rem_euclid(WEEK);
        self.weekly[(dow / DAY) as usize] += 1;
        if let Some(u) = rec.user_id {
            self.per_user.entry(u).or_default().add(rec);
        }
        if let Some(g) = rec.group_id {
            self.per_group.entry(g).or_default().add(rec);
        }
    }

    /// Profile a whole log in one sequential pass over its summary records.
    pub fn of_log(name: impl Into<String>, log: &SwfLog) -> Self {
        WorkloadProfile::of_records(name, &log.jobs)
    }

    /// Profile a contiguous run of records (summary filtering happens
    /// inside). This is the chunk primitive: profiles of consecutive runs
    /// merge back into the whole-trace profile via [`WorkloadProfile::merge`].
    pub fn of_records(name: impl Into<String>, records: &[SwfRecord]) -> Self {
        let mut p = WorkloadProfile::named(name);
        for rec in records.iter().filter(|r| r.is_summary()) {
            p.add(rec);
        }
        p
    }

    /// Profile a streaming [`JobSource`] in one sequential pass, in O(1)
    /// record memory.
    ///
    /// The profile takes its display name from the source's metadata, and the
    /// result is **bit-identical** to [`WorkloadProfile::of_log`] over the
    /// collected log: streamed, chunk-merged and materialized analyses can
    /// never disagree. Fails only if the source itself fails (e.g. a malformed
    /// archive file mid-stream).
    pub fn of_source<S: JobSource>(mut source: S) -> Result<Self, ParseError> {
        let mut p = WorkloadProfile::named(source.meta().name.clone());
        while let Some(rec) = source.next_record() {
            p.add(&rec?);
        }
        Ok(p)
    }

    /// Profile one contiguous chunk `jobs[start..end]` of a log's record list.
    pub fn of_job_slice(name: impl Into<String>, log: &SwfLog, start: usize, end: usize) -> Self {
        WorkloadProfile::of_records(name, &log.jobs[start..end])
    }

    /// Fold the profile of the *following* trace chunk into this one.
    ///
    /// The interarrival gap between this chunk's last submit and the next
    /// chunk's first submit is added here, which is exactly the observation a
    /// sequential pass would have recorded at the boundary — this is what
    /// makes chunked analysis bit-identical to the single pass. Merging is
    /// associative because every accumulator is integral and each boundary
    /// gap is added exactly once whatever the grouping.
    pub fn merge(&mut self, next: &WorkloadProfile) {
        if next.jobs == 0 {
            return;
        }
        if let (Some(last), Some(first)) = (self.last_submit, next.first_submit) {
            self.interarrival.add(gap(last, first));
        }
        if self.jobs == 0 {
            self.first_submit = next.first_submit;
        }
        self.last_submit = next.last_submit.or(self.last_submit);
        self.jobs += next.jobs;
        self.interarrival.merge(&next.interarrival);
        self.runtime.merge(&next.runtime);
        self.size.merge(&next.size);
        self.accuracy.merge(&next.accuracy);
        for (d, o) in self.diurnal.iter_mut().zip(next.diurnal.iter()) {
            *d += o;
        }
        for (d, o) in self.weekly.iter_mut().zip(next.weekly.iter()) {
            *d += o;
        }
        for (k, v) in &next.per_user {
            self.per_user.entry(*k).or_default().merge(v);
        }
        for (k, v) in &next.per_group {
            self.per_group.entry(*k).or_default().merge(v);
        }
        self.size_runtime.merge(&next.size_runtime);
        self.size_runtime_hist.merge(&next.size_runtime_hist);
    }

    /// Trace duration in seconds spanned by the profiled submits.
    pub fn submit_span(&self) -> i64 {
        match (self.first_submit, self.last_submit) {
            (Some(f), Some(l)) => (l - f).max(0),
            _ => 0,
        }
    }

    /// Number of distinct users observed.
    pub fn users(&self) -> usize {
        self.per_user.len()
    }

    /// Number of distinct groups observed.
    pub fn groups(&self) -> usize {
        self.per_group.len()
    }

    /// The `n` users with the most jobs, as `(user id, stats)` pairs, ties
    /// broken by ascending user id (deterministic).
    pub fn top_users(&self, n: usize) -> Vec<(u32, &GroupStats)> {
        let mut v: Vec<(u32, &GroupStats)> = self.per_user.iter().map(|(k, s)| (*k, s)).collect();
        v.sort_by(|a, b| b.1.jobs.cmp(&a.1.jobs).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }
}

/// Profile a log by cutting its record list into `chunks` contiguous pieces,
/// profiling each independently through `map` (which may run the closures in
/// parallel — e.g. `psbench_core::harness::parallel_map`), and folding the
/// chunk profiles left to right.
///
/// The result is bit-identical to [`WorkloadProfile::of_log`] for any chunk
/// count and any `map` that returns the closure results in input order.
pub fn profile_chunked<M>(name: &str, log: &SwfLog, chunks: usize, map: M) -> WorkloadProfile
where
    M: FnOnce(usize, &(dyn Fn(usize) -> WorkloadProfile + Sync)) -> Vec<WorkloadProfile>,
{
    let n = log.jobs.len();
    let chunks = chunks.clamp(1, n.max(1));
    let bounds: Vec<(usize, usize)> = (0..chunks)
        .map(|c| (c * n / chunks, (c + 1) * n / chunks))
        .collect();
    let parts = map(chunks, &|c| {
        let (start, end) = bounds[c];
        WorkloadProfile::of_job_slice(name, log, start, end)
    });
    let mut whole = WorkloadProfile::named(name);
    for part in &parts {
        whole.merge(part);
    }
    whole
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbench_workload::{Lublin99, WorkloadModel};

    fn sample_log() -> SwfLog {
        Lublin99::default().generate(400, 7)
    }

    #[test]
    fn profile_counts_and_marginals() {
        let log = sample_log();
        let p = WorkloadProfile::of_log("lublin99", &log);
        assert_eq!(p.jobs, 400);
        assert_eq!(p.interarrival.count(), 399); // n-1 gaps
        assert_eq!(p.runtime.count(), 400);
        assert_eq!(p.size.count(), 400);
        assert!(p.accuracy.count() > 0);
        assert!(p.users() > 1);
        assert!(p.groups() >= 1);
        assert_eq!(p.diurnal.iter().sum::<u64>(), 400);
        assert_eq!(p.weekly.iter().sum::<u64>(), 400);
        assert_eq!(p.per_user.values().map(|s| s.jobs).sum::<u64>(), 400);
        assert!(p.submit_span() > 0);
        assert_eq!(p.first_submit, Some(0));
    }

    #[test]
    fn extreme_values_do_not_wrap() {
        use psbench_swf::SwfRecordBuilder;
        // A lenient-parsed trace can carry i64::MAX runtimes/estimates and
        // submits anywhere in the i64 range; the accumulators must not wrap.
        let mut p = WorkloadProfile::named("extreme");
        p.add(
            &SwfRecordBuilder::new(1, i64::MIN + 1)
                .run_time(i64::MAX)
                .requested_time(i64::MAX)
                .build(),
        );
        p.add(
            &SwfRecordBuilder::new(2, i64::MAX)
                .run_time(i64::MAX)
                .requested_time(1)
                .build(),
        );
        // runtime == estimate -> exactly 1000 per-mille; huge r/e ratio saturates.
        assert_eq!(p.accuracy.moments.min, ACCURACY_SCALE);
        assert_eq!(p.accuracy.moments.max, i64::MAX);
        // The i64-spanning gap saturates instead of wrapping negative.
        assert_eq!(p.interarrival.moments.max, i64::MAX);
        assert_eq!(p.jobs, 2);
    }

    #[test]
    fn accuracy_is_at_most_one_for_overestimating_models() {
        // The default estimate model only overestimates, so runtime/estimate <= 1.
        let p = WorkloadProfile::of_log("l", &sample_log());
        assert!(p.accuracy.moments.max <= ACCURACY_SCALE);
        assert!(p.accuracy.moments.min >= 0);
    }

    #[test]
    fn chunked_profile_is_bit_identical_to_sequential() {
        let log = sample_log();
        let seq = WorkloadProfile::of_log("l", &log);
        for chunks in [1usize, 2, 3, 7, 50, 400, 1000] {
            let chunked = profile_chunked("l", &log, chunks, |n, f| (0..n).map(f).collect());
            assert_eq!(chunked, seq, "chunks = {chunks}");
        }
    }

    #[test]
    fn streamed_profile_is_bit_identical_to_of_log() {
        let log = sample_log();
        let seq = WorkloadProfile::of_log("l", &log);
        let streamed = WorkloadProfile::of_source(log.as_source("l")).unwrap();
        assert_eq!(streamed, seq);
    }

    #[test]
    fn of_source_surfaces_stream_errors() {
        use psbench_swf::{ParseOptions, RecordIter};
        let bad = "1 0 10\n";
        let err =
            WorkloadProfile::of_source(RecordIter::new(bad.as_bytes(), ParseOptions::default()));
        assert!(err.is_err());
    }

    #[test]
    fn merge_is_associative_across_three_chunks() {
        let log = sample_log();
        let n = log.jobs.len();
        let a = WorkloadProfile::of_job_slice("l", &log, 0, n / 3);
        let b = WorkloadProfile::of_job_slice("l", &log, n / 3, 2 * n / 3);
        let c = WorkloadProfile::of_job_slice("l", &log, 2 * n / 3, n);
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn empty_chunks_are_neutral_in_merges() {
        let log = sample_log();
        let seq = WorkloadProfile::of_log("l", &log);
        let mut with_empty = WorkloadProfile::named("l");
        with_empty.merge(&WorkloadProfile::named("l"));
        with_empty.merge(&seq);
        with_empty.merge(&WorkloadProfile::named("l"));
        assert_eq!(with_empty, seq);
        assert_eq!(WorkloadProfile::named("x").submit_span(), 0);
    }

    #[test]
    fn top_users_is_deterministic_and_sorted() {
        let p = WorkloadProfile::of_log("l", &sample_log());
        let top = p.top_users(5);
        assert!(top.len() <= 5);
        for w in top.windows(2) {
            assert!(w[0].1.jobs >= w[1].1.jobs);
        }
        // The model's zipf-like attribution makes user 1 the heaviest.
        assert_eq!(top[0].0, 1);
    }
}
