//! Deterministic rendering of profiles and fidelity reports.
//!
//! Markdown for humans, CSV for spreadsheets, JSON for tooling. All numbers
//! are formatted with fixed rules from the exact accumulator state, so two
//! runs over the same trace — sequential or parallel, any thread count —
//! produce byte-identical output.

use crate::distance::FidelityReport;
use crate::profile::WorkloadProfile;
use crate::sketch::MarginalSketch;
use std::fmt::Write as _;

/// Output format of a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// GitHub-flavoured markdown tables.
    #[default]
    Markdown,
    /// Comma-separated values, one table per section separated by blank lines.
    Csv,
    /// A single JSON object.
    Json,
}

impl Format {
    /// Parse a format name (`md` / `markdown`, `csv`, `json`).
    pub fn parse(s: &str) -> Option<Format> {
        match s.to_ascii_lowercase().as_str() {
            "md" | "markdown" => Some(Format::Markdown),
            "csv" => Some(Format::Csv),
            "json" => Some(Format::Json),
            _ => None,
        }
    }
}

/// Format a float for tables: more fractional digits for smaller magnitudes.
/// This is the workspace's single table-number rule — the experiment
/// harness's `fmt` delegates here.
pub fn fmt_num(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// A rendered section: a title, headers, and string rows. Intermediate form
/// shared by the markdown and CSV renderers.
struct Section {
    title: String,
    headers: Vec<&'static str>,
    rows: Vec<Vec<String>>,
}

fn to_markdown(sections: &[Section]) -> String {
    let mut out = String::new();
    for s in sections {
        let _ = writeln!(out, "### {}\n", s.title);
        let _ = writeln!(out, "| {} |", s.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            s.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &s.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out.push('\n');
    }
    out
}

fn to_csv(sections: &[Section]) -> String {
    let mut out = String::new();
    for s in sections {
        let _ = writeln!(out, "{}", s.headers.join(","));
        for row in &s.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out.push('\n');
    }
    out
}

/// Escape a string for inclusion in a JSON document (quotes, backslashes,
/// and all control characters per RFC 8259).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a finite float as a JSON number (six fractional digits, trailing
/// zeros trimmed), falling back to 0 for non-finite values.
pub fn json_num(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    let s = format!("{v:.6}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() || s == "-" {
        "0".to_string()
    } else {
        s.to_string()
    }
}

fn marginal_row(name: &str, unit: &str, m: &MarginalSketch) -> Vec<String> {
    if m.count() == 0 {
        return vec![
            name.to_string(),
            unit.to_string(),
            "0".to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ];
    }
    vec![
        name.to_string(),
        unit.to_string(),
        m.count().to_string(),
        fmt_num(m.moments.mean()),
        fmt_num(m.moments.cv()),
        m.moments.min.to_string(),
        fmt_num(m.histogram.quantile(0.5)),
        fmt_num(m.histogram.quantile(0.95)),
        m.moments.max.to_string(),
    ]
}

fn marginals_of(p: &WorkloadProfile) -> [(&'static str, &'static str, &MarginalSketch); 4] {
    [
        ("interarrival", "s", &p.interarrival),
        ("runtime", "s", &p.runtime),
        ("size", "procs", &p.size),
        ("accuracy", "per-mille", &p.accuracy),
    ]
}

fn profile_sections(p: &WorkloadProfile) -> Vec<Section> {
    let overview = Section {
        title: format!("Workload profile — {}", p.name),
        headers: vec!["property", "value"],
        rows: vec![
            vec!["jobs".into(), p.jobs.to_string()],
            vec!["submit span [s]".into(), p.submit_span().to_string()],
            vec!["users".into(), p.users().to_string()],
            vec!["groups".into(), p.groups().to_string()],
            vec![
                "size-runtime correlation".into(),
                fmt_num(p.size_runtime.pearson()),
            ],
        ],
    };
    let marginals = Section {
        title: "Marginal distributions".to_string(),
        headers: vec![
            "marginal", "unit", "count", "mean", "cv", "min", "p50", "p95", "max",
        ],
        rows: marginals_of(p)
            .iter()
            .map(|(n, u, m)| marginal_row(n, u, m))
            .collect(),
    };
    let cycles = Section {
        title: "Arrival cycles (submit counts)".to_string(),
        headers: vec!["cycle", "counts"],
        rows: vec![
            vec![
                "hour-of-day".into(),
                p.diurnal
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(" "),
            ],
            vec![
                "day-of-week".into(),
                p.weekly
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(" "),
            ],
        ],
    };
    let top = Section {
        title: "Heaviest users".to_string(),
        headers: vec!["user", "jobs", "area [proc-s]", "mean runtime [s]"],
        rows: p
            .top_users(10)
            .iter()
            .map(|(u, s)| {
                vec![
                    u.to_string(),
                    s.jobs.to_string(),
                    s.area.to_string(),
                    fmt_num(s.runtime.mean()),
                ]
            })
            .collect(),
    };
    vec![overview, marginals, cycles, top]
}

fn profile_json(p: &WorkloadProfile) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"jobs\":{},\"submit_span_s\":{},\"users\":{},\"groups\":{},\"size_runtime_correlation\":{},\"marginals\":{{",
        json_escape(&p.name),
        p.jobs,
        p.submit_span(),
        p.users(),
        p.groups(),
        json_num(p.size_runtime.pearson()),
    );
    for (i, (name, unit, m)) in marginals_of(p).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"unit\":\"{}\",\"count\":{},\"mean\":{},\"cv\":{},\"min\":{},\"p50\":{},\"p95\":{},\"max\":{}}}",
            name,
            unit,
            m.count(),
            json_num(m.moments.mean()),
            json_num(m.moments.cv()),
            if m.count() == 0 { 0 } else { m.moments.min },
            json_num(m.histogram.quantile(0.5)),
            json_num(m.histogram.quantile(0.95)),
            if m.count() == 0 { 0 } else { m.moments.max },
        );
    }
    let nums = |v: &[u64]| {
        v.iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let _ = write!(
        out,
        "}},\"diurnal\":[{}],\"weekly\":[{}],\"top_users\":[",
        nums(&p.diurnal),
        nums(&p.weekly)
    );
    for (i, (u, s)) in p.top_users(10).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"user\":{},\"jobs\":{},\"area\":{},\"mean_runtime\":{}}}",
            u,
            s.jobs,
            s.area,
            json_num(s.runtime.mean())
        );
    }
    out.push_str("]}");
    out
}

/// Render a workload profile in the requested format.
pub fn render_profile(p: &WorkloadProfile, format: Format) -> String {
    match format {
        Format::Markdown => to_markdown(&profile_sections(p)),
        Format::Csv => to_csv(&profile_sections(p)),
        Format::Json => profile_json(p),
    }
}

fn fidelity_sections(r: &FidelityReport) -> Vec<Section> {
    let mut rows: Vec<Vec<String>> = r
        .marginals
        .iter()
        .map(|m| {
            vec![
                m.marginal.clone(),
                m.unit.to_string(),
                fmt_num(m.ks),
                fmt_num(m.emd),
                fmt_num(m.chi2),
                fmt_num(m.ad),
            ]
        })
        .collect();
    // The joint size × runtime view: only the chi-square column applies (it
    // is a 2-D distribution), and it stays out of the per-marginal means.
    rows.push(vec![
        "size-runtime (joint)".into(),
        "procs x s".into(),
        "-".into(),
        "-".into(),
        fmt_num(r.joint_size_runtime),
        "-".into(),
    ]);
    rows.push(vec![
        "mean".into(),
        "-".into(),
        fmt_num(r.mean_ks()),
        "-".into(),
        fmt_num(r.mean_chi2()),
        fmt_num(r.mean_ad()),
    ]);
    vec![Section {
        title: format!(
            "Model fidelity — {} vs {} ({} / {} jobs)",
            r.candidate, r.reference, r.jobs.1, r.jobs.0
        ),
        headers: vec!["marginal", "unit", "KS", "EMD", "chi2", "AD"],
        rows,
    }]
}

fn fidelity_json(r: &FidelityReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"reference\":\"{}\",\"candidate\":\"{}\",\"jobs\":[{},{}],\"marginals\":[",
        json_escape(&r.reference),
        json_escape(&r.candidate),
        r.jobs.0,
        r.jobs.1
    );
    for (i, m) in r.marginals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"marginal\":\"{}\",\"unit\":\"{}\",\"ks\":{},\"emd\":{},\"chi2\":{},\"ad\":{}}}",
            json_escape(&m.marginal),
            m.unit,
            json_num(m.ks),
            json_num(m.emd),
            json_num(m.chi2),
            json_num(m.ad)
        );
    }
    let _ = write!(
        out,
        "],\"joint_size_runtime_chi2\":{},\"mean_ks\":{},\"max_ks\":{},\"mean_chi2\":{},\"mean_ad\":{}}}",
        json_num(r.joint_size_runtime),
        json_num(r.mean_ks()),
        json_num(r.max_ks()),
        json_num(r.mean_chi2()),
        json_num(r.mean_ad())
    );
    out
}

/// Render a fidelity report in the requested format.
pub fn render_fidelity(r: &FidelityReport, format: Format) -> String {
    match format {
        Format::Markdown => to_markdown(&fidelity_sections(r)),
        Format::Csv => to_csv(&fidelity_sections(r)),
        Format::Json => fidelity_json(r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::FidelityReport;
    use psbench_workload::{Lublin99, WorkloadModel};

    fn profile() -> WorkloadProfile {
        WorkloadProfile::of_log("lublin99", &Lublin99::default().generate(300, 5))
    }

    #[test]
    fn format_parsing() {
        assert_eq!(Format::parse("md"), Some(Format::Markdown));
        assert_eq!(Format::parse("Markdown"), Some(Format::Markdown));
        assert_eq!(Format::parse("CSV"), Some(Format::Csv));
        assert_eq!(Format::parse("json"), Some(Format::Json));
        assert_eq!(Format::parse("yaml"), None);
    }

    #[test]
    fn markdown_profile_has_all_sections() {
        let md = render_profile(&profile(), Format::Markdown);
        assert!(md.contains("Workload profile — lublin99"));
        assert!(md.contains("| interarrival |"));
        assert!(md.contains("hour-of-day"));
        assert!(md.contains("Heaviest users"));
    }

    #[test]
    fn csv_profile_is_tabular() {
        let csv = render_profile(&profile(), Format::Csv);
        assert!(csv.contains("marginal,unit,count,mean,cv,min,p50,p95,max"));
        assert!(csv.lines().any(|l| l.starts_with("runtime,s,300,")));
    }

    #[test]
    fn json_profile_is_well_formed_enough() {
        let json = render_profile(&profile(), Format::Json);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"jobs\":300"));
        assert!(json.contains("\"diurnal\":["));
        // every quote is balanced; crude but catches broken escaping
        assert_eq!(json.matches('"').count() % 2, 0);
    }

    #[test]
    fn fidelity_rendering_round_trip() {
        let p = profile();
        let q = WorkloadProfile::of_log("other", &Lublin99::default().generate(300, 6));
        let r = FidelityReport::compare(&p, &q);
        let md = render_fidelity(&r, Format::Markdown);
        assert!(md.contains("Model fidelity — other vs lublin99"));
        assert!(md.contains("| interarrival |"));
        assert!(md.contains("| mean |"));
        let json = render_fidelity(&r, Format::Json);
        assert!(json.contains("\"mean_ks\":"));
        let csv = render_fidelity(&r, Format::Csv);
        assert!(csv.starts_with("marginal,unit,KS,EMD"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let p = profile();
        for f in [Format::Markdown, Format::Csv, Format::Json] {
            assert_eq!(render_profile(&p, f), render_profile(&p, f));
        }
    }

    #[test]
    fn json_num_trims_and_handles_specials() {
        assert_eq!(json_num(1.5), "1.5");
        assert_eq!(json_num(2.0), "2");
        assert_eq!(json_num(0.0), "0");
        assert_eq!(json_num(f64::NAN), "0");
        assert_eq!(json_num(-0.25), "-0.25");
    }

    #[test]
    fn json_escape_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
