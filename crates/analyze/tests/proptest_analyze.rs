//! Property-based tests for the analyze sketches: quantile monotonicity,
//! exact merge associativity (chunked merge == single pass), and bounds on the
//! distribution distances.

use proptest::prelude::*;
use psbench_analyze::prelude::*;
use psbench_swf::SwfRecordBuilder;

/// Strategy for a plausible observation value (covers several octaves plus
/// the underflow bin).
fn obs() -> impl Strategy<Value = i64> {
    prop_oneof![-10i64..10, 1i64..1000, 1000i64..2_000_000, Just(i64::MAX),]
}

fn hist_of(values: &[i64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.add(v);
    }
    h
}

proptest! {
    #[test]
    fn quantiles_are_monotone_in_q(values in prop::collection::vec(obs(), 1..300)) {
        let h = hist_of(&values);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = h.quantile(q);
            prop_assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn moments_and_histogram_merges_are_associative(
        values in prop::collection::vec(obs(), 3..300),
        cut_a in 1usize..100,
        cut_b in 1usize..100,
    ) {
        // Cut the sample into three chunks at arbitrary points.
        let n = values.len();
        let i = cut_a % (n - 1);
        let j = i + 1 + (cut_b % (n - i - 1));
        let (xs, ys, zs) = (&values[..i], &values[i..j], &values[j..]);

        let single = hist_of(&values);
        let mut left = hist_of(xs);
        left.merge(&hist_of(ys));
        left.merge(&hist_of(zs));
        let mut right_tail = hist_of(ys);
        right_tail.merge(&hist_of(zs));
        let mut right = hist_of(xs);
        right.merge(&right_tail);
        prop_assert_eq!(&left, &single);
        prop_assert_eq!(&right, &single);

        let mom = |vs: &[i64]| {
            let mut m = Moments::new();
            for &v in vs { m.add(v); }
            m
        };
        let mut m_left = mom(xs);
        m_left.merge(&mom(ys));
        m_left.merge(&mom(zs));
        prop_assert_eq!(m_left, mom(&values));
    }

    #[test]
    fn chunked_profile_merge_equals_single_pass(
        gaps in prop::collection::vec(0i64..50_000, 2..120),
        chunks in 1usize..16,
    ) {
        // Build a tiny conforming log from arbitrary interarrival gaps.
        let mut submit = 0i64;
        let mut log = psbench_swf::SwfLog::default();
        for (i, &g) in gaps.iter().enumerate() {
            submit += g;
            log.jobs.push(
                SwfRecordBuilder::new(i as u64 + 1, submit)
                    .run_time((g % 5000) + 1)
                    .allocated_procs((g % 64) as u32 + 1)
                    .requested_time((g % 5000) + 100)
                    .user_id((g % 7) as u32 + 1)
                    .group_id((g % 3) as u32 + 1)
                    .build(),
            );
        }
        let seq = WorkloadProfile::of_log("p", &log);
        let par = profile_chunked("p", &log, chunks, |n, f| (0..n).map(f).collect());
        prop_assert_eq!(par, seq); // bit-identical, not approximate
    }

    #[test]
    fn streamed_chunked_profile_merges_bit_identical_to_sequential(
        gaps in prop::collection::vec(0i64..50_000, 2..120),
        cuts in prop::collection::vec(1usize..120, 0..6),
    ) {
        // A conforming log built from arbitrary gaps, streamed in arbitrary
        // contiguous chunks: merging the chunk profiles (the streaming
        // pipeline's block path) must equal both the sequential stream and
        // the materialized pass, bit for bit.
        let mut submit = 0i64;
        let mut log = psbench_swf::SwfLog::default();
        for (i, &g) in gaps.iter().enumerate() {
            submit += g;
            log.jobs.push(
                SwfRecordBuilder::new(i as u64 + 1, submit)
                    .run_time((g % 5000) + 1)
                    .allocated_procs((g % 64) as u32 + 1)
                    .requested_time((g % 5000) + 100)
                    .user_id((g % 7) as u32 + 1)
                    .build(),
            );
        }
        let seq = WorkloadProfile::of_log("p", &log);
        let streamed = WorkloadProfile::of_source(log.as_source("p")).unwrap();
        prop_assert_eq!(&streamed, &seq);
        // Cut the record list at arbitrary boundaries and merge chunk profiles.
        let mut bounds: Vec<usize> = cuts.iter().map(|c| c % log.jobs.len()).collect();
        bounds.push(0);
        bounds.push(log.jobs.len());
        bounds.sort_unstable();
        bounds.dedup();
        let mut merged = WorkloadProfile::named("p");
        for w in bounds.windows(2) {
            merged.merge(&WorkloadProfile::of_records("p", &log.jobs[w[0]..w[1]]));
        }
        prop_assert_eq!(merged, seq); // bit-identical, not approximate
    }

    #[test]
    fn chi_square_and_ad_are_bounded_symmetric_and_reflexive(
        xs in prop::collection::vec(obs(), 0..200),
        ys in prop::collection::vec(obs(), 0..200),
    ) {
        let (a, b) = (hist_of(&xs), hist_of(&ys));
        for d in [chi_square(&a, &b), ad_distance(&a, &b)] {
            prop_assert!((0.0..=1.0).contains(&d), "distance out of range: {d}");
        }
        prop_assert_eq!(chi_square(&a, &a), 0.0);
        prop_assert_eq!(ad_distance(&a, &a), 0.0);
        prop_assert_eq!(chi_square(&a, &b), chi_square(&b, &a));
        prop_assert_eq!(ad_distance(&a, &b), ad_distance(&b, &a));
    }

    #[test]
    fn ks_distance_is_bounded_and_reflexive(
        xs in prop::collection::vec(obs(), 0..200),
        ys in prop::collection::vec(obs(), 0..200),
    ) {
        let (a, b) = (hist_of(&xs), hist_of(&ys));
        let d = ks_distance(&a, &b);
        prop_assert!((0.0..=1.0).contains(&d), "KS out of range: {d}");
        prop_assert_eq!(ks_distance(&a, &a), 0.0);
        prop_assert_eq!(ks_distance(&b, &b), 0.0);
        // symmetry
        prop_assert_eq!(d, ks_distance(&b, &a));
    }

    #[test]
    fn emd_is_nonnegative_and_zero_on_identical(
        xs in prop::collection::vec(obs(), 0..200),
        ys in prop::collection::vec(obs(), 0..200),
    ) {
        let (a, b) = (hist_of(&xs), hist_of(&ys));
        prop_assert!(emd(&a, &b) >= 0.0);
        prop_assert_eq!(emd(&a, &a), 0.0);
    }
}
