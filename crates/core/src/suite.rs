//! The canonical benchmark suite and scenario definitions.
//!
//! The paper's central plea is that "a representative set of workloads be canonized
//! as a benchmark, and used by all subsequent studies", fixing both data and format.
//! This module is that canon for psbench: named workloads with pinned models,
//! machine sizes, job counts and seeds, plus the [`Scenario`] type that binds a
//! workload to a scheduler so a study is fully described by data.

use psbench_sched::by_name;
use psbench_sim::{SimConfig, SimJob, Simulation, SimulationResult};
use psbench_swf::SwfLog;
use psbench_workload::{Downey97, Feitelson96, Jann97, Lublin99, SessionModel, WorkloadModel};
use serde::{Deserialize, Serialize};

/// Which workload model a scenario draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// The Feitelson '96 model.
    Feitelson96,
    /// The Jann et al. '97 model.
    Jann97,
    /// The Downey '97 model.
    Downey97,
    /// The Lublin '99 model (the paper's "relatively representative" choice).
    Lublin99,
    /// The closed-loop user-session model (SWF feedback fields).
    Sessions,
}

impl WorkloadKind {
    /// All kinds, in canonical order.
    pub fn all() -> &'static [WorkloadKind] {
        &[
            WorkloadKind::Feitelson96,
            WorkloadKind::Jann97,
            WorkloadKind::Downey97,
            WorkloadKind::Lublin99,
            WorkloadKind::Sessions,
        ]
    }

    /// Short name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Feitelson96 => "feitelson96",
            WorkloadKind::Jann97 => "jann97",
            WorkloadKind::Downey97 => "downey97",
            WorkloadKind::Lublin99 => "lublin99",
            WorkloadKind::Sessions => "sessions",
        }
    }

    /// Look up a kind by its short [`Self::name`].
    pub fn by_name(name: &str) -> Option<WorkloadKind> {
        WorkloadKind::all()
            .iter()
            .copied()
            .find(|k| k.name() == name)
    }

    /// Build the model for a given machine size.
    pub fn model(&self, machine_size: u32) -> Box<dyn WorkloadModel> {
        match self {
            WorkloadKind::Feitelson96 => Box::new(Feitelson96::with_machine_size(machine_size)),
            WorkloadKind::Jann97 => Box::new(Jann97::with_machine_size(machine_size)),
            WorkloadKind::Downey97 => Box::new(Downey97::with_machine_size(machine_size)),
            WorkloadKind::Lublin99 => Box::new(Lublin99::with_machine_size(machine_size)),
            WorkloadKind::Sessions => Box::new(SessionModel {
                common: psbench_workload::CommonParams::default().with_machine_size(machine_size),
                ..SessionModel::default()
            }),
        }
    }
}

/// A workload definition: model, machine, size, seed, and optional load scaling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadDef {
    /// Which model generates the jobs.
    pub kind: WorkloadKind,
    /// Machine size in processors.
    pub machine_size: u32,
    /// Number of jobs to generate.
    pub jobs: usize,
    /// RNG seed (fixed, so the canonical workloads are reproducible bit for bit).
    pub seed: u64,
    /// Interarrival scaling applied after generation: < 1 compresses the trace and
    /// raises the offered load, > 1 stretches it. 1.0 leaves the model's own load.
    pub interarrival_scale: f64,
}

impl WorkloadDef {
    /// A workload with no load rescaling.
    pub fn new(kind: WorkloadKind, machine_size: u32, jobs: usize, seed: u64) -> Self {
        WorkloadDef {
            kind,
            machine_size,
            jobs,
            seed,
            interarrival_scale: 1.0,
        }
    }

    /// Generate the SWF log this definition describes.
    pub fn generate(&self) -> SwfLog {
        let mut log = self
            .kind
            .model(self.machine_size)
            .generate(self.jobs, self.seed);
        if (self.interarrival_scale - 1.0).abs() > 1e-12 {
            log.scale_interarrivals(self.interarrival_scale);
        }
        log
    }
}

/// A complete, reproducible experiment unit: a workload, a scheduler (by registry
/// name), and the simulation options.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Display name of the scenario.
    pub name: String,
    /// The workload definition.
    pub workload: WorkloadDef,
    /// Scheduler registry name (see `psbench_sched::by_name`).
    pub scheduler: String,
    /// Honour feedback dependencies (closed loop) during simulation.
    pub closed_loop: bool,
}

impl Scenario {
    /// Build a scenario.
    pub fn new(name: impl Into<String>, workload: WorkloadDef, scheduler: &str) -> Self {
        Scenario {
            name: name.into(),
            workload,
            scheduler: scheduler.to_string(),
            closed_loop: false,
        }
    }

    /// Run the scenario and return the simulation result.
    pub fn run(&self) -> SimulationResult {
        let log = self.workload.generate();
        let jobs = SimJob::from_log(&log);
        let mut config = SimConfig::new(self.workload.machine_size);
        config.closed_loop = self.closed_loop;
        let mut scheduler =
            by_name(&self.scheduler, self.workload.machine_size).unwrap_or_else(|e| panic!("{e}"));
        Simulation::new(config, jobs).run(scheduler.as_mut())
    }
}

/// The canonical benchmark suite: five workloads (one per model plus the session
/// workload) on a 128-node machine, with pinned seeds.
pub fn canonical_suite(jobs: usize) -> Vec<WorkloadDef> {
    WorkloadKind::all()
        .iter()
        .enumerate()
        .map(|(i, &kind)| WorkloadDef::new(kind, 128, jobs, 19_990_401 + i as u64))
        .collect()
}

/// The canonical machine sizes for the WARMstones-style scenario table (E8).
pub fn canonical_machines() -> &'static [u32] {
    &[64, 128, 256]
}

/// The canonical scheduler line-up (registry names).
pub fn canonical_schedulers() -> &'static [&'static str] {
    &["fcfs", "sjf", "greedy-fcfs", "easy", "conservative", "gang"]
}

#[cfg(test)]
mod tests {
    use super::*;
    use psbench_swf::validate;

    #[test]
    fn workload_kinds_build_their_models() {
        for &kind in WorkloadKind::all() {
            let model = kind.model(64);
            assert_eq!(model.machine_size(), 64);
            assert!(!kind.name().is_empty());
        }
        assert_eq!(WorkloadKind::all().len(), 5);
    }

    #[test]
    fn workload_def_generates_reproducible_logs() {
        let def = WorkloadDef::new(WorkloadKind::Lublin99, 64, 150, 7);
        let a = def.generate();
        let b = def.generate();
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.len(), 150);
        assert!(validate(&a).is_clean());
    }

    #[test]
    fn interarrival_scale_raises_load() {
        let base = WorkloadDef::new(WorkloadKind::Jann97, 64, 200, 9);
        let compressed = WorkloadDef {
            interarrival_scale: 0.25,
            ..base
        };
        let l0 = base.generate().offered_load().unwrap();
        let l1 = compressed.generate().offered_load().unwrap();
        assert!(l1 > l0);
    }

    #[test]
    fn scenario_runs_end_to_end() {
        let def = WorkloadDef::new(WorkloadKind::Feitelson96, 64, 120, 3);
        let scenario = Scenario::new("smoke", def, "easy");
        let result = scenario.run();
        assert_eq!(result.finished.len(), 120);
        assert_eq!(result.scheduler, "easy");
    }

    #[test]
    #[should_panic]
    fn unknown_scheduler_panics() {
        let def = WorkloadDef::new(WorkloadKind::Feitelson96, 64, 10, 3);
        Scenario::new("bad", def, "no-such-policy").run();
    }

    #[test]
    fn canonical_suite_is_stable() {
        let suite = canonical_suite(50);
        assert_eq!(suite.len(), 5);
        let names: Vec<&str> = suite.iter().map(|d| d.kind.name()).collect();
        assert_eq!(
            names,
            vec!["feitelson96", "jann97", "downey97", "lublin99", "sessions"]
        );
        assert!(suite.iter().all(|d| d.machine_size == 128));
        assert_eq!(canonical_machines().len(), 3);
        assert_eq!(canonical_schedulers().len(), 6);
    }
}
