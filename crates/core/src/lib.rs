//! # psbench-core — the benchmark standard
//!
//! This crate is the paper's primary deliverable turned into code: a *canonical*
//! set of workloads (fixed models, machine sizes and seeds), a harness that runs
//! scheduler × workload scenarios and renders comparable tables, and the catalogue
//! of experiments that regenerate every claim discussed in EXPERIMENTS.md.
//!
//! * [`suite`] — the canonical workloads, scenario definitions, scheduler line-up.
//! * [`harness`] — scenario sweeps (sequential or parallel), parallel trace
//!   profiling, and table rendering.
//! * [`sweep`] — resumable, memoized scenario sweeps over a `psbench_store`
//!   artifact store: enumerate the grid, skip cached cells, journal progress
//!   durably, resume after a kill with zero recomputation.
//! * [`experiments`] — E1..E10, each returning a [`harness::Table`].

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod suite;
pub mod sweep;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::experiments::{experiment_ids, run_experiment, Scale};
    pub use crate::harness::{
        default_threads, fmt, parallel_map, parallel_map_mut, profile_parallel,
        profile_source_parallel, results_table, run_all, run_all_parallel, Table,
        PROFILE_BLOCK_LEN,
    };
    pub use crate::suite::{
        canonical_machines, canonical_schedulers, canonical_suite, Scenario, WorkloadDef,
        WorkloadKind,
    };
    pub use crate::sweep::{
        cell_key, run_sweep_resumable, sweep_key, trace_cell_key, GridSpec, SweepOutcome,
    };
}

pub use prelude::*;
