//! The experiment harness: run scenario sweeps (optionally in parallel) and render
//! result tables.

use crate::suite::Scenario;
use psbench_analyze::WorkloadProfile;
use psbench_sim::SimulationResult;
use psbench_swf::{JobSource, ParseError, SwfLog, SwfRecord};
use serde::{Deserialize, Serialize};

/// A simple report table: a title, column headers, and string rows. Every
//  experiment renders into this so EXPERIMENTS.md and the benches print the same thing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Table {
    /// Table title (experiment id and description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Render as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Render as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",") + "\n";
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float for tables: more fractional digits for smaller magnitudes.
/// One rule for the whole workspace — this delegates to the analyze crate's
/// formatter so experiment tables and trace reports can never drift apart.
pub fn fmt(v: f64) -> String {
    psbench_analyze::fmt_num(v)
}

// The pool itself lives in the `psbench-harness` leaf crate so the metasystem
// shard loop (`psbench_metasim::epoch`) can share it without a dependency
// cycle; re-exported here so existing callers keep their import paths.
pub use psbench_harness::{default_threads, parallel_map, parallel_map_mut};

/// Run a batch of scenarios sequentially, returning `(scenario, result)` pairs in
/// input order.
pub fn run_all(scenarios: &[Scenario]) -> Vec<(Scenario, SimulationResult)> {
    scenarios.iter().map(|s| (s.clone(), s.run())).collect()
}

/// Run a batch of scenarios on a work-stealing pool of `threads` scoped
/// threads; results come back in input order.
///
/// Every scenario carries its own workload seed, so a run is a pure function
/// of the scenario and the results are bit-identical to [`run_all`].
pub fn run_all_parallel(
    scenarios: &[Scenario],
    threads: usize,
) -> Vec<(Scenario, SimulationResult)> {
    parallel_map(scenarios.len(), threads, |i| {
        (scenarios[i].clone(), scenarios[i].run())
    })
}

/// Number of records buffered per streamed block by
/// [`profile_source_parallel`]: the peak record storage of a streaming
/// analysis, regardless of trace length.
pub const PROFILE_BLOCK_LEN: usize = 65_536;

/// Characterize a streaming [`JobSource`] on `threads` worker threads with
/// peak record storage bounded by [`PROFILE_BLOCK_LEN`].
///
/// Records are pulled from the source into a reused block buffer; each block
/// is cut into contiguous chunks (a few per thread, so long chunks balance),
/// the chunks are profiled independently on the [`parallel_map`] pool, and
/// the chunk profiles are folded in input order. A multi-million-job archive
/// log therefore profiles in O([`PROFILE_BLOCK_LEN`]) memory instead of
/// O(log).
///
/// The analyze sketches keep integer-exact, associatively-mergeable state and
/// the merge re-adds the interarrival gap at every block and chunk boundary,
/// so the result — and any report rendered from it — is **bit-identical** to
/// the sequential single pass `WorkloadProfile::of_source` for any thread
/// count and any block length.
pub fn profile_source_parallel<S: JobSource>(
    mut source: S,
    threads: usize,
) -> Result<WorkloadProfile, ParseError> {
    let threads = threads.max(1);
    if threads == 1 {
        return WorkloadProfile::of_source(source);
    }
    let name = source.meta().name.clone();
    let mut whole = WorkloadProfile::named(&name);
    let mut block: Vec<SwfRecord> = Vec::with_capacity(PROFILE_BLOCK_LEN.min(4096));
    loop {
        block.clear();
        while block.len() < PROFILE_BLOCK_LEN {
            match source.next_record() {
                Some(Ok(rec)) => block.push(rec),
                Some(Err(e)) => return Err(e),
                None => break,
            }
        }
        if block.is_empty() {
            break;
        }
        let n = block.len();
        let chunks = (threads * 4).min(n);
        let bounds: Vec<(usize, usize)> = (0..chunks)
            .map(|c| (c * n / chunks, (c + 1) * n / chunks))
            .collect();
        let block_ref = &block;
        let parts = parallel_map(chunks, threads, |c| {
            let (start, end) = bounds[c];
            WorkloadProfile::of_records(&name, &block_ref[start..end])
        });
        for part in &parts {
            whole.merge(part);
        }
        if n < PROFILE_BLOCK_LEN {
            break;
        }
    }
    Ok(whole)
}

/// Characterize an in-memory workload trace on `threads` worker threads: the
/// record list is cut into contiguous chunks (a few per thread, so long
/// chunks balance), each chunk is profiled in place — zero copies — on the
/// [`parallel_map`] pool, and the chunk profiles are folded in input order.
///
/// This is the materialized twin of [`profile_source_parallel`]: the
/// sketches' exact merge makes both **bit-identical** to the sequential
/// single pass `WorkloadProfile::of_log` for any thread count (CI asserts
/// the CLI-level equivalence via `psbench stats --materialize`).
pub fn profile_parallel(name: &str, log: &SwfLog, threads: usize) -> WorkloadProfile {
    let threads = threads.max(1);
    if threads == 1 {
        return WorkloadProfile::of_log(name, log);
    }
    let chunks = (threads * 4).min(log.jobs.len().max(1));
    psbench_analyze::profile_chunked(name, log, chunks, |n, f| parallel_map(n, threads, f))
}

/// Build a comparison table (one row per scenario) from a set of results.
pub fn results_table(title: &str, results: &[(Scenario, SimulationResult)]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "scenario",
            "scheduler",
            "jobs",
            "mean wait [s]",
            "mean response [s]",
            "mean bounded slowdown",
            "utilization",
            "loss of capacity",
        ],
    );
    for (scenario, result) in results {
        let agg = result.aggregate();
        let sys = result.system();
        table.push_row(vec![
            scenario.name.clone(),
            result.scheduler.clone(),
            agg.jobs.to_string(),
            fmt(agg.wait_time.mean),
            fmt(agg.response_time.mean),
            fmt(agg.bounded_slowdown.mean),
            fmt(sys.utilization),
            fmt(sys.loss_of_capacity),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{WorkloadDef, WorkloadKind};

    fn small_scenarios() -> Vec<Scenario> {
        let def = WorkloadDef::new(WorkloadKind::Lublin99, 64, 80, 5);
        vec![
            Scenario::new("fcfs", def, "fcfs"),
            Scenario::new("easy", def, "easy"),
            Scenario::new("conservative", def, "conservative"),
        ]
    }

    #[test]
    fn table_rendering() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["3".into(), "4".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 3 | 4 |"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("a,b"));
    }

    #[test]
    fn fmt_scales_precision() {
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(42.25), "42.2");
        assert_eq!(fmt(1.23456), "1.235");
    }

    #[test]
    fn sequential_and_parallel_runs_agree() {
        let scenarios = small_scenarios();
        let seq = run_all(&scenarios);
        let par = run_all_parallel(&scenarios, 3);
        assert_eq!(seq.len(), par.len());
        for ((s_a, r_a), (s_b, r_b)) in seq.iter().zip(par.iter()) {
            assert_eq!(s_a.name, s_b.name);
            // Determinism: identical seeds and jobs, so identical outcomes.
            assert_eq!(r_a.finished, r_b.finished);
        }
    }

    #[test]
    fn parallel_profile_is_bit_identical_to_sequential() {
        let def = WorkloadDef::new(WorkloadKind::Lublin99, 64, 300, 77);
        let log = def.generate();
        let seq = profile_parallel("w", &log, 1);
        for threads in [2, 3, 8, 64] {
            let par = profile_parallel("w", &log, threads);
            assert_eq!(par, seq, "threads = {threads}");
        }
        // ... and the rendered report is byte-identical, too.
        use psbench_analyze::{render_profile, Format};
        assert_eq!(
            render_profile(&profile_parallel("w", &log, 4), Format::Markdown),
            render_profile(&seq, Format::Markdown),
        );
    }

    #[test]
    fn streamed_profile_is_bit_identical_to_materialized() {
        use psbench_workload::GeneratedStream;
        let def = WorkloadDef::new(WorkloadKind::Lublin99, 64, 500, 123);
        let log = def.generate();
        let seq = WorkloadProfile::of_log("w", &log);
        for threads in [1usize, 2, 5, 16] {
            // Streaming from the in-memory log...
            let streamed = profile_source_parallel(log.as_source("w"), threads).unwrap();
            assert_eq!(streamed, seq, "log source, threads = {threads}");
            // ... and from a lazily generated model stream.
            let model = WorkloadKind::Lublin99.model(64);
            let gen = GeneratedStream::new(model, 500, 123).with_name("w");
            let from_model = profile_source_parallel(gen, threads).unwrap();
            assert_eq!(from_model, seq, "generated stream, threads = {threads}");
        }
    }

    #[test]
    fn results_table_has_a_row_per_scenario() {
        let results = run_all(&small_scenarios());
        let table = results_table("smoke", &results);
        assert_eq!(table.rows.len(), 3);
        assert_eq!(table.headers.len(), 8);
        assert!(table.to_markdown().contains("easy"));
    }
}
